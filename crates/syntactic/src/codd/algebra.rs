//! The syntactic relational algebra.
//!
//! This is the algebra the semantic model's case-join / predicate-join /
//! conjunction *replace* (§3.2.1): a single attribute-name-driven
//! **natural join**, plus selection, projection, union, difference and
//! rename. It knows nothing about predicates or cases — `EMP ⋈ OPERATE`
//! joins on whatever attributes happen to share a name, which is exactly
//! the semantic blindness the paper's semantic joins repair.

use std::collections::BTreeSet;
use std::fmt;

use dme_value::{Symbol, Tuple, Value};

use super::schema::{Attribute, SynRelationSchema};
use super::state::CoddState;

/// A query-level relation: a heading (attributes only) plus rows.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SynRelation {
    name: Symbol,
    attributes: Vec<Attribute>,
    tuples: BTreeSet<Tuple>,
}

/// Errors raised by the syntactic algebra.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SynAlgebraError {
    /// Named attribute does not exist.
    UnknownAttribute(Symbol),
    /// Union/difference operands have different headings.
    HeadingMismatch,
}

impl fmt::Display for SynAlgebraError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynAlgebraError::UnknownAttribute(a) => write!(f, "unknown attribute `{a}`"),
            SynAlgebraError::HeadingMismatch => write!(f, "operand headings differ"),
        }
    }
}

impl std::error::Error for SynAlgebraError {}

impl SynRelation {
    /// Wraps a base relation of a state.
    pub fn base(state: &CoddState, name: &str) -> Option<SynRelation> {
        let rel: &SynRelationSchema = state.schema().relation(name)?;
        Some(SynRelation {
            name: rel.name().clone(),
            attributes: rel.attributes().to_vec(),
            tuples: state.relation(name)?.clone(),
        })
    }

    /// Builds a relation from parts.
    pub fn from_parts(
        name: impl Into<Symbol>,
        attributes: impl IntoIterator<Item = Attribute>,
        tuples: impl IntoIterator<Item = Tuple>,
    ) -> Self {
        SynRelation {
            name: name.into(),
            attributes: attributes.into_iter().collect(),
            tuples: tuples.into_iter().collect(),
        }
    }

    /// The relation's name.
    pub fn name(&self) -> &Symbol {
        &self.name
    }

    /// The attributes.
    pub fn attributes(&self) -> &[Attribute] {
        &self.attributes
    }

    /// The rows.
    pub fn tuples(&self) -> &BTreeSet<Tuple> {
        &self.tuples
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether there are no rows.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    fn index_of(&self, attribute: &str) -> Result<usize, SynAlgebraError> {
        self.attributes
            .iter()
            .position(|a| a.name.as_str() == attribute)
            .ok_or_else(|| SynAlgebraError::UnknownAttribute(Symbol::new(attribute)))
    }

    /// Selection by predicate over rows.
    pub fn select(&self, keep: impl Fn(&Tuple) -> bool) -> SynRelation {
        SynRelation {
            name: Symbol::new(format!("σ({})", self.name)),
            attributes: self.attributes.clone(),
            tuples: self.tuples.iter().filter(|t| keep(t)).cloned().collect(),
        }
    }

    /// Selection of rows whose `attribute` equals `value`.
    pub fn select_eq(
        &self,
        attribute: &str,
        value: &Value,
    ) -> Result<SynRelation, SynAlgebraError> {
        let i = self.index_of(attribute)?;
        Ok(self.select(|t| &t[i] == value))
    }

    /// Projection onto named attributes (deduplicating rows).
    pub fn project(&self, attributes: &[&str]) -> Result<SynRelation, SynAlgebraError> {
        let idx: Vec<usize> = attributes
            .iter()
            .map(|a| self.index_of(a))
            .collect::<Result<_, _>>()?;
        Ok(SynRelation {
            name: Symbol::new(format!("π({})", self.name)),
            attributes: idx.iter().map(|&i| self.attributes[i].clone()).collect(),
            tuples: self.tuples.iter().filter_map(|t| t.project(&idx)).collect(),
        })
    }

    /// Rename one attribute.
    pub fn rename(&self, from: &str, to: &str) -> Result<SynRelation, SynAlgebraError> {
        let i = self.index_of(from)?;
        let mut attributes = self.attributes.clone();
        attributes[i] = Attribute::new(to, attributes[i].domain.clone());
        Ok(SynRelation {
            name: Symbol::new(format!("ρ({})", self.name)),
            attributes,
            tuples: self.tuples.clone(),
        })
    }

    /// The syntactic natural join: equi-join on all same-named
    /// attributes; a cartesian product when none are shared.
    pub fn natural_join(&self, other: &SynRelation) -> SynRelation {
        let shared: Vec<(usize, usize)> = self
            .attributes
            .iter()
            .enumerate()
            .filter_map(|(i, a)| {
                other
                    .attributes
                    .iter()
                    .position(|b| b.name == a.name)
                    .map(|j| (i, j))
            })
            .collect();
        let other_kept: Vec<usize> = (0..other.attributes.len())
            .filter(|j| !shared.iter().any(|&(_, sj)| sj == *j))
            .collect();
        let attributes: Vec<Attribute> = self
            .attributes
            .iter()
            .cloned()
            .chain(other_kept.iter().map(|&j| other.attributes[j].clone()))
            .collect();
        let mut tuples = BTreeSet::new();
        for lt in &self.tuples {
            for rt in &other.tuples {
                if shared.iter().all(|&(i, j)| lt[i] == rt[j]) {
                    let values: Vec<Value> = lt
                        .values()
                        .cloned()
                        .chain(other_kept.iter().map(|&j| rt[j].clone()))
                        .collect();
                    tuples.insert(Tuple::new(values));
                }
            }
        }
        SynRelation {
            name: Symbol::new(format!("({}⋈{})", self.name, other.name)),
            attributes,
            tuples,
        }
    }

    fn same_heading(&self, other: &SynRelation) -> bool {
        self.attributes.len() == other.attributes.len()
            && self
                .attributes
                .iter()
                .zip(&other.attributes)
                .all(|(a, b)| a.name == b.name && a.domain == b.domain)
    }

    /// Set union (headings must match).
    pub fn union(&self, other: &SynRelation) -> Result<SynRelation, SynAlgebraError> {
        if !self.same_heading(other) {
            return Err(SynAlgebraError::HeadingMismatch);
        }
        Ok(SynRelation {
            name: Symbol::new(format!("({}∪{})", self.name, other.name)),
            attributes: self.attributes.clone(),
            tuples: self.tuples.union(&other.tuples).cloned().collect(),
        })
    }

    /// Set difference (headings must match).
    pub fn difference(&self, other: &SynRelation) -> Result<SynRelation, SynAlgebraError> {
        if !self.same_heading(other) {
            return Err(SynAlgebraError::HeadingMismatch);
        }
        Ok(SynRelation {
            name: Symbol::new(format!("({}∖{})", self.name, other.name)),
            attributes: self.attributes.clone(),
            tuples: self.tuples.difference(&other.tuples).cloned().collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;
    use dme_value::tuple;

    fn state() -> CoddState {
        fixtures::codd_machine_shop_state()
    }

    #[test]
    fn base_and_accessors() {
        let emp = SynRelation::base(&state(), "EMP").unwrap();
        assert_eq!(emp.len(), 3);
        assert!(!emp.is_empty());
        assert_eq!(emp.name(), "EMP");
        assert_eq!(emp.attributes().len(), 2);
        assert!(SynRelation::base(&state(), "GHOST").is_none());
    }

    #[test]
    fn selection() {
        let emp = SynRelation::base(&state(), "EMP").unwrap();
        let old = emp.select_eq("name", &Value::str("G.Wayshum")).unwrap();
        assert_eq!(old.len(), 1);
        assert!(matches!(
            emp.select_eq("ghost", &Value::int(1)),
            Err(SynAlgebraError::UnknownAttribute(_))
        ));
    }

    #[test]
    fn projection_dedups() {
        let op = SynRelation::base(&state(), "OPERATE").unwrap();
        let types = op.project(&["type"]).unwrap();
        assert_eq!(types.len(), 2);
        assert!(types.tuples().contains(&tuple!["lathe"]));
    }

    #[test]
    fn natural_join_on_shared_attribute() {
        // EMP(name, age) ⋈ OPERATE(name, number, type) joins on `name`.
        let emp = SynRelation::base(&state(), "EMP").unwrap();
        let op = SynRelation::base(&state(), "OPERATE").unwrap();
        let j = emp.natural_join(&op);
        assert_eq!(j.len(), 2);
        assert_eq!(j.attributes().len(), 4);
        assert!(j
            .tuples()
            .contains(&tuple!["T.Manhart", 32, "NZ745", "lathe"]));
    }

    #[test]
    fn natural_join_semantic_blindness() {
        // The paper's point: joining JOBS (supervisor, name, number) with
        // EMP on `name` silently equates the *supervisee* with the
        // employee — there is no way to say "join on the supervisor"
        // without renaming.
        let emp = SynRelation::base(&state(), "EMP").unwrap();
        let jobs = SynRelation::base(&state(), "JOBS").unwrap();
        let j = jobs.natural_join(&emp);
        // supervisee ages, not supervisor ages:
        assert!(j.tuples().iter().all(|t| !t[0].is_null()));
        // To ask for supervisor ages one must rename first:
        let by_supervisor = jobs
            .rename("supervisor", "x")
            .unwrap()
            .rename("name", "supervisee")
            .unwrap()
            .rename("x", "name")
            .unwrap()
            .natural_join(&emp);
        assert_eq!(by_supervisor.len(), 1); // only G.Wayshum supervises
    }

    #[test]
    fn cartesian_product_when_no_shared_names() {
        let emp = SynRelation::base(&state(), "EMP").unwrap();
        let renamed = emp
            .rename("name", "n2")
            .unwrap()
            .rename("age", "a2")
            .unwrap();
        let product = emp.natural_join(&renamed);
        assert_eq!(product.len(), 9);
    }

    #[test]
    fn union_and_difference() {
        let emp = SynRelation::base(&state(), "EMP").unwrap();
        let old = emp.select_eq("name", &Value::str("G.Wayshum")).unwrap();
        let rest = emp.difference(&old).unwrap();
        assert_eq!(rest.len(), 2);
        let whole = rest.union(&old).unwrap();
        assert_eq!(whole.tuples(), emp.tuples());
        let op = SynRelation::base(&state(), "OPERATE").unwrap();
        assert!(matches!(
            emp.union(&op),
            Err(SynAlgebraError::HeadingMismatch)
        ));
    }

    #[test]
    fn rename_unknown_attribute() {
        let emp = SynRelation::base(&state(), "EMP").unwrap();
        assert!(emp.rename("ghost", "x").is_err());
    }
}
