//! Fact interpretations for the syntactic models — §4's remark made
//! executable:
//!
//! > "Note that the framework is applicable to syntactic data models as
//! > well as semantic data models. We have simply pointed out that the
//! > task of comparing data models is easier when the data models of
//! > concern attempt to provide a clear interpretation of how they
//! > represent that portion of the real world which is of interest to
//! > the user."
//!
//! Both interpretations below are *syntactic*: a Codd tuple compiles to
//! a fact whose predicate is just the relation name; a DBTG record's
//! fact carries its database key. Nothing says what the rows *mean* in
//! application terms — so equivalence between a DBTG database and its
//! Zimmerman image is checkable (they share the representation-level
//! vocabulary), but equivalence between, say, the Codd machine shop and
//! the *semantic* machine shop is not even well-posed without first
//! supplying the case-grammar interpretation the semantic models carry
//! natively. That asymmetry is the paper's §3.1/§4 argument, reproduced
//! as API shape.

use dme_logic::{Fact, FactBase, ToFacts};
use dme_value::Symbol;

use crate::codd::CoddState;
use crate::dbtg::DbtgState;

/// Case name for the database key in DBTG record facts.
pub const DBKEY_CASE: &str = "dbkey";

impl ToFacts for CoddState {
    /// One fact per tuple: predicate = relation name, arguments keyed by
    /// attribute name. A purely syntactic reading — "this row is in this
    /// table".
    fn to_facts(&self) -> FactBase {
        let mut out = FactBase::new();
        for rel in self.schema().relations() {
            for t in self.tuples(rel.name().as_str()) {
                out.insert(Fact::new(
                    rel.name().clone(),
                    rel.attributes().iter().zip(t.values()).map(|(a, v)| {
                        (
                            a.name.clone(),
                            v.as_atom().cloned().expect("codd states are null-free"),
                        )
                    }),
                ));
            }
        }
        out
    }
}

impl ToFacts for DbtgState {
    /// One fact per record (fields plus the database key) and one per
    /// link (owner/member keys). Database keys are representation, not
    /// application content — which is exactly why this interpretation
    /// aligns with the Zimmerman image and with nothing else.
    fn to_facts(&self) -> FactBase {
        let mut out = FactBase::new();
        for (id, record) in self.records() {
            let rt = self
                .schema()
                .record_type(record.record_type.as_str())
                .expect("stored records have declared types");
            let mut fact = Fact::new(
                record.record_type.clone(),
                rt.fields()
                    .iter()
                    .zip(record.values.iter())
                    .map(|(f, v)| (f.name.clone(), v.clone())),
            );
            fact = fact.with_arg(DBKEY_CASE, dme_value::Atom::Int(id.0 as i64));
            out.insert(fact);
        }
        for (set_type, member, owner) in self.links() {
            out.insert(Fact::new(
                set_type.clone(),
                [
                    (Symbol::new("owner"), dme_value::Atom::Int(owner.0 as i64)),
                    (Symbol::new("member"), dme_value::Atom::Int(member.0 as i64)),
                ],
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;
    use crate::mapping::zimmerman_state;
    use dme_logic::state_equivalent;

    #[test]
    fn codd_state_compiles_one_fact_per_tuple() {
        let s = fixtures::codd_machine_shop_state();
        // 3 EMP + 2 OPERATE + 1 JOBS.
        assert_eq!(s.to_facts().len(), 6);
    }

    #[test]
    fn dbtg_state_compiles_records_and_links() {
        let s = fixtures::dbtg_machine_shop_state();
        // 5 records + 3 links.
        assert_eq!(s.to_facts().len(), 8);
    }

    /// §4: the framework applies to syntactic models — a DBTG database is
    /// state equivalent to its Zimmerman relational image under the
    /// shared representation-level vocabulary.
    #[test]
    fn dbtg_state_equivalent_to_its_zimmerman_image() {
        let dbtg = fixtures::dbtg_machine_shop_state();
        let image = zimmerman_state(&dbtg);
        let report = state_equivalent(&dbtg, &image);
        assert!(report.is_equivalent(), "{report}");
    }

    /// …and the equivalence is maintained through update translation.
    #[test]
    fn zimmerman_translation_preserves_equivalence() {
        use crate::dbtg::DbtgOp;
        use crate::mapping::zimmerman_ops;
        use dme_value::Atom;

        let dbtg = fixtures::dbtg_machine_shop_state();
        let gw = dbtg
            .find("EMP", "name", &Atom::str("G.Wayshum"))
            .next()
            .unwrap();
        let tm = dbtg
            .find("EMP", "name", &Atom::str("T.Manhart"))
            .next()
            .unwrap();
        let op = DbtgOp::Connect {
            set_type: "SUPERVISES".into(),
            owner: gw,
            member: tm,
        };
        let codd_ops = zimmerman_ops(&op, &dbtg).unwrap();
        let dbtg_after = op.apply(&dbtg).unwrap();
        let mut image = zimmerman_state(&dbtg);
        for c in &codd_ops {
            image = c.apply(&image).unwrap();
        }
        assert!(state_equivalent(&dbtg_after, &image).is_equivalent());
    }

    /// The *limits* of the syntactic interpretation: the Codd machine
    /// shop and the DBTG machine shop describe the same application but
    /// their syntactic fact vocabularies do not even overlap — without a
    /// semantic interpretation, state equivalence cannot hold. This is
    /// the paper's case for semantic data models, as a failing check.
    #[test]
    fn syntactic_interpretations_do_not_align_across_models() {
        let codd = fixtures::codd_machine_shop_state();
        let dbtg = fixtures::dbtg_machine_shop_state();
        let report = state_equivalent(&codd, &dbtg);
        assert!(!report.is_equivalent());
        // Every fact is on one side only.
        assert_eq!(report.only_left.len(), 6);
        assert_eq!(report.only_right.len(), 8);
    }
}
