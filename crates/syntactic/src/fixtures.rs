//! Machine-shop fixtures for the syntactic baselines.

use std::sync::Arc;

use dme_value::{tuple, Atom, Domain, DomainCatalog};

use crate::codd::{Attribute, CoddSchema, CoddState, Fd, SynRelationSchema};
use crate::dbtg::{DbtgSchema, DbtgState, Field, Record, RecordType, SetType};

fn machine_shop_domains() -> DomainCatalog {
    DomainCatalog::new()
        .with(Domain::of_strs(
            "names",
            ["T.Manhart", "C.Gershag", "G.Wayshum"],
        ))
        .with(Domain::of_ints("years", [32, 40, 50]))
        .with(Domain::of_strs("serial-numbers", ["NZ745", "JCL181"]))
        .with(Domain::of_strs("machine-types", ["lathe", "press"]))
}

/// A classic (null-free) relational schema for the machine shop.
pub fn codd_machine_shop_schema() -> CoddSchema {
    CoddSchema::new(
        machine_shop_domains(),
        [
            SynRelationSchema::new(
                "EMP",
                [
                    Attribute::new("name", "names"),
                    Attribute::new("age", "years"),
                ],
                [0],
                [Fd {
                    lhs: vec![0],
                    rhs: vec![1],
                }],
            ),
            SynRelationSchema::new(
                "OPERATE",
                [
                    Attribute::new("name", "names"),
                    Attribute::new("number", "serial-numbers"),
                    Attribute::new("type", "machine-types"),
                ],
                [1],
                [Fd {
                    lhs: vec![1],
                    rhs: vec![0, 2],
                }],
            ),
            SynRelationSchema::new(
                "JOBS",
                [
                    Attribute::new("supervisor", "names"),
                    Attribute::new("name", "names"),
                    Attribute::new("number", "serial-numbers"),
                ],
                [],
                [],
            ),
        ],
    )
    .expect("codd machine shop schema is well-formed")
}

/// The null-free analogue of the Figure 3 state. Note what is lost
/// compared to the semantic model: T.Manhart's row cannot appear in JOBS
/// at all ("has no supervisor" is inexpressible without nulls).
pub fn codd_machine_shop_state() -> CoddState {
    let mut s = CoddState::empty(Arc::new(codd_machine_shop_schema()));
    for t in [
        tuple!["T.Manhart", 32],
        tuple!["C.Gershag", 40],
        tuple!["G.Wayshum", 50],
    ] {
        s.insert_raw("EMP", t).expect("fixture EMP");
    }
    s.insert_raw("OPERATE", tuple!["T.Manhart", "NZ745", "lathe"])
        .expect("fixture OPERATE");
    s.insert_raw("OPERATE", tuple!["C.Gershag", "JCL181", "press"])
        .expect("fixture OPERATE");
    s.insert_raw("JOBS", tuple!["G.Wayshum", "C.Gershag", "JCL181"])
        .expect("fixture JOBS");
    s
}

/// The DBTG machine-shop schema: EMP and MACHINE record types; OPERATES
/// (mandatory membership — every machine must have an operator) and
/// SUPERVISES set types.
pub fn dbtg_machine_shop_schema() -> DbtgSchema {
    DbtgSchema::new(
        machine_shop_domains(),
        [
            RecordType::new(
                "EMP",
                [Field::new("name", "names"), Field::new("age", "years")],
            ),
            RecordType::new(
                "MACHINE",
                [
                    Field::new("number", "serial-numbers"),
                    Field::new("type", "machine-types"),
                ],
            ),
        ],
        [
            SetType::new("OPERATES", "EMP", "MACHINE", true),
            SetType::new("SUPERVISES", "EMP", "EMP", false),
        ],
    )
    .expect("dbtg machine shop schema is well-formed")
}

fn dbtg_base(with_nz745: bool) -> DbtgState {
    let mut s = DbtgState::empty(Arc::new(dbtg_machine_shop_schema()));
    let tm = s
        .store(Record::new("EMP", [Atom::str("T.Manhart"), Atom::int(32)]))
        .expect("fixture EMP");
    let cg = s
        .store(Record::new("EMP", [Atom::str("C.Gershag"), Atom::int(40)]))
        .expect("fixture EMP");
    let gw = s
        .store(Record::new("EMP", [Atom::str("G.Wayshum"), Atom::int(50)]))
        .expect("fixture EMP");
    let jcl = s
        .store(Record::new(
            "MACHINE",
            [Atom::str("JCL181"), Atom::str("press")],
        ))
        .expect("fixture MACHINE");
    s.connect("OPERATES", cg, jcl).expect("fixture OPERATES");
    s.connect("SUPERVISES", gw, cg).expect("fixture SUPERVISES");
    if with_nz745 {
        let nz = s
            .store(Record::new(
                "MACHINE",
                [Atom::str("NZ745"), Atom::str("lathe")],
            ))
            .expect("fixture MACHINE");
        s.connect("OPERATES", tm, nz).expect("fixture OPERATES");
    }
    s
}

/// The DBTG analogue of the Figure 4 state.
pub fn dbtg_machine_shop_state() -> DbtgState {
    let s = dbtg_base(true);
    s.validate().expect("fixture validates");
    s
}

/// The analogue of the Figure 8 premise (no machine NZ745).
pub fn dbtg_machine_shop_premise_state() -> DbtgState {
    let s = dbtg_base(false);
    s.validate().expect("fixture validates");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build_and_validate() {
        codd_machine_shop_state().check_integrity().unwrap();
        dbtg_machine_shop_state().validate().unwrap();
        dbtg_machine_shop_premise_state().validate().unwrap();
        assert_eq!(dbtg_machine_shop_state().sizes(), (5, 3));
        assert_eq!(dbtg_machine_shop_premise_state().sizes(), (4, 2));
    }
}
