//! Operation enumeration over finite domains.
//!
//! §2.1: "Given a schema and the set of possible other arguments for each
//! operation type, we can generate an application model's set of
//! allowable operations. For example, given a relational schema, there
//! would be an operation corresponding to the insertion or deletion of
//! each possible set of tuples."
//!
//! Enumerating *every* set of tuples is exponential; the checkers instead
//! take the operations generated here — all single-statement operations
//! plus all statement sets up to a caller-chosen size — and recover the
//! rest through composition (the `M-ops*` of Definition 3).

use std::sync::Arc;

use dme_value::{Tuple, Value};

use dme_graph::{Association, Entity, EntityRef, GraphOp, GraphSchema, SemanticUnit};
use dme_relation::ops::StatementSet;
use dme_relation::{RelOp, RelationSchema, RelationState, RelationalSchema};

/// All well-formed tuples of one relation over its (finite) domains.
/// Panics if a referenced domain is not enumerable.
pub fn enumerate_tuples(schema: &RelationalSchema, rel: &RelationSchema) -> Vec<Tuple> {
    let domains = schema.universe().domains();
    // Per flat column: candidate values.
    let mut columns: Vec<Vec<Value>> = Vec::with_capacity(rel.arity());
    for p in rel.participants() {
        for col in &p.columns {
            let domain = domains
                .get(col.domain.as_str())
                .expect("schema validated against universe");
            let mut values: Vec<Value> = domain
                .spec()
                .enumerate()
                .expect("enumerable domain required for operation enumeration")
                .into_iter()
                .map(Value::Atom)
                .collect();
            if col.nullable {
                values.insert(0, Value::Null);
            }
            columns.push(values);
        }
    }
    let mut out = Vec::new();
    let mut current: Vec<Value> = Vec::with_capacity(columns.len());
    fn rec(
        columns: &[Vec<Value>],
        current: &mut Vec<Value>,
        out: &mut Vec<Tuple>,
        schema: &RelationalSchema,
        rel: &RelationSchema,
    ) {
        if current.len() == columns.len() {
            let t = Tuple::new(current.iter().cloned());
            if RelationState::check_tuple(schema, rel, &t).is_ok() {
                out.push(t);
            }
            return;
        }
        for v in &columns[current.len()] {
            current.push(v.clone());
            rec(columns, current, out, schema, rel);
            current.pop();
        }
    }
    rec(&columns, &mut current, &mut out, schema, rel);
    out
}

/// All statements of a schema as `(relation, tuple)` pairs.
pub fn enumerate_statements(schema: &RelationalSchema) -> Vec<(String, Tuple)> {
    let mut out = Vec::new();
    for rel in schema.relations() {
        for t in enumerate_tuples(schema, rel) {
            out.push((rel.name().as_str().to_owned(), t));
        }
    }
    out
}

/// All insert/delete operations whose statement sets have at most
/// `max_statements` statements (statements may span relations).
pub fn enumerate_rel_ops(schema: &RelationalSchema, max_statements: usize) -> Vec<RelOp> {
    let statements = enumerate_statements(schema);
    let mut sets: Vec<StatementSet> = Vec::new();
    // Size-1 sets.
    for (r, t) in &statements {
        sets.push(StatementSet::single(r.as_str(), [t.clone()]));
    }
    // Larger sets (combinations, order-insensitive).
    let mut current = StatementSet::new();
    fn rec(
        statements: &[(String, Tuple)],
        from: usize,
        size: usize,
        target: usize,
        current: &mut StatementSet,
        sets: &mut Vec<StatementSet>,
    ) {
        if size == target {
            sets.push(current.clone());
            return;
        }
        for i in from..statements.len() {
            let (r, t) = &statements[i];
            let mut next = current.clone();
            next.add(r.as_str(), t.clone());
            if next.len() == size + 1 {
                std::mem::swap(current, &mut next);
                rec(statements, i + 1, size + 1, target, current, sets);
                std::mem::swap(current, &mut next);
            }
        }
    }
    for target in 2..=max_statements {
        rec(&statements, 0, 0, target, &mut current, &mut sets);
    }
    sets.iter()
        .flat_map(|s| [RelOp::Insert(s.clone()), RelOp::Delete(s.clone())])
        .collect()
}

/// All entities over the schema's finite domains.
pub fn enumerate_entities(schema: &GraphSchema) -> Vec<Entity> {
    let domains = schema.universe().domains();
    let mut out = Vec::new();
    for et in schema.universe().entity_types() {
        let chars: Vec<_> = et.characteristics().collect();
        let candidates: Vec<Vec<dme_value::Atom>> = chars
            .iter()
            .map(|(_, d)| {
                domains
                    .get(d.as_str())
                    .expect("validated")
                    .spec()
                    .enumerate()
                    .expect("enumerable domain required")
            })
            .collect();
        let mut idx = vec![0usize; chars.len()];
        'outer: loop {
            out.push(Entity::new(
                et.name().clone(),
                chars
                    .iter()
                    .enumerate()
                    .map(|(pos, (c, _))| ((*c).clone(), candidates[pos][idx[pos]].clone())),
            ));
            // Increment mixed-radix counter.
            for pos in 0..idx.len() {
                idx[pos] += 1;
                if idx[pos] < candidates[pos].len() {
                    continue 'outer;
                }
                idx[pos] = 0;
            }
            break;
        }
    }
    out
}

/// All associations over the schema's finite domains.
pub fn enumerate_associations(schema: &GraphSchema) -> Vec<Association> {
    let domains = schema.universe().domains();
    let mut out = Vec::new();
    for pred in schema.universe().predicates() {
        let cases: Vec<_> = pred.cases().collect();
        let candidates: Vec<Vec<EntityRef>> = cases
            .iter()
            .map(|(_, et_name)| {
                let et = schema
                    .universe()
                    .entity_type(et_name.as_str())
                    .expect("validated");
                let d = et
                    .domain_of(et.id_characteristic().as_str())
                    .expect("validated");
                domains
                    .get(d.as_str())
                    .expect("validated")
                    .spec()
                    .enumerate()
                    .expect("enumerable domain required")
                    .into_iter()
                    .map(|a| EntityRef::new((*et_name).clone(), a))
                    .collect()
            })
            .collect();
        let mut idx = vec![0usize; cases.len()];
        'outer: loop {
            out.push(Association::new(
                pred.name().clone(),
                cases
                    .iter()
                    .zip(&idx)
                    .enumerate()
                    .map(|(pos, ((role, _), &i))| ((*role).clone(), candidates[pos][i].clone())),
            ));
            for pos in 0..idx.len() {
                idx[pos] += 1;
                if idx[pos] < candidates[pos].len() {
                    continue 'outer;
                }
                idx[pos] = 0;
            }
            break;
        }
    }
    out
}

/// Semantic units pairing each entity that has required (total) roles
/// with each combination of associations filling them.
pub fn enumerate_units(schema: &GraphSchema) -> Vec<SemanticUnit> {
    let entities = enumerate_entities(schema);
    let associations = enumerate_associations(schema);
    let mut out = Vec::new();
    for e in &entities {
        let required = schema.required_roles(e.entity_type.as_str());
        if required.is_empty() {
            continue;
        }
        let Some(r) = e.to_ref(schema) else { continue };
        // For each required (predicate, role), candidate associations where
        // this entity fills that role.
        let per_role: Vec<Vec<&Association>> = required
            .iter()
            .map(|(p, role)| {
                associations
                    .iter()
                    .filter(|a| a.predicate == *p && a.role(role.as_str()).is_some_and(|x| *x == r))
                    .collect()
            })
            .collect();
        if per_role.iter().any(Vec::is_empty) {
            continue;
        }
        // One association per required role (cartesian product).
        let mut idx = vec![0usize; per_role.len()];
        'outer: loop {
            let mut unit = SemanticUnit::new().with_entity(e.clone());
            for (pos, &i) in idx.iter().enumerate() {
                unit = unit.with_association(per_role[pos][i].clone());
            }
            out.push(unit);
            for pos in 0..idx.len() {
                idx[pos] += 1;
                if idx[pos] < per_role[pos].len() {
                    continue 'outer;
                }
                idx[pos] = 0;
            }
            break;
        }
    }
    out
}

/// All graph operations over the schema's finite domains: entity and
/// association inserts/deletes plus semantic-unit inserts/deletes.
pub fn enumerate_graph_ops(schema: &Arc<GraphSchema>) -> Vec<GraphOp> {
    let mut out = Vec::new();
    for e in enumerate_entities(schema) {
        if let Some(r) = e.to_ref(schema) {
            out.push(GraphOp::DeleteEntity(r));
        }
        out.push(GraphOp::InsertEntity(e));
    }
    for a in enumerate_associations(schema) {
        out.push(GraphOp::InsertAssociation(a.clone()));
        out.push(GraphOp::DeleteAssociation(a));
    }
    for u in enumerate_units(schema) {
        out.push(GraphOp::InsertUnit(u.clone()));
        out.push(GraphOp::DeleteUnit(u));
    }
    out
}

/// [`enumerate_rel_ops`], with the enumeration timed under an
/// `enumerate/rel_ops` span and charged to
/// [`Counter::OpsEnumerated`](dme_obs::Counter::OpsEnumerated).
pub fn enumerate_rel_ops_observed(
    schema: &RelationalSchema,
    max_statements: usize,
    obs: &dme_obs::Observer,
) -> Vec<RelOp> {
    let _span = obs.span("enumerate/rel_ops");
    let ops = enumerate_rel_ops(schema, max_statements);
    obs.add(dme_obs::Counter::OpsEnumerated, ops.len() as u64);
    ops
}

/// [`enumerate_graph_ops`], with the enumeration timed under an
/// `enumerate/graph_ops` span and charged to
/// [`Counter::OpsEnumerated`](dme_obs::Counter::OpsEnumerated).
pub fn enumerate_graph_ops_observed(
    schema: &Arc<GraphSchema>,
    obs: &dme_obs::Observer,
) -> Vec<GraphOp> {
    let _span = obs.span("enumerate/graph_ops");
    let ops = enumerate_graph_ops(schema);
    obs.add(dme_obs::Counter::OpsEnumerated, ops.len() as u64);
    ops
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::witness;

    #[test]
    fn tuple_enumeration_respects_wellformedness() {
        let schema = witness::mini_relational_schema();
        let jobs = schema.relation("Jobs").unwrap();
        let tuples = enumerate_tuples(&schema, jobs);
        // No vacuous or incoherent tuples.
        for t in &tuples {
            RelationState::check_tuple(&schema, jobs, t).unwrap();
        }
        assert!(!tuples.is_empty());
    }

    #[test]
    fn statement_count_is_stable() {
        let schema = witness::mini_relational_schema();
        let statements = enumerate_statements(&schema);
        // Employees: 2 names × 1 age = 2.
        // Operate: 2 × 1 machine × 1 type = 2.
        // Jobs: (2+null) supervisor × 2 supervisee × (1+null) machine,
        //       minus vacuous (null, x, null) = 3·2·2 − 2 = 10.
        assert_eq!(statements.len(), 2 + 2 + 10);
    }

    #[test]
    fn rel_op_enumeration_counts() {
        let schema = witness::mini_relational_schema();
        let ops1 = enumerate_rel_ops(&schema, 1);
        assert_eq!(ops1.len(), 14 * 2);
        let ops2 = enumerate_rel_ops(&schema, 2);
        // 14 singles + C(14,2)=91 pairs, ×2 for insert/delete.
        assert_eq!(ops2.len(), (14 + 91) * 2);
    }

    #[test]
    fn entity_and_association_enumeration() {
        let schema = witness::mini_graph_schema();
        let entities = enumerate_entities(&schema);
        // 2 employees (2 names × 1 age) + 1 machine.
        assert_eq!(entities.len(), 3);
        let assocs = enumerate_associations(&schema);
        // operate: 2 agents × 1 machine; supervise: 2 × 2.
        assert_eq!(assocs.len(), 2 + 4);
    }

    #[test]
    fn unit_enumeration_pairs_machines_with_operations() {
        let schema = witness::mini_graph_schema();
        let units = enumerate_units(&schema);
        // One machine, two possible operators.
        assert_eq!(units.len(), 2);
        for u in &units {
            assert_eq!(u.entities.len(), 1);
            assert_eq!(u.associations.len(), 1);
            assert_eq!(u.entities[0].entity_type, "machine");
        }
    }

    #[test]
    fn graph_op_enumeration_counts() {
        let schema = Arc::new(witness::mini_graph_schema());
        let ops = enumerate_graph_ops(&schema);
        // entities 3×2 + associations 6×2 + units 2×2 = 22.
        assert_eq!(ops.len(), 22);
    }
}
