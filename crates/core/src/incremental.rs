//! Incremental re-verification: a persistent checking session.
//!
//! A [`Checker`](crate::check::Checker) run is stateless — it
//! re-enumerates both closures from scratch, re-compiles every state and
//! re-derives the verdict even when the models are unchanged or differ
//! by a single operation. The [`IncrementalChecker`] is the stateful
//! alternative: one session owns, per side,
//!
//! * a persistent hash-consed [`StateArena`] that only ever grows while
//!   the model's *universe* (name + initial state) is stable;
//! * a memoized **transition column** per operation label — the outcome
//!   of applying that operation to each arena state (`Error` or a target
//!   arena id). A transition is a pure function of `(state, operation,
//!   universe)`, so columns survive arbitrary changes to the *operation
//!   list*: dropping, adding or mutating one operation leaves every
//!   other column valid;
//! * shared [`FactInterner`]s, so re-pairing after a re-check compiles
//!   every already-seen state from cache;
//! * a harvested **pairing-rank cache**: the §3.3.1 pairing sorts every
//!   state's compiled fact base into a total order, and a state's rank
//!   in that order is a pure function of its content and the reachable
//!   state *set* — not of the operation list or the discovery order. As
//!   long as a mutation leaves the reachable set unchanged (the common
//!   case for label or precondition tweaks), re-checks rebuild the full
//!   pairing from the cached ranks in O(states) without compiling a
//!   single fact base;
//! * a keyed **verdict cache**: `(left model, right model, equivalence
//!   kind, state cap) → verdict`, answered without any closure work at
//!   all when nothing changed.
//!
//! Re-checking after a change therefore re-expands only the affected
//! frontier: the column of a new or mutated operation, plus any states
//! that column newly reaches. Everything else — including the closure
//! discovered on previous runs — is reused, and
//! [`Counter::TransitionsReused`]/[`Counter::TransitionsRecomputed`]
//! account for exactly how much.
//!
//! ## Verdict fidelity
//!
//! The session never *approximates*. On a verdict-cache miss it
//! materializes, from the cached columns, a [`Closure`] that is
//! **identical** to what a fresh enumeration would produce: states are
//! re-numbered by a breadth-first walk from the initial state in
//! operation order — the exact discovery order of
//! [`FiniteModel::closure`] — and the engine then runs its normal
//! pairing/signature/scan pipeline on it. Verdicts, witness sets and
//! witness order are the fresh engine's, which `tests/incremental.rs`
//! proves differentially against full enumeration and the
//! `slow-reference` engine.
//!
//! ## Model identity
//!
//! The cache keys a model by its **name**, its **initial state
//! fingerprint** and its ordered **operation labels** (wide 128-bit
//! hashes of all three, see
//! [`content_fingerprint_wide`](dme_logic::content_fingerprint_wide)).
//! The contract: within one session, two models with the same name,
//! initial state and operation labels must have the same semantics.
//! Anything else that affects behaviour — a constraint set baked into a
//! validator closure, say — must be reflected in the model *name* (the
//! scenario generator in `dme-workload` suffixes a constraint digest for
//! exactly this reason). Changing the name or initial state invalidates
//! the side's arena and columns wholesale ([`Counter::CacheInvalidations`]);
//! changing only operations takes the delta path.
//!
//! ## Durable image
//!
//! [`IncrementalChecker::save_verdicts`] serializes the verdict cache
//! into the WAL frame format of `dme-storage` (per-record FNV-1a
//! checksums), and [`IncrementalChecker::load_verdicts`] replays it
//! tolerantly: a torn or corrupted tail is detected by checksum and
//! simply dropped, so a damaged image degrades to a cold re-check —
//! never a wrong verdict. Keys are built from the standard library
//! hasher and are stable **within one build only**; an image written by
//! another build misses cleanly. Arena states are generic and are not
//! persisted — only the verdict rows are.

use std::collections::HashMap;
use std::fmt;
use std::hash::Hash;

use dme_logic::{content_fingerprint_wide, ToFacts};
use dme_obs::{Counter, Observer};
use dme_storage::wal;

use crate::arena::{Closure, StateArena, StateId};
use crate::canon::FactInterner;
use crate::equiv::{CheckError, EquivKind};
use crate::model::{ClosureTooLarge, FiniteModel};
use crate::parallel::{check_prepaired, pair_on_closures, PairedIds, Side, Verdict, Witness};

/// Running totals of what the session reused versus recomputed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Checks answered entirely from the verdict cache.
    pub verdict_hits: u64,
    /// Checks that had to run the engine.
    pub verdict_misses: u64,
    /// Closure caches rebuilt because a model's universe changed.
    pub invalidations: u64,
    /// Transition-column entries reused instead of re-applied.
    pub transitions_reused: u64,
    /// Transition-column entries computed by applying an operation.
    pub transitions_recomputed: u64,
    /// Engine runs whose pairing was rebuilt from harvested ranks
    /// instead of recompiling every state.
    pub pairings_reused: u64,
}

impl CacheStats {
    /// Fraction of verdict lookups answered from cache (0 when none).
    pub fn verdict_hit_rate(&self) -> f64 {
        let total = self.verdict_hits + self.verdict_misses;
        if total == 0 {
            0.0
        } else {
            self.verdict_hits as f64 / total as f64
        }
    }

    /// Fraction of transition lookups served from memoized columns
    /// (0 when none were needed).
    pub fn transition_reuse_rate(&self) -> f64 {
        let total = self.transitions_reused + self.transitions_recomputed;
        if total == 0 {
            0.0
        } else {
            self.transitions_reused as f64 / total as f64
        }
    }
}

/// One memoized transition outcome: applying one operation to one arena
/// state. `Unknown` marks a `(state, operation)` pair not yet explored
/// (the invalidated frontier).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Tx {
    /// Not yet computed.
    Unknown,
    /// The operation errors (precondition or constraint failure).
    Error,
    /// The operation transitions to this arena state.
    To(StateId),
}

/// The closure materialized for one operation list, plus the two pieces
/// of identity the pairing-rank cache needs: the dense→persistent id map
/// it was renumbered through, and an order-independent fingerprint of
/// the reachable state *set*.
struct Materialized<S> {
    /// Wide hash of the ordered operation labels this closure is for.
    ops_digest: u128,
    closure: Closure<S>,
    /// Dense id → persistent arena id, in discovery order
    /// (`order[d]` is the arena state behind dense state `d`).
    order: Vec<StateId>,
    /// Wide fingerprint of the sorted persistent ids: the identity of
    /// the reachable state set, independent of discovery order.
    set_id: u128,
}

/// A harvested §3.3.1 pairing for one side: the pair rank of every
/// persistent arena state, valid for exactly one reachable state set.
/// A rank — the position of the state's compiled fact base in the
/// pairing's total order — is a pure function of the state's content
/// and the set it was paired within, so it survives any operation-list
/// change that keeps the reachable set intact, even though such changes
/// can permute the *dense* ids.
struct RankCache {
    /// The state set the ranks were harvested against.
    set_id: u128,
    /// Persistent arena index → pair rank. Entries for arena states
    /// outside the set are never read (rebuilds only index through a
    /// closure's `order`, which stays inside the set by construction).
    by_persistent: Vec<u32>,
}

impl RankCache {
    /// Harvests the ranks of a freshly computed pairing, translating
    /// the engine's dense-id-indexed rank table through `order`.
    fn harvest(set_id: u128, order: &[StateId], rank_by_dense: &[u32], arena_len: usize) -> Self {
        let mut by_persistent = vec![u32::MAX; arena_len];
        for (dense, &rank) in rank_by_dense.iter().enumerate() {
            by_persistent[order[dense].index()] = rank;
        }
        RankCache {
            set_id,
            by_persistent,
        }
    }
}

/// Rebuilds the full [`PairedIds`] of a previous pairing in O(states),
/// from the per-side rank caches and the current closures' dense order.
/// Valid only when both sides' reachable sets match the harvest
/// (checked by the caller against [`RankCache::set_id`]); the result is
/// then identical to what [`pair_on_closures`] would recompute.
fn rebuild_pairing(
    left: &RankCache,
    m_order: &[StateId],
    right: &RankCache,
    n_order: &[StateId],
) -> PairedIds {
    let pairs = m_order.len();
    debug_assert_eq!(pairs, n_order.len(), "paired sets must have equal size");
    let mut m_by_pair = vec![StateId::from_index(0); pairs];
    let mut n_by_pair = vec![StateId::from_index(0); pairs];
    let mut m_rank = vec![0u32; pairs];
    let mut n_rank = vec![0u32; pairs];
    for d in 0..pairs {
        let r = left.by_persistent[m_order[d].index()];
        m_rank[d] = r;
        m_by_pair[r as usize] = StateId::from_index(d);
        let r = right.by_persistent[n_order[d].index()];
        n_rank[d] = r;
        n_by_pair[r as usize] = StateId::from_index(d);
    }
    PairedIds {
        pairs,
        m_by_pair,
        n_by_pair,
        m_rank,
        n_rank,
    }
}

/// One side's persistent closure cache: the growing arena plus the
/// per-operation-label transition columns over it.
struct ClosureCache<S> {
    /// Wide hash of (model name, initial-state fingerprint); `None`
    /// until the first refresh.
    universe: Option<u128>,
    arena: StateArena<S>,
    /// Label → column; `column[i]` is the outcome of the operation on
    /// arena state `i`. Columns may lag behind the arena (shorter
    /// vectors read as `Unknown`).
    columns: HashMap<String, Vec<Tx>>,
    /// The closure materialized for the most recent operation list.
    materialized: Option<Materialized<S>>,
    /// Pairing ranks harvested from the most recent engine run whose
    /// pairing succeeded; both sides are always harvested together.
    ranks: Option<RankCache>,
}

impl<S> ClosureCache<S> {
    fn new() -> Self {
        ClosureCache {
            universe: None,
            arena: StateArena::new(),
            columns: HashMap::new(),
            materialized: None,
            ranks: None,
        }
    }
}

impl<S> ClosureCache<S>
where
    S: Clone + Ord + Hash + ToFacts,
{
    /// Brings the cache up to date with `model`, leaving its closure in
    /// [`ClosureCache::materialized`] and reusing every still-valid
    /// transition. The materialized closure is identical — same states,
    /// same ids, same transition table — to [`FiniteModel::closure`] on
    /// the same model, including raising the same [`ClosureTooLarge`]
    /// when more than `cap` states are reachable.
    fn refresh<O: Clone + fmt::Display>(
        &mut self,
        model: &FiniteModel<S, O>,
        universe: u128,
        cap: usize,
        obs: &Observer,
        stats: &mut CacheStats,
    ) -> Result<(), ClosureTooLarge> {
        if self.universe != Some(universe) {
            if self.universe.is_some() {
                stats.invalidations += 1;
                obs.add(Counter::CacheInvalidations, 1);
            }
            self.universe = Some(universe);
            self.arena = StateArena::new();
            self.columns.clear();
            self.materialized = None;
            self.ranks = None;
            self.arena.intern(
                model.state_fingerprint(model.initial()),
                model.initial().clone(),
            );
        }

        let labels: Vec<String> = model.ops().iter().map(|o| o.to_string()).collect();
        let ops_digest = content_fingerprint_wide(&labels);
        if let Some(mat) = &self.materialized {
            if mat.ops_digest == ops_digest {
                if mat.closure.arena.len() > cap {
                    return Err(ClosureTooLarge {
                        model: model.name().to_owned(),
                        cap,
                    });
                }
                let reused = (mat.closure.arena.len() * labels.len()) as u64;
                stats.transitions_reused += reused;
                obs.add(Counter::TransitionsReused, reused);
                return Ok(());
            }
        }

        // Delta re-expansion: breadth-first walk from the initial state
        // over the *current* operation list, resolving each transition
        // from its memoized column when present and applying the
        // operation only on `Unknown` entries. Dense ids are assigned in
        // discovery order, reproducing the fresh enumeration exactly.
        //
        // The columns move out of the label map for the walk so the hot
        // loop indexes by op position instead of hashing a label per
        // transition; every exit path reinstalls them.
        let mut cols: Vec<Vec<Tx>> = labels
            .iter()
            .map(|l| self.columns.remove(l).unwrap_or_default())
            .collect();
        let mut order: Vec<StateId> = vec![StateId::from_index(0)];
        // Persistent arena index → dense id, grown lazily; a flat vector
        // because the warm path remaps every transition through it.
        let mut dense: Vec<Option<u32>> = vec![Some(0)];
        let mut transitions: Vec<Vec<Option<StateId>>> = Vec::new();
        let mut reused = 0u64;
        let mut recomputed = 0u64;
        let mut cursor = 0usize;
        while cursor < order.len() {
            let old = order[cursor];
            let idx = old.index();
            let mut row: Vec<Option<StateId>> = Vec::with_capacity(labels.len());
            for oi in 0..labels.len() {
                let entry = cols[oi].get(idx).copied().unwrap_or(Tx::Unknown);
                let target = match entry {
                    Tx::Error => {
                        reused += 1;
                        None
                    }
                    Tx::To(t) => {
                        reused += 1;
                        Some(t)
                    }
                    Tx::Unknown => {
                        recomputed += 1;
                        let op = &model.ops()[oi];
                        let mut scratch = self.arena.get(old).clone();
                        let outcome = match model.expand_delta(op, &mut scratch) {
                            None => Tx::Error,
                            Some(_undo) => {
                                let fp = model.state_fingerprint(&scratch);
                                match self.arena.probe(fp, &scratch) {
                                    Some(id) => {
                                        self.arena.add_probe_stats(1, 0);
                                        obs.add(Counter::ArenaHits, 1);
                                        Tx::To(id)
                                    }
                                    None if !model.validate_candidate(&scratch) => Tx::Error,
                                    None => {
                                        obs.add(Counter::ArenaMisses, 1);
                                        Tx::To(self.arena.intern(fp, scratch).0)
                                    }
                                }
                            }
                        };
                        let col = &mut cols[oi];
                        if col.len() <= idx {
                            col.resize(idx + 1, Tx::Unknown);
                        }
                        col[idx] = outcome;
                        match outcome {
                            Tx::Error => None,
                            Tx::To(t) => Some(t),
                            Tx::Unknown => unreachable!("outcome is always resolved"),
                        }
                    }
                };
                let mapped = match target {
                    None => None,
                    Some(t) => {
                        let ti = t.index();
                        if ti >= dense.len() {
                            dense.resize(ti + 1, None);
                        }
                        match dense[ti] {
                            Some(d) => Some(StateId::from_index(d as usize)),
                            None => {
                                // A genuinely new reachable state; the fresh
                                // enumerator raises the cap error at exactly
                                // this discovery point.
                                if order.len() >= cap {
                                    stats.transitions_reused += reused;
                                    stats.transitions_recomputed += recomputed;
                                    obs.add(Counter::TransitionsReused, reused);
                                    obs.add(Counter::TransitionsRecomputed, recomputed);
                                    for (label, col) in labels.iter().zip(cols) {
                                        self.columns.insert(label.clone(), col);
                                    }
                                    return Err(ClosureTooLarge {
                                        model: model.name().to_owned(),
                                        cap,
                                    });
                                }
                                let d = order.len() as u32;
                                dense[ti] = Some(d);
                                order.push(t);
                                Some(StateId::from_index(d as usize))
                            }
                        }
                    }
                };
                row.push(mapped);
            }
            transitions.push(row);
            cursor += 1;
        }
        for (label, col) in labels.iter().zip(cols) {
            self.columns.insert(label.clone(), col);
        }
        stats.transitions_reused += reused;
        stats.transitions_recomputed += recomputed;
        obs.add(Counter::TransitionsReused, reused);
        obs.add(Counter::TransitionsRecomputed, recomputed);
        obs.add(Counter::StatesEnumerated, order.len() as u64);

        let mut dense_arena: StateArena<S> = StateArena::new();
        for &old in &order {
            dense_arena.intern(self.arena.fingerprint_of(old), self.arena.get(old).clone());
        }
        let mut sorted: Vec<u64> = order.iter().map(|s| s.index() as u64).collect();
        sorted.sort_unstable();
        let set_id = content_fingerprint_wide(&sorted);
        self.materialized = Some(Materialized {
            ops_digest,
            closure: Closure {
                arena: dense_arena,
                transitions,
            },
            order,
            set_id,
        });
        Ok(())
    }
}

/// The verdict-cache key: wide model keys plus the check parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
struct VerdictKey {
    m: u128,
    n: u128,
    kind_tag: u8,
    kind_depth: u64,
    cap: u64,
}

fn kind_parts(kind: EquivKind) -> (u8, u64) {
    match kind {
        EquivKind::Isomorphic => (0, 0),
        EquivKind::Composed { max_depth } => (1, max_depth as u64),
        EquivKind::StateDependent { max_depth } => (2, max_depth as u64),
    }
}

fn kind_from_parts(tag: u8, depth: u64) -> Option<EquivKind> {
    match tag {
        0 => Some(EquivKind::Isomorphic),
        1 => Some(EquivKind::Composed {
            max_depth: depth as usize,
        }),
        2 => Some(EquivKind::StateDependent {
            max_depth: depth as usize,
        }),
        _ => None,
    }
}

fn universe_key<S, O>(model: &FiniteModel<S, O>) -> u128
where
    S: Clone + Ord + ToFacts,
    O: Clone,
{
    content_fingerprint_wide(&(model.name(), model.state_fingerprint(model.initial())))
}

fn full_key<S, O>(model: &FiniteModel<S, O>) -> u128
where
    S: Clone + Ord + ToFacts,
    O: Clone + fmt::Display,
{
    let labels: Vec<String> = model.ops().iter().map(|o| o.to_string()).collect();
    content_fingerprint_wide(&(
        model.name(),
        model.state_fingerprint(model.initial()),
        labels,
    ))
}

/// What [`IncrementalChecker::load_verdicts`] found in a durable image.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VerdictImageReport {
    /// Verdict rows recovered and installed in the session cache.
    pub loaded: usize,
    /// Whether the image ended in a torn or corrupted tail (detected by
    /// the per-record checksum and dropped). A torn image is not an
    /// error: the missing entries simply re-check cold.
    pub torn: bool,
}

/// A persistent checking session: re-checks models incrementally,
/// reusing closures, compiled states and verdicts across runs. See the
/// [module docs](self) for the contract and the reuse model.
pub struct IncrementalChecker<MS, NS> {
    left: ClosureCache<MS>,
    right: ClosureCache<NS>,
    verdicts: HashMap<VerdictKey, Verdict>,
    m_interner: FactInterner<MS>,
    n_interner: FactInterner<NS>,
    threads: usize,
    obs: Observer,
    stats: CacheStats,
}

impl<MS, NS> Default for IncrementalChecker<MS, NS>
where
    MS: Clone + Eq + Hash + ToFacts,
    NS: Clone + Eq + Hash + ToFacts,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<MS, NS> IncrementalChecker<MS, NS>
where
    MS: Clone + Eq + Hash + ToFacts,
    NS: Clone + Eq + Hash + ToFacts,
{
    /// An empty session (single-threaded engine, disabled observer).
    pub fn new() -> Self {
        IncrementalChecker {
            left: ClosureCache::new(),
            right: ClosureCache::new(),
            verdicts: HashMap::new(),
            m_interner: FactInterner::new(),
            n_interner: FactInterner::new(),
            threads: 1,
            obs: Observer::disabled(),
            stats: CacheStats::default(),
        }
    }

    /// Sets the engine thread count used on verdict-cache misses
    /// (0 = all available cores).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Attaches an observer; cache traffic is charged to
    /// [`Counter::VerdictCacheHits`], [`Counter::VerdictCacheMisses`],
    /// [`Counter::CacheInvalidations`], [`Counter::TransitionsReused`]
    /// and [`Counter::TransitionsRecomputed`].
    pub fn with_observer(mut self, obs: Observer) -> Self {
        self.obs = obs;
        self
    }

    /// The session's reuse statistics so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Number of cached verdicts.
    pub fn verdict_entries(&self) -> usize {
        self.verdicts.len()
    }
}

impl<MS, NS> IncrementalChecker<MS, NS>
where
    MS: Clone + Ord + Hash + ToFacts + Send + Sync,
    NS: Clone + Ord + Hash + ToFacts + Send + Sync,
{
    /// Checks `m` against `n` under `kind` with the given state cap,
    /// reusing everything the session already knows. Equivalent to
    /// `Checker::new(&m, &n).tier(Tier::from_kind(kind)).state_cap(cap)`
    /// with a parallel engine — same verdicts, same witnesses, same
    /// errors — but incremental across calls.
    pub fn check<MO, NO>(
        &mut self,
        m: &FiniteModel<MS, MO>,
        n: &FiniteModel<NS, NO>,
        kind: EquivKind,
        cap: usize,
    ) -> Result<Verdict, CheckError>
    where
        MO: Clone + fmt::Display + Send + Sync,
        NO: Clone + fmt::Display + Send + Sync,
    {
        let (kind_tag, kind_depth) = kind_parts(kind);
        let key = VerdictKey {
            m: full_key(m),
            n: full_key(n),
            kind_tag,
            kind_depth,
            cap: cap as u64,
        };
        if let Some(verdict) = self.verdicts.get(&key) {
            self.stats.verdict_hits += 1;
            self.obs.add(Counter::VerdictCacheHits, 1);
            return Ok(verdict.clone());
        }
        self.stats.verdict_misses += 1;
        self.obs.add(Counter::VerdictCacheMisses, 1);
        self.left
            .refresh(m, universe_key(m), cap, &self.obs, &mut self.stats)?;
        self.right
            .refresh(n, universe_key(n), cap, &self.obs, &mut self.stats)?;

        // Both ranks come from one harvest, so matching set ids per side
        // implies the harvested pairing is exactly this pairing: rebuild
        // it in O(states) instead of recompiling every fact base.
        let cached_pairing = match (&self.left.ranks, &self.right.ranks) {
            (Some(lr), Some(rr)) => {
                let lm = self.left.materialized.as_ref().expect("refreshed above");
                let rm = self.right.materialized.as_ref().expect("refreshed above");
                (lr.set_id == lm.set_id && rr.set_id == rm.set_id)
                    .then(|| rebuild_pairing(lr, &lm.order, rr, &rm.order))
            }
            _ => None,
        };
        let paired = match cached_pairing {
            Some(paired) => {
                self.stats.pairings_reused += 1;
                self.obs.add(Counter::PairingsReused, 1);
                paired
            }
            None => {
                let (paired, l_ranks, r_ranks) = {
                    let lm = self.left.materialized.as_ref().expect("refreshed above");
                    let rm = self.right.materialized.as_ref().expect("refreshed above");
                    // A pairing failure propagates before any harvest;
                    // stale ranks stay (they remain valid for the sets
                    // they name — set ids, not recency, gate reuse).
                    let paired = pair_on_closures(
                        &lm.closure,
                        &rm.closure,
                        self.threads,
                        &self.m_interner,
                        &self.n_interner,
                        &self.obs,
                    )?;
                    let l_ranks = RankCache::harvest(
                        lm.set_id,
                        &lm.order,
                        &paired.m_rank,
                        self.left.arena.len(),
                    );
                    let r_ranks = RankCache::harvest(
                        rm.set_id,
                        &rm.order,
                        &paired.n_rank,
                        self.right.arena.len(),
                    );
                    (paired, l_ranks, r_ranks)
                };
                self.left.ranks = Some(l_ranks);
                self.right.ranks = Some(r_ranks);
                paired
            }
        };
        let lm = self.left.materialized.as_ref().expect("refreshed above");
        let rm = self.right.materialized.as_ref().expect("refreshed above");
        let verdict = check_prepaired(
            m,
            n,
            &lm.closure,
            &rm.closure,
            &paired,
            kind,
            self.threads,
            &self.obs,
        )?;
        self.verdicts.insert(key, verdict.clone());
        Ok(verdict)
    }

    /// Serializes the verdict cache as a durable image: one
    /// checksummed WAL record per verdict, in a stable key order. The
    /// image is only meaningful to the build that wrote it (keys come
    /// from the standard hasher); any other reader misses cleanly.
    pub fn save_verdicts(&self) -> Vec<u8> {
        let mut rows: Vec<(&VerdictKey, &Verdict)> = self.verdicts.iter().collect();
        rows.sort_by_key(|(k, _)| (k.m, k.n, k.kind_tag, k.kind_depth, k.cap));
        let mut image = Vec::new();
        let mut lsn = 0u64;
        for (key, verdict) in rows {
            let Some(payload) = encode_row(key, verdict) else {
                continue;
            };
            lsn += 1;
            wal::append_record(&mut image, lsn, &payload);
        }
        image
    }

    /// Loads a durable image produced by
    /// [`IncrementalChecker::save_verdicts`], tolerating a torn or
    /// corrupted tail: the longest checksum-clean prefix is installed,
    /// the rest is dropped and reported. Entries the image lost are
    /// simply re-checked cold on their next lookup — a damaged image
    /// can cost time, never correctness.
    pub fn load_verdicts(&mut self, image: &[u8]) -> VerdictImageReport {
        let (records, tail_error) = wal::replay_tolerant(image);
        let mut report = VerdictImageReport {
            loaded: 0,
            torn: tail_error.is_some(),
        };
        for record in records {
            match decode_row(&record.payload) {
                Some((key, verdict)) => {
                    self.verdicts.insert(key, verdict);
                    report.loaded += 1;
                }
                None => {
                    // A checksum-clean record that does not decode means
                    // the image is from an incompatible writer; treat
                    // the rest as torn.
                    report.torn = true;
                    break;
                }
            }
        }
        report
    }
}

/// Re-exported so callers can distinguish torn-tail kinds if they care;
/// most should only look at [`VerdictImageReport::torn`].
pub use dme_storage::wal::WalError as ImageError;

// The row payload, big-endian:
// [m u128][n u128][kind u8][depth u64][cap u64][verdict tag u8]...
//   tag 0 (Equivalent):      [state_pairs u64]
//   tag 1 (Counterexample):  [state_pairs u64][count u32]
//                            ([side u8][len u32][label bytes])*
fn encode_row(key: &VerdictKey, verdict: &Verdict) -> Option<Vec<u8>> {
    let mut out = Vec::with_capacity(64);
    out.extend_from_slice(&key.m.to_be_bytes());
    out.extend_from_slice(&key.n.to_be_bytes());
    out.push(key.kind_tag);
    out.extend_from_slice(&key.kind_depth.to_be_bytes());
    out.extend_from_slice(&key.cap.to_be_bytes());
    match verdict {
        Verdict::Equivalent { state_pairs } => {
            out.push(0);
            out.extend_from_slice(&(*state_pairs as u64).to_be_bytes());
        }
        Verdict::Counterexample {
            state_pairs,
            witnesses,
        } => {
            out.push(1);
            out.extend_from_slice(&(*state_pairs as u64).to_be_bytes());
            out.extend_from_slice(&(witnesses.len() as u32).to_be_bytes());
            for w in witnesses {
                out.push(match w.side {
                    Side::Left => 0,
                    Side::Right => 1,
                });
                let label = w.label.as_bytes();
                out.extend_from_slice(&(label.len() as u32).to_be_bytes());
                out.extend_from_slice(label);
            }
        }
        // A session engine runs unbudgeted; exhausted verdicts are
        // never cached, so there is nothing to persist.
        Verdict::BudgetExhausted { .. } => return None,
    }
    Some(out)
}

struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.at.checked_add(n)?;
        if end > self.buf.len() {
            return None;
        }
        let slice = &self.buf[self.at..end];
        self.at = end;
        Some(slice)
    }

    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_be_bytes(self.take(4)?.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_be_bytes(self.take(8)?.try_into().ok()?))
    }

    fn u128(&mut self) -> Option<u128> {
        Some(u128::from_be_bytes(self.take(16)?.try_into().ok()?))
    }

    fn done(&self) -> bool {
        self.at == self.buf.len()
    }
}

fn decode_row(payload: &[u8]) -> Option<(VerdictKey, Verdict)> {
    let mut r = Reader {
        buf: payload,
        at: 0,
    };
    let m = r.u128()?;
    let n = r.u128()?;
    let kind_tag = r.u8()?;
    kind_from_parts(kind_tag, 0)?; // validate the tag range
    let kind_depth = r.u64()?;
    let cap = r.u64()?;
    let key = VerdictKey {
        m,
        n,
        kind_tag,
        kind_depth,
        cap,
    };
    let verdict = match r.u8()? {
        0 => Verdict::Equivalent {
            state_pairs: r.u64()? as usize,
        },
        1 => {
            let state_pairs = r.u64()? as usize;
            let count = r.u32()? as usize;
            // Cap pathological counts before allocating.
            if count > payload.len() {
                return None;
            }
            let mut witnesses = Vec::with_capacity(count);
            for _ in 0..count {
                let side = match r.u8()? {
                    0 => Side::Left,
                    1 => Side::Right,
                    _ => return None,
                };
                let len = r.u32()? as usize;
                let label = String::from_utf8(r.take(len)?.to_vec()).ok()?;
                witnesses.push(Witness { side, label });
            }
            Verdict::Counterexample {
                state_pairs,
                witnesses,
            }
        }
        _ => return None,
    };
    if !r.done() {
        return None;
    }
    Some((key, verdict))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dme_logic::{Fact, FactBase};
    use dme_value::Atom;

    fn fact(n: u8) -> Fact {
        Fact::new("p", [("x", Atom::Int(n as i64))])
    }

    /// The toy model of the differential suites: strict single-fact
    /// insert/delete operations labelled by their effect.
    fn toy(name: &str, ops: &[(bool, u8)]) -> FiniteModel<FactBase, String> {
        let universe: std::collections::BTreeMap<String, (bool, Fact)> = ops
            .iter()
            .map(|(add, n)| {
                let f = fact(*n);
                (format!("{}{}", if *add { "+" } else { "-" }, f), (*add, f))
            })
            .collect();
        let names: Vec<String> = universe.keys().cloned().collect();
        FiniteModel::new(name, FactBase::default(), names, move |op, s| {
            let (add, f) = &universe[op];
            let mut next = s.clone();
            if *add {
                next.insert(f.clone()).then_some(next)
            } else {
                next.remove(f).then_some(next)
            }
        })
    }

    #[test]
    fn warm_session_answers_from_the_verdict_cache() {
        let ops = [(true, 0), (false, 0), (true, 1), (false, 1)];
        let m = toy("m", &ops);
        let n = toy("n", &ops);
        let mut session = IncrementalChecker::new();
        let cold = session.check(&m, &n, EquivKind::Isomorphic, 512).unwrap();
        let warm = session.check(&m, &n, EquivKind::Isomorphic, 512).unwrap();
        assert_eq!(cold, warm);
        let stats = session.stats();
        assert_eq!(stats.verdict_hits, 1);
        assert_eq!(stats.verdict_misses, 1);
        assert!(stats.transitions_recomputed > 0);
    }

    #[test]
    fn session_verdicts_match_fresh_runs_after_mutation() {
        use crate::check::{Checker, Tier};
        let base = [(true, 0), (false, 0), (true, 1)];
        let mutated = [(true, 0), (false, 0), (true, 2)];
        let mut session = IncrementalChecker::new();
        for kind in [
            EquivKind::Isomorphic,
            EquivKind::Composed { max_depth: 2 },
            EquivKind::StateDependent { max_depth: 2 },
        ] {
            for ops in [&base[..], &mutated[..], &base[..]] {
                let m = toy("m", ops);
                let n = toy("n", &base);
                let incremental = session.check(&m, &n, kind, 512);
                let fresh = Checker::new(&m, &n)
                    .tier(Tier::from_kind(kind))
                    .state_cap(512)
                    .run();
                assert_eq!(incremental, fresh, "kind {kind:?}, ops {ops:?}");
            }
        }
        assert!(session.stats().transitions_reused > 0);
    }

    #[test]
    fn pairing_ranks_are_reused_across_kinds() {
        use crate::check::{Checker, Tier};
        let ops = [(true, 0), (false, 0), (true, 1)];
        let m = toy("m", &ops);
        let n = toy("n", &ops);
        let mut session = IncrementalChecker::new();
        session.check(&m, &n, EquivKind::Isomorphic, 512).unwrap();
        assert_eq!(session.stats().pairings_reused, 0);
        // Same models, different kind: verdict-cache miss, but both
        // reachable sets match the harvest, so the pairing is rebuilt
        // from ranks — and the verdict still matches a fresh run.
        let kind = EquivKind::Composed { max_depth: 1 };
        let warm = session.check(&m, &n, kind, 512).unwrap();
        assert_eq!(session.stats().pairings_reused, 1);
        let fresh = Checker::new(&m, &n)
            .tier(Tier::from_kind(kind))
            .state_cap(512)
            .run()
            .unwrap();
        assert_eq!(warm, fresh);
    }

    #[test]
    fn closure_cap_errors_are_reproduced() {
        let ops = [(true, 0), (true, 1), (false, 0), (false, 1)];
        let m = toy("m", &ops);
        let n = toy("n", &ops);
        let mut session = IncrementalChecker::new();
        let err = session.check(&m, &n, EquivKind::Isomorphic, 2);
        let fresh = m.closure(2).unwrap_err();
        assert_eq!(err, Err(CheckError::Closure(fresh)));
        // A larger cap on the same session still succeeds.
        assert!(session.check(&m, &n, EquivKind::Isomorphic, 512).is_ok());
    }

    #[test]
    fn durable_image_round_trips() {
        // Same state sets (so pairing succeeds) but the left has a
        // delete the right lacks: a cacheable counterexample verdict.
        let m = toy("m", &[(true, 0), (false, 0)]);
        let n = toy("n", &[(true, 0)]);
        let mut session = IncrementalChecker::new();
        let verdict = session.check(&m, &n, EquivKind::Isomorphic, 512);
        let image = session.save_verdicts();
        let mut restored: IncrementalChecker<FactBase, FactBase> = IncrementalChecker::new();
        let report = restored.load_verdicts(&image);
        assert_eq!(
            report,
            VerdictImageReport {
                loaded: session.verdict_entries(),
                torn: false
            }
        );
        let warm = restored.check(&m, &n, EquivKind::Isomorphic, 512);
        assert_eq!(warm, verdict);
        assert_eq!(restored.stats().verdict_hits, 1);
    }

    #[test]
    fn torn_images_load_a_clean_prefix() {
        let m = toy("m", &[(true, 0)]);
        let n = toy("n", &[(true, 0)]);
        let mut session = IncrementalChecker::new();
        session.check(&m, &n, EquivKind::Isomorphic, 512).unwrap();
        session
            .check(&m, &n, EquivKind::Composed { max_depth: 1 }, 512)
            .unwrap();
        let image = session.save_verdicts();
        for cut in 0..image.len() {
            let mut fresh: IncrementalChecker<FactBase, FactBase> = IncrementalChecker::new();
            let report = fresh.load_verdicts(&image[..cut]);
            // A strict prefix always loses at least part of the last
            // record; a cut off a record boundary is flagged as torn.
            assert!(report.loaded < session.verdict_entries());
        }
        let mut fresh: IncrementalChecker<FactBase, FactBase> = IncrementalChecker::new();
        let report = fresh.load_verdicts(&image);
        assert_eq!(report.loaded, session.verdict_entries());
        assert!(!report.torn);
    }
}
