//! The unified [`Checker`] facade over the equivalence hierarchy.
//!
//! One builder replaces the crate's historical pairs of entry points
//! (sequential report checkers in [`crate::equiv`], parallel verdict
//! checkers in [`crate::parallel`]): pick a [`Tier`], optionally a
//! [`ParallelConfig`], a [`CheckBudget`] and an
//! [`Observer`](dme_obs::Observer), and [`Checker::run`] returns the
//! engine's structured [`Verdict`] either way.
//!
//! ```
//! use std::sync::Arc;
//! use dme_core::enumerate::enumerate_rel_ops;
//! use dme_core::model::relational_model;
//! use dme_core::{witness, Checker, Tier};
//! use dme_relation::RelationState;
//!
//! let model = |name: &str, schema| {
//!     let ops = enumerate_rel_ops(&schema, 1);
//!     relational_model(name, RelationState::empty(Arc::new(schema)), ops)
//! };
//! let m = model("micro", witness::micro_relational_schema());
//! let n = model("renamed", witness::micro_relational_schema_renamed());
//! let verdict = Checker::new(&m, &n).tier(Tier::Isomorphic).run().unwrap();
//! assert!(verdict.is_equivalent());
//! ```
//!
//! The sequential and parallel paths decide the same predicates — the
//! differential test suite pins their verdicts to each other — so the
//! facade is free to route a *budgeted* sequential request through the
//! one-thread parallel engine, which is where budget enforcement lives.

use std::fmt;
use std::hash::Hash;
use std::slice;

use dme_logic::ToFacts;
use dme_obs::{EventSink, Metric, Observer};

use crate::canon::FactInterner;
use crate::equiv::{self, CheckError, EquivKind};
use crate::model::FiniteModel;
use crate::parallel::{self, CheckBudget, ParallelConfig, Verdict};

/// Default closure cap when [`Checker::state_cap`] is not called:
/// generous for the paper's witness models, small enough that an
/// accidentally-infinite model errors quickly.
pub const DEFAULT_STATE_CAP: usize = 10_000;

/// Which rung of the equivalence hierarchy (Definitions 1–6) to decide.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Tier {
    /// Definition 1, lifted to whole models: the *i*-th left operation
    /// must be operation equivalent to the *i*-th right operation.
    /// Only meaningful for [`Checker::new`] pairs.
    Operation,
    /// Definition 2: a 1-1 correspondence of simple operations.
    Isomorphic,
    /// Definition 3: simple operations matched by compositions of at
    /// most `max_depth` operations.
    Composed {
        /// Maximum composition length searched.
        max_depth: usize,
    },
    /// Definition 5: per equivalent state pair, simple operations
    /// matched by compositions of at most `max_depth` operations.
    StateDependent {
        /// Maximum composition length searched.
        max_depth: usize,
    },
    /// Definition 6: data-model (set-of-models) equivalence, deciding
    /// each model pair under `kind`.
    DataModel {
        /// The application-model equivalence used per pair.
        kind: EquivKind,
    },
}

impl Tier {
    /// The tier deciding [`EquivKind`] for a single model pair — the
    /// bridge from the historical `application_models_equivalent(kind)`
    /// call shape.
    pub fn from_kind(kind: EquivKind) -> Self {
        match kind {
            EquivKind::Isomorphic => Tier::Isomorphic,
            EquivKind::Composed { max_depth } => Tier::Composed { max_depth },
            EquivKind::StateDependent { max_depth } => Tier::StateDependent { max_depth },
        }
    }

    /// The per-pair [`EquivKind`] this tier decides with (`None` for
    /// [`Tier::Operation`], which has no set-level lifting).
    fn kind(&self) -> Option<EquivKind> {
        match *self {
            Tier::Operation => None,
            Tier::Isomorphic => Some(EquivKind::Isomorphic),
            Tier::Composed { max_depth } => Some(EquivKind::Composed { max_depth }),
            Tier::StateDependent { max_depth } => Some(EquivKind::StateDependent { max_depth }),
            Tier::DataModel { kind } => Some(kind),
        }
    }
}

/// What a [`Checker`] compares: one model pair or two model sets.
enum Target<'a, MS, MO, NS, NO> {
    Pair(&'a FiniteModel<MS, MO>, &'a FiniteModel<NS, NO>),
    Sets(&'a [FiniteModel<MS, MO>], &'a [FiniteModel<NS, NO>]),
}

/// The unified equivalence checker: a builder over the six tiers, the
/// sequential and parallel engines, budgets and observability.
///
/// Construction picks the target ([`Checker::new`] for an
/// application-model pair, [`Checker::data_models`] for Definition 6
/// sets); the builder methods refine the check; [`Checker::run`]
/// decides it.
///
/// Routing rules:
///
/// - no [`Checker::parallel`], no [`Checker::budget`], no
///   [`Checker::interners`] → the sequential reference checkers;
/// - [`Checker::parallel`] → the parallel engine with that config;
/// - [`Checker::budget`] or [`Checker::interners`] alone → the parallel
///   engine on one thread (budget enforcement and interner sharing live
///   in the engine; one engine thread decides exactly what the
///   sequential checkers decide);
/// - [`Tier::Operation`] always runs sequentially (it is a plain
///   signature comparison) and ignores budget and parallel settings.
pub struct Checker<'a, MS, MO, NS, NO> {
    target: Target<'a, MS, MO, NS, NO>,
    tier: Tier,
    state_cap: usize,
    parallel: Option<ParallelConfig>,
    budget: Option<CheckBudget>,
    observer: Observer,
    interners: Option<(&'a FactInterner<MS>, &'a FactInterner<NS>)>,
}

impl<'a, MS, MO, NS, NO> Checker<'a, MS, MO, NS, NO> {
    fn with_target(target: Target<'a, MS, MO, NS, NO>, tier: Tier) -> Self {
        Checker {
            target,
            tier,
            state_cap: DEFAULT_STATE_CAP,
            parallel: None,
            budget: None,
            observer: Observer::disabled(),
            interners: None,
        }
    }

    /// A checker over one application-model pair. Defaults to
    /// [`Tier::Isomorphic`] (Definition 2), sequential, unbudgeted,
    /// unobserved.
    pub fn new(m: &'a FiniteModel<MS, MO>, n: &'a FiniteModel<NS, NO>) -> Self {
        Self::with_target(Target::Pair(m, n), Tier::Isomorphic)
    }

    /// A checker over two data models (sets of application models).
    /// Defaults to Definition 6 over [`EquivKind::Isomorphic`].
    pub fn data_models(ms: &'a [FiniteModel<MS, MO>], ns: &'a [FiniteModel<NS, NO>]) -> Self {
        Self::with_target(
            Target::Sets(ms, ns),
            Tier::DataModel {
                kind: EquivKind::Isomorphic,
            },
        )
    }

    /// Selects the equivalence tier. A non-[`Tier::DataModel`] tier on
    /// a [`Checker::data_models`] target is shorthand for Definition 6
    /// with that tier's per-pair kind.
    pub fn tier(mut self, tier: Tier) -> Self {
        self.tier = tier;
        self
    }

    /// Caps closure enumeration at `cap` states per model (default
    /// [`DEFAULT_STATE_CAP`]); exceeding it is [`CheckError::Closure`].
    pub fn state_cap(mut self, cap: usize) -> Self {
        self.state_cap = cap;
        self
    }

    /// Runs the check on the parallel engine with `config`. A budget
    /// set via [`Checker::budget`] overrides `config.budget`.
    pub fn parallel(mut self, config: ParallelConfig) -> Self {
        self.parallel = Some(config);
        self
    }

    /// Bounds the check. Implies the (one-thread, deterministic)
    /// parallel engine when [`Checker::parallel`] is not also set.
    pub fn budget(mut self, budget: CheckBudget) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Attaches an observer; its sink receives the engine's spans and
    /// counters. [`Observer::disabled`] (the default) costs one branch
    /// per instrumentation site.
    pub fn observer(mut self, observer: Observer) -> Self {
        self.observer = observer;
        self
    }

    /// Shorthand for [`Checker::observer`] with a fresh
    /// [`Observer::new`] over `sink`.
    pub fn sink(self, sink: impl EventSink + 'static) -> Self {
        self.observer(Observer::new(sink))
    }

    /// Shares caller-owned fact-base interners across checks (the
    /// historical `*_with` entry points). Implies the engine path,
    /// where compilation is interned.
    pub fn interners(
        mut self,
        m_interner: &'a FactInterner<MS>,
        n_interner: &'a FactInterner<NS>,
    ) -> Self {
        self.interners = Some((m_interner, n_interner));
        self
    }
}

impl<MS, MO, NS, NO> Checker<'_, MS, MO, NS, NO>
where
    MS: Clone + Ord + Hash + ToFacts + Send + Sync,
    NS: Clone + Ord + Hash + ToFacts + Send + Sync,
    MO: Clone + fmt::Display + Send + Sync,
    NO: Clone + fmt::Display + Send + Sync,
{
    /// Decides the configured equivalence and returns the structured
    /// [`Verdict`]. The sequential and parallel routes decide the same
    /// predicates (see `tests/facade.rs` for the parity proofs). Wall
    /// time lands in the observer's [`Metric::CheckLatency`] histogram.
    pub fn run(&self) -> Result<Verdict, CheckError> {
        let _timer = self.observer.time(Metric::CheckLatency);
        match (&self.target, self.tier) {
            (Target::Pair(m, n), Tier::Operation) => {
                equiv::operation_pairs_report_obs(m, n, self.state_cap, &self.observer)
                    .map(|r| r.to_verdict())
            }
            (Target::Sets(..), Tier::Operation) => Err(CheckError::Unsupported(
                "Definition 1 compares the aligned operations of a single model pair; \
                 data-model sets have no operation alignment"
                    .into(),
            )),
            (Target::Pair(m, n), Tier::DataModel { kind }) => {
                self.run_sets(slice::from_ref(*m), slice::from_ref(*n), kind)
            }
            (Target::Sets(ms, ns), tier) => {
                self.run_sets(ms, ns, tier.kind().expect("Operation tier handled above"))
            }
            (Target::Pair(m, n), tier) => {
                let kind = tier.kind().expect("Operation tier handled above");
                match self.engine_config() {
                    None => {
                        equiv::app_models_report_obs(m, n, kind, self.state_cap, &self.observer)
                            .map(|r| r.to_verdict())
                    }
                    Some(config) => {
                        let fresh;
                        let (mi, ni) = match self.interners {
                            Some(pair) => pair,
                            None => {
                                fresh = (FactInterner::new(), FactInterner::new());
                                (&fresh.0, &fresh.1)
                            }
                        };
                        parallel::parallel_app_models_verdict_obs(
                            m,
                            n,
                            kind,
                            self.state_cap,
                            &config,
                            mi,
                            ni,
                            &self.observer,
                        )
                    }
                }
            }
        }
    }

    fn run_sets(
        &self,
        ms: &[FiniteModel<MS, MO>],
        ns: &[FiniteModel<NS, NO>],
        kind: EquivKind,
    ) -> Result<Verdict, CheckError> {
        match self.engine_config() {
            None => equiv::data_model_report_obs(ms, ns, kind, self.state_cap, &self.observer)
                .map(|r| r.to_verdict()),
            Some(config) => {
                let fresh;
                let (mi, ni) = match self.interners {
                    Some(pair) => pair,
                    None => {
                        fresh = (FactInterner::new(), FactInterner::new());
                        (&fresh.0, &fresh.1)
                    }
                };
                parallel::parallel_data_model_verdict_obs(
                    ms,
                    ns,
                    kind,
                    self.state_cap,
                    &config,
                    mi,
                    ni,
                    &self.observer,
                )
            }
        }
    }

    /// Resolves the routing rules to the engine config, or `None` for
    /// the sequential reference checkers.
    fn engine_config(&self) -> Option<ParallelConfig> {
        match (self.parallel, self.budget) {
            (Some(mut config), Some(budget)) => {
                config.budget = budget;
                Some(config)
            }
            (Some(config), None) => Some(config),
            (None, Some(budget)) => Some(ParallelConfig::with_threads(1).budget(budget)),
            (None, None) => self.interners.map(|_| ParallelConfig::with_threads(1)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dme_logic::{Fact, FactBase};
    use dme_obs::{Counter, Observer, Report, RingSink};
    use dme_value::Atom;
    use std::collections::BTreeMap;

    fn f(n: i64) -> Fact {
        Fact::new("p", [("x", Atom::Int(n))])
    }

    fn toy_model(name: &str, ops: Vec<(bool, Fact)>) -> FiniteModel<FactBase, String> {
        let universe: BTreeMap<String, (bool, Fact)> = ops
            .into_iter()
            .map(|(add, fact)| {
                (
                    format!("{}{}", if add { "+" } else { "-" }, fact),
                    (add, fact),
                )
            })
            .collect();
        let op_names: Vec<String> = universe.keys().cloned().collect();
        FiniteModel::new(name, FactBase::default(), op_names, move |op, s| {
            let (add, fact) = &universe[op];
            let mut next = s.clone();
            if *add {
                next.insert(fact.clone()).then_some(next)
            } else {
                next.remove(fact).then_some(next)
            }
        })
    }

    fn two_fact_model(name: &str) -> FiniteModel<FactBase, String> {
        toy_model(
            name,
            vec![(true, f(1)), (true, f(2)), (false, f(1)), (false, f(2))],
        )
    }

    #[test]
    fn default_tier_is_isomorphic_and_sequential() {
        let m = two_fact_model("m");
        let n = two_fact_model("n");
        let verdict = Checker::new(&m, &n).run().unwrap();
        assert_eq!(verdict, Verdict::Equivalent { state_pairs: 4 });
    }

    #[test]
    fn operation_tier_compares_aligned_signatures() {
        let m = two_fact_model("m");
        let n = two_fact_model("n");
        let verdict = Checker::new(&m, &n).tier(Tier::Operation).run().unwrap();
        assert!(verdict.is_equivalent(), "{verdict}");
    }

    #[test]
    fn operation_tier_rejects_data_model_sets() {
        let ms = vec![two_fact_model("m")];
        let ns = vec![two_fact_model("n")];
        let err = Checker::data_models(&ms, &ns)
            .tier(Tier::Operation)
            .run()
            .unwrap_err();
        assert!(matches!(err, CheckError::Unsupported(_)), "{err}");
    }

    #[test]
    fn budget_routes_through_the_engine() {
        let m = two_fact_model("m");
        let n = two_fact_model("n");
        let verdict = Checker::new(&m, &n)
            .budget(CheckBudget::nodes(3))
            .run()
            .unwrap();
        assert!(
            matches!(verdict, Verdict::BudgetExhausted { .. }),
            "{verdict}"
        );
    }

    #[test]
    fn pair_under_data_model_tier_is_a_singleton_grid() {
        let m = two_fact_model("m");
        let n = two_fact_model("n");
        let verdict = Checker::new(&m, &n)
            .tier(Tier::DataModel {
                kind: EquivKind::Isomorphic,
            })
            .run()
            .unwrap();
        assert_eq!(verdict, Verdict::Equivalent { state_pairs: 1 });
    }

    #[test]
    fn interners_imply_the_engine_and_fill() {
        let m = two_fact_model("m");
        let n = two_fact_model("n");
        let left = FactInterner::new();
        let right = FactInterner::new();
        let verdict = Checker::new(&m, &n).interners(&left, &right).run().unwrap();
        assert!(verdict.is_equivalent());
        assert_eq!(left.stats().unique, 4);
    }

    #[test]
    fn observer_records_phases_without_changing_the_verdict() {
        let m = two_fact_model("m");
        let n = two_fact_model("n");
        let ring = RingSink::with_capacity(256);
        let obs = Observer::new(ring.clone());
        let observed = Checker::new(&m, &n)
            .tier(Tier::StateDependent { max_depth: 2 })
            .observer(obs.clone())
            .run()
            .unwrap();
        let silent = Checker::new(&m, &n)
            .tier(Tier::StateDependent { max_depth: 2 })
            .run()
            .unwrap();
        assert_eq!(observed, silent);
        let report = Report::from_events(&ring.events()).with_totals(obs.counters());
        assert!(report.phase("seq/state_dependent").is_some());
        assert!(obs.counter(Counter::StatesEnumerated) > 0);
    }

    #[test]
    fn from_kind_round_trips() {
        for kind in [
            EquivKind::Isomorphic,
            EquivKind::Composed { max_depth: 3 },
            EquivKind::StateDependent { max_depth: 1 },
        ] {
            assert_eq!(Tier::from_kind(kind).kind(), Some(kind));
        }
        assert_eq!(Tier::Operation.kind(), None);
        assert_eq!(
            Tier::DataModel {
                kind: EquivKind::Isomorphic
            }
            .kind(),
            Some(EquivKind::Isomorphic)
        );
    }
}
