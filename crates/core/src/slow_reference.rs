//! The pre-arena reference engine, preserved behind
//! `--features slow-reference`.
//!
//! Before the state-arena kernel, the sequential checkers enumerated
//! closures as `BTreeSet<S>` of whole cloned states, rebuilt every
//! behaviour signature by re-applying each operation to each paired
//! state, and tracked Definition 4–5 reachability in per-state
//! `BTreeSet<u32>`s. That path is kept here verbatim as a differential
//! oracle: `tests/differential.rs` (under this feature) asserts the
//! arena-backed engines return byte-identical [`Verdict`]s — same
//! answers, same witness labels in the same order, same pairing and
//! closure errors — on randomly generated models.
//!
//! Nothing in this module is reachable from the production engines; it
//! exists only so the refactor stays falsifiable.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

use dme_logic::ToFacts;

use crate::equiv::{
    compose, identity_signature, pair_states, CheckError, DataModelReport, EquivKind, MatchReport,
    Signature,
};
use crate::model::{ClosureTooLarge, FiniteModel};
use crate::parallel::Verdict;

/// The original closure enumeration: breadth-first clone-apply over a
/// `BTreeSet` of whole states, one fresh successor allocation per
/// `(state, op)` probe.
pub fn reachable_states_slow<S, O>(
    model: &FiniteModel<S, O>,
    cap: usize,
) -> Result<BTreeSet<S>, ClosureTooLarge>
where
    S: Clone + Ord + ToFacts,
    O: Clone,
{
    let mut seen: BTreeSet<S> = BTreeSet::new();
    let mut frontier: Vec<S> = vec![model.initial().clone()];
    seen.insert(model.initial().clone());
    while let Some(state) = frontier.pop() {
        for op in model.ops() {
            if let Some(next) = model.apply(op, &state) {
                if !seen.contains(&next) {
                    if seen.len() >= cap {
                        return Err(ClosureTooLarge {
                            model: model.name().to_owned(),
                            cap,
                        });
                    }
                    seen.insert(next.clone());
                    frontier.push(next);
                }
            }
        }
    }
    Ok(seen)
}

/// The original signature construction: re-applies every operation to
/// every paired state and looks the successor up in a state-keyed map.
fn signatures<S, O>(model: &FiniteModel<S, O>, states: &[S]) -> Vec<Signature>
where
    S: Clone + Ord + ToFacts,
    O: Clone,
{
    let index: BTreeMap<&S, u32> = states
        .iter()
        .enumerate()
        .map(|(i, s)| (s, i as u32))
        .collect();
    model
        .ops()
        .iter()
        .map(|op| {
            states
                .iter()
                .map(|s| {
                    model.apply(op, s).map(|next| {
                        *index
                            .get(&next)
                            .expect("closure is closed under operations")
                    })
                })
                .collect()
        })
        .collect()
}

/// Enumerates both closures the old way and aligns them through the
/// §3.3.1 state equivalence correspondence.
fn paired_lists_slow<MS, MO, NS, NO>(
    m: &FiniteModel<MS, MO>,
    n: &FiniteModel<NS, NO>,
    state_cap: usize,
) -> Result<(Vec<MS>, Vec<NS>), CheckError>
where
    MS: Clone + Ord + ToFacts,
    NS: Clone + Ord + ToFacts,
    MO: Clone,
    NO: Clone,
{
    let m_states = reachable_states_slow(m, state_cap)?;
    let n_states = reachable_states_slow(n, state_cap)?;
    pair_states(&m_states, &n_states)
}

/// All signatures reachable by composing at most `max_depth` operations.
fn composable_signatures(
    op_sigs: &[Signature],
    pairs: usize,
    max_depth: usize,
) -> BTreeSet<Signature> {
    let mut seen: BTreeSet<Signature> = BTreeSet::new();
    let identity = identity_signature(pairs);
    seen.insert(identity.clone());
    let mut frontier = vec![identity];
    for _ in 0..max_depth {
        let mut next_frontier = Vec::new();
        for sig in &frontier {
            for op in op_sigs {
                let composed = compose(sig, op);
                if seen.insert(composed.clone()) {
                    next_frontier.push(composed);
                }
            }
        }
        if next_frontier.is_empty() {
            break;
        }
        frontier = next_frontier;
    }
    seen
}

/// The original per-state reachability: one `BTreeSet<u32>` per start
/// state instead of a word-packed bitset row.
fn reach_from_slow(op_sigs: &[Signature], start: u32, max_depth: usize) -> (BTreeSet<u32>, bool) {
    let mut seen: BTreeSet<u32> = BTreeSet::new();
    seen.insert(start);
    let mut queue: VecDeque<(u32, usize)> = VecDeque::new();
    queue.push_back((start, 0));
    let mut error = false;
    while let Some((state, depth)) = queue.pop_front() {
        if depth >= max_depth {
            continue;
        }
        for sig in op_sigs {
            match sig[state as usize] {
                Some(next) => {
                    if seen.insert(next) {
                        queue.push_back((next, depth + 1));
                    }
                }
                None => error = true,
            }
        }
    }
    (seen, error)
}

fn per_state_reachability(
    op_sigs: &[Signature],
    pairs: usize,
    max_depth: usize,
) -> (Vec<BTreeSet<u32>>, Vec<bool>) {
    let mut reach: Vec<BTreeSet<u32>> = Vec::with_capacity(pairs);
    let mut can_error: Vec<bool> = vec![false; pairs];
    for start in 0..pairs as u32 {
        let (seen, error) = reach_from_slow(op_sigs, start, max_depth);
        reach.push(seen);
        can_error[start as usize] = error;
    }
    (reach, can_error)
}

fn isomorphic_report_slow<MS, MO, NS, NO>(
    m: &FiniteModel<MS, MO>,
    n: &FiniteModel<NS, NO>,
    state_cap: usize,
) -> Result<MatchReport, CheckError>
where
    MS: Clone + Ord + ToFacts,
    NS: Clone + Ord + ToFacts,
    MO: Clone + fmt::Display,
    NO: Clone + fmt::Display,
{
    let (m_states, n_states) = paired_lists_slow(m, n, state_cap)?;
    let m_sigs = signatures(m, &m_states);
    let n_sigs = signatures(n, &n_states);
    let n_set: BTreeSet<&Signature> = n_sigs.iter().collect();
    let m_set: BTreeSet<&Signature> = m_sigs.iter().collect();
    let unmatched_m: Vec<String> = m
        .ops()
        .iter()
        .zip(&m_sigs)
        .filter(|(_, sig)| !n_set.contains(sig))
        .map(|(op, _)| op.to_string())
        .collect();
    let unmatched_n: Vec<String> = n
        .ops()
        .iter()
        .zip(&n_sigs)
        .filter(|(_, sig)| !m_set.contains(sig))
        .map(|(op, _)| op.to_string())
        .collect();
    Ok(MatchReport {
        equivalent: unmatched_m.is_empty() && unmatched_n.is_empty(),
        unmatched_m,
        unmatched_n,
        state_pairs: m_states.len(),
    })
}

fn composed_report_slow<MS, MO, NS, NO>(
    m: &FiniteModel<MS, MO>,
    n: &FiniteModel<NS, NO>,
    state_cap: usize,
    max_depth: usize,
) -> Result<MatchReport, CheckError>
where
    MS: Clone + Ord + ToFacts,
    NS: Clone + Ord + ToFacts,
    MO: Clone + fmt::Display,
    NO: Clone + fmt::Display,
{
    let (m_states, n_states) = paired_lists_slow(m, n, state_cap)?;
    let pairs = m_states.len();
    let m_sigs = signatures(m, &m_states);
    let n_sigs = signatures(n, &n_states);
    let m_star = composable_signatures(&m_sigs, pairs, max_depth);
    let n_star = composable_signatures(&n_sigs, pairs, max_depth);
    let unmatched_m: Vec<String> = m
        .ops()
        .iter()
        .zip(&m_sigs)
        .filter(|(_, sig)| !n_star.contains(*sig))
        .map(|(op, _)| op.to_string())
        .collect();
    let unmatched_n: Vec<String> = n
        .ops()
        .iter()
        .zip(&n_sigs)
        .filter(|(_, sig)| !m_star.contains(*sig))
        .map(|(op, _)| op.to_string())
        .collect();
    Ok(MatchReport {
        equivalent: unmatched_m.is_empty() && unmatched_n.is_empty(),
        unmatched_m,
        unmatched_n,
        state_pairs: pairs,
    })
}

fn state_dependent_report_slow<MS, MO, NS, NO>(
    m: &FiniteModel<MS, MO>,
    n: &FiniteModel<NS, NO>,
    state_cap: usize,
    max_depth: usize,
) -> Result<MatchReport, CheckError>
where
    MS: Clone + Ord + ToFacts,
    NS: Clone + Ord + ToFacts,
    MO: Clone + fmt::Display,
    NO: Clone + fmt::Display,
{
    let (m_states, n_states) = paired_lists_slow(m, n, state_cap)?;
    let pairs = m_states.len();
    let m_sigs = signatures(m, &m_states);
    let n_sigs = signatures(n, &n_states);
    let (n_reach, n_err) = per_state_reachability(&n_sigs, pairs, max_depth);
    let (m_reach, m_err) = per_state_reachability(&m_sigs, pairs, max_depth);

    let check = |sigs: &[Signature],
                 ops: Vec<String>,
                 reach: &[BTreeSet<u32>],
                 err: &[bool]|
     -> Vec<String> {
        ops.into_iter()
            .zip(sigs)
            .filter(|(_, sig)| {
                (0..pairs).any(|i| match sig[i] {
                    Some(target) => !reach[i].contains(&target),
                    None => !err[i],
                })
            })
            .map(|(op, _)| op)
            .collect()
    };

    let unmatched_m = check(
        &m_sigs,
        m.ops().iter().map(ToString::to_string).collect(),
        &n_reach,
        &n_err,
    );
    let unmatched_n = check(
        &n_sigs,
        n.ops().iter().map(ToString::to_string).collect(),
        &m_reach,
        &m_err,
    );
    Ok(MatchReport {
        equivalent: unmatched_m.is_empty() && unmatched_n.is_empty(),
        unmatched_m,
        unmatched_n,
        state_pairs: pairs,
    })
}

/// The old application-model dispatcher: Definition 2, 3 or 5 over the
/// BTreeSet closure path.
pub fn app_models_report_slow<MS, MO, NS, NO>(
    m: &FiniteModel<MS, MO>,
    n: &FiniteModel<NS, NO>,
    kind: EquivKind,
    state_cap: usize,
) -> Result<MatchReport, CheckError>
where
    MS: Clone + Ord + ToFacts,
    NS: Clone + Ord + ToFacts,
    MO: Clone + fmt::Display,
    NO: Clone + fmt::Display,
{
    match kind {
        EquivKind::Isomorphic => isomorphic_report_slow(m, n, state_cap),
        EquivKind::Composed { max_depth } => composed_report_slow(m, n, state_cap, max_depth),
        EquivKind::StateDependent { max_depth } => {
            state_dependent_report_slow(m, n, state_cap, max_depth)
        }
    }
}

/// The old Definition 2/3/5 check as a structured [`Verdict`], for
/// differential comparison against the arena engines.
pub fn app_models_verdict_slow<MS, MO, NS, NO>(
    m: &FiniteModel<MS, MO>,
    n: &FiniteModel<NS, NO>,
    kind: EquivKind,
    state_cap: usize,
) -> Result<Verdict, CheckError>
where
    MS: Clone + Ord + ToFacts,
    NS: Clone + Ord + ToFacts,
    MO: Clone + fmt::Display,
    NO: Clone + fmt::Display,
{
    Ok(app_models_report_slow(m, n, kind, state_cap)?.to_verdict())
}

/// The old Definition 6 grid over the BTreeSet path, re-enumerating each
/// model's closure once per grid cell exactly as the pre-arena engine
/// did.
pub fn data_model_verdict_slow<MS, MO, NS, NO>(
    ms: &[FiniteModel<MS, MO>],
    ns: &[FiniteModel<NS, NO>],
    kind: EquivKind,
    state_cap: usize,
) -> Result<Verdict, CheckError>
where
    MS: Clone + Ord + ToFacts,
    NS: Clone + Ord + ToFacts,
    MO: Clone + fmt::Display,
    NO: Clone + fmt::Display,
{
    let mut matches_m: Vec<(String, Vec<String>)> = Vec::new();
    let mut matches_n: Vec<(String, Vec<String>)> = ns
        .iter()
        .map(|n| (n.name().to_owned(), Vec::new()))
        .collect();
    for m in ms {
        let mut found = Vec::new();
        for (ni, n) in ns.iter().enumerate() {
            // A pairing failure means "not equivalent", not a checker
            // error: the two models express different application states.
            let report = match app_models_report_slow(m, n, kind, state_cap) {
                Ok(r) => r,
                Err(CheckError::Pairing(_)) => continue,
                Err(e) => return Err(e),
            };
            if report.equivalent {
                found.push(n.name().to_owned());
                matches_n[ni].1.push(m.name().to_owned());
            }
        }
        matches_m.push((m.name().to_owned(), found));
    }
    let equivalent = matches_m.iter().all(|(_, v)| !v.is_empty())
        && matches_n.iter().all(|(_, v)| !v.is_empty());
    Ok(DataModelReport {
        equivalent,
        matches_m,
        matches_n,
    }
    .to_verdict())
}
