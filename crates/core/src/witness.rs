//! Witness application models for the equivalence hierarchy.
//!
//! §3.3.1 observes that the three types of application model equivalence
//! are *decreasingly strict*: isomorphic ⇒ composed operation ⇒ state
//! dependent. The witnesses here separate the levels:
//!
//! * [`mini_relational_schema`] vs [`mini_relational_schema_renamed`] —
//!   **isomorphically** equivalent (a pure renaming);
//! * the same model with single-statement operations vs with
//!   two-statement operations — **composed-operation** equivalent but not
//!   isomorphic (a two-statement insertion corresponds to a composition
//!   of single insertions, not to any single one);
//! * [`micro_relational_schema`] vs [`micro_graph_schema`] — **state
//!   dependent** equivalent but not composed: `insert-statements` is
//!   idempotent (inserting an already-true statement is the identity)
//!   while `insert-association` is strict (inserting an existing
//!   association is the error state), so the relational insertion's
//!   equivalent on the graph side is `insert-association` in states where
//!   the association is absent and the *empty composition* where it is
//!   present — a choice that depends on the state, exactly the
//!   phenomenon of the paper's Figures 7/8.
//!
//! All witnesses use **enumerated** domains small enough for the checkers
//! to enumerate the full closure of valid states.

use dme_logic::{EntityTypeDecl, PredicateDecl, Universe};
use dme_value::{sym, Domain, DomainCatalog, Symbol};

use dme_graph::{GraphSchema, Participation};
use dme_relation::{
    CharacteristicCol, ColsRef, Constraint, Pair, Participant, RelationSchema, RelationalSchema,
};

/// A reduced machine shop: two employees (one possible age), one machine
/// (one possible type). Small enough that the full closure of valid
/// states is enumerable, rich enough to exercise machines' semantic
/// units.
pub fn mini_universe() -> Universe {
    let domains = DomainCatalog::new()
        .with(Domain::of_strs("names", ["A.Alpha", "B.Beta"]))
        .with(Domain::of_ints("years", [30]))
        .with(Domain::of_strs("serial-numbers", ["M1"]))
        .with(Domain::of_strs("machine-types", ["lathe"]));
    Universe::new(
        domains,
        [
            EntityTypeDecl::new(
                "employee",
                "name",
                [
                    (Symbol::new("name"), Symbol::new("names")),
                    (Symbol::new("age"), Symbol::new("years")),
                ],
            ),
            EntityTypeDecl::new(
                "machine",
                "number",
                [
                    (Symbol::new("number"), Symbol::new("serial-numbers")),
                    (Symbol::new("type"), Symbol::new("machine-types")),
                ],
            ),
        ],
        [
            PredicateDecl::new(
                "operate",
                [
                    (Symbol::new("agent"), Symbol::new("employee")),
                    (Symbol::new("object"), Symbol::new("machine")),
                ],
            ),
            PredicateDecl::new(
                "supervise",
                [
                    (Symbol::new("agent"), Symbol::new("employee")),
                    (Symbol::new("object"), Symbol::new("employee")),
                ],
            ),
        ],
    )
    .expect("mini universe is well-formed")
}

fn machine_shop_relations() -> [RelationSchema; 3] {
    [
        RelationSchema::new(
            "Employees",
            [Participant::new(
                "employee",
                [Pair::Existence],
                [
                    CharacteristicCol::required("name", "names"),
                    CharacteristicCol::required("age", "years"),
                ],
            )],
        ),
        RelationSchema::new(
            "Operate",
            [
                Participant::new(
                    "employee",
                    [Pair::case("operate", "agent")],
                    [CharacteristicCol::required("name", "names")],
                ),
                Participant::new(
                    "machine",
                    [Pair::Existence, Pair::case("operate", "object")],
                    [
                        CharacteristicCol::required("number", "serial-numbers"),
                        CharacteristicCol::required("type", "machine-types"),
                    ],
                ),
            ],
        ),
        RelationSchema::new(
            "Jobs",
            [
                Participant::new(
                    "employee",
                    [Pair::case("supervise", "agent")],
                    [CharacteristicCol::optional("name", "names")],
                ),
                Participant::new(
                    "employee",
                    [
                        Pair::case("supervise", "object"),
                        Pair::case("operate", "agent"),
                    ],
                    [CharacteristicCol::required("name", "names")],
                ),
                Participant::new(
                    "machine",
                    [Pair::case("operate", "object")],
                    [CharacteristicCol::optional("number", "serial-numbers")],
                ),
            ],
        ),
    ]
}

fn machine_shop_constraints(employees: &str, operate: &str, jobs: &str) -> Vec<Constraint> {
    vec![
        Constraint::Subset {
            from: ColsRef::new(operate, [0]),
            to: ColsRef::new(employees, [0]),
        },
        Constraint::NotNull {
            relation: operate.into(),
            column: 0,
        },
        Constraint::Unique {
            relation: operate.into(),
            columns: vec![1],
        },
        Constraint::Agreement {
            left: ColsRef::new(operate, [0, 1]),
            right: ColsRef::new(jobs, [1, 2]),
        },
        Constraint::Unique {
            relation: employees.into(),
            columns: vec![0],
        },
        Constraint::Subset {
            from: ColsRef::new(jobs, [0]),
            to: ColsRef::new(employees, [0]),
        },
        Constraint::Subset {
            from: ColsRef::new(jobs, [1]),
            to: ColsRef::new(employees, [0]),
        },
    ]
}

/// The Figure 3 schema shape over the mini universe.
pub fn mini_relational_schema() -> RelationalSchema {
    RelationalSchema::new(
        mini_universe(),
        machine_shop_relations(),
        machine_shop_constraints("Employees", "Operate", "Jobs"),
    )
    .expect("mini relational schema is well-formed")
}

/// The same application model with every relation renamed — states and
/// operations correspond 1-1, so this is the isomorphic-equivalence
/// witness.
pub fn mini_relational_schema_renamed() -> RelationalSchema {
    let [employees, operate, jobs] = machine_shop_relations();
    let rename =
        |r: RelationSchema, name: &str| RelationSchema::new(name, r.participants().iter().cloned());
    RelationalSchema::new(
        mini_universe(),
        [
            rename(employees, "Staff"),
            rename(operate, "Runs"),
            rename(jobs, "Duties"),
        ],
        machine_shop_constraints("Staff", "Runs", "Duties"),
    )
    .expect("renamed mini relational schema is well-formed")
}

/// The Figure 5 schema shape over the mini universe.
pub fn mini_graph_schema() -> GraphSchema {
    GraphSchema::new(
        mini_universe(),
        [
            ((sym!("operate"), sym!("agent")), Participation::OPTIONAL),
            (
                (sym!("operate"), sym!("object")),
                Participation::TOTAL_FUNCTIONAL,
            ),
            ((sym!("supervise"), sym!("agent")), Participation::OPTIONAL),
            ((sym!("supervise"), sym!("object")), Participation::OPTIONAL),
        ],
    )
    .expect("mini graph schema is well-formed")
}

/// The Figure 9 single-relation schema shape over the mini universe —
/// the second relational application model equivalent to the mini graph
/// model ("there may be several relational application models state
/// dependent equivalent to each graph model", §3.3.2).
pub fn mini_figure9_schema() -> RelationalSchema {
    RelationalSchema::new(
        mini_universe(),
        [RelationSchema::new(
            "Jobs",
            [
                Participant::new(
                    "employee",
                    [Pair::case("supervise", "agent")],
                    [CharacteristicCol::optional("name", "names")],
                ),
                Participant::new(
                    "employee",
                    [
                        Pair::Existence,
                        Pair::case("supervise", "object"),
                        Pair::case("operate", "agent"),
                    ],
                    [
                        CharacteristicCol::required("name", "names"),
                        CharacteristicCol::required("age", "years"),
                    ],
                ),
                Participant::new(
                    "machine",
                    [Pair::Existence, Pair::case("operate", "object")],
                    [
                        CharacteristicCol::optional("number", "serial-numbers"),
                        CharacteristicCol::optional("type", "machine-types"),
                    ],
                ),
            ],
        )],
        [
            Constraint::Functional {
                relation: "Jobs".into(),
                determinant: vec![1],
                dependent: vec![2],
            },
            Constraint::Functional {
                relation: "Jobs".into(),
                determinant: vec![3],
                dependent: vec![4],
            },
            Constraint::Functional {
                relation: "Jobs".into(),
                determinant: vec![3],
                dependent: vec![1],
            },
            Constraint::Implies {
                relation: "Jobs".into(),
                if_nonnull: 3,
                then_nonnull: 4,
            },
            Constraint::Subset {
                from: ColsRef::new("Jobs", [0]),
                to: ColsRef::new("Jobs", [1]),
            },
        ],
    )
    .expect("mini figure 9 schema is well-formed")
}

/// An even smaller universe — two employees, supervision only — used
/// where the machine semantic unit is irrelevant and checker cost
/// matters.
pub fn micro_universe() -> Universe {
    let domains = DomainCatalog::new().with(Domain::of_strs("names", ["A.Alpha", "B.Beta"]));
    Universe::new(
        domains,
        [EntityTypeDecl::new(
            "employee",
            "name",
            [(Symbol::new("name"), Symbol::new("names"))],
        )],
        [PredicateDecl::new(
            "supervise",
            [
                (Symbol::new("agent"), Symbol::new("employee")),
                (Symbol::new("object"), Symbol::new("employee")),
            ],
        )],
    )
    .expect("micro universe is well-formed")
}

/// Employees + Super over the micro universe.
pub fn micro_relational_schema() -> RelationalSchema {
    RelationalSchema::new(
        micro_universe(),
        [
            RelationSchema::new(
                "Employees",
                [Participant::new(
                    "employee",
                    [Pair::Existence],
                    [CharacteristicCol::required("name", "names")],
                )],
            ),
            RelationSchema::new(
                "Super",
                [
                    Participant::new(
                        "employee",
                        [Pair::case("supervise", "agent")],
                        [CharacteristicCol::required("name", "names")],
                    ),
                    Participant::new(
                        "employee",
                        [Pair::case("supervise", "object")],
                        [CharacteristicCol::required("name", "names")],
                    ),
                ],
            ),
        ],
        [
            Constraint::Unique {
                relation: "Employees".into(),
                columns: vec![0],
            },
            Constraint::Subset {
                from: ColsRef::new("Super", [0]),
                to: ColsRef::new("Employees", [0]),
            },
            Constraint::Subset {
                from: ColsRef::new("Super", [1]),
                to: ColsRef::new("Employees", [0]),
            },
        ],
    )
    .expect("micro relational schema is well-formed")
}

/// [`micro_relational_schema`] with every relation renamed — the
/// isomorphic-equivalence witness at micro scale.
pub fn micro_relational_schema_renamed() -> RelationalSchema {
    let base = micro_relational_schema();
    let rename = |old: &str, new: &str| {
        RelationSchema::new(
            new,
            base.relation(old).unwrap().participants().iter().cloned(),
        )
    };
    RelationalSchema::new(
        micro_universe(),
        [rename("Employees", "Staff"), rename("Super", "Oversees")],
        [
            Constraint::Unique {
                relation: "Staff".into(),
                columns: vec![0],
            },
            Constraint::Subset {
                from: ColsRef::new("Oversees", [0]),
                to: ColsRef::new("Staff", [0]),
            },
            Constraint::Subset {
                from: ColsRef::new("Oversees", [1]),
                to: ColsRef::new("Staff", [0]),
            },
        ],
    )
    .expect("renamed micro relational schema is well-formed")
}

/// [`micro_relational_schema`] plus a constraint with no graph
/// counterpart — "every supervisor must also be supervised" (a subset
/// constraint between two roles of the same predicate). Graph schemas
/// can only express totality and functionality per (predicate, role), so
/// no graph application model over the micro universe is equivalent to
/// this one: the witness of *partial* data model equivalence (§3.3.2,
/// "a relational application model may have either too many or too few
/// constraints to be equivalent to a graph model").
pub fn micro_relational_schema_supervisors_supervised() -> RelationalSchema {
    let base = micro_relational_schema();
    let relations: Vec<RelationSchema> = base.relations().cloned().collect();
    let mut constraints: Vec<Constraint> = base.constraints().to_vec();
    constraints.push(Constraint::Subset {
        from: ColsRef::new("Super", [0]),
        to: ColsRef::new("Super", [1]),
    });
    RelationalSchema::new(micro_universe(), relations, constraints)
        .expect("constrained micro relational schema is well-formed")
}

/// Every graph application model over the micro universe: all
/// assignments of participation rules to the two supervise roles. Used
/// by the Definition 6 experiments to show that *no* graph model matches
/// an inexpressibly-constrained relational model.
pub fn all_micro_graph_schemas() -> Vec<GraphSchema> {
    let flags = [
        Participation {
            total: false,
            functional: false,
        },
        Participation {
            total: false,
            functional: true,
        },
        Participation {
            total: true,
            functional: false,
        },
        Participation {
            total: true,
            functional: true,
        },
    ];
    let mut out = Vec::new();
    for agent in flags {
        for object in flags {
            out.push(
                GraphSchema::new(
                    micro_universe(),
                    [
                        ((sym!("supervise"), sym!("agent")), agent),
                        ((sym!("supervise"), sym!("object")), object),
                    ],
                )
                .expect("micro graph schema is well-formed"),
            );
        }
    }
    out
}

/// The graph counterpart of [`micro_relational_schema`].
pub fn micro_graph_schema() -> GraphSchema {
    GraphSchema::new(
        micro_universe(),
        [
            ((sym!("supervise"), sym!("agent")), Participation::OPTIONAL),
            ((sym!("supervise"), sym!("object")), Participation::OPTIONAL),
        ],
    )
    .expect("micro graph schema is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_witness_schemas_build() {
        mini_relational_schema();
        mini_relational_schema_renamed();
        mini_graph_schema();
        micro_relational_schema();
        micro_graph_schema();
    }

    #[test]
    fn renamed_schema_shares_shapes() {
        let a = mini_relational_schema();
        let b = mini_relational_schema_renamed();
        assert_eq!(
            a.relation("Jobs").unwrap().participants(),
            b.relation("Duties").unwrap().participants()
        );
        assert!(b.relation("Jobs").is_none());
    }
}
