//! The operation translators between the two semantic data models.
//!
//! §3.3.1: "In practical terms, we would hope that the operation
//! equivalence mappings can be expressed as an algorithm rather than an
//! explicit enumeration of an extremely large number of equivalent pairs.
//! It is such an algorithm which would actually allow the implementation
//! of a database system which provides users of two different data models
//! with access to the 'same' data."
//!
//! Both translators work at the fact level: apply the source operation
//! (virtually), diff the fact bases, and synthesize target-model
//! operations realising the same fact delta on the equivalent target
//! state. Each translation is **verified** — the synthesized operations
//! are applied to the target state and the result compared fact-for-fact
//! with the source result — so a successful return *is* a certificate of
//! state-dependent operation equivalence (Definition 4) for this pair of
//! states.
//!
//! ## Completion modes and the paper's Figures 7/8
//!
//! [`CompletionMode`] controls how inserted statements are padded:
//!
//! * [`CompletionMode::Minimal`] nulls every nullable column, inserting
//!   `(G.Wayshum, T.Manhart, ----)` for the new supervision and letting
//!   the relation model's statement normalization merge it with
//!   `(----, T.Manhart, NZ745)` when the latter exists;
//! * [`CompletionMode::StateCompleted`] consults the current state and
//!   inserts the *literal* tuples of the paper's figures —
//!   `(G.Wayshum, T.Manhart, NZ745)` against Figure 3 but
//!   `(G.Wayshum, T.Manhart, ----)` against the Figure 8 premise — making
//!   the state dependence §3.3.1 describes directly observable.
//!
//! Deletions always synthesize *minimal* denial statements: completing a
//! denial would deny more than intended.

use std::fmt;

use dme_logic::{state_equivalent, Fact, FactBase, Pattern, ToFacts};
use dme_value::{Symbol, Tuple, Value};

use dme_graph::{
    unit::deletion_unit, Association, Entity, EntityRef, GraphOp, GraphState, SemanticUnit,
};
use dme_relation::facts::tuple_facts;
use dme_relation::ops::StatementSet;
use dme_relation::{RelOp, RelationSchema, RelationState, RelationalSchema};

/// How inserted statements are padded (see module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CompletionMode {
    /// Null every nullable column; rely on statement normalization.
    Minimal,
    /// Fill every derivable column from the current state (the paper's
    /// literal, state-dependent tuples).
    StateCompleted,
}

/// Errors raised by the translators.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TranslateError {
    /// The source operation itself yields the error state; the equivalent
    /// target operation is any operation that errors (all error states
    /// are equivalent), which the caller can realise directly.
    SourceOpFailed(String),
    /// The given source and target states are not state equivalent, so
    /// translation is meaningless.
    StatesNotEquivalent(String),
    /// The fact delta cannot be expressed in the target model.
    Inexpressible(String),
    /// Synthesized operations did not reproduce the delta (a bug guard —
    /// every successful return is verified).
    VerificationFailed(String),
}

impl fmt::Display for TranslateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TranslateError::SourceOpFailed(s) => write!(f, "source operation errored: {s}"),
            TranslateError::StatesNotEquivalent(s) => {
                write!(f, "source and target states are not equivalent: {s}")
            }
            TranslateError::Inexpressible(s) => write!(f, "inexpressible in target model: {s}"),
            TranslateError::VerificationFailed(s) => {
                write!(f, "translated operations failed verification: {s}")
            }
        }
    }
}

impl std::error::Error for TranslateError {}

/// What kind of canonical fact this is.
enum FactKind<'a> {
    Existence {
        entity_type: Symbol,
    },
    Characteristic {
        entity_type: Symbol,
        characteristic: Symbol,
    },
    Association {
        predicate: &'a Symbol,
    },
}

fn classify(fact: &Fact) -> FactKind<'_> {
    let p = fact.predicate().as_str();
    if let Some(rest) = p.strip_prefix("be ") {
        FactKind::Existence {
            entity_type: Symbol::new(rest),
        }
    } else if let Some((et, c)) = p.split_once('.') {
        FactKind::Characteristic {
            entity_type: Symbol::new(et),
            characteristic: Symbol::new(c),
        }
    } else {
        FactKind::Association {
            predicate: fact.predicate(),
        }
    }
}

/// Looks up the value of a characteristic of an entity in a fact base.
fn lookup_characteristic(
    context: &FactBase,
    entity_type: &Symbol,
    id_char: &Symbol,
    key: &dme_value::Atom,
    characteristic: &Symbol,
) -> Option<dme_value::Atom> {
    let pred = dme_logic::vocab::characteristic_predicate(entity_type, characteristic);
    let pattern = Pattern::predicate(pred).with(id_char.clone(), key.clone());
    context
        .find(&pattern)
        .and_then(|f| f.get(dme_logic::vocab::VALUE_CASE))
        .cloned()
}

/// Attempts to express `fact` as a statement of relation `rel`,
/// completing the other columns from `context`. Returns `None` when the
/// relation cannot express the fact (which is not an error — another
/// relation may).
fn express_fact(
    schema: &RelationalSchema,
    rel: &RelationSchema,
    fact: &Fact,
    context: &FactBase,
    mode: CompletionMode,
) -> Option<Tuple> {
    let universe = schema.universe();
    let mut values: Vec<Option<Value>> = vec![None; rel.arity()];

    // Seed from the fact itself.
    match classify(fact) {
        FactKind::Existence { entity_type } => {
            let decl = universe.entity_type(entity_type.as_str())?;
            let pi = rel
                .participants()
                .iter()
                .position(|p| p.asserts_existence() && p.entity_type == entity_type)?;
            let key = fact.get(decl.id_characteristic().as_str())?;
            values[rel.id_column(pi)] = Some(Value::Atom(key.clone()));
        }
        FactKind::Characteristic {
            entity_type,
            characteristic,
        } => {
            let decl = universe.entity_type(entity_type.as_str())?;
            let (pi, ci) = rel.participants().iter().enumerate().find_map(|(pi, p)| {
                (p.entity_type == entity_type)
                    .then(|| p.column_of(characteristic.as_str()).map(|ci| (pi, ci)))
                    .flatten()
            })?;
            if ci == 0 {
                return None; // the identifying column asserts no characteristic fact
            }
            let key = fact.get(decl.id_characteristic().as_str())?;
            let base = rel.participant_offset(pi);
            values[base] = Some(Value::Atom(key.clone()));
            values[base + ci] = Some(Value::Atom(fact.get("value")?.clone()));
        }
        FactKind::Association { predicate } => {
            let decl = universe.predicate(predicate.as_str())?;
            let bindings = rel.predicate_bindings(predicate.as_str());
            if bindings.is_empty() || bindings.len() != decl.arity() {
                return None;
            }
            for (case, pi) in &bindings {
                let key = fact.get(case.as_str())?;
                values[rel.id_column(*pi)] = Some(Value::Atom(key.clone()));
            }
        }
    }

    // Derive identifying values of other participants through association
    // facts in the context (e.g. the operator of a machine being inserted
    // via Operate, or — in StateCompleted mode — the machine of the
    // supervisee, the paper's Figure 7 literal tuple).
    let mut progress = true;
    while progress {
        progress = false;
        for (pi, p) in rel.participants().iter().enumerate() {
            let id_col = rel.id_column(pi);
            if values[id_col].is_some() {
                continue;
            }
            let required = p.columns.iter().any(|c| !c.nullable);
            if !required && mode == CompletionMode::Minimal {
                continue;
            }
            for (pred, case) in p.case_pairs() {
                let Some(decl) = universe.predicate(pred.as_str()) else {
                    continue;
                };
                let bindings = rel.predicate_bindings(pred.as_str());
                // All other cases of this predicate must already be bound.
                let mut pattern = Pattern::predicate(pred.clone());
                let mut complete = true;
                for (other_case, _) in decl.cases() {
                    if other_case == case {
                        continue;
                    }
                    let Some(&opi) = bindings.get(other_case) else {
                        complete = false;
                        break;
                    };
                    match &values[rel.id_column(opi)] {
                        Some(Value::Atom(a)) => {
                            pattern = pattern.with(other_case.clone(), a.clone());
                        }
                        _ => {
                            complete = false;
                            break;
                        }
                    }
                }
                if !complete {
                    continue;
                }
                if let Some(found) = context.find(&pattern) {
                    if let Some(key) = found.get(case.as_str()) {
                        values[id_col] = Some(Value::Atom(key.clone()));
                        progress = true;
                        break;
                    }
                }
            }
        }
    }

    // Complete characteristic columns (and null the rest).
    for (pi, p) in rel.participants().iter().enumerate() {
        let base = rel.participant_offset(pi);
        let decl = universe
            .entity_type(p.entity_type.as_str())
            .expect("schema validated");
        let id = values[base].clone();
        for (ci, col) in p.columns.iter().enumerate() {
            if values[base + ci].is_some() {
                continue;
            }
            let derived = match &id {
                Some(Value::Atom(key)) if ci > 0 => lookup_characteristic(
                    context,
                    &p.entity_type,
                    decl.id_characteristic(),
                    key,
                    &col.characteristic,
                ),
                _ => None,
            };
            values[base + ci] = Some(match (mode, col.nullable, derived) {
                (CompletionMode::Minimal, true, _) => Value::Null,
                (_, _, Some(v)) => Value::Atom(v),
                (_, true, None) => Value::Null,
                (_, false, None) => return None,
            });
        }
    }

    let tuple = Tuple::new(values.into_iter().map(|v| v.expect("all columns set")));
    let facts = tuple_facts(rel, &tuple);
    if !facts.holds(fact) {
        return None;
    }
    // Never invent: every asserted fact must be true in the context or be
    // the fact itself.
    if facts.iter().any(|f| f != fact && !context.holds(f)) {
        return None;
    }
    if RelationState::check_tuple(schema, rel, &tuple).is_err() {
        return None;
    }
    Some(tuple)
}

/// Materializes a relational state equivalent to the given fact base:
/// the state-level mapping needed to *initialize* an external view over
/// an existing conceptual database (the ops-level translators keep it in
/// lockstep afterwards). Every fact is expressed, state-completed, in
/// every relation that can carry it; normalization then merges the
/// statements into canonical form.
pub fn materialize_relational_state(
    schema: &std::sync::Arc<RelationalSchema>,
    facts: &FactBase,
) -> Result<RelationState, TranslateError> {
    // A subset external schema (§1.2) materializes only the facts its
    // vocabulary can express.
    let facts = &schema.vocabulary().filter(facts);
    let mut state = RelationState::empty(std::sync::Arc::clone(schema));
    for fact in facts.iter() {
        let mut found = false;
        for rel in schema.relations() {
            if let Some(t) = express_fact(schema, rel, fact, facts, CompletionMode::StateCompleted)
            {
                state
                    .insert_raw(rel.name().as_str(), t)
                    .map_err(|e| TranslateError::VerificationFailed(e.to_string()))?;
                found = true;
            }
        }
        if !found {
            return Err(TranslateError::Inexpressible(format!(
                "no relation can assert fact {fact}"
            )));
        }
    }
    state.normalize();
    let check = state_equivalent(facts, &state);
    if !check.is_equivalent() {
        return Err(TranslateError::VerificationFailed(check.to_string()));
    }
    Ok(state)
}

/// Translates a graph operation into the equivalent relational
/// operation(s) for the given pair of equivalent states. Returns the
/// (possibly empty) composed operation.
///
/// The paper's §3.3.1 example — against Figure 3 the supervision
/// insertion becomes the literal Figure 7 tuple:
///
/// ```
/// use dme_core::translate::{graph_op_to_relational, CompletionMode};
/// use dme_graph::{fixtures as gfix, Association, EntityRef, GraphOp};
/// use dme_relation::fixtures as rfix;
/// use dme_value::Atom;
///
/// let op = GraphOp::InsertAssociation(Association::new(
///     "supervise",
///     [
///         ("agent", EntityRef::new("employee", Atom::str("G.Wayshum"))),
///         ("object", EntityRef::new("employee", Atom::str("T.Manhart"))),
///     ],
/// ));
/// let rel_ops = graph_op_to_relational(
///     &op,
///     &gfix::figure4_state(),
///     &rfix::figure3_state(),
///     CompletionMode::StateCompleted,
/// )
/// .unwrap();
/// let after = rel_ops[0].apply(&rfix::figure3_state()).unwrap();
/// assert_eq!(after, rfix::figure7_state());
/// ```
pub fn graph_op_to_relational(
    op: &GraphOp,
    graph_before: &GraphState,
    rel_before: &RelationState,
    mode: CompletionMode,
) -> Result<Vec<RelOp>, TranslateError> {
    // Relativize everything to the view's vocabulary: for a full view
    // this is the identity; for a subset external schema (§1.2) it is
    // what makes the translation well-defined.
    let schema = rel_before.schema();
    let vocab = schema.vocabulary();
    let eq = state_equivalent(&vocab.filter(&graph_before.to_facts()), rel_before);
    if !eq.is_equivalent() {
        return Err(TranslateError::StatesNotEquivalent(eq.to_string()));
    }
    let graph_after = op
        .apply(graph_before)
        .map_err(|e| TranslateError::SourceOpFailed(e.to_string()))?;
    let before_facts = vocab.filter(&graph_before.to_facts());
    let after_facts = vocab.filter(&graph_after.to_facts());
    let delta = before_facts.delta_to(&after_facts);

    let mut ops: Vec<RelOp> = Vec::new();

    if !delta.removed.is_empty() {
        let mut set = StatementSet::new();
        // Statements to re-insert after the deletion, when a heading
        // cannot deny a fact without denying innocent facts carried by
        // the same statement (e.g. Figure 9's single relation, where the
        // machine's row also asserts the operator's existence): delete
        // the whole stored statement and re-insert its remainders.
        let mut reinserts = StatementSet::new();
        let mut covered = FactBase::new();
        for fact in delta.removed.iter() {
            if covered.holds(fact) {
                continue;
            }
            let mut found = false;
            for rel in schema.relations() {
                if let Some(t) =
                    express_fact(schema, rel, fact, &before_facts, CompletionMode::Minimal)
                {
                    // A denial statement must only deny facts that are in
                    // fact being removed.
                    let stmt_facts = tuple_facts(rel, &t);
                    if stmt_facts.iter().all(|f| delta.removed.holds(f)) {
                        covered.extend(stmt_facts.iter().cloned());
                        set.add(rel.name().clone(), t);
                        found = true;
                        break;
                    }
                }
            }
            if !found {
                // Fallback: delete a stored statement asserting the fact,
                // re-inserting its remainders (the facts it carries that
                // are not being removed).
                for rel in schema.relations() {
                    let stored = rel_before
                        .tuples(rel.name().as_str())
                        .find(|u| tuple_facts(rel, u).holds(fact))
                        .cloned();
                    if let Some(u) = stored {
                        covered.extend(
                            tuple_facts(rel, &u)
                                .iter()
                                .filter(|f| delta.removed.holds(f))
                                .cloned(),
                        );
                        for r in dme_relation::ops::remainders(rel, &u, &delta.removed) {
                            reinserts.add(rel.name().clone(), r);
                        }
                        set.add(rel.name().clone(), u);
                        found = true;
                        break;
                    }
                }
            }
            if !found {
                return Err(TranslateError::Inexpressible(format!(
                    "no relation can deny fact {fact}"
                )));
            }
        }
        ops.push(RelOp::Delete(set));
        if !reinserts.is_empty() {
            ops.push(RelOp::Insert(reinserts));
        }
    }

    if !delta.added.is_empty() {
        let mut set = StatementSet::new();
        for fact in delta.added.iter() {
            let mut found = false;
            // Redundantly express the fact in every relation that can:
            // inter-relation agreement constraints require the same
            // statement to appear wherever it is expressible.
            for rel in schema.relations() {
                if let Some(t) = express_fact(schema, rel, fact, &after_facts, mode) {
                    set.add(rel.name().clone(), t);
                    found = true;
                }
            }
            if !found {
                return Err(TranslateError::Inexpressible(format!(
                    "no relation can assert fact {fact}"
                )));
            }
        }
        ops.push(RelOp::Insert(set));
    }

    // Verify: the synthesized composed operation realises the same delta
    // (within the view's vocabulary).
    let mut state = rel_before.clone();
    for rop in &ops {
        state = rop
            .apply(&state)
            .map_err(|e| TranslateError::VerificationFailed(e.to_string()))?;
    }
    let check = state_equivalent(&after_facts, &state);
    if !check.is_equivalent() {
        return Err(TranslateError::VerificationFailed(check.to_string()));
    }
    Ok(ops)
}

/// Attempts a **compile-time** translation of a graph operation
/// (§3.3.1: "the translation of operations from one application model to
/// an equivalent application model can be done independently of the
/// database state … such a translation could be done at
/// 'compile-time'").
///
/// The operation is translated against every supplied pair of equivalent
/// states; if all translations agree, that state-independent operation
/// is returned and may be cached and replayed against any equivalent
/// pair. `None` means the translation is state dependent over the
/// sampled pairs (as with `StateCompleted` completion across the
/// Figure 3 / Figure 8-premise pair) — fall back to per-state
/// translation.
pub fn compile_time_translation(
    op: &GraphOp,
    pairs: &[(GraphState, RelationState)],
    mode: CompletionMode,
) -> Result<Option<Vec<RelOp>>, TranslateError> {
    let mut first: Option<Vec<RelOp>> = None;
    for (g, r) in pairs {
        let ops = graph_op_to_relational(op, g, r, mode)?;
        match &first {
            None => first = Some(ops),
            Some(prev) if *prev == ops => {}
            Some(_) => return Ok(None),
        }
    }
    Ok(first)
}

/// Translates a relational operation into the equivalent graph
/// operation(s) for the given pair of equivalent states. Returns the
/// (possibly empty) composed operation — empty exactly when the
/// relational operation is the identity on this state (the idempotent
/// insertions of §3.3.1's state-dependence discussion).
pub fn relational_op_to_graph(
    op: &RelOp,
    rel_before: &RelationState,
    graph_before: &GraphState,
) -> Result<Vec<GraphOp>, TranslateError> {
    // For a subset view (§1.2), the view is compared against — and its
    // updates verified against — the conceptual facts *within the view's
    // vocabulary*; conceptual side-effects outside it (cascades onto
    // objects the view cannot see) are permitted.
    let vocab = rel_before.schema().vocabulary();
    let eq = state_equivalent(rel_before, &vocab.filter(&graph_before.to_facts()));
    if !eq.is_equivalent() {
        return Err(TranslateError::StatesNotEquivalent(eq.to_string()));
    }
    let rel_after = op
        .apply(rel_before)
        .map_err(|e| TranslateError::SourceOpFailed(e.to_string()))?;
    let before_facts = rel_before.to_facts();
    let after_facts = rel_after.to_facts();
    let delta = before_facts.delta_to(&after_facts);

    let schema = graph_before.schema();
    let universe = schema.universe();
    let mut ops: Vec<GraphOp> = Vec::new();
    let mut mid = graph_before.clone();

    if !delta.removed.is_empty() {
        // Seed the deletion unit from removed existence and association
        // facts; the cascade must account for exactly the removed facts.
        let mut seed_entities: Vec<EntityRef> = Vec::new();
        let mut seed_assocs: Vec<Association> = Vec::new();
        for fact in delta.removed.iter() {
            match classify(fact) {
                FactKind::Existence { entity_type } => {
                    let decl = universe.entity_type(entity_type.as_str()).ok_or_else(|| {
                        TranslateError::Inexpressible(format!("unknown entity type in fact {fact}"))
                    })?;
                    let key = fact.get(decl.id_characteristic().as_str()).ok_or_else(|| {
                        TranslateError::Inexpressible(format!(
                            "existence fact {fact} lacks identifying value"
                        ))
                    })?;
                    seed_entities.push(EntityRef::new(entity_type, key.clone()));
                }
                FactKind::Characteristic { .. } => {
                    // Covered by deleting the owning entity; checked below.
                }
                FactKind::Association { predicate } => {
                    let decl = universe.predicate(predicate.as_str()).ok_or_else(|| {
                        TranslateError::Inexpressible(format!("unknown predicate in fact {fact}"))
                    })?;
                    let mut roles = Vec::new();
                    for (case, et) in decl.cases() {
                        let key = fact.get(case.as_str()).ok_or_else(|| {
                            TranslateError::Inexpressible(format!(
                                "association fact {fact} lacks case {case}"
                            ))
                        })?;
                        roles.push((case.clone(), EntityRef::new(et.clone(), key.clone())));
                    }
                    seed_assocs.push(Association::new(predicate.clone(), roles));
                }
            }
        }
        let unit = deletion_unit(&mid, seed_entities, seed_assocs);
        // Choose the simplest operation realising the unit.
        let del = match (unit.entities.len(), unit.associations.len()) {
            (0, 0) => None,
            (0, 1) => Some(GraphOp::DeleteAssociation(unit.associations[0].clone())),
            (1, 0) => {
                let r = unit.entities[0]
                    .to_ref(schema)
                    .expect("entities from the state are well-formed");
                Some(GraphOp::DeleteEntity(r))
            }
            _ => Some(GraphOp::DeleteUnit(unit)),
        };
        if let Some(del) = del {
            mid = del
                .apply(&mid)
                .map_err(|e| TranslateError::VerificationFailed(e.to_string()))?;
            ops.push(del);
        }
    }

    if !delta.added.is_empty() {
        // New entities: existence facts plus their characteristic facts.
        let mut new_entities: Vec<Entity> = Vec::new();
        let mut new_assocs: Vec<Association> = Vec::new();
        for fact in delta.added.iter() {
            match classify(fact) {
                FactKind::Existence { entity_type } => {
                    let decl = universe.entity_type(entity_type.as_str()).ok_or_else(|| {
                        TranslateError::Inexpressible(format!("unknown entity type in fact {fact}"))
                    })?;
                    let key = fact.get(decl.id_characteristic().as_str()).ok_or_else(|| {
                        TranslateError::Inexpressible(format!(
                            "existence fact {fact} lacks identifying value"
                        ))
                    })?;
                    let mut characteristics = vec![(decl.id_characteristic().clone(), key.clone())];
                    for (c, _) in decl.non_id_characteristics() {
                        let v = lookup_characteristic(
                            &after_facts,
                            &entity_type,
                            decl.id_characteristic(),
                            key,
                            c,
                        )
                        .ok_or_else(|| {
                            TranslateError::Inexpressible(format!(
                                "new entity {entity_type}[{key}] lacks characteristic `{c}` (graph entities are total)"
                            ))
                        })?;
                        characteristics.push((c.clone(), v));
                    }
                    new_entities.push(Entity::new(entity_type, characteristics));
                }
                FactKind::Characteristic { entity_type, .. } => {
                    // Must belong to a new entity; adding a characteristic
                    // to an existing entity has no graph operation.
                    let decl = universe.entity_type(entity_type.as_str()).ok_or_else(|| {
                        TranslateError::Inexpressible(format!("unknown entity type in fact {fact}"))
                    })?;
                    let key = fact.get(decl.id_characteristic().as_str());
                    let is_new = key.is_some_and(|k| {
                        delta.added.holds(&dme_logic::vocab::existence(
                            &entity_type,
                            decl.id_characteristic(),
                            k.clone(),
                        ))
                    });
                    if !is_new {
                        return Err(TranslateError::Inexpressible(format!(
                            "characteristic fact {fact} for an already-existing entity"
                        )));
                    }
                }
                FactKind::Association { predicate } => {
                    let decl = universe.predicate(predicate.as_str()).ok_or_else(|| {
                        TranslateError::Inexpressible(format!("unknown predicate in fact {fact}"))
                    })?;
                    let mut roles = Vec::new();
                    for (case, et) in decl.cases() {
                        let key = fact.get(case.as_str()).ok_or_else(|| {
                            TranslateError::Inexpressible(format!(
                                "association fact {fact} lacks case {case}"
                            ))
                        })?;
                        roles.push((case.clone(), EntityRef::new(et.clone(), key.clone())));
                    }
                    new_assocs.push(Association::new(predicate.clone(), roles));
                }
            }
        }

        // Plan: free entities first, then units for totality-bound
        // entities, then remaining associations.
        let mut used_assocs: Vec<bool> = vec![false; new_assocs.len()];
        let mut unit_entities: Vec<Entity> = Vec::new();
        for e in new_entities {
            if schema.required_roles(e.entity_type.as_str()).is_empty() {
                ops.push(GraphOp::InsertEntity(e));
            } else {
                unit_entities.push(e);
            }
        }
        for e in unit_entities {
            let r = e.to_ref(schema).ok_or_else(|| {
                TranslateError::Inexpressible(format!("entity {e} lacks identifying value"))
            })?;
            let mut unit = SemanticUnit::new();
            for (pred, role) in schema.required_roles(e.entity_type.as_str()) {
                let found = new_assocs.iter().enumerate().find(|(i, a)| {
                    !used_assocs[*i]
                        && a.predicate == pred
                        && a.role(role.as_str()).is_some_and(|x| *x == r)
                });
                match found {
                    Some((i, a)) => {
                        used_assocs[i] = true;
                        unit = unit.with_association(a.clone());
                    }
                    None => {
                        return Err(TranslateError::Inexpressible(format!(
                        "new entity {r} requires `{pred}:{role}` but no such association is added"
                    )))
                    }
                }
            }
            unit = unit.with_entity(e);
            ops.push(GraphOp::InsertUnit(unit));
        }
        for (i, a) in new_assocs.into_iter().enumerate() {
            if !used_assocs[i] {
                ops.push(GraphOp::InsertAssociation(a));
            }
        }

        // Apply the planned insertions.
        for gop in ops.iter().skip_while(|o| {
            matches!(
                o,
                GraphOp::DeleteAssociation(_) | GraphOp::DeleteEntity(_) | GraphOp::DeleteUnit(_)
            )
        }) {
            mid = gop
                .apply(&mid)
                .map_err(|e| TranslateError::VerificationFailed(e.to_string()))?;
        }
    }

    let check = state_equivalent(&rel_after, &vocab.filter(&mid.to_facts()));
    if !check.is_equivalent() {
        return Err(TranslateError::VerificationFailed(check.to_string()));
    }
    Ok(ops)
}

/// [`graph_op_to_relational`], timed under a `translate/graph_to_rel`
/// span with the emitted operations charged to
/// [`Counter::OpsTranslated`](dme_obs::Counter::OpsTranslated).
pub fn graph_op_to_relational_observed(
    op: &GraphOp,
    graph_before: &GraphState,
    rel_before: &RelationState,
    mode: CompletionMode,
    obs: &dme_obs::Observer,
) -> Result<Vec<RelOp>, TranslateError> {
    let _span = obs.span("translate/graph_to_rel");
    let ops = graph_op_to_relational(op, graph_before, rel_before, mode)?;
    obs.add(dme_obs::Counter::OpsTranslated, ops.len() as u64);
    Ok(ops)
}

/// [`relational_op_to_graph`], timed under a `translate/rel_to_graph`
/// span with the emitted operations charged to
/// [`Counter::OpsTranslated`](dme_obs::Counter::OpsTranslated).
pub fn relational_op_to_graph_observed(
    op: &RelOp,
    rel_before: &RelationState,
    graph_before: &GraphState,
    obs: &dme_obs::Observer,
) -> Result<Vec<GraphOp>, TranslateError> {
    let _span = obs.span("translate/rel_to_graph");
    let ops = relational_op_to_graph(op, rel_before, graph_before)?;
    obs.add(dme_obs::Counter::OpsTranslated, ops.len() as u64);
    Ok(ops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dme_graph::fixtures as gfix;
    use dme_relation::fixtures as rfix;
    use dme_value::{tuple, Atom};

    fn emp(name: &str) -> EntityRef {
        EntityRef::new("employee", Atom::str(name))
    }

    fn machine(number: &str) -> EntityRef {
        EntityRef::new("machine", Atom::str(number))
    }

    fn gw_tm_supervision() -> Association {
        Association::new(
            "supervise",
            [("agent", emp("G.Wayshum")), ("object", emp("T.Manhart"))],
        )
    }

    #[test]
    fn figure4_and_figure3_are_state_equivalent() {
        let r = state_equivalent(&gfix::figure4_state(), &rfix::figure3_state());
        assert!(r.is_equivalent(), "{r}");
    }

    #[test]
    fn materialization_rebuilds_figure3_from_figure4() {
        let schema = std::sync::Arc::clone(rfix::figure3_state().schema());
        let facts = gfix::figure4_state().to_facts();
        let state = materialize_relational_state(&schema, &facts).unwrap();
        assert_eq!(state, rfix::figure3_state());
    }

    #[test]
    fn materialization_rebuilds_figure9_view() {
        let schema = std::sync::Arc::clone(rfix::figure9_state().schema());
        let facts = gfix::figure4_state().to_facts();
        let state = materialize_relational_state(&schema, &facts).unwrap();
        assert_eq!(state, rfix::figure9_state());
    }

    #[test]
    fn materialization_of_empty_facts_is_the_empty_state() {
        let schema = std::sync::Arc::clone(rfix::figure3_state().schema());
        let state = materialize_relational_state(&schema, &FactBase::new()).unwrap();
        assert!(state.is_empty());
    }

    #[test]
    fn figure6_insertion_translates_to_figure7_tuple_state_completed() {
        // The paper's §3.3.1 example, literal form: the inserted tuple is
        // (G.Wayshum, T.Manhart, NZ745) — values "dependent upon the
        // database state of Figure 3".
        let ops = graph_op_to_relational(
            &GraphOp::InsertAssociation(gw_tm_supervision()),
            &gfix::figure4_state(),
            &rfix::figure3_state(),
            CompletionMode::StateCompleted,
        )
        .unwrap();
        assert_eq!(ops.len(), 1);
        let RelOp::Insert(set) = &ops[0] else {
            panic!("expected insert")
        };
        let tuples: Vec<_> = set.tuples("Jobs").cloned().collect();
        assert_eq!(tuples, vec![tuple!["G.Wayshum", "T.Manhart", "NZ745"]]);
        // And the result is Figure 7.
        assert_eq!(
            ops[0].apply(&rfix::figure3_state()).unwrap(),
            rfix::figure7_state()
        );
    }

    #[test]
    fn figure8_same_graph_op_different_relational_tuple() {
        // "Suppose that the semantic graph state of Figure 4 had no
        // operation association involving T.Manhart. This would not
        // change the graph operation needed… [but] would change which
        // tuple needed to be added" — Figure 8's null-bearing tuple.
        let ops = graph_op_to_relational(
            &GraphOp::InsertAssociation(gw_tm_supervision()),
            &gfix::figure8_premise_state(),
            &rfix::figure8_premise_state(),
            CompletionMode::StateCompleted,
        )
        .unwrap();
        assert_eq!(ops.len(), 1);
        let RelOp::Insert(set) = &ops[0] else {
            panic!("expected insert")
        };
        let tuples: Vec<_> = set.tuples("Jobs").cloned().collect();
        assert_eq!(tuples, vec![tuple!["G.Wayshum", "T.Manhart", Value::Null]]);
        assert_eq!(
            ops[0].apply(&rfix::figure8_premise_state()).unwrap(),
            rfix::figure8_state()
        );
    }

    #[test]
    fn minimal_mode_produces_one_state_independent_tuple() {
        // In Minimal mode the same tuple is inserted in both states —
        // normalization absorbs the state dependence.
        for (g, r) in [
            (gfix::figure4_state(), rfix::figure3_state()),
            (gfix::figure8_premise_state(), rfix::figure8_premise_state()),
        ] {
            let ops = graph_op_to_relational(
                &GraphOp::InsertAssociation(gw_tm_supervision()),
                &g,
                &r,
                CompletionMode::Minimal,
            )
            .unwrap();
            let RelOp::Insert(set) = &ops[0] else {
                panic!("expected insert")
            };
            let tuples: Vec<_> = set.tuples("Jobs").cloned().collect();
            assert_eq!(tuples, vec![tuple!["G.Wayshum", "T.Manhart", Value::Null]]);
        }
    }

    #[test]
    fn machine_unit_insertion_translates_to_multi_relation_insert() {
        let unit = SemanticUnit::new()
            .with_entity(Entity::new(
                "machine",
                [("number", Atom::str("NZ745")), ("type", Atom::str("lathe"))],
            ))
            .with_association(Association::new(
                "operate",
                [("agent", emp("T.Manhart")), ("object", machine("NZ745"))],
            ));
        let ops = graph_op_to_relational(
            &GraphOp::InsertUnit(unit),
            &gfix::figure8_premise_state(),
            &rfix::figure8_premise_state(),
            CompletionMode::Minimal,
        )
        .unwrap();
        assert_eq!(ops.len(), 1);
        let RelOp::Insert(set) = &ops[0] else {
            panic!("expected insert")
        };
        assert!(set.tuples("Operate").count() > 0);
        assert!(set.tuples("Jobs").count() > 0);
        assert_eq!(
            ops[0].apply(&rfix::figure8_premise_state()).unwrap(),
            rfix::figure3_state()
        );
    }

    #[test]
    fn machine_unit_deletion_translates_to_cascading_delete() {
        let unit = deletion_unit(&gfix::figure4_state(), [machine("NZ745")], []);
        let ops = graph_op_to_relational(
            &GraphOp::DeleteUnit(unit),
            &gfix::figure4_state(),
            &rfix::figure3_state(),
            CompletionMode::Minimal,
        )
        .unwrap();
        assert_eq!(ops.len(), 1);
        assert!(matches!(ops[0], RelOp::Delete(_)));
        assert_eq!(
            ops[0].apply(&rfix::figure3_state()).unwrap(),
            rfix::figure8_premise_state()
        );
    }

    #[test]
    fn erroring_graph_op_reports_source_failure() {
        // Inserting an existing association errors on the graph side.
        let existing = Association::new(
            "supervise",
            [("agent", emp("G.Wayshum")), ("object", emp("C.Gershag"))],
        );
        let err = graph_op_to_relational(
            &GraphOp::InsertAssociation(existing),
            &gfix::figure4_state(),
            &rfix::figure3_state(),
            CompletionMode::Minimal,
        )
        .unwrap_err();
        assert!(matches!(err, TranslateError::SourceOpFailed(_)));
    }

    #[test]
    fn translation_requires_equivalent_states() {
        let err = graph_op_to_relational(
            &GraphOp::InsertAssociation(gw_tm_supervision()),
            &gfix::figure8_premise_state(),
            &rfix::figure3_state(),
            CompletionMode::Minimal,
        )
        .unwrap_err();
        assert!(matches!(err, TranslateError::StatesNotEquivalent(_)));
    }

    #[test]
    fn relational_insert_translates_to_insert_association() {
        let op = RelOp::insert("Jobs", [tuple!["G.Wayshum", "T.Manhart", Value::Null]]);
        let gops =
            relational_op_to_graph(&op, &rfix::figure3_state(), &gfix::figure4_state()).unwrap();
        assert_eq!(gops, vec![GraphOp::InsertAssociation(gw_tm_supervision())]);
    }

    #[test]
    fn idempotent_relational_insert_translates_to_empty_composition() {
        // Inserting an already-true statement is the identity on the
        // relation side; its graph equivalent is the empty composition —
        // and only state-dependently so (§3.3.1).
        let op = RelOp::insert("Jobs", [tuple![Value::Null, "T.Manhart", "NZ745"]]);
        let gops =
            relational_op_to_graph(&op, &rfix::figure3_state(), &gfix::figure4_state()).unwrap();
        assert!(gops.is_empty());
    }

    #[test]
    fn relational_combined_insert_translates_to_figure6() {
        let op = RelOp::insert("Jobs", [tuple!["G.Wayshum", "T.Manhart", "NZ745"]]);
        let gops =
            relational_op_to_graph(&op, &rfix::figure3_state(), &gfix::figure4_state()).unwrap();
        assert_eq!(gops.len(), 1);
        let out = GraphOp::apply_all(&gops, &gfix::figure4_state()).unwrap();
        assert_eq!(out, gfix::figure6_state());
    }

    #[test]
    fn relational_employee_insert_translates_to_insert_entity() {
        let premise_rel = {
            // Figure 3 without G.Wayshum anywhere: build from scratch.
            let op = RelOp::delete_set(
                StatementSet::new()
                    .with("Employees", tuple!["G.Wayshum", 50])
                    .with("Jobs", tuple!["G.Wayshum", "C.Gershag", Value::Null]),
            );
            op.apply(&rfix::figure3_state()).unwrap()
        };
        let premise_graph = {
            let ops = vec![
                GraphOp::DeleteAssociation(Association::new(
                    "supervise",
                    [("agent", emp("G.Wayshum")), ("object", emp("C.Gershag"))],
                )),
                GraphOp::DeleteEntity(emp("G.Wayshum")),
            ];
            GraphOp::apply_all(&ops, &gfix::figure4_state()).unwrap()
        };
        let op = RelOp::insert("Employees", [tuple!["G.Wayshum", 50]]);
        let gops = relational_op_to_graph(&op, &premise_rel, &premise_graph).unwrap();
        assert_eq!(gops.len(), 1);
        assert!(matches!(gops[0], GraphOp::InsertEntity(_)));
    }

    #[test]
    fn relational_machine_insert_translates_to_insert_unit() {
        let op = RelOp::insert_set(
            StatementSet::new()
                .with("Operate", tuple!["T.Manhart", "NZ745", "lathe"])
                .with("Jobs", tuple![Value::Null, "T.Manhart", "NZ745"]),
        );
        let gops = relational_op_to_graph(
            &op,
            &rfix::figure8_premise_state(),
            &gfix::figure8_premise_state(),
        )
        .unwrap();
        assert_eq!(gops.len(), 1);
        assert!(matches!(&gops[0], GraphOp::InsertUnit(u) if u.len() == 2));
        let out = GraphOp::apply_all(&gops, &gfix::figure8_premise_state()).unwrap();
        assert_eq!(out, gfix::figure4_state());
    }

    #[test]
    fn relational_delete_translates_to_delete_unit() {
        let op = RelOp::delete("Jobs", [tuple![Value::Null, "T.Manhart", "NZ745"]]);
        let gops =
            relational_op_to_graph(&op, &rfix::figure3_state(), &gfix::figure4_state()).unwrap();
        assert_eq!(gops.len(), 1);
        assert!(matches!(&gops[0], GraphOp::DeleteUnit(_)));
        let out = GraphOp::apply_all(&gops, &gfix::figure4_state()).unwrap();
        assert_eq!(out, gfix::figure8_premise_state());
    }

    #[test]
    fn relational_supervision_delete_translates_to_delete_association() {
        let op = RelOp::delete("Jobs", [tuple!["G.Wayshum", "T.Manhart", Value::Null]]);
        let gops =
            relational_op_to_graph(&op, &rfix::figure7_state(), &gfix::figure6_state()).unwrap();
        assert_eq!(gops, vec![GraphOp::DeleteAssociation(gw_tm_supervision())]);
    }

    #[test]
    fn compile_time_translation_minimal_mode_succeeds() {
        // §3.3.1: with Minimal completion the supervision insertion is
        // state independent — one relational operation serves both the
        // Figure 3 pair and the Figure 8 premise pair.
        let pairs = vec![
            (gfix::figure4_state(), rfix::figure3_state()),
            (gfix::figure8_premise_state(), rfix::figure8_premise_state()),
        ];
        let gop = GraphOp::InsertAssociation(gw_tm_supervision());
        let compiled = compile_time_translation(&gop, &pairs, CompletionMode::Minimal).unwrap();
        let ops = compiled.expect("minimal completion is state independent");
        // Replaying the compiled operation on either pair stays correct.
        for (g, r) in &pairs {
            let g_after = gop.apply(g).unwrap();
            let r_after = RelOp::apply_all(&ops, r).unwrap();
            assert!(state_equivalent(&g_after, &r_after).is_equivalent());
        }
    }

    #[test]
    fn compile_time_translation_state_completed_fails() {
        // With StateCompleted completion the inserted tuples differ
        // (Figure 7 vs Figure 8), so no compile-time translation exists.
        let pairs = vec![
            (gfix::figure4_state(), rfix::figure3_state()),
            (gfix::figure8_premise_state(), rfix::figure8_premise_state()),
        ];
        let gop = GraphOp::InsertAssociation(gw_tm_supervision());
        let compiled =
            compile_time_translation(&gop, &pairs, CompletionMode::StateCompleted).unwrap();
        assert!(compiled.is_none());
    }

    #[test]
    fn compile_time_translation_propagates_errors() {
        let pairs = vec![(gfix::figure8_premise_state(), rfix::figure3_state())];
        let gop = GraphOp::InsertAssociation(gw_tm_supervision());
        assert!(matches!(
            compile_time_translation(&gop, &pairs, CompletionMode::Minimal),
            Err(TranslateError::StatesNotEquivalent(_))
        ));
    }

    #[test]
    fn round_trip_preserves_equivalence() {
        // graph op → relational ops → re-translate back: both sides land
        // on equivalent states.
        let gop = GraphOp::InsertAssociation(gw_tm_supervision());
        let rops = graph_op_to_relational(
            &gop,
            &gfix::figure4_state(),
            &rfix::figure3_state(),
            CompletionMode::StateCompleted,
        )
        .unwrap();
        let mut rel = rfix::figure3_state();
        let mut graph = gfix::figure4_state();
        for rop in &rops {
            let gops = relational_op_to_graph(rop, &rel, &graph).unwrap();
            rel = rop.apply(&rel).unwrap();
            graph = GraphOp::apply_all(&gops, &graph).unwrap();
        }
        assert!(state_equivalent(&rel, &graph).is_equivalent());
        assert_eq!(graph, gfix::figure6_state());
    }
}
