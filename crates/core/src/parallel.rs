//! Parallel, memoized, budgeted equivalence checking.
//!
//! The sequential checkers in [`crate::equiv`] are the reference
//! semantics; this module is the production driver. It fans the three
//! expensive phases of a check across worker threads with deterministic
//! results:
//!
//! 1. **closure exploration** — level-synchronous BFS over the valid
//!    states, each frontier chunked across workers by an atomic cursor;
//! 2. **canonical pairing** — every state's fact base is compiled
//!    through a shared [`FactInterner`], so each state is compiled once
//!    per engine run (and once per *grid* in a data-model check, where
//!    the same states recur across model pairs);
//! 3. **the operation-pairing frontier** — behaviour signatures,
//!    composition closures, per-state reachability and the final
//!    unmatched-operation scan all run chunked across workers.
//!
//! Determinism: workers claim indices from a monotonic atomic cursor and
//! tag every result with its index; results are merged and re-sorted, so
//! scheduling never changes the answer. With
//! [`ParallelConfig::early_exit`], the first counterexample cancels
//! outstanding work via an atomic flag — and because the cursor is
//! monotonic and claimed items always finish, the reported witness is
//! provably the *lowest-indexed* one, the same witness every run.
//!
//! Every state application, signature composition and reachability
//! expansion is charged against a [`CheckBudget`]; blowing the node or
//! time limit yields [`Verdict::BudgetExhausted`] instead of an answer,
//! never a wrong answer.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::hash::Hash;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use dme_logic::{FactBase, ToFacts};
use dme_obs::{Counter, Observer};

use crate::arena::{Closure, StateId};
use crate::bitset::BitSet;
use crate::canon::FactInterner;
use crate::equiv::{compose, identity_signature, reach_from, CheckError, EquivKind, Signature};
use crate::model::{ClosureTooLarge, FiniteModel};

/// Exploration limits for a check. The default is unlimited.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CheckBudget {
    /// Maximum number of nodes — state applications, signature
    /// compositions and reachability expansions — explored.
    pub max_nodes: u64,
    /// Wall-clock limit for the whole check.
    pub max_time: Option<Duration>,
}

impl CheckBudget {
    /// No limits.
    pub const UNLIMITED: CheckBudget = CheckBudget {
        max_nodes: u64::MAX,
        max_time: None,
    };

    /// A node-count limit.
    pub fn nodes(max_nodes: u64) -> Self {
        CheckBudget {
            max_nodes,
            max_time: None,
        }
    }

    /// A wall-clock limit.
    pub fn time(limit: Duration) -> Self {
        CheckBudget {
            max_nodes: u64::MAX,
            max_time: Some(limit),
        }
    }

    /// Adds a wall-clock limit to this budget.
    pub fn and_time(mut self, limit: Duration) -> Self {
        self.max_time = Some(limit);
        self
    }
}

impl Default for CheckBudget {
    fn default() -> Self {
        CheckBudget::UNLIMITED
    }
}

/// Configuration of the parallel engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParallelConfig {
    /// Worker threads; `0` uses the machine's available parallelism.
    pub threads: usize,
    /// Exploration limits.
    pub budget: CheckBudget,
    /// Stop at the first (lowest-indexed) counterexample instead of
    /// collecting the full witness set.
    pub early_exit: bool,
}

impl ParallelConfig {
    /// `threads` workers, unlimited budget, full witness sets.
    pub fn with_threads(threads: usize) -> Self {
        ParallelConfig {
            threads,
            ..Default::default()
        }
    }

    /// Builder: sets the budget.
    pub fn budget(mut self, budget: CheckBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Builder: enables counterexample early exit.
    pub fn early_exit(mut self) -> Self {
        self.early_exit = true;
        self
    }
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig {
            threads: 0,
            budget: CheckBudget::UNLIMITED,
            early_exit: false,
        }
    }
}

/// Which model a witness belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Side {
    /// The first (`m`) model or model set.
    Left,
    /// The second (`n`) model or model set.
    Right,
}

impl fmt::Display for Side {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Side::Left => write!(f, "left"),
            Side::Right => write!(f, "right"),
        }
    }
}

/// One counterexample: an operation (or, for data-model checks, an
/// application model) with no equivalent on the other side.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Witness {
    /// The side the unmatched item lives on.
    pub side: Side,
    /// Display form of the unmatched operation (application-model
    /// tiers) or the unmatched application model's name (data-model
    /// tier).
    pub label: String,
}

impl fmt::Display for Witness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} `{}` has no equivalent", self.side, self.label)
    }
}

/// The structured outcome of a parallel check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// The models are equivalent under the requested definition.
    Equivalent {
        /// Number of equivalent state pairs underlying the check (for
        /// data-model checks, the number of model pairs in the grid).
        state_pairs: usize,
    },
    /// The models are not equivalent; the witnesses prove it.
    Counterexample {
        /// Number of equivalent state pairs underlying the check.
        state_pairs: usize,
        /// Unmatched operations/models, left side first, in operation
        /// order — or just the lowest-indexed one under early exit.
        witnesses: Vec<Witness>,
    },
    /// The budget ran out before the check could decide.
    BudgetExhausted {
        /// Nodes explored before giving up.
        nodes_explored: u64,
        /// Wall-clock time spent before giving up.
        elapsed: Duration,
    },
}

impl Verdict {
    /// Whether the verdict proves equivalence.
    pub fn is_equivalent(&self) -> bool {
        matches!(self, Verdict::Equivalent { .. })
    }

    /// The witnesses of non-equivalence (empty unless
    /// [`Verdict::Counterexample`]).
    pub fn witnesses(&self) -> &[Witness] {
        match self {
            Verdict::Counterexample { witnesses, .. } => witnesses,
            _ => &[],
        }
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Equivalent { state_pairs } => {
                write!(f, "equivalent over {state_pairs} state pairs")
            }
            Verdict::Counterexample {
                state_pairs,
                witnesses,
            } => {
                write!(f, "NOT equivalent over {state_pairs} state pairs:")?;
                for w in witnesses {
                    write!(f, "\n  {w}")?;
                }
                Ok(())
            }
            Verdict::BudgetExhausted {
                nodes_explored,
                elapsed,
            } => write!(
                f,
                "budget exhausted after {nodes_explored} nodes in {elapsed:?}"
            ),
        }
    }
}

/// Shared run state: the cancellation flag, node meter, deadline, and
/// the run's [`Observer`] (disabled observers cost one branch per
/// charge).
struct EngineCtx {
    cancel: AtomicBool,
    exhausted: AtomicBool,
    nodes: AtomicU64,
    max_nodes: u64,
    deadline: Option<Instant>,
    started: Instant,
    obs: Observer,
}

impl EngineCtx {
    fn new(budget: &CheckBudget, obs: Observer) -> Self {
        let started = Instant::now();
        EngineCtx {
            cancel: AtomicBool::new(false),
            exhausted: AtomicBool::new(false),
            nodes: AtomicU64::new(0),
            max_nodes: budget.max_nodes,
            deadline: budget.max_time.map(|d| started + d),
            started,
            obs,
        }
    }

    fn stopped(&self) -> bool {
        self.cancel.load(Ordering::Relaxed)
    }

    fn blow(&self) {
        // Only the first blow counts as the budget trip; racing workers
        // all observe `exhausted` but only one swaps it in.
        if !self.exhausted.swap(true, Ordering::Relaxed) {
            self.obs.add(Counter::BudgetTrips, 1);
        }
        self.cancel.store(true, Ordering::Relaxed);
    }

    /// Charges `n` nodes; `false` means stop (budget blown or a
    /// counterexample already cancelled the run).
    fn charge(&self, n: u64) -> bool {
        if self.stopped() {
            return false;
        }
        self.obs.add(Counter::NodesExpanded, n);
        let total = self.nodes.fetch_add(n, Ordering::Relaxed).saturating_add(n);
        if total > self.max_nodes || self.deadline.is_some_and(|d| Instant::now() >= d) {
            self.blow();
            return false;
        }
        true
    }

    fn exhausted_verdict(&self) -> Verdict {
        Verdict::BudgetExhausted {
            nodes_explored: self.nodes.load(Ordering::Relaxed),
            elapsed: self.started.elapsed(),
        }
    }
}

fn resolve_threads(requested: usize) -> usize {
    let available = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    // Explicit requests are clamped to the machine too: oversubscribing
    // a smaller box only adds scheduling noise (and made `t4` *slower*
    // than `t1` on single-core hosts).
    let n = if requested == 0 {
        available
    } else {
        requested.min(available)
    };
    n.clamp(1, 64)
}

/// Below this many work items a phase runs on the calling thread:
/// spawning a worker pool costs more than the work itself for tiny
/// closures and frontiers.
const SEQ_FALLBACK_MIN_WORK: usize = 256;

fn effective_threads(threads: usize, work_items: usize) -> usize {
    if work_items < SEQ_FALLBACK_MIN_WORK {
        1
    } else {
        threads
    }
}

/// The work-stealing primitive: workers claim indices `0..len` from a
/// monotonic atomic cursor and apply `work` to each claimed index.
/// `work` returns `(emit, keep_going)`; emitted values are tagged with
/// their index, merged and sorted, making the output independent of
/// scheduling. Because the cursor is monotonic and a claimed index is
/// always evaluated, every index below any evaluated index is also
/// evaluated — the invariant the early-exit minimum-witness rule rests
/// on.
fn drive<R, F>(threads: usize, len: usize, work: F) -> Vec<(usize, R)>
where
    R: Send,
    F: Fn(usize) -> (Option<R>, bool) + Sync,
{
    if len == 0 {
        return Vec::new();
    }
    if threads <= 1 || len == 1 {
        let mut out = Vec::new();
        for i in 0..len {
            let (emit, keep_going) = work(i);
            if let Some(r) = emit {
                out.push((i, r));
            }
            if !keep_going {
                break;
            }
        }
        return out;
    }
    let cursor = AtomicUsize::new(0);
    let sink: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for _ in 0..threads.min(len) {
            scope.spawn(|| {
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= len {
                        break;
                    }
                    let (emit, keep_going) = work(i);
                    if let Some(r) = emit {
                        local.push((i, r));
                    }
                    if !keep_going {
                        break;
                    }
                }
                sink.lock().unwrap_or_else(|e| e.into_inner()).extend(local);
            });
        }
    });
    let mut out = sink.into_inner().unwrap_or_else(|e| e.into_inner());
    out.sort_unstable_by_key(|(i, _)| *i);
    out
}

/// One operation's outcome at a frontier state, as seen by a worker:
/// either an error transition, a state already in the shared arena, or a
/// genuinely (so far) new successor carried back for interning.
enum Probe<S> {
    Error,
    Known(StateId),
    New(u64, S),
}

/// Level-synchronous parallel closure enumeration over the state arena.
/// `Ok(None)` means the budget stopped the exploration.
///
/// Workers expand a frontier level through the delta hook: each claimed
/// state is cloned once into a scratch buffer, every operation is
/// applied as an undoable delta, and the *shared* arena is probed by
/// fingerprint — successors are only materialized (cloned out of the
/// scratch) when the probe misses. Discoveries are merged on the calling
/// thread in `(state, op)` order, so state IDs land in breadth-first
/// discovery order no matter how many workers ran — the same IDs the
/// sequential enumeration assigns.
fn explore_closure<S, O>(
    model: &FiniteModel<S, O>,
    cap: usize,
    threads: usize,
    ctx: &EngineCtx,
) -> Result<Option<Closure<S>>, ClosureTooLarge>
where
    S: Clone + Ord + ToFacts + Send + Sync,
    O: Clone + Send + Sync,
{
    let _span = ctx.obs.span_with("par/closure", || model.name().to_owned());
    let _timer = ctx.obs.time(dme_obs::Metric::ClosureLatency);
    let mut arena = crate::arena::StateArena::new();
    arena.intern(
        model.state_fingerprint(model.initial()),
        model.initial().clone(),
    );
    let mut transitions: Vec<Vec<Option<StateId>>> = Vec::new();
    let mut frontier: Vec<StateId> = vec![StateId::from_index(0)];
    let op_count = model.ops().len() as u64;
    let probe_hits = AtomicU64::new(0);
    while !frontier.is_empty() {
        let level_threads = effective_threads(threads, frontier.len() * model.ops().len());
        let expanded = {
            let _expand = ctx.obs.span("closure/expand");
            let arena_ref = &arena;
            drive(level_threads, frontier.len(), |i| {
                if !ctx.charge(op_count) {
                    return (None, false);
                }
                let mut scratch = arena_ref.get(frontier[i]).clone();
                let row: Vec<Probe<S>> = model
                    .ops()
                    .iter()
                    .map(|op| match model.expand_delta(op, &mut scratch) {
                        None => Probe::Error,
                        Some(undo) => {
                            let fp = model.state_fingerprint(&scratch);
                            let probe = match arena_ref.probe(fp, &scratch) {
                                Some(id) => {
                                    probe_hits.fetch_add(1, Ordering::Relaxed);
                                    Probe::Known(id)
                                }
                                // Deferred validation runs on the worker,
                                // so only valid candidates reach the
                                // merge; invalid ones are the error state.
                                None if !model.validate_candidate(&scratch) => Probe::Error,
                                None => Probe::New(fp, scratch.clone()),
                            };
                            undo(&mut scratch);
                            probe
                        }
                    })
                    .collect();
                (Some(row), true)
            })
        };
        if expanded.len() != frontier.len() {
            return Ok(None);
        }
        // Sequential merge in (state, op) order: IDs are deterministic,
        // and same-level duplicates collapse through the arena's
        // first-insert-wins interning.
        let mut next: Vec<StateId> = Vec::new();
        for (_, row) in expanded {
            let mut out: Vec<Option<StateId>> = Vec::with_capacity(row.len());
            for probe in row {
                match probe {
                    Probe::Error => out.push(None),
                    Probe::Known(id) => out.push(Some(id)),
                    Probe::New(fp, state) => {
                        if arena.probe(fp, &state).is_none() && arena.len() >= cap {
                            return Err(ClosureTooLarge {
                                model: model.name().to_owned(),
                                cap,
                            });
                        }
                        let (id, new) = arena.intern(fp, state);
                        if new {
                            next.push(id);
                        }
                        out.push(Some(id));
                    }
                }
            }
            transitions.push(out);
        }
        frontier = next;
    }
    arena.add_probe_stats(probe_hits.load(Ordering::Relaxed), 0);
    let stats = arena.stats();
    ctx.obs.add(Counter::ArenaHits, stats.hits);
    ctx.obs.add(Counter::ArenaMisses, stats.misses);
    ctx.obs.add(Counter::StatesEnumerated, arena.len() as u64);
    Ok(Some(Closure { arena, transitions }))
}

/// A paired grid of state IDs: pair index → state ID per side, plus the
/// inverse rank tables (state index → pair index).
pub(crate) struct PairedIds {
    pub(crate) pairs: usize,
    pub(crate) m_by_pair: Vec<StateId>,
    pub(crate) n_by_pair: Vec<StateId>,
    pub(crate) m_rank: Vec<u32>,
    pub(crate) n_rank: Vec<u32>,
}

/// Parallel fact compilation through the interner, then the §3.3.1
/// pairing checks (injective per side, onto across sides). `Ok(None)`
/// means the budget stopped the run.
fn pair_with_interner<MS, NS>(
    m_closure: &Closure<MS>,
    n_closure: &Closure<NS>,
    threads: usize,
    ctx: &EngineCtx,
    m_interner: &FactInterner<MS>,
    n_interner: &FactInterner<NS>,
) -> Result<Option<PairedIds>, CheckError>
where
    MS: Clone + Ord + Hash + ToFacts + Send + Sync,
    NS: Clone + Ord + Hash + ToFacts + Send + Sync,
{
    fn compile_side<S>(
        closure: &Closure<S>,
        threads: usize,
        ctx: &EngineCtx,
        interner: &FactInterner<S>,
        side: &str,
    ) -> Result<Option<BTreeMap<Arc<FactBase>, StateId>>, CheckError>
    where
        S: Clone + Ord + Hash + ToFacts + Send + Sync,
    {
        let states = closure.arena.states();
        let compiled = drive(
            effective_threads(threads, states.len()),
            states.len(),
            |i| {
                if ctx.stopped() {
                    return (None, false);
                }
                (Some(interner.compile_observed(&states[i], &ctx.obs)), true)
            },
        );
        if compiled.len() != states.len() {
            return Ok(None);
        }
        ctx.obs.add(Counter::StatesCompiled, states.len() as u64);
        let mut by_facts: BTreeMap<Arc<FactBase>, StateId> = BTreeMap::new();
        for (i, facts) in compiled {
            if by_facts.insert(facts, StateId::from_index(i)).is_some() {
                return Err(CheckError::Pairing(format!(
                    "two {side} states share a fact base (compilation not injective)"
                )));
            }
        }
        Ok(Some(by_facts))
    }

    let _span = ctx.obs.span("par/pairing");
    ctx.obs.add(Counter::PairingChecks, 1);
    let Some(m_by_facts) = compile_side(m_closure, threads, ctx, m_interner, "left")? else {
        return Ok(None);
    };
    let Some(n_by_facts) = compile_side(n_closure, threads, ctx, n_interner, "right")? else {
        return Ok(None);
    };
    if m_by_facts.len() != n_by_facts.len() || !m_by_facts.keys().eq(n_by_facts.keys()) {
        let only_left = m_by_facts
            .keys()
            .filter(|k| !n_by_facts.contains_key(*k))
            .count();
        let only_right = n_by_facts
            .keys()
            .filter(|k| !m_by_facts.contains_key(*k))
            .count();
        return Err(CheckError::Pairing(format!(
            "state sets are not onto: {only_left} application states expressible only on the left, {only_right} only on the right"
        )));
    }
    let m_by_pair: Vec<StateId> = m_by_facts.into_values().collect();
    let n_by_pair: Vec<StateId> = n_by_facts.into_values().collect();
    let mut m_rank = vec![0u32; m_closure.len()];
    for (p, sid) in m_by_pair.iter().enumerate() {
        m_rank[sid.index()] = p as u32;
    }
    let mut n_rank = vec![0u32; n_closure.len()];
    for (p, sid) in n_by_pair.iter().enumerate() {
        n_rank[sid.index()] = p as u32;
    }
    Ok(Some(PairedIds {
        pairs: m_by_pair.len(),
        m_by_pair,
        n_by_pair,
        m_rank,
        n_rank,
    }))
}

/// Behaviour signatures, one worker item per operation — a pure relabel
/// of the transition table memoized during closure exploration: no
/// operation is re-applied to any state.
fn signatures_parallel<S: Sync>(
    closure: &Closure<S>,
    by_pair: &[StateId],
    rank: &[u32],
    op_count: usize,
    threads: usize,
    ctx: &EngineCtx,
) -> Option<Vec<Signature>> {
    let _span = ctx.obs.span("par/signatures");
    let rows = drive(
        effective_threads(threads, op_count * by_pair.len()),
        op_count,
        |oi| {
            if !ctx.charge(by_pair.len() as u64) {
                return (None, false);
            }
            let sig: Signature = by_pair
                .iter()
                .map(|sid| closure.transitions[sid.index()][oi].map(|t| rank[t.index()]))
                .collect();
            (Some(sig), true)
        },
    );
    if rows.len() != op_count {
        return None;
    }
    ctx.obs.add(Counter::SignaturesBuilt, op_count as u64);
    Some(rows.into_iter().map(|(_, sig)| sig).collect())
}

/// Parallel composition closure: BFS over signatures, frontier chunked
/// across workers. Mirrors `equiv::composable_signatures`.
fn composable_signatures_parallel(
    op_sigs: &[Signature],
    pairs: usize,
    max_depth: usize,
    threads: usize,
    ctx: &EngineCtx,
) -> Option<BTreeSet<Signature>> {
    let _span = ctx.obs.span("par/composition");
    let mut seen: BTreeSet<Signature> = BTreeSet::new();
    let identity = identity_signature(pairs);
    seen.insert(identity.clone());
    let mut frontier = vec![identity];
    for _ in 0..max_depth {
        let produced = drive(threads, frontier.len(), |i| {
            if !ctx.charge(op_sigs.len() as u64) {
                return (None, false);
            }
            let out: Vec<Signature> = op_sigs.iter().map(|op| compose(&frontier[i], op)).collect();
            (Some(out), true)
        });
        if produced.len() != frontier.len() {
            return None;
        }
        let mut next = Vec::new();
        for (_, sigs) in produced {
            for sig in sigs {
                if seen.insert(sig.clone()) {
                    next.push(sig);
                }
            }
        }
        if next.is_empty() {
            break;
        }
        frontier = next;
    }
    ctx.obs.add(Counter::SignaturesComposed, seen.len() as u64);
    Some(seen)
}

/// Per-state reachability fanned across start states, with each start's
/// reachable set held as a word-packed [`BitSet`] over the pair universe.
#[allow(clippy::type_complexity)]
fn reachability_parallel(
    op_sigs: &[Signature],
    pairs: usize,
    max_depth: usize,
    threads: usize,
    ctx: &EngineCtx,
) -> Option<(Vec<BitSet>, Vec<bool>)> {
    let _span = ctx.obs.span("par/reachability");
    let rows = drive(effective_threads(threads, pairs), pairs, |start| {
        let (reach, err) = reach_from(op_sigs, pairs, start as u32, max_depth);
        if !ctx.charge(reach.count() as u64 * op_sigs.len() as u64) {
            return (None, false);
        }
        (Some((reach, err)), true)
    });
    if rows.len() != pairs {
        return None;
    }
    let mut reach = Vec::with_capacity(pairs);
    let mut err = Vec::with_capacity(pairs);
    for (_, (r, e)) in rows {
        reach.push(r);
        err.push(e);
    }
    ctx.obs.add(
        Counter::ReachabilityExpansions,
        reach.iter().map(BitSet::count).sum::<usize>() as u64,
    );
    Some((reach, err))
}

/// The operation-pairing frontier: scans left then right operations for
/// ones with no equivalent, fanned across workers. Under `early`, the
/// first witness cancels outstanding claims; the monotonic cursor
/// guarantees the returned minimum is the global minimum. `None` means
/// the budget stopped the scan.
fn scan_unmatched<F>(
    left: usize,
    right: usize,
    threads: usize,
    ctx: &EngineCtx,
    early: bool,
    is_unmatched: F,
) -> Option<Vec<(Side, usize)>>
where
    F: Fn(Side, usize) -> bool + Sync,
{
    let _span = ctx.obs.span("par/scan");
    // Early exit is scoped to THIS scan: in a data-model grid many
    // scans share one `ctx`, and a witness in one pair must not abort
    // the others (only a blown budget may, via `ctx.cancel`).
    let found_one = AtomicBool::new(false);
    let total = left + right;
    let hits = drive(threads, total, |i| {
        let (side, idx) = if i < left {
            (Side::Left, i)
        } else {
            (Side::Right, i - left)
        };
        let hit = is_unmatched(side, idx);
        if hit && early {
            found_one.store(true, Ordering::Relaxed);
        }
        let keep_going = !ctx.stopped() && !found_one.load(Ordering::Relaxed);
        (hit.then_some(()), keep_going)
    });
    if ctx.exhausted.load(Ordering::Relaxed) {
        return None;
    }
    let mut found: Vec<(Side, usize)> = hits
        .into_iter()
        .map(|(i, ())| {
            if i < left {
                (Side::Left, i)
            } else {
                (Side::Right, i - left)
            }
        })
        .collect();
    if early && found.len() > 1 {
        found.truncate(1);
    }
    ctx.obs.add(Counter::WitnessesFound, found.len() as u64);
    if early && !found.is_empty() {
        ctx.obs.add(Counter::EarlyExits, 1);
    }
    Some(found)
}

/// One application-model pair on precomputed closures. `Ok(None)` means
/// the budget stopped the run.
#[allow(clippy::too_many_arguments)]
fn check_pair<MS, MO, NS, NO>(
    m: &FiniteModel<MS, MO>,
    n: &FiniteModel<NS, NO>,
    m_closure: &Closure<MS>,
    n_closure: &Closure<NS>,
    kind: EquivKind,
    threads: usize,
    ctx: &EngineCtx,
    early: bool,
    m_interner: &FactInterner<MS>,
    n_interner: &FactInterner<NS>,
) -> Result<Option<Verdict>, CheckError>
where
    MS: Clone + Ord + Hash + ToFacts + Send + Sync,
    NS: Clone + Ord + Hash + ToFacts + Send + Sync,
    MO: Clone + fmt::Display + Send + Sync,
    NO: Clone + fmt::Display + Send + Sync,
{
    let Some(paired) =
        pair_with_interner(m_closure, n_closure, threads, ctx, m_interner, n_interner)?
    else {
        return Ok(None);
    };
    check_paired(
        m, n, m_closure, n_closure, &paired, kind, threads, ctx, early,
    )
}

/// The post-pairing half of [`check_pair`]: signature relabeling, the
/// kind-specific scan, and witness assembly, on a caller-supplied
/// pairing. Split out so [`crate::incremental`] can replay a cached
/// pairing without recompiling every state's fact base.
#[allow(clippy::too_many_arguments)]
fn check_paired<MS, MO, NS, NO>(
    m: &FiniteModel<MS, MO>,
    n: &FiniteModel<NS, NO>,
    m_closure: &Closure<MS>,
    n_closure: &Closure<NS>,
    paired: &PairedIds,
    kind: EquivKind,
    threads: usize,
    ctx: &EngineCtx,
    early: bool,
) -> Result<Option<Verdict>, CheckError>
where
    MS: Clone + Ord + Hash + ToFacts + Send + Sync,
    NS: Clone + Ord + Hash + ToFacts + Send + Sync,
    MO: Clone + fmt::Display + Send + Sync,
    NO: Clone + fmt::Display + Send + Sync,
{
    let pairs = paired.pairs;
    let Some(m_sigs) = signatures_parallel(
        m_closure,
        &paired.m_by_pair,
        &paired.m_rank,
        m.ops().len(),
        threads,
        ctx,
    ) else {
        return Ok(None);
    };
    let Some(n_sigs) = signatures_parallel(
        n_closure,
        &paired.n_by_pair,
        &paired.n_rank,
        n.ops().len(),
        threads,
        ctx,
    ) else {
        return Ok(None);
    };

    let found = match kind {
        EquivKind::Isomorphic => {
            let m_set: BTreeSet<&Signature> = m_sigs.iter().collect();
            let n_set: BTreeSet<&Signature> = n_sigs.iter().collect();
            scan_unmatched(
                m_sigs.len(),
                n_sigs.len(),
                threads,
                ctx,
                early,
                |side, i| match side {
                    Side::Left => !n_set.contains(&m_sigs[i]),
                    Side::Right => !m_set.contains(&n_sigs[i]),
                },
            )
        }
        EquivKind::Composed { max_depth } => {
            let Some(m_star) =
                composable_signatures_parallel(&m_sigs, pairs, max_depth, threads, ctx)
            else {
                return Ok(None);
            };
            let Some(n_star) =
                composable_signatures_parallel(&n_sigs, pairs, max_depth, threads, ctx)
            else {
                return Ok(None);
            };
            scan_unmatched(
                m_sigs.len(),
                n_sigs.len(),
                threads,
                ctx,
                early,
                |side, i| match side {
                    Side::Left => !n_star.contains(&m_sigs[i]),
                    Side::Right => !m_star.contains(&n_sigs[i]),
                },
            )
        }
        EquivKind::StateDependent { max_depth } => {
            let Some((n_reach, n_err)) =
                reachability_parallel(&n_sigs, pairs, max_depth, threads, ctx)
            else {
                return Ok(None);
            };
            let Some((m_reach, m_err)) =
                reachability_parallel(&m_sigs, pairs, max_depth, threads, ctx)
            else {
                return Ok(None);
            };
            let covers = |sig: &Signature, reach: &[BitSet], err: &[bool]| {
                (0..pairs).all(|i| match sig[i] {
                    Some(target) => reach[i].contains(target as usize),
                    None => err[i],
                })
            };
            scan_unmatched(
                m_sigs.len(),
                n_sigs.len(),
                threads,
                ctx,
                early,
                |side, i| match side {
                    Side::Left => !covers(&m_sigs[i], &n_reach, &n_err),
                    Side::Right => !covers(&n_sigs[i], &m_reach, &m_err),
                },
            )
        }
    };
    let Some(found) = found else {
        return Ok(None);
    };
    if found.is_empty() {
        return Ok(Some(Verdict::Equivalent { state_pairs: pairs }));
    }
    let witnesses = found
        .into_iter()
        .map(|(side, i)| Witness {
            side,
            label: match side {
                Side::Left => m.ops()[i].to_string(),
                Side::Right => n.ops()[i].to_string(),
            },
        })
        .collect();
    Ok(Some(Verdict::Counterexample {
        state_pairs: pairs,
        witnesses,
    }))
}

/// Runs the §3.3.1 pairing (injective per side, onto across sides) on
/// closures the caller already holds, with an unlimited budget. This is
/// the first half of the [`crate::incremental`] engine entry: the
/// session materializes both closures from its caches (bit-identical to
/// a fresh enumeration) and harvests the resulting ranks so later
/// re-checks over the same state sets can skip compilation entirely.
pub(crate) fn pair_on_closures<MS, NS>(
    m_closure: &Closure<MS>,
    n_closure: &Closure<NS>,
    threads: usize,
    m_interner: &FactInterner<MS>,
    n_interner: &FactInterner<NS>,
    obs: &Observer,
) -> Result<PairedIds, CheckError>
where
    MS: Clone + Ord + Hash + ToFacts + Send + Sync,
    NS: Clone + Ord + Hash + ToFacts + Send + Sync,
{
    let ctx = EngineCtx::new(&CheckBudget::UNLIMITED, obs.clone());
    let paired = pair_with_interner(
        m_closure,
        n_closure,
        resolve_threads(threads),
        &ctx,
        m_interner,
        n_interner,
    )?;
    Ok(paired.expect("an unlimited budget cannot exhaust"))
}

/// Runs the signature-through-scan half of the engine on closures and a
/// pairing the caller already holds, with an unlimited budget. Paired
/// with [`pair_on_closures`] this reproduces [`check_pair`] exactly —
/// same signatures, same scan order, same witness labels — which is what
/// lets [`crate::incremental`] reuse a cached pairing without changing
/// any verdict.
#[allow(clippy::too_many_arguments)]
pub(crate) fn check_prepaired<MS, MO, NS, NO>(
    m: &FiniteModel<MS, MO>,
    n: &FiniteModel<NS, NO>,
    m_closure: &Closure<MS>,
    n_closure: &Closure<NS>,
    paired: &PairedIds,
    kind: EquivKind,
    threads: usize,
    obs: &Observer,
) -> Result<Verdict, CheckError>
where
    MS: Clone + Ord + Hash + ToFacts + Send + Sync,
    NS: Clone + Ord + Hash + ToFacts + Send + Sync,
    MO: Clone + fmt::Display + Send + Sync,
    NO: Clone + fmt::Display + Send + Sync,
{
    let ctx = EngineCtx::new(&CheckBudget::UNLIMITED, obs.clone());
    let verdict = check_paired(
        m,
        n,
        m_closure,
        n_closure,
        paired,
        kind,
        resolve_threads(threads),
        &ctx,
        false,
    )?;
    Ok(verdict.expect("an unlimited budget cannot exhaust"))
}

/// Parallel Definition 2/3/5 check with caller-provided interners (so
/// the facade can share compilation caches across checks and read
/// [`FactInterner::stats`] afterwards). Routed by
/// [`Checker::parallel`](crate::check::Checker::parallel).
#[allow(clippy::too_many_arguments)]
pub(crate) fn parallel_app_models_verdict_obs<MS, MO, NS, NO>(
    m: &FiniteModel<MS, MO>,
    n: &FiniteModel<NS, NO>,
    kind: EquivKind,
    state_cap: usize,
    config: &ParallelConfig,
    m_interner: &FactInterner<MS>,
    n_interner: &FactInterner<NS>,
    obs: &Observer,
) -> Result<Verdict, CheckError>
where
    MS: Clone + Ord + Hash + ToFacts + Send + Sync,
    NS: Clone + Ord + Hash + ToFacts + Send + Sync,
    MO: Clone + fmt::Display + Send + Sync,
    NO: Clone + fmt::Display + Send + Sync,
{
    let _span = obs.span_with("par/check", || format!("{} vs {}", m.name(), n.name()));
    let ctx = EngineCtx::new(&config.budget, obs.clone());
    let threads = resolve_threads(config.threads);
    let Some(m_closure) = explore_closure(m, state_cap, threads, &ctx)? else {
        return Ok(ctx.exhausted_verdict());
    };
    let Some(n_closure) = explore_closure(n, state_cap, threads, &ctx)? else {
        return Ok(ctx.exhausted_verdict());
    };
    match check_pair(
        m,
        n,
        &m_closure,
        &n_closure,
        kind,
        threads,
        &ctx,
        config.early_exit,
        m_interner,
        n_interner,
    )? {
        Some(verdict) => Ok(verdict),
        None => Ok(ctx.exhausted_verdict()),
    }
}

/// Parallel Definition 6 check with caller-provided interners. The
/// model-pair grid is fanned across workers (each pair checked
/// single-threaded to avoid oversubscription); the shared interners
/// make every state compile once for the whole grid, not once per
/// pair. Witnesses are the names of application models with no
/// equivalent counterpart. Routed by
/// [`Checker::parallel`](crate::check::Checker::parallel) with
/// [`Tier::DataModel`](crate::check::Tier::DataModel).
#[allow(clippy::too_many_arguments)]
pub(crate) fn parallel_data_model_verdict_obs<MS, MO, NS, NO>(
    ms: &[FiniteModel<MS, MO>],
    ns: &[FiniteModel<NS, NO>],
    kind: EquivKind,
    state_cap: usize,
    config: &ParallelConfig,
    m_interner: &FactInterner<MS>,
    n_interner: &FactInterner<NS>,
    obs: &Observer,
) -> Result<Verdict, CheckError>
where
    MS: Clone + Ord + Hash + ToFacts + Send + Sync,
    NS: Clone + Ord + Hash + ToFacts + Send + Sync,
    MO: Clone + fmt::Display + Send + Sync,
    NO: Clone + fmt::Display + Send + Sync,
{
    let _span = obs.span_with("par/grid", || format!("{}x{} grid", ms.len(), ns.len()));
    obs.add(Counter::GridCells, (ms.len() * ns.len()) as u64);
    let ctx = EngineCtx::new(&config.budget, obs.clone());
    let threads = resolve_threads(config.threads);

    fn closures<S, O>(
        models: &[FiniteModel<S, O>],
        cap: usize,
        threads: usize,
        ctx: &EngineCtx,
    ) -> Result<Option<Vec<Closure<S>>>, CheckError>
    where
        S: Clone + Ord + ToFacts + Send + Sync,
        O: Clone + Send + Sync,
    {
        let rows = drive(threads, models.len(), |i| {
            match explore_closure(&models[i], cap, 1, ctx) {
                Ok(Some(states)) => (Some(Ok(states)), true),
                Ok(None) => (None, false),
                Err(e) => (Some(Err(e)), false),
            }
        });
        if rows.len() != models.len() {
            return Ok(None);
        }
        let mut out = Vec::with_capacity(models.len());
        for (_, row) in rows {
            out.push(row.map_err(CheckError::Closure)?);
        }
        Ok(Some(out))
    }

    let Some(m_closures) = closures(ms, state_cap, threads, &ctx)? else {
        return Ok(ctx.exhausted_verdict());
    };
    let Some(n_closures) = closures(ns, state_cap, threads, &ctx)? else {
        return Ok(ctx.exhausted_verdict());
    };

    // The grid: every (m, n) pair, one worker item each. Pairing
    // failures mean "not equivalent", not a checker error, exactly as
    // in the sequential checker.
    let grid = ms.len() * ns.len();
    let cells = drive(threads, grid, |cell| {
        let (mi, ni) = (cell / ns.len(), cell % ns.len());
        let outcome = check_pair(
            &ms[mi],
            &ns[ni],
            &m_closures[mi],
            &n_closures[ni],
            kind,
            1,
            &ctx,
            true, // only pair equivalence matters here; exit pairs early
            m_interner,
            n_interner,
        );
        match outcome {
            Ok(Some(verdict)) => (Some(Ok(verdict.is_equivalent())), true),
            Ok(None) => (None, false),
            Err(CheckError::Pairing(_)) => (Some(Ok(false)), true),
            Err(e) => (Some(Err(e)), false),
        }
    });
    if cells.len() != grid {
        return Ok(ctx.exhausted_verdict());
    }
    let mut matched_m = vec![false; ms.len()];
    let mut matched_n = vec![false; ns.len()];
    for (cell, outcome) in cells {
        if outcome? {
            matched_m[cell / ns.len()] = true;
            matched_n[cell % ns.len()] = true;
        }
    }
    let witnesses: Vec<Witness> = matched_m
        .iter()
        .enumerate()
        .filter(|(_, ok)| !**ok)
        .map(|(i, _)| Witness {
            side: Side::Left,
            label: ms[i].name().to_owned(),
        })
        .chain(
            matched_n
                .iter()
                .enumerate()
                .filter(|(_, ok)| !**ok)
                .map(|(i, _)| Witness {
                    side: Side::Right,
                    label: ns[i].name().to_owned(),
                }),
        )
        .collect();
    if witnesses.is_empty() {
        Ok(Verdict::Equivalent { state_pairs: grid })
    } else {
        Ok(Verdict::Counterexample {
            state_pairs: grid,
            witnesses,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dme_logic::{Fact, FactBase};
    use dme_value::Atom;

    fn f(n: i64) -> Fact {
        Fact::new("p", [("x", Atom::Int(n))])
    }

    /// The engine entry as the facade drives it: fresh interners, no
    /// observer.
    fn par_check(
        m: &FiniteModel<FactBase, String>,
        n: &FiniteModel<FactBase, String>,
        kind: EquivKind,
        state_cap: usize,
        config: &ParallelConfig,
    ) -> Result<Verdict, CheckError> {
        parallel_app_models_verdict_obs(
            m,
            n,
            kind,
            state_cap,
            config,
            &FactInterner::new(),
            &FactInterner::new(),
            &Observer::disabled(),
        )
    }

    /// The same toy model as `equiv::tests`: states are fact bases,
    /// operations add or remove one fact.
    fn toy_model(name: &str, ops: Vec<(bool, Fact)>) -> FiniteModel<FactBase, String> {
        let universe: BTreeMap<String, (bool, Fact)> = ops
            .into_iter()
            .map(|(add, fact)| {
                (
                    format!("{}{}", if add { "+" } else { "-" }, fact),
                    (add, fact),
                )
            })
            .collect();
        let op_names: Vec<String> = universe.keys().cloned().collect();
        FiniteModel::new(name, FactBase::default(), op_names, move |op, s| {
            let (add, fact) = &universe[op];
            let mut next = s.clone();
            if *add {
                next.insert(fact.clone()).then_some(next)
            } else {
                next.remove(fact).then_some(next)
            }
        })
    }

    fn two_fact_model(name: &str) -> FiniteModel<FactBase, String> {
        toy_model(
            name,
            vec![(true, f(1)), (true, f(2)), (false, f(1)), (false, f(2))],
        )
    }

    #[test]
    fn equivalent_toys_all_kinds_all_thread_counts() {
        let m = two_fact_model("m");
        let n = two_fact_model("n");
        for kind in [
            EquivKind::Isomorphic,
            EquivKind::Composed { max_depth: 2 },
            EquivKind::StateDependent { max_depth: 2 },
        ] {
            for threads in [1, 4] {
                let verdict =
                    par_check(&m, &n, kind, 100, &ParallelConfig::with_threads(threads)).unwrap();
                assert_eq!(verdict, Verdict::Equivalent { state_pairs: 4 }, "{kind:?}");
            }
        }
    }

    #[test]
    fn counterexample_is_deterministic_and_minimal() {
        // n lacks the delete ops: both delete signatures of m are
        // unmatched under isomorphic equivalence… but removing ops
        // breaks the onto pairing, so instead give n ops whose
        // *signatures* differ: n's "-1" acts like "+1" (no-op swap is
        // not expressible here), so use a state-dependent-only n.
        let m = two_fact_model("m");
        // n where delete of fact 2 is replaced by a second add op with a
        // fresh name (same signature as the existing add): the delete-2
        // signature of m has no counterpart in n.
        let n = toy_model(
            "n",
            vec![(true, f(1)), (true, f(2)), (false, f(1)), (true, f(2))],
        );
        // NB: duplicate (true, f(2)) collapses to one op name; n simply
        // lacks "-p(x: 2)". The closures differ then — so this would be
        // a pairing error, which is also a fine determinism probe.
        let full = par_check(
            &m,
            &n,
            EquivKind::Isomorphic,
            100,
            &ParallelConfig::with_threads(4),
        );
        let again = par_check(
            &m,
            &n,
            EquivKind::Isomorphic,
            100,
            &ParallelConfig::with_threads(2),
        );
        assert_eq!(full, again, "thread count never changes the outcome");
    }

    #[test]
    fn early_exit_reports_the_lowest_indexed_witness() {
        // Same closures, but n's ops loop: "+1" then "-1" only; m also
        // has "+2"/"-2"? That changes closures. Instead compare composed
        // with depth 0 — identity only — so every non-identity op of
        // both sides is unmatched; the minimum witness is m's first op.
        let m = two_fact_model("m");
        let n = two_fact_model("n");
        let verdict = par_check(
            &m,
            &n,
            EquivKind::Composed { max_depth: 0 },
            100,
            &ParallelConfig::with_threads(4).early_exit(),
        )
        .unwrap();
        let Verdict::Counterexample { witnesses, .. } = &verdict else {
            panic!("expected counterexample, got {verdict}");
        };
        assert_eq!(witnesses.len(), 1);
        assert_eq!(witnesses[0].side, Side::Left);
        assert_eq!(witnesses[0].label, m.ops()[0].to_string());
        // And it is stable across runs and thread counts.
        for threads in [1, 2, 8] {
            let again = par_check(
                &m,
                &n,
                EquivKind::Composed { max_depth: 0 },
                100,
                &ParallelConfig::with_threads(threads).early_exit(),
            )
            .unwrap();
            assert_eq!(again, verdict);
        }
    }

    #[test]
    fn node_budget_exhausts_cleanly() {
        let m = two_fact_model("m");
        let n = two_fact_model("n");
        let verdict = par_check(
            &m,
            &n,
            EquivKind::Isomorphic,
            100,
            &ParallelConfig::with_threads(2).budget(CheckBudget::nodes(3)),
        )
        .unwrap();
        assert!(
            matches!(verdict, Verdict::BudgetExhausted { nodes_explored, .. } if nodes_explored >= 3),
            "{verdict}"
        );
        assert!(!verdict.is_equivalent());
        assert!(verdict.witnesses().is_empty());
    }

    #[test]
    fn time_budget_exhausts_cleanly() {
        let m = two_fact_model("m");
        let n = two_fact_model("n");
        let verdict = par_check(
            &m,
            &n,
            EquivKind::Composed { max_depth: 3 },
            100,
            &ParallelConfig::with_threads(2).budget(CheckBudget::time(Duration::ZERO)),
        )
        .unwrap();
        assert!(
            matches!(verdict, Verdict::BudgetExhausted { .. }),
            "{verdict}"
        );
    }

    #[test]
    fn closure_cap_still_propagates() {
        let m = toy_model("m", vec![(true, f(1)), (true, f(2)), (true, f(3))]);
        let n = toy_model("n", vec![(true, f(1)), (true, f(2)), (true, f(3))]);
        let err = par_check(
            &m,
            &n,
            EquivKind::Isomorphic,
            3,
            &ParallelConfig::with_threads(2),
        )
        .unwrap_err();
        assert!(matches!(err, CheckError::Closure(_)));
    }

    #[test]
    fn data_model_grid_matches_and_interner_caches() {
        let ms = vec![two_fact_model("m0"), two_fact_model("m1")];
        let ns = vec![two_fact_model("n0"), two_fact_model("n1")];
        let left = FactInterner::new();
        let right = FactInterner::new();
        let verdict = parallel_data_model_verdict_obs(
            &ms,
            &ns,
            EquivKind::Isomorphic,
            100,
            &ParallelConfig::with_threads(4),
            &left,
            &right,
            &Observer::disabled(),
        )
        .unwrap();
        assert_eq!(verdict, Verdict::Equivalent { state_pairs: 4 });
        // Both m-models share their 4 states: compiled once, hit
        // thereafter across the whole grid.
        let stats = left.stats();
        assert_eq!(stats.unique, 4);
        assert!(stats.hits > 0, "grid reuses compiled fact bases: {stats:?}");
    }

    #[test]
    fn verdict_display_forms() {
        let eq = Verdict::Equivalent { state_pairs: 3 };
        assert_eq!(eq.to_string(), "equivalent over 3 state pairs");
        let ce = Verdict::Counterexample {
            state_pairs: 2,
            witnesses: vec![Witness {
                side: Side::Left,
                label: "+p".into(),
            }],
        };
        assert!(ce.to_string().contains("left `+p` has no equivalent"));
        let bx = Verdict::BudgetExhausted {
            nodes_explored: 9,
            elapsed: Duration::from_millis(1),
        };
        assert!(bx.to_string().contains("budget exhausted after 9 nodes"));
    }
}
