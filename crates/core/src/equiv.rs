//! The equivalence hierarchy (Definitions 1–6) as decision procedures.
//!
//! The checkers work on [`FiniteModel`]s whose closures of valid states
//! (§2.2) are enumerable. The pipeline:
//!
//! 1. enumerate both closures ([`FiniteModel::reachable_states`]);
//! 2. establish the **state equivalence correspondence** by compiling
//!    every state to its fact base ([`pair_states`]); the paper requires
//!    this correspondence to be 1-1 and onto, which here means: fact
//!    compilation is injective on each side, and the two sides induce the
//!    same set of fact bases;
//! 3. reduce every operation to its **behaviour signature** — the vector,
//!    indexed by state pair, of the resulting pair index (or the error
//!    state). Definition 1's operation equivalence is then signature
//!    equality;
//! 4. Definitions 2/3/5 quantify over signatures: exact match
//!    (isomorphic), match by bounded composition (composed), or per-state
//!    match by bounded composition (state dependent);
//! 5. Definition 6 lifts the chosen application-model equivalence to sets
//!    of application models, reporting *partial equivalence* — exactly
//!    which application models lack a counterpart — when it fails.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

use dme_logic::{FactBase, ToFacts};
use dme_obs::{Counter, Observer};

use crate::arena::{Closure, StateId};
use crate::bitset::BitSet;
use crate::model::{ClosureTooLarge, FiniteModel};
use crate::parallel::{Side, Verdict, Witness};

/// Which application-model equivalence (Definition 2, 3 or 5) to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EquivKind {
    /// Definition 2: a 1-1 correspondence of simple operations.
    Isomorphic,
    /// Definition 3: simple operations matched by compositions of at most
    /// `max_depth` operations.
    Composed {
        /// Maximum composition length searched.
        max_depth: usize,
    },
    /// Definition 5: per equivalent state pair, simple operations matched
    /// by compositions of at most `max_depth` operations.
    StateDependent {
        /// Maximum composition length searched.
        max_depth: usize,
    },
}

/// Errors preventing a check from running.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckError {
    /// A closure exceeded the state cap.
    Closure(ClosureTooLarge),
    /// The state equivalence correspondence is not 1-1 onto.
    Pairing(String),
    /// The requested tier/target combination has no decision procedure
    /// (e.g. Definition 1 over data-model *sets*).
    Unsupported(String),
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckError::Closure(e) => write!(f, "{e}"),
            CheckError::Pairing(s) => write!(f, "state pairing failed: {s}"),
            CheckError::Unsupported(s) => write!(f, "unsupported check: {s}"),
        }
    }
}

impl std::error::Error for CheckError {}

impl From<ClosureTooLarge> for CheckError {
    fn from(e: ClosureTooLarge) -> Self {
        CheckError::Closure(e)
    }
}

/// Pairs two state sets through fact compilation. Returns the aligned
/// state lists (index *i* of each list holds equivalent states). The
/// correspondence must be 1-1 (injective compilation per side) and onto
/// (same fact bases on both sides), per §3.3.1.
pub fn pair_states<MS, NS>(
    m_states: &BTreeSet<MS>,
    n_states: &BTreeSet<NS>,
) -> Result<(Vec<MS>, Vec<NS>), CheckError>
where
    MS: Clone + Ord + ToFacts,
    NS: Clone + Ord + ToFacts,
{
    let mut m_by_facts: BTreeMap<FactBase, MS> = BTreeMap::new();
    for s in m_states {
        if m_by_facts.insert(s.to_facts(), s.clone()).is_some() {
            return Err(CheckError::Pairing(
                "two left states share a fact base (compilation not injective)".into(),
            ));
        }
    }
    let mut n_by_facts: BTreeMap<FactBase, NS> = BTreeMap::new();
    for s in n_states {
        if n_by_facts.insert(s.to_facts(), s.clone()).is_some() {
            return Err(CheckError::Pairing(
                "two right states share a fact base (compilation not injective)".into(),
            ));
        }
    }
    if m_by_facts.len() != n_by_facts.len() || !m_by_facts.keys().eq(n_by_facts.keys()) {
        let only_left = m_by_facts
            .keys()
            .filter(|k| !n_by_facts.contains_key(*k))
            .count();
        let only_right = n_by_facts
            .keys()
            .filter(|k| !m_by_facts.contains_key(*k))
            .count();
        return Err(CheckError::Pairing(format!(
            "state sets are not onto: {only_left} application states expressible only on the left, {only_right} only on the right"
        )));
    }
    let m_list: Vec<MS> = m_by_facts.into_values().collect();
    let n_list: Vec<NS> = n_by_facts.into_values().collect();
    Ok((m_list, n_list))
}

/// A behaviour signature: per state-pair index, the resulting pair index
/// or `None` for the error state.
pub type Signature = Vec<Option<u32>>;

/// An enumerated model: the arena-backed closure with its memoized
/// transition table, plus every state's compiled fact base (in state-ID
/// order). Computed once per model and shared across all the checks that
/// need it — in particular across every cell of a Definition 6 grid.
pub(crate) struct EnumeratedModel<S> {
    pub(crate) closure: Closure<S>,
    pub(crate) facts: Vec<FactBase>,
}

impl<S> EnumeratedModel<S> {
    fn len(&self) -> usize {
        self.closure.len()
    }
}

pub(crate) fn enumerate_model<S, O>(
    model: &FiniteModel<S, O>,
    state_cap: usize,
) -> Result<EnumeratedModel<S>, ClosureTooLarge>
where
    S: Clone + Ord + ToFacts,
    O: Clone,
{
    let closure = model.closure(state_cap)?;
    let facts = closure
        .arena
        .states()
        .iter()
        .map(ToFacts::to_facts)
        .collect();
    Ok(EnumeratedModel { closure, facts })
}

/// The §3.3.1 state equivalence correspondence over two enumerated
/// closures, in integer form: `m_by_pair[p]` / `n_by_pair[p]` name the
/// states of pair *p* (pairs ordered by fact base), and `m_rank` /
/// `n_rank` invert them (state index → pair index).
pub(crate) struct PairedClosures {
    pub(crate) pairs: usize,
    pub(crate) m_by_pair: Vec<StateId>,
    pub(crate) n_by_pair: Vec<StateId>,
    pub(crate) m_rank: Vec<u32>,
    pub(crate) n_rank: Vec<u32>,
}

pub(crate) fn pair_enumerated<MS, NS>(
    m: &EnumeratedModel<MS>,
    n: &EnumeratedModel<NS>,
) -> Result<PairedClosures, CheckError> {
    let mut m_by_facts: BTreeMap<&FactBase, StateId> = BTreeMap::new();
    for (i, fb) in m.facts.iter().enumerate() {
        if m_by_facts.insert(fb, StateId::from_index(i)).is_some() {
            return Err(CheckError::Pairing(
                "two left states share a fact base (compilation not injective)".into(),
            ));
        }
    }
    let mut n_by_facts: BTreeMap<&FactBase, StateId> = BTreeMap::new();
    for (i, fb) in n.facts.iter().enumerate() {
        if n_by_facts.insert(fb, StateId::from_index(i)).is_some() {
            return Err(CheckError::Pairing(
                "two right states share a fact base (compilation not injective)".into(),
            ));
        }
    }
    if m_by_facts.len() != n_by_facts.len() || !m_by_facts.keys().eq(n_by_facts.keys()) {
        let only_left = m_by_facts
            .keys()
            .filter(|k| !n_by_facts.contains_key(*k))
            .count();
        let only_right = n_by_facts
            .keys()
            .filter(|k| !m_by_facts.contains_key(*k))
            .count();
        return Err(CheckError::Pairing(format!(
            "state sets are not onto: {only_left} application states expressible only on the left, {only_right} only on the right"
        )));
    }
    let m_by_pair: Vec<StateId> = m_by_facts.into_values().collect();
    let n_by_pair: Vec<StateId> = n_by_facts.into_values().collect();
    let mut m_rank = vec![0u32; m.len()];
    for (p, sid) in m_by_pair.iter().enumerate() {
        m_rank[sid.index()] = p as u32;
    }
    let mut n_rank = vec![0u32; n.len()];
    for (p, sid) in n_by_pair.iter().enumerate() {
        n_rank[sid.index()] = p as u32;
    }
    Ok(PairedClosures {
        pairs: m_by_pair.len(),
        m_by_pair,
        n_by_pair,
        m_rank,
        n_rank,
    })
}

/// Behaviour signatures as a pure relabelling of the memoized transition
/// table: no operation is re-applied — `sig[op][p]` is the recorded
/// successor of pair `p`'s state, renamed to its pair index.
pub(crate) fn relabel_signatures<S>(
    e: &EnumeratedModel<S>,
    by_pair: &[StateId],
    rank: &[u32],
    op_count: usize,
) -> Vec<Signature> {
    (0..op_count)
        .map(|oi| {
            by_pair
                .iter()
                .map(|sid| e.closure.transitions[sid.index()][oi].map(|t| rank[t.index()]))
                .collect()
        })
        .collect()
}

pub(crate) fn identity_signature(n: usize) -> Signature {
    (0..n as u32).map(Some).collect()
}

pub(crate) fn compose(first: &Signature, then: &Signature) -> Signature {
    first
        .iter()
        .map(|r| r.and_then(|i| then[i as usize]))
        .collect()
}

/// Enumerates both closures into arenas, with the work attributed to the
/// observer's `seq/closure` span and the arena probe statistics exported
/// as the `arena_hits`/`arena_misses` counters.
fn closure_phase_obs<MS, MO, NS, NO>(
    m: &FiniteModel<MS, MO>,
    n: &FiniteModel<NS, NO>,
    state_cap: usize,
    obs: &Observer,
) -> Result<(EnumeratedModel<MS>, EnumeratedModel<NS>), CheckError>
where
    MS: Clone + Ord + ToFacts,
    NS: Clone + Ord + ToFacts,
    MO: Clone,
    NO: Clone,
{
    let _span = obs.span("seq/closure");
    let me = enumerate_model(m, state_cap)?;
    let ne = enumerate_model(n, state_cap)?;
    obs.add(Counter::StatesEnumerated, (me.len() + ne.len()) as u64);
    obs.add(
        Counter::NodesExpanded,
        ((me.len() * m.ops().len()) + (ne.len() * n.ops().len())) as u64,
    );
    let (ms, ns) = (me.closure.arena.stats(), ne.closure.arena.stats());
    obs.add(Counter::ArenaHits, ms.hits + ns.hits);
    obs.add(Counter::ArenaMisses, ms.misses + ns.misses);
    Ok((me, ne))
}

/// Aligns two enumerated closures through the §3.3.1 state equivalence
/// correspondence, attributed to the `seq/pairing` span.
fn pairing_phase_obs<MS, NS>(
    me: &EnumeratedModel<MS>,
    ne: &EnumeratedModel<NS>,
    obs: &Observer,
) -> Result<PairedClosures, CheckError> {
    let _span = obs.span("seq/pairing");
    obs.add(Counter::PairingChecks, 1);
    obs.add(Counter::StatesCompiled, (me.len() + ne.len()) as u64);
    pair_enumerated(me, ne)
}

/// Definition 1 lifted to whole models, as used by
/// [`Tier::Operation`](crate::check::Tier::Operation): the *i*-th left
/// operation must be operation equivalent (signature-equal over the
/// aligned states) to the *i*-th right operation. A mismatched pair
/// contributes both operations as witnesses; a length mismatch
/// contributes the overhanging operations.
pub(crate) fn operation_pairs_report_obs<MS, MO, NS, NO>(
    m: &FiniteModel<MS, MO>,
    n: &FiniteModel<NS, NO>,
    state_cap: usize,
    obs: &Observer,
) -> Result<MatchReport, CheckError>
where
    MS: Clone + Ord + ToFacts,
    NS: Clone + Ord + ToFacts,
    MO: Clone + fmt::Display,
    NO: Clone + fmt::Display,
{
    let _tier = obs.span_with("seq/operation", || format!("{} vs {}", m.name(), n.name()));
    let (me, ne) = closure_phase_obs(m, n, state_cap, obs)?;
    operation_pairs_from_enums(m, &me, n, &ne, obs)
}

pub(crate) fn operation_pairs_from_enums<MS, MO, NS, NO>(
    m: &FiniteModel<MS, MO>,
    me: &EnumeratedModel<MS>,
    n: &FiniteModel<NS, NO>,
    ne: &EnumeratedModel<NS>,
    obs: &Observer,
) -> Result<MatchReport, CheckError>
where
    MS: Clone + Ord + ToFacts,
    NS: Clone + Ord + ToFacts,
    MO: Clone + fmt::Display,
    NO: Clone + fmt::Display,
{
    let paired = pairing_phase_obs(me, ne, obs)?;
    let m_sigs = relabel_signatures(me, &paired.m_by_pair, &paired.m_rank, m.ops().len());
    let n_sigs = relabel_signatures(ne, &paired.n_by_pair, &paired.n_rank, n.ops().len());
    obs.add(
        Counter::SignaturesBuilt,
        (m_sigs.len() + n_sigs.len()) as u64,
    );
    let mut unmatched_m = Vec::new();
    let mut unmatched_n = Vec::new();
    for i in 0..m_sigs.len().max(n_sigs.len()) {
        match (m_sigs.get(i), n_sigs.get(i)) {
            (Some(a), Some(b)) if a == b => {}
            (Some(_), Some(_)) => {
                unmatched_m.push(m.ops()[i].to_string());
                unmatched_n.push(n.ops()[i].to_string());
            }
            (Some(_), None) => unmatched_m.push(m.ops()[i].to_string()),
            (None, Some(_)) => unmatched_n.push(n.ops()[i].to_string()),
            (None, None) => unreachable!("loop is bounded by the longer side"),
        }
    }
    obs.add(
        Counter::WitnessesFound,
        (unmatched_m.len() + unmatched_n.len()) as u64,
    );
    Ok(MatchReport {
        equivalent: unmatched_m.is_empty() && unmatched_n.is_empty(),
        unmatched_m,
        unmatched_n,
        state_pairs: paired.pairs,
    })
}

/// The outcome of an application-model equivalence check, with the
/// witnesses of failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MatchReport {
    /// Whether the models are equivalent under the requested definition.
    pub equivalent: bool,
    /// Display forms of left operations without an equivalent.
    pub unmatched_m: Vec<String>,
    /// Display forms of right operations without an equivalent.
    pub unmatched_n: Vec<String>,
    /// Number of equivalent state pairs underlying the check.
    pub state_pairs: usize,
}

impl MatchReport {
    /// The report as a structured [`Verdict`], the parallel engine's
    /// outcome type: witnesses are the unmatched operations, left side
    /// first, each in operation order — exactly the order the parallel
    /// engine reports (proven by the differential test suite).
    pub fn to_verdict(&self) -> Verdict {
        if self.equivalent {
            return Verdict::Equivalent {
                state_pairs: self.state_pairs,
            };
        }
        let witnesses = self
            .unmatched_m
            .iter()
            .map(|label| Witness {
                side: Side::Left,
                label: label.clone(),
            })
            .chain(self.unmatched_n.iter().map(|label| Witness {
                side: Side::Right,
                label: label.clone(),
            }))
            .collect();
        Verdict::Counterexample {
            state_pairs: self.state_pairs,
            witnesses,
        }
    }
}

impl fmt::Display for MatchReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.equivalent {
            return write!(f, "equivalent over {} state pairs", self.state_pairs);
        }
        writeln!(f, "NOT equivalent over {} state pairs:", self.state_pairs)?;
        for op in &self.unmatched_m {
            writeln!(f, "  left op without equivalent:  {op}")?;
        }
        for op in &self.unmatched_n {
            writeln!(f, "  right op without equivalent: {op}")?;
        }
        Ok(())
    }
}

/// Definition 2: isomorphic application model equivalence, as routed by
/// [`Tier::Isomorphic`](crate::check::Tier::Isomorphic).
pub(crate) fn isomorphic_report_obs<MS, MO, NS, NO>(
    m: &FiniteModel<MS, MO>,
    n: &FiniteModel<NS, NO>,
    state_cap: usize,
    obs: &Observer,
) -> Result<MatchReport, CheckError>
where
    MS: Clone + Ord + ToFacts,
    NS: Clone + Ord + ToFacts,
    MO: Clone + fmt::Display,
    NO: Clone + fmt::Display,
{
    let _tier = obs.span_with("seq/isomorphic", || format!("{} vs {}", m.name(), n.name()));
    let (me, ne) = closure_phase_obs(m, n, state_cap, obs)?;
    isomorphic_from_enums(m, &me, n, &ne, obs)
}

pub(crate) fn isomorphic_from_enums<MS, MO, NS, NO>(
    m: &FiniteModel<MS, MO>,
    me: &EnumeratedModel<MS>,
    n: &FiniteModel<NS, NO>,
    ne: &EnumeratedModel<NS>,
    obs: &Observer,
) -> Result<MatchReport, CheckError>
where
    MS: Clone + Ord + ToFacts,
    NS: Clone + Ord + ToFacts,
    MO: Clone + fmt::Display,
    NO: Clone + fmt::Display,
{
    let paired = pairing_phase_obs(me, ne, obs)?;
    let _span = obs.span("seq/signatures");
    let m_sigs = relabel_signatures(me, &paired.m_by_pair, &paired.m_rank, m.ops().len());
    let n_sigs = relabel_signatures(ne, &paired.n_by_pair, &paired.n_rank, n.ops().len());
    obs.add(
        Counter::SignaturesBuilt,
        (m_sigs.len() + n_sigs.len()) as u64,
    );
    obs.add(
        Counter::NodesExpanded,
        ((m_sigs.len() + n_sigs.len()) * paired.pairs) as u64,
    );
    let n_set: BTreeSet<&Signature> = n_sigs.iter().collect();
    let m_set: BTreeSet<&Signature> = m_sigs.iter().collect();
    let unmatched_m: Vec<String> = m
        .ops()
        .iter()
        .zip(&m_sigs)
        .filter(|(_, sig)| !n_set.contains(sig))
        .map(|(op, _)| op.to_string())
        .collect();
    let unmatched_n: Vec<String> = n
        .ops()
        .iter()
        .zip(&n_sigs)
        .filter(|(_, sig)| !m_set.contains(sig))
        .map(|(op, _)| op.to_string())
        .collect();
    obs.add(
        Counter::WitnessesFound,
        (unmatched_m.len() + unmatched_n.len()) as u64,
    );
    Ok(MatchReport {
        equivalent: unmatched_m.is_empty() && unmatched_n.is_empty(),
        unmatched_m,
        unmatched_n,
        state_pairs: paired.pairs,
    })
}

/// All signatures reachable by composing at most `max_depth` operations
/// (the behaviours of `ops*`, truncated). Includes the identity (the
/// empty composition).
fn composable_signatures(
    op_sigs: &[Signature],
    pairs: usize,
    max_depth: usize,
) -> BTreeSet<Signature> {
    let mut seen: BTreeSet<Signature> = BTreeSet::new();
    let identity = identity_signature(pairs);
    seen.insert(identity.clone());
    let mut frontier = vec![identity];
    for _ in 0..max_depth {
        let mut next_frontier = Vec::new();
        for sig in &frontier {
            for op in op_sigs {
                let composed = compose(sig, op);
                if seen.insert(composed.clone()) {
                    next_frontier.push(composed);
                }
            }
        }
        if next_frontier.is_empty() {
            break;
        }
        frontier = next_frontier;
    }
    seen
}

/// Definition 3: composed operation application model equivalence, with
/// compositions searched up to `max_depth`, as routed by
/// [`Tier::Composed`](crate::check::Tier::Composed).
pub(crate) fn composed_report_obs<MS, MO, NS, NO>(
    m: &FiniteModel<MS, MO>,
    n: &FiniteModel<NS, NO>,
    state_cap: usize,
    max_depth: usize,
    obs: &Observer,
) -> Result<MatchReport, CheckError>
where
    MS: Clone + Ord + ToFacts,
    NS: Clone + Ord + ToFacts,
    MO: Clone + fmt::Display,
    NO: Clone + fmt::Display,
{
    let _tier = obs.span_with("seq/composed", || {
        format!("{} vs {} (depth {max_depth})", m.name(), n.name())
    });
    let (me, ne) = closure_phase_obs(m, n, state_cap, obs)?;
    composed_from_enums(m, &me, n, &ne, max_depth, obs)
}

pub(crate) fn composed_from_enums<MS, MO, NS, NO>(
    m: &FiniteModel<MS, MO>,
    me: &EnumeratedModel<MS>,
    n: &FiniteModel<NS, NO>,
    ne: &EnumeratedModel<NS>,
    max_depth: usize,
    obs: &Observer,
) -> Result<MatchReport, CheckError>
where
    MS: Clone + Ord + ToFacts,
    NS: Clone + Ord + ToFacts,
    MO: Clone + fmt::Display,
    NO: Clone + fmt::Display,
{
    let paired = pairing_phase_obs(me, ne, obs)?;
    let pairs = paired.pairs;
    let m_sigs = relabel_signatures(me, &paired.m_by_pair, &paired.m_rank, m.ops().len());
    let n_sigs = relabel_signatures(ne, &paired.n_by_pair, &paired.n_rank, n.ops().len());
    obs.add(
        Counter::SignaturesBuilt,
        (m_sigs.len() + n_sigs.len()) as u64,
    );
    let (m_star, n_star) = {
        let _span = obs.span("seq/composition");
        let m_star = composable_signatures(&m_sigs, pairs, max_depth);
        let n_star = composable_signatures(&n_sigs, pairs, max_depth);
        obs.add(
            Counter::SignaturesComposed,
            (m_star.len() + n_star.len()) as u64,
        );
        obs.add(
            Counter::NodesExpanded,
            ((m_star.len() * m_sigs.len()) + (n_star.len() * n_sigs.len())) as u64,
        );
        (m_star, n_star)
    };
    let unmatched_m: Vec<String> = m
        .ops()
        .iter()
        .zip(&m_sigs)
        .filter(|(_, sig)| !n_star.contains(*sig))
        .map(|(op, _)| op.to_string())
        .collect();
    let unmatched_n: Vec<String> = n
        .ops()
        .iter()
        .zip(&n_sigs)
        .filter(|(_, sig)| !m_star.contains(*sig))
        .map(|(op, _)| op.to_string())
        .collect();
    obs.add(
        Counter::WitnessesFound,
        (unmatched_m.len() + unmatched_n.len()) as u64,
    );
    Ok(MatchReport {
        equivalent: unmatched_m.is_empty() && unmatched_n.is_empty(),
        unmatched_m,
        unmatched_n,
        state_pairs: pairs,
    })
}

/// Per-state reachability: from each pair index, the set of pair indices
/// reachable within `max_depth` steps, and whether the error state is
/// reachable within `max_depth` steps (by erroring at any point along a
/// valid prefix).
fn per_state_reachability(
    op_sigs: &[Signature],
    pairs: usize,
    max_depth: usize,
) -> (Vec<BitSet>, Vec<bool>) {
    let mut reach: Vec<BitSet> = Vec::with_capacity(pairs);
    let mut can_error: Vec<bool> = vec![false; pairs];
    for start in 0..pairs as u32 {
        let (seen, error) = reach_from(op_sigs, pairs, start, max_depth);
        reach.push(seen);
        can_error[start as usize] = error;
    }
    (reach, can_error)
}

/// One start state's slice of [`per_state_reachability`]: the pair
/// indices reachable from `start` within `max_depth` steps (as a
/// word-packed [`BitSet`] over the pair universe), and whether the error
/// state is reachable. Shared with the parallel engine, which fans the
/// starts across workers.
pub(crate) fn reach_from(
    op_sigs: &[Signature],
    pairs: usize,
    start: u32,
    max_depth: usize,
) -> (BitSet, bool) {
    let mut seen = BitSet::with_capacity(pairs);
    seen.insert(start as usize);
    let mut queue: VecDeque<(u32, usize)> = VecDeque::new();
    queue.push_back((start, 0));
    let mut error = false;
    while let Some((state, depth)) = queue.pop_front() {
        if depth >= max_depth {
            continue;
        }
        for sig in op_sigs {
            match sig[state as usize] {
                Some(next) => {
                    if seen.insert(next as usize) {
                        queue.push_back((next, depth + 1));
                    }
                }
                None => error = true,
            }
        }
    }
    (seen, error)
}

/// Definition 5: state dependent application model equivalence, with
/// per-state compositions searched up to `max_depth`, as routed by
/// [`Tier::StateDependent`](crate::check::Tier::StateDependent).
pub(crate) fn state_dependent_report_obs<MS, MO, NS, NO>(
    m: &FiniteModel<MS, MO>,
    n: &FiniteModel<NS, NO>,
    state_cap: usize,
    max_depth: usize,
    obs: &Observer,
) -> Result<MatchReport, CheckError>
where
    MS: Clone + Ord + ToFacts,
    NS: Clone + Ord + ToFacts,
    MO: Clone + fmt::Display,
    NO: Clone + fmt::Display,
{
    let _tier = obs.span_with("seq/state_dependent", || {
        format!("{} vs {} (depth {max_depth})", m.name(), n.name())
    });
    let (me, ne) = closure_phase_obs(m, n, state_cap, obs)?;
    state_dependent_from_enums(m, &me, n, &ne, max_depth, obs)
}

pub(crate) fn state_dependent_from_enums<MS, MO, NS, NO>(
    m: &FiniteModel<MS, MO>,
    me: &EnumeratedModel<MS>,
    n: &FiniteModel<NS, NO>,
    ne: &EnumeratedModel<NS>,
    max_depth: usize,
    obs: &Observer,
) -> Result<MatchReport, CheckError>
where
    MS: Clone + Ord + ToFacts,
    NS: Clone + Ord + ToFacts,
    MO: Clone + fmt::Display,
    NO: Clone + fmt::Display,
{
    let paired = pairing_phase_obs(me, ne, obs)?;
    let pairs = paired.pairs;
    let m_sigs = relabel_signatures(me, &paired.m_by_pair, &paired.m_rank, m.ops().len());
    let n_sigs = relabel_signatures(ne, &paired.n_by_pair, &paired.n_rank, n.ops().len());
    obs.add(
        Counter::SignaturesBuilt,
        (m_sigs.len() + n_sigs.len()) as u64,
    );
    let (n_reach, n_err, m_reach, m_err) = {
        let _span = obs.span("seq/reachability");
        let (n_reach, n_err) = per_state_reachability(&n_sigs, pairs, max_depth);
        let (m_reach, m_err) = per_state_reachability(&m_sigs, pairs, max_depth);
        let expansions: usize = n_reach.iter().chain(&m_reach).map(BitSet::count).sum();
        obs.add(Counter::ReachabilityExpansions, expansions as u64);
        obs.add(
            Counter::NodesExpanded,
            (expansions * m_sigs.len().max(1)) as u64,
        );
        (n_reach, n_err, m_reach, m_err)
    };

    let check =
        |sigs: &[Signature], ops: Vec<String>, reach: &[BitSet], err: &[bool]| -> Vec<String> {
            ops.into_iter()
                .zip(sigs)
                .filter(|(_, sig)| {
                    (0..pairs).any(|i| match sig[i] {
                        Some(target) => !reach[i].contains(target as usize),
                        None => !err[i],
                    })
                })
                .map(|(op, _)| op)
                .collect()
        };

    let unmatched_m = check(
        &m_sigs,
        m.ops().iter().map(ToString::to_string).collect(),
        &n_reach,
        &n_err,
    );
    let unmatched_n = check(
        &n_sigs,
        n.ops().iter().map(ToString::to_string).collect(),
        &m_reach,
        &m_err,
    );
    obs.add(
        Counter::WitnessesFound,
        (unmatched_m.len() + unmatched_n.len()) as u64,
    );
    Ok(MatchReport {
        equivalent: unmatched_m.is_empty() && unmatched_n.is_empty(),
        unmatched_m,
        unmatched_n,
        state_pairs: pairs,
    })
}

/// Runs the requested application-model equivalence check — the
/// [`EquivKind`] dispatcher behind the facade's per-tier routing.
pub(crate) fn app_models_report_obs<MS, MO, NS, NO>(
    m: &FiniteModel<MS, MO>,
    n: &FiniteModel<NS, NO>,
    kind: EquivKind,
    state_cap: usize,
    obs: &Observer,
) -> Result<MatchReport, CheckError>
where
    MS: Clone + Ord + ToFacts,
    NS: Clone + Ord + ToFacts,
    MO: Clone + fmt::Display,
    NO: Clone + fmt::Display,
{
    match kind {
        EquivKind::Isomorphic => isomorphic_report_obs(m, n, state_cap, obs),
        EquivKind::Composed { max_depth } => composed_report_obs(m, n, state_cap, max_depth, obs),
        EquivKind::StateDependent { max_depth } => {
            state_dependent_report_obs(m, n, state_cap, max_depth, obs)
        }
    }
}

/// [`app_models_report_obs`] over pre-enumerated closures — the grid
/// checker's fast path: each model's closure is enumerated once and
/// reused across every cell it participates in.
fn app_models_report_from_enums<MS, MO, NS, NO>(
    m: &FiniteModel<MS, MO>,
    me: &EnumeratedModel<MS>,
    n: &FiniteModel<NS, NO>,
    ne: &EnumeratedModel<NS>,
    kind: EquivKind,
    obs: &Observer,
) -> Result<MatchReport, CheckError>
where
    MS: Clone + Ord + ToFacts,
    NS: Clone + Ord + ToFacts,
    MO: Clone + fmt::Display,
    NO: Clone + fmt::Display,
{
    match kind {
        EquivKind::Isomorphic => {
            let _tier = obs.span_with("seq/isomorphic", || format!("{} vs {}", m.name(), n.name()));
            isomorphic_from_enums(m, me, n, ne, obs)
        }
        EquivKind::Composed { max_depth } => {
            let _tier = obs.span_with("seq/composed", || {
                format!("{} vs {} (depth {max_depth})", m.name(), n.name())
            });
            composed_from_enums(m, me, n, ne, max_depth, obs)
        }
        EquivKind::StateDependent { max_depth } => {
            let _tier = obs.span_with("seq/state_dependent", || {
                format!("{} vs {} (depth {max_depth})", m.name(), n.name())
            });
            state_dependent_from_enums(m, me, n, ne, max_depth, obs)
        }
    }
}

/// Definition 6 outcome: which application models found counterparts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DataModelReport {
    /// Whether the data models are (totally) equivalent.
    pub equivalent: bool,
    /// For each left application model, the names of equivalent right
    /// models.
    pub matches_m: Vec<(String, Vec<String>)>,
    /// For each right application model, the names of equivalent left
    /// models.
    pub matches_n: Vec<(String, Vec<String>)>,
}

impl DataModelReport {
    /// Left application models with no counterpart (the witnesses of a
    /// *partial* equivalence).
    pub fn unmatched_m(&self) -> Vec<&str> {
        self.matches_m
            .iter()
            .filter(|(_, v)| v.is_empty())
            .map(|(n, _)| n.as_str())
            .collect()
    }

    /// Right application models with no counterpart.
    pub fn unmatched_n(&self) -> Vec<&str> {
        self.matches_n
            .iter()
            .filter(|(_, v)| v.is_empty())
            .map(|(n, _)| n.as_str())
            .collect()
    }

    /// The report as a structured [`Verdict`]: `state_pairs` is the
    /// size of the model-pair grid (matching the parallel Definition 6
    /// engine) and witnesses are the names of unmatched application
    /// models, left side first.
    pub fn to_verdict(&self) -> Verdict {
        let grid = self.matches_m.len() * self.matches_n.len();
        if self.equivalent {
            return Verdict::Equivalent { state_pairs: grid };
        }
        let witnesses = self
            .unmatched_m()
            .into_iter()
            .map(|name| Witness {
                side: Side::Left,
                label: name.to_owned(),
            })
            .chain(self.unmatched_n().into_iter().map(|name| Witness {
                side: Side::Right,
                label: name.to_owned(),
            }))
            .collect();
        Verdict::Counterexample {
            state_pairs: grid,
            witnesses,
        }
    }
}

impl fmt::Display for DataModelReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.equivalent {
            write!(f, "data models are equivalent")
        } else {
            write!(
                f,
                "data models are only partially equivalent; unmatched left: {:?}, unmatched right: {:?}",
                self.unmatched_m(),
                self.unmatched_n()
            )
        }
    }
}

fn record_enum_counters<S, O>(
    models: &[FiniteModel<S, O>],
    enums: &[EnumeratedModel<S>],
    obs: &Observer,
) where
    S: Clone + Ord + ToFacts,
    O: Clone,
{
    let states: usize = enums.iter().map(EnumeratedModel::len).sum();
    let expanded: usize = models
        .iter()
        .zip(enums)
        .map(|(m, e)| e.len() * m.ops().len())
        .sum();
    obs.add(Counter::StatesEnumerated, states as u64);
    obs.add(Counter::NodesExpanded, expanded as u64);
    let (hits, misses) = enums.iter().fold((0, 0), |(h, mi), e| {
        let s = e.closure.arena.stats();
        (h + s.hits, mi + s.misses)
    });
    obs.add(Counter::ArenaHits, hits);
    obs.add(Counter::ArenaMisses, misses);
}

/// Definition 6: two data models (finite sets of application models) are
/// equivalent iff application model equivalence defines a correspondence
/// onto both sets. The correspondence need not be 1-1 (§3.3.2: "there may
/// be several relational application models state dependent equivalent to
/// each graph model"). Routed by
/// [`Tier::DataModel`](crate::check::Tier::DataModel).
pub(crate) fn data_model_report_obs<MS, MO, NS, NO>(
    ms: &[FiniteModel<MS, MO>],
    ns: &[FiniteModel<NS, NO>],
    kind: EquivKind,
    state_cap: usize,
    obs: &Observer,
) -> Result<DataModelReport, CheckError>
where
    MS: Clone + Ord + ToFacts,
    NS: Clone + Ord + ToFacts,
    MO: Clone + fmt::Display,
    NO: Clone + fmt::Display,
{
    let _tier = obs.span_with("seq/data_model", || {
        format!("{}x{} grid", ms.len(), ns.len())
    });
    obs.add(Counter::GridCells, (ms.len() * ns.len()) as u64);
    // Enumerate every model's closure exactly once; the cells below only
    // pair and relabel.
    let m_enums: Vec<EnumeratedModel<MS>> = {
        let _span = obs.span("seq/closure");
        let enums: Vec<_> = ms
            .iter()
            .map(|m| enumerate_model(m, state_cap))
            .collect::<Result<_, _>>()?;
        record_enum_counters(ms, &enums, obs);
        enums
    };
    let n_enums: Vec<EnumeratedModel<NS>> = {
        let _span = obs.span("seq/closure");
        let enums: Vec<_> = ns
            .iter()
            .map(|n| enumerate_model(n, state_cap))
            .collect::<Result<_, _>>()?;
        record_enum_counters(ns, &enums, obs);
        enums
    };
    let mut matches_m: Vec<(String, Vec<String>)> = Vec::new();
    let mut matches_n: Vec<(String, Vec<String>)> = ns
        .iter()
        .map(|n| (n.name().to_owned(), Vec::new()))
        .collect();
    for (m, me) in ms.iter().zip(&m_enums) {
        let mut found = Vec::new();
        for (ni, (n, ne)) in ns.iter().zip(&n_enums).enumerate() {
            // A pairing failure means "not equivalent", not a checker
            // error: the two models express different application states.
            let report = match app_models_report_from_enums(m, me, n, ne, kind, obs) {
                Ok(r) => r,
                Err(CheckError::Pairing(_)) => continue,
                Err(e) => return Err(e),
            };
            if report.equivalent {
                found.push(n.name().to_owned());
                matches_n[ni].1.push(m.name().to_owned());
            }
        }
        matches_m.push((m.name().to_owned(), found));
    }
    let equivalent = matches_m.iter().all(|(_, v)| !v.is_empty())
        && matches_n.iter().all(|(_, v)| !v.is_empty());
    Ok(DataModelReport {
        equivalent,
        matches_m,
        matches_n,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signature_composition() {
        // Two pairs; op a: 0→1, 1→err; op b: 0→0, 1→0.
        let a: Signature = vec![Some(1), None];
        let b: Signature = vec![Some(0), Some(0)];
        assert_eq!(compose(&a, &b), vec![Some(0), None]);
        assert_eq!(compose(&b, &a), vec![Some(1), Some(1)]);
        let id = identity_signature(2);
        assert_eq!(compose(&id, &a), a);
        assert_eq!(compose(&a, &id), a);
        // Definition 1: operation equivalence is signature equality.
        assert_eq!(a, a.clone());
        assert_ne!(a, b);
    }

    #[test]
    fn composable_signatures_includes_identity_and_closes() {
        let a: Signature = vec![Some(1), Some(0)]; // swap
        let set = composable_signatures(std::slice::from_ref(&a), 2, 3);
        assert!(set.contains(&identity_signature(2)));
        assert!(set.contains(&a));
        assert_eq!(set.len(), 2); // swap ∘ swap = id
    }

    /// A toy model whose states *are* fact bases: apply adds or removes
    /// one fact. Lets the checker plumbing be tested without the data
    /// models.
    fn toy_model(
        name: &str,
        facts: Vec<dme_logic::Fact>,
        ops: Vec<(bool, dme_logic::Fact)>,
    ) -> crate::model::FiniteModel<FactBase, String> {
        use crate::model::FiniteModel;
        let universe: std::collections::BTreeMap<String, (bool, dme_logic::Fact)> = ops
            .into_iter()
            .map(|(add, f)| (format!("{}{}", if add { "+" } else { "-" }, f), (add, f)))
            .collect();
        let op_names: Vec<String> = universe.keys().cloned().collect();
        let initial = FactBase::from_facts(facts);
        FiniteModel::new(name, initial, op_names, move |op, s| {
            let (add, fact) = &universe[op];
            let mut next = s.clone();
            if *add {
                next.insert(fact.clone()).then_some(next)
            } else {
                next.remove(fact).then_some(next)
            }
        })
    }

    fn f(n: i64) -> dme_logic::Fact {
        dme_logic::Fact::new("p", [("x", dme_value::Atom::Int(n))])
    }

    #[test]
    fn pair_states_detects_non_onto_sets() {
        let m = toy_model("m", vec![], vec![(true, f(1)), (false, f(1))]);
        let n = toy_model("n", vec![], vec![(true, f(2)), (false, f(2))]);
        let ms = m.reachable_states(100).unwrap();
        let ns = n.reachable_states(100).unwrap();
        let err = pair_states(&ms, &ns).unwrap_err();
        assert!(matches!(err, CheckError::Pairing(_)));
        assert!(err.to_string().contains("not onto"));
    }

    #[test]
    fn toy_models_with_same_facts_are_isomorphic() {
        let m = toy_model("m", vec![], vec![(true, f(1)), (false, f(1))]);
        let n = toy_model("n", vec![], vec![(true, f(1)), (false, f(1))]);
        let report = isomorphic_report_obs(&m, &n, 100, &Observer::disabled()).unwrap();
        assert!(report.equivalent, "{report}");
        assert_eq!(report.state_pairs, 2);
        assert_eq!(report.to_string(), "equivalent over 2 state pairs");
    }

    #[test]
    fn dispatcher_routes_each_kind() {
        let m = toy_model("m", vec![], vec![(true, f(1)), (false, f(1))]);
        let n = toy_model("n", vec![], vec![(true, f(1)), (false, f(1))]);
        for kind in [
            EquivKind::Isomorphic,
            EquivKind::Composed { max_depth: 2 },
            EquivKind::StateDependent { max_depth: 2 },
        ] {
            let report = app_models_report_obs(&m, &n, kind, 100, &Observer::disabled()).unwrap();
            assert!(report.equivalent, "{kind:?}: {report}");
        }
    }

    #[test]
    fn composed_finds_two_step_equivalents() {
        // m has a "swap both facts" op; n only has single-fact ops.
        let m = toy_model(
            "m",
            vec![],
            vec![(true, f(1)), (true, f(2)), (false, f(1)), (false, f(2))],
        );
        let n = toy_model(
            "n",
            vec![],
            vec![(true, f(1)), (true, f(2)), (false, f(1)), (false, f(2))],
        );
        let report = composed_report_obs(&m, &n, 100, 2, &Observer::disabled()).unwrap();
        assert!(report.equivalent);
    }

    #[test]
    fn closure_cap_propagates_as_check_error() {
        let m = toy_model("m", vec![], vec![(true, f(1)), (true, f(2)), (true, f(3))]);
        let n = toy_model("n", vec![], vec![(true, f(1)), (true, f(2)), (true, f(3))]);
        let err = isomorphic_report_obs(&m, &n, 3, &Observer::disabled()).unwrap_err();
        assert!(matches!(err, CheckError::Closure(_)));
    }

    #[test]
    fn data_model_report_accessors_and_display() {
        let report = DataModelReport {
            equivalent: false,
            matches_m: vec![("a".into(), vec!["x".into()]), ("b".into(), vec![])],
            matches_n: vec![("x".into(), vec!["a".into()])],
        };
        assert_eq!(report.unmatched_m(), vec!["b"]);
        assert!(report.unmatched_n().is_empty());
        assert!(report.to_string().contains("partially equivalent"));
        let total = DataModelReport {
            equivalent: true,
            matches_m: vec![],
            matches_n: vec![],
        };
        assert_eq!(total.to_string(), "data models are equivalent");
    }

    #[test]
    fn match_report_display_lists_witnesses() {
        let report = MatchReport {
            equivalent: false,
            unmatched_m: vec!["op-a".into()],
            unmatched_n: vec!["op-b".into()],
            state_pairs: 5,
        };
        let text = report.to_string();
        assert!(text.contains("NOT equivalent over 5 state pairs"));
        assert!(text.contains("op-a"));
        assert!(text.contains("op-b"));
    }

    #[test]
    fn per_state_reachability_tracks_errors() {
        // op: 0→1, 1→err.
        let sigs = vec![vec![Some(1), None]];
        let (reach, err) = per_state_reachability(&sigs, 2, 3);
        assert!(reach[0].contains(1));
        assert!(err[0], "0 →op→ 1 →op→ error within depth");
        assert!(err[1]);
        // Depth 1 from state 0: reaches 1, sees no error yet beyond it…
        let (_, err1) = per_state_reachability(&sigs, 2, 1);
        assert!(!err1[0], "error from 0 needs two steps");
        assert!(err1[1]);
    }
}
