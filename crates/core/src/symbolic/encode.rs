//! CNF compilation for the symbolic tier.
//!
//! A [`super::SymbolicSpec`] is a fact-toggle universe: states are
//! subsets of a finite fact list and operations are strict step
//! sequences over it. This module compiles that world into CNF in the
//! `bound_size` style of the VeriEQL line of work:
//!
//! - **operation summaries** — a strict step sequence collapses into a
//!   precondition/postcondition pair over the touched facts (or is
//!   statically infeasible when a fact is stepped twice the same way);
//! - **path unrolling** — `x[t][v]` variables per time step and fact,
//!   one-hot operation selectors per step, implication clauses for each
//!   summary's pre/post and a frame axiom for untouched facts;
//! - **constraint clauses** — `Excludes`/`Requires` as binary clauses
//!   and `AtMost` via the Sinz sequential-counter encoding, asserted on
//!   every post-operation state of the path;
//! - **three-valued bits** — [`Bit`] values (`Const` or a literal) let
//!   operation *results* be substituted into constraints and compared
//!   across models without full Tseitin expansion: a result bit is
//!   either a constant (touched fact) or the final-state literal
//!   (framed fact).

use super::sat::{Lit, Solver};
use super::SymbolicConstraint;

/// A strict step sequence collapsed to its net effect. `pre` lists the
/// fact values required for every step to succeed; `post` the values
/// after the last step; `infeasible` marks sequences that step the same
/// fact twice in the same direction (they error from every state).
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct OpSummary {
    /// Required pre-state values, `(fact index, value)`.
    pub pre: Vec<(usize, bool)>,
    /// Post-state values of every touched fact, `(fact index, value)`.
    pub post: Vec<(usize, bool)>,
    /// Whether the sequence errors from every state.
    pub infeasible: bool,
}

impl OpSummary {
    pub(crate) fn touches(&self, v: usize) -> bool {
        self.post.iter().any(|&(pv, _)| pv == v)
    }
}

/// Collapses a step sequence (`(insert?, fact index)`) into an
/// [`OpSummary`]. Mirrors the strict apply-with-rollback semantics of
/// the scenario operations: an insert requires the fact absent, a
/// delete requires it present, and each step flips the tracked value
/// for later steps of the same operation.
pub(crate) fn summarize(steps: &[(bool, usize)]) -> OpSummary {
    let mut pre: Vec<(usize, bool)> = Vec::new();
    let mut current: Vec<(usize, bool)> = Vec::new();
    for &(add, v) in steps {
        // Insert requires absent, delete requires present.
        let required = !add;
        match current.iter_mut().find(|(cv, _)| *cv == v) {
            Some((_, val)) => {
                if *val != required {
                    return OpSummary {
                        pre: Vec::new(),
                        post: Vec::new(),
                        infeasible: true,
                    };
                }
                *val = add;
            }
            None => {
                pre.push((v, required));
                current.push((v, add));
            }
        }
    }
    OpSummary {
        pre,
        post: current,
        infeasible: false,
    }
}

/// Whether `c` holds in the concrete state `state` (bit `v` = fact `v`
/// present).
pub(crate) fn constraint_holds(c: &SymbolicConstraint, state: u128) -> bool {
    let bit = |v: usize| state >> v & 1 == 1;
    match c {
        SymbolicConstraint::AtMost { vars, cap } => {
            vars.iter().filter(|&&v| bit(v)).count() <= *cap
        }
        SymbolicConstraint::Excludes { a, b } => !(bit(*a) && bit(*b)),
        SymbolicConstraint::Requires { a, b } => !bit(*a) || bit(*b),
    }
}

/// Concretely applies a summarized operation: checks the precondition,
/// writes the postcondition, then requires every constraint on the
/// result — `None` is the error state, exactly the concrete engine's
/// application function.
pub(crate) fn apply_summary(
    sum: &OpSummary,
    state: u128,
    constraints: &[SymbolicConstraint],
) -> Option<u128> {
    if sum.infeasible {
        return None;
    }
    for &(v, want) in &sum.pre {
        if (state >> v & 1 == 1) != want {
            return None;
        }
    }
    let mut next = state;
    for &(v, val) in &sum.post {
        if val {
            next |= 1 << v;
        } else {
            next &= !(1 << v);
        }
    }
    constraints
        .iter()
        .all(|c| constraint_holds(c, next))
        .then_some(next)
}

/// A three-valued circuit bit: a known constant or a solver literal.
#[derive(Clone, Copy, Debug)]
pub(crate) enum Bit {
    Const(bool),
    Is(Lit),
}

impl Bit {
    pub(crate) fn not(self) -> Bit {
        match self {
            Bit::Const(b) => Bit::Const(!b),
            Bit::Is(l) => Bit::Is(l.negate()),
        }
    }
}

/// Asserts the disjunction of `parts` as a clause. Returns `false` when
/// the disjunction is constantly false (the solver is poisoned with the
/// empty clause, so subsequent solves report UNSAT).
pub(crate) fn assert_any(s: &mut Solver, parts: &[Bit]) -> bool {
    let mut lits = Vec::with_capacity(parts.len());
    for &p in parts {
        match p {
            Bit::Const(true) => return true,
            Bit::Const(false) => {}
            Bit::Is(l) => lits.push(l),
        }
    }
    s.add_clause(&lits)
}

/// A fresh bit equivalent to the disjunction of `parts`.
pub(crate) fn or_bit(s: &mut Solver, parts: &[Bit]) -> Bit {
    let mut lits = Vec::with_capacity(parts.len());
    for &p in parts {
        match p {
            Bit::Const(true) => return Bit::Const(true),
            Bit::Const(false) => {}
            Bit::Is(l) => lits.push(l),
        }
    }
    match lits.len() {
        0 => Bit::Const(false),
        1 => Bit::Is(lits[0]),
        _ => {
            let h = Lit::pos(s.new_var());
            let mut clause = vec![h.negate()];
            clause.extend_from_slice(&lits);
            s.add_clause(&clause);
            for l in lits {
                s.add_clause(&[l.negate(), h]);
            }
            Bit::Is(h)
        }
    }
}

/// A bit equivalent to `a ⊕ b`.
pub(crate) fn xor_bit(s: &mut Solver, a: Bit, b: Bit) -> Bit {
    match (a, b) {
        (Bit::Const(x), Bit::Const(y)) => Bit::Const(x != y),
        (Bit::Const(false), bit) | (bit, Bit::Const(false)) => bit,
        (Bit::Const(true), bit) | (bit, Bit::Const(true)) => bit.not(),
        (Bit::Is(l1), Bit::Is(l2)) => {
            if l1 == l2 {
                return Bit::Const(false);
            }
            if l1 == l2.negate() {
                return Bit::Const(true);
            }
            let h = Lit::pos(s.new_var());
            s.add_clause(&[h.negate(), l1, l2]);
            s.add_clause(&[h.negate(), l1.negate(), l2.negate()]);
            s.add_clause(&[h, l1, l2.negate()]);
            s.add_clause(&[h, l1.negate(), l2]);
            Bit::Is(h)
        }
    }
}

/// Exactly one of `lits` is true: an at-least-one clause plus pairwise
/// at-most-one (the selector lists here are small enough that the
/// quadratic encoding is fine).
fn exactly_one(s: &mut Solver, lits: &[Lit]) {
    s.add_clause(lits);
    for i in 0..lits.len() {
        for j in (i + 1)..lits.len() {
            s.add_clause(&[lits[i].negate(), lits[j].negate()]);
        }
    }
}

/// Sinz sequential-counter encoding of "at most `k` of `lits`". When
/// `act` is given, it is prepended to every emitted clause, so the
/// constraint only binds when `act`'s clause-satisfying value is ruled
/// out (pass `h.negate()` to encode `h → AtMost`).
pub(crate) fn at_most(s: &mut Solver, lits: &[Lit], k: usize, act: Option<Lit>) {
    fn emit(s: &mut Solver, act: Option<Lit>, body: &[Lit]) {
        let mut c = Vec::with_capacity(body.len() + 1);
        if let Some(a) = act {
            c.push(a);
        }
        c.extend_from_slice(body);
        s.add_clause(&c);
    }
    let n = lits.len();
    if n <= k {
        return;
    }
    if k == 0 {
        for &l in lits {
            emit(s, act, &[l.negate()]);
        }
        return;
    }
    // r[i][j]: at least j+1 true among lits[0..=i], for i in 0..n-1.
    let r: Vec<Vec<Lit>> = (0..n - 1)
        .map(|_| (0..k).map(|_| Lit::pos(s.new_var())).collect())
        .collect();
    emit(s, act, &[lits[0].negate(), r[0][0]]);
    for rj in r[0].iter().skip(1) {
        emit(s, act, &[rj.negate()]);
    }
    for i in 1..n - 1 {
        emit(s, act, &[lits[i].negate(), r[i][0]]);
        emit(s, act, &[r[i - 1][0].negate(), r[i][0]]);
        for j in 1..k {
            emit(s, act, &[lits[i].negate(), r[i - 1][j - 1].negate(), r[i][j]]);
            emit(s, act, &[r[i - 1][j].negate(), r[i][j]]);
        }
        emit(s, act, &[lits[i].negate(), r[i - 1][k - 1].negate()]);
    }
    emit(s, act, &[lits[n - 1].negate(), r[n - 2][k - 1].negate()]);
}

/// "At least `k` of `lits`", by duality (`act` as in [`at_most`]).
pub(crate) fn at_least(s: &mut Solver, lits: &[Lit], k: usize, act: Option<Lit>) {
    if k == 0 {
        return;
    }
    if k > lits.len() {
        // Impossible: the activation literal itself must hold.
        let clause: Vec<Lit> = act.into_iter().collect();
        s.add_clause(&clause);
        return;
    }
    if k == 1 {
        let mut clause: Vec<Lit> = act.into_iter().collect();
        clause.extend_from_slice(lits);
        s.add_clause(&clause);
        return;
    }
    let negated: Vec<Lit> = lits.iter().map(|l| l.negate()).collect();
    at_most(s, &negated, lits.len() - k, act);
}

/// Asserts `c` over a concrete vector of state literals.
pub(crate) fn assert_constraint(s: &mut Solver, c: &SymbolicConstraint, state: &[Lit]) {
    match c {
        SymbolicConstraint::AtMost { vars, cap } => {
            let lits: Vec<Lit> = vars.iter().map(|&v| state[v]).collect();
            at_most(s, &lits, *cap, None);
        }
        SymbolicConstraint::Excludes { a, b } => {
            s.add_clause(&[state[*a].negate(), state[*b].negate()]);
        }
        SymbolicConstraint::Requires { a, b } => {
            s.add_clause(&[state[*a].negate(), state[*b]]);
        }
    }
}

/// A bit equivalent to "`c` holds", where the state is a vector of
/// [`Bit`]s (an operation result with touched facts substituted as
/// constants).
pub(crate) fn constraint_bit(s: &mut Solver, c: &SymbolicConstraint, state: &[Bit]) -> Bit {
    match c {
        SymbolicConstraint::Excludes { a, b } => {
            or_bit(s, &[state[*a].not(), state[*b].not()])
        }
        SymbolicConstraint::Requires { a, b } => or_bit(s, &[state[*a].not(), state[*b]]),
        SymbolicConstraint::AtMost { vars, cap } => {
            let mut fixed_true = 0usize;
            let mut lits = Vec::new();
            for &v in vars {
                match state[v] {
                    Bit::Const(true) => fixed_true += 1,
                    Bit::Const(false) => {}
                    Bit::Is(l) => lits.push(l),
                }
            }
            if fixed_true > *cap {
                return Bit::Const(false);
            }
            let rem = cap - fixed_true;
            if lits.len() <= rem {
                return Bit::Const(true);
            }
            let h = Lit::pos(s.new_var());
            at_most(s, &lits, rem, Some(h.negate()));
            at_least(s, &lits, rem + 1, Some(h));
            Bit::Is(h)
        }
    }
}

/// A bit equivalent to "this operation succeeds from the state given by
/// `state` literals": the precondition holds and every constraint holds
/// on the result. `Const(false)` for infeasible operations.
pub(crate) fn success_bit(
    s: &mut Solver,
    sum: &OpSummary,
    state: &[Lit],
    constraints: &[SymbolicConstraint],
) -> Bit {
    if sum.infeasible {
        return Bit::Const(false);
    }
    let result = result_bits(sum, state);
    let mut conds: Vec<Lit> = sum
        .pre
        .iter()
        .map(|&(v, want)| if want { state[v] } else { state[v].negate() })
        .collect();
    for c in constraints {
        match constraint_bit(s, c, &result) {
            Bit::Const(false) => return Bit::Const(false),
            Bit::Const(true) => {}
            Bit::Is(l) => conds.push(l),
        }
    }
    match conds.len() {
        0 => Bit::Const(true),
        1 => Bit::Is(conds[0]),
        _ => {
            let h = Lit::pos(s.new_var());
            let mut long = vec![h];
            for &l in &conds {
                s.add_clause(&[h.negate(), l]);
                long.push(l.negate());
            }
            s.add_clause(&long);
            Bit::Is(h)
        }
    }
}

/// The operation's result over `state` literals: touched facts become
/// constants, untouched facts pass the state literal through.
pub(crate) fn result_bits(sum: &OpSummary, state: &[Lit]) -> Vec<Bit> {
    (0..state.len())
        .map(|v| {
            match sum.post.iter().find(|&&(pv, _)| pv == v) {
                Some(&(_, val)) => Bit::Const(val),
                None => Bit::Is(state[v]),
            }
        })
        .collect()
}

/// One unrolled path: `state[t][v]` are the (positive) state literals
/// at time `t ∈ 0..=depth`, `sel[t]` the one-hot operation selectors
/// for the step from `t` to `t+1` (with a trailing stutter selector
/// when enabled).
pub(crate) struct PathEnc {
    pub state: Vec<Vec<Lit>>,
    pub sel: Vec<Vec<Lit>>,
    /// Index of the stutter selector in each `sel[t]`, if enabled.
    pub stutter: Option<usize>,
}

/// Unrolls one model's transition relation to `depth` steps: the
/// initial state is all-false (the empty fact base), each step selects
/// exactly one operation (or the stutter), selected operations imply
/// their pre at `t`, post at `t+1` and frame on untouched facts, and
/// every post-step state satisfies the constraints.
pub(crate) fn encode_path(
    s: &mut Solver,
    summaries: &[OpSummary],
    constraints: &[SymbolicConstraint],
    nvars: usize,
    depth: usize,
    stutter: bool,
) -> PathEnc {
    let state: Vec<Vec<Lit>> = (0..=depth)
        .map(|_| (0..nvars).map(|_| Lit::pos(s.new_var())).collect())
        .collect();
    for l in &state[0] {
        s.add_clause(&[l.negate()]);
    }
    let sel_count = summaries.len() + usize::from(stutter);
    let sel: Vec<Vec<Lit>> = (0..depth)
        .map(|_| (0..sel_count).map(|_| Lit::pos(s.new_var())).collect())
        .collect();
    for t in 0..depth {
        exactly_one(s, &sel[t]);
        for (o, sum) in summaries.iter().enumerate() {
            let so = sel[t][o];
            if sum.infeasible {
                s.add_clause(&[so.negate()]);
                continue;
            }
            for &(v, want) in &sum.pre {
                let l = if want { state[t][v] } else { state[t][v].negate() };
                s.add_clause(&[so.negate(), l]);
            }
            for &(v, val) in &sum.post {
                let l = if val {
                    state[t + 1][v]
                } else {
                    state[t + 1][v].negate()
                };
                s.add_clause(&[so.negate(), l]);
            }
            for v in (0..nvars).filter(|&v| !sum.touches(v)) {
                s.add_clause(&[so.negate(), state[t][v].negate(), state[t + 1][v]]);
                s.add_clause(&[so.negate(), state[t][v], state[t + 1][v].negate()]);
            }
        }
        if stutter {
            let so = sel[t][summaries.len()];
            for (cur, next) in state[t].iter().zip(&state[t + 1]) {
                s.add_clause(&[so.negate(), cur.negate(), *next]);
                s.add_clause(&[so.negate(), *cur, next.negate()]);
            }
        }
        // Constraints hold on every state an operation produces. (The
        // initial empty state satisfies every constraint kind by
        // construction; stuttered states were already constrained when
        // first produced.)
        for c in constraints {
            assert_constraint(s, c, &state[t + 1]);
        }
    }
    PathEnc {
        state,
        sel,
        stutter: stutter.then_some(summaries.len()),
    }
}

/// Blocks the concrete state `bits` at the given state literals: the
/// clause requiring at least one differing fact.
pub(crate) fn block_state(s: &mut Solver, state: &[Lit], bits: u128) {
    let clause: Vec<Lit> = state
        .iter()
        .enumerate()
        .map(|(v, &l)| if bits >> v & 1 == 1 { l.negate() } else { l })
        .collect();
    s.add_clause(&clause);
}

/// Reads the concrete state at `state` literals from the solver model.
pub(crate) fn read_state(s: &Solver, state: &[Lit]) -> u128 {
    let mut bits = 0u128;
    for (v, &l) in state.iter().enumerate() {
        if s.value(l.var()) {
            bits |= 1 << v;
        }
    }
    bits
}

#[cfg(test)]
mod tests {
    use super::super::sat::SatResult;
    use super::*;

    #[test]
    fn summaries_capture_strict_step_semantics() {
        // Insert f0 then delete f0: pre = f0 absent, post = f0 absent.
        let sum = summarize(&[(true, 0), (false, 0)]);
        assert_eq!(sum.pre, vec![(0, false)]);
        assert_eq!(sum.post, vec![(0, false)]);
        assert!(!sum.infeasible);
        // Insert f0 twice: the second insert always fails.
        assert!(summarize(&[(true, 0), (true, 0)]).infeasible);
        // Composite insert f0, delete f1.
        let sum = summarize(&[(true, 0), (false, 1)]);
        assert_eq!(sum.pre, vec![(0, false), (1, true)]);
        assert_eq!(sum.post, vec![(0, true), (1, false)]);
    }

    #[test]
    fn apply_summary_matches_hand_simulation() {
        let ins = summarize(&[(true, 0)]);
        let del = summarize(&[(false, 0)]);
        assert_eq!(apply_summary(&ins, 0b0, &[]), Some(0b1));
        assert_eq!(apply_summary(&ins, 0b1, &[]), None);
        assert_eq!(apply_summary(&del, 0b1, &[]), Some(0b0));
        assert_eq!(apply_summary(&del, 0b0, &[]), None);
        // A constraint on the result turns success into error.
        let excl = SymbolicConstraint::Excludes { a: 0, b: 1 };
        assert_eq!(apply_summary(&ins, 0b10, std::slice::from_ref(&excl)), None);
        assert_eq!(apply_summary(&ins, 0b00, std::slice::from_ref(&excl)), Some(0b1));
    }

    /// Oracle check: for every assignment of `n` plain variables, the
    /// encoded at-most/at-least agrees with counting.
    #[test]
    fn cardinality_encodings_match_counting() {
        for n in 1..=5usize {
            for k in 0..=n {
                for bits in 0u32..1 << n {
                    let count = bits.count_ones() as usize;
                    // AtMost.
                    let mut s = Solver::new();
                    let vars: Vec<usize> = (0..n).map(|_| s.new_var()).collect();
                    let lits: Vec<Lit> = vars.iter().map(|&v| Lit::pos(v)).collect();
                    at_most(&mut s, &lits, k, None);
                    for (i, &v) in vars.iter().enumerate() {
                        s.add_clause(&[Lit::new(v, bits >> i & 1 == 1)]);
                    }
                    assert_eq!(
                        s.solve() == SatResult::Sat,
                        count <= k,
                        "at_most({n} vars, {k}) on {bits:b}"
                    );
                    // AtLeast.
                    let mut s = Solver::new();
                    let vars: Vec<usize> = (0..n).map(|_| s.new_var()).collect();
                    let lits: Vec<Lit> = vars.iter().map(|&v| Lit::pos(v)).collect();
                    at_least(&mut s, &lits, k, None);
                    for (i, &v) in vars.iter().enumerate() {
                        s.add_clause(&[Lit::new(v, bits >> i & 1 == 1)]);
                    }
                    assert_eq!(
                        s.solve() == SatResult::Sat,
                        count >= k,
                        "at_least({n} vars, {k}) on {bits:b}"
                    );
                }
            }
        }
    }

    #[test]
    fn path_encoding_enumerates_exactly_the_reachable_layer() {
        // Two independent toggleable facts, insert/delete each: at depth
        // 1 exactly the two singleton states are reachable.
        let summaries = vec![
            summarize(&[(true, 0)]),
            summarize(&[(false, 0)]),
            summarize(&[(true, 1)]),
            summarize(&[(false, 1)]),
        ];
        let mut s = Solver::new();
        let enc = encode_path(&mut s, &summaries, &[], 2, 1, false);
        block_state(&mut s, &enc.state[1], 0b00); // the known initial state
        let mut found = Vec::new();
        while s.solve() == SatResult::Sat {
            let st = read_state(&s, &enc.state[1]);
            found.push(st);
            block_state(&mut s, &enc.state[1], st);
        }
        found.sort_unstable();
        assert_eq!(found, vec![0b01, 0b10]);
    }
}
