//! The symbolic bounded-equivalence tier.
//!
//! Every other checker in this crate decides Definitions 2/3/5/6 by
//! *enumerating* the full state closure, so cost is Θ(states) even when
//! a small bound would settle the verdict. This module decides the same
//! definitions **up to a bound** by compiling the model into CNF — in
//! the `bound_size` spirit of VeriEQL's `bound_size = 2` — and asking a
//! vendored CDCL core ([`sat`]) instead of walking states:
//!
//! - [`SymbolicChecker::run`] is the **decide mode**: per-depth path
//!   unrollings enumerate the closure's BFS layers via blocking clauses.
//!   A round that yields no new state proves the closure complete
//!   (every state at BFS distance *d+1* has a predecessor at distance
//!   *d*), after which the verdict is computed over the discovered
//!   states and is **bit-identical** to the enumerative engine's — the
//!   differential suite in `tests/symbolic.rs` pins this. If the bound
//!   runs out first, the outcome is [`SymbolicOutcome::BoundExhausted`]:
//!   **no verdict** — never "equivalent".
//! - [`SymbolicChecker::find_counterexample`] is the **find mode**: two
//!   parallel path unrollings (with stutter steps) constrain a state
//!   reachable on *both* sides within the bound where a probed
//!   operation behaves differently from every operation of the other
//!   model — a Definition 2 counterexample. One SAT query per operation
//!   pair, independent of closure size: this is where symbolic beats
//!   enumeration (the `symbolic_crossover` bench row), because a
//!   mutated operation is refuted at bound 2 while the enumerative
//!   engine walks 2^toggles states. A `None` answer is *inconclusive*
//!   (no witness within the bound), mirroring the bounded-verification
//!   contract.
//!
//! The decision procedure reimplements the signature algebra
//! (composition, reachability, matching) independently of
//! [`crate::equiv`] on purpose: the differential suite then compares
//! two genuinely separate implementations, not one implementation with
//! two state sources.
//!
//! ## Scope
//!
//! The symbolic tier covers **fact-toggle universes**: models whose
//! states are subsets of a finite fact list and whose operations are
//! strict insert/delete step sequences with `AtMost`/`Excludes`/
//! `Requires` state constraints — exactly the workload scenario corpus
//! (`dme_workload::scenario::Scenario::symbolic_spec`) and the
//! toy-model fixtures of the test suite. The relational and graph
//! witness models go through the enumerative engine or the translators.

pub mod sat;

mod encode;

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use dme_logic::{Fact, FactBase};
use dme_obs::{Counter, Metric, Observer};

use crate::check::Tier;
use crate::equiv::{CheckError, DataModelReport, MatchReport};
use crate::model::ClosureTooLarge;
use crate::parallel::{Side, Verdict, Witness};

use encode::{
    apply_summary, assert_any, block_state, encode_path, read_state, result_bits, success_bit,
    summarize, xor_bit, OpSummary,
};
use sat::{SatResult, Solver};

/// Default path-length bound for [`SymbolicChecker`]: deep enough to
/// close every corpus scenario's BFS layers, small enough that each
/// round's CNF stays tiny.
pub const DEFAULT_BOUND: usize = 12;

/// One operation of a [`SymbolicSpec`]: a strict sequence of
/// insert/delete steps over universe fact indices, with the display
/// label the enumerative engine would report as a witness.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SymbolicOp {
    /// Witness label; must equal the `Display` form of the concrete
    /// operation for verdicts to be bit-identical.
    pub label: String,
    /// The steps, applied in order: `(true, v)` inserts fact `v` (error
    /// if present), `(false, v)` deletes it (error if absent). Any step
    /// failing means the whole operation errors.
    pub steps: Vec<(bool, usize)>,
}

/// A state constraint over universe fact indices; a state is valid iff
/// every constraint holds.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SymbolicConstraint {
    /// At most `cap` of the listed facts may hold simultaneously.
    AtMost {
        /// The constrained fact indices.
        vars: Vec<usize>,
        /// Maximum number of them that may hold.
        cap: usize,
    },
    /// Facts `a` and `b` may not hold simultaneously.
    Excludes {
        /// First fact index.
        a: usize,
        /// Second fact index.
        b: usize,
    },
    /// If fact `a` holds then fact `b` must hold.
    Requires {
        /// The triggering fact index.
        a: usize,
        /// The required fact index.
        b: usize,
    },
}

/// A fact-toggle model in symbolic form: the input language of the
/// symbolic tier. States are subsets of `facts`, the initial state is
/// empty, and `ops` + `constraints` define the transition relation (an
/// operation succeeds iff all its steps apply strictly and the result
/// satisfies every constraint — the same semantics as the scenario
/// corpus models).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SymbolicSpec {
    /// Model name, as reported in closure errors and Definition 6
    /// witnesses; must equal the concrete model's name for verdict
    /// bit-identity.
    pub name: String,
    /// The fact universe; states are subsets of it. At most 128 facts.
    pub facts: Vec<Fact>,
    /// The operation alphabet.
    pub ops: Vec<SymbolicOp>,
    /// The state constraints.
    pub constraints: Vec<SymbolicConstraint>,
}

impl SymbolicSpec {
    /// The toggle spec over `facts`: one insert and one delete
    /// operation per fact, labelled `+{fact}` / `-{fact}` and sorted by
    /// label — the same operation alphabet (and order) as the test
    /// suite's toy models, which build their op list through a
    /// `BTreeMap` keyed by label.
    pub fn toggles(name: &str, facts: Vec<Fact>) -> SymbolicSpec {
        let mut by_label: BTreeMap<String, (bool, usize)> = BTreeMap::new();
        for (v, fact) in facts.iter().enumerate() {
            by_label.insert(format!("+{fact}"), (true, v));
            by_label.insert(format!("-{fact}"), (false, v));
        }
        let ops = by_label
            .into_iter()
            .map(|(label, step)| SymbolicOp {
                label,
                steps: vec![step],
            })
            .collect();
        SymbolicSpec {
            name: name.to_owned(),
            facts,
            ops,
            constraints: Vec::new(),
        }
    }

    /// Replays an operation-index path concretely from the empty state:
    /// the reached fact base, or `None` if any operation along the path
    /// errors. This is the bridge the bound-soundness tests use to show
    /// a symbolic witness is a real concrete execution.
    pub fn replay(&self, path: &[usize]) -> Option<FactBase> {
        let summaries: Vec<OpSummary> =
            self.ops.iter().map(|op| summarize(&op.steps)).collect();
        let mut state = 0u128;
        for &i in path {
            state = apply_summary(&summaries[i], state, &self.constraints)?;
        }
        Some(self.fact_base(state))
    }

    /// Applies one operation to a concrete fact-subset state (given as
    /// a fact base over this spec's universe); `None` is the error
    /// state.
    pub fn apply_op(&self, op_index: usize, state: &FactBase) -> Option<FactBase> {
        let mut bits = 0u128;
        for (v, fact) in self.facts.iter().enumerate() {
            if state.holds(fact) {
                bits |= 1 << v;
            }
        }
        let sum = summarize(&self.ops[op_index].steps);
        apply_summary(&sum, bits, &self.constraints).map(|next| self.fact_base(next))
    }

    fn fact_base(&self, bits: u128) -> FactBase {
        FactBase::from_facts(
            self.facts
                .iter()
                .enumerate()
                .filter(|(v, _)| bits >> v & 1 == 1)
                .map(|(_, f)| f.clone())
                .collect::<Vec<Fact>>(),
        )
    }
}

/// Outcome of a symbolic decide-mode check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SymbolicOutcome {
    /// The bound sufficed: every closure reached its fixpoint, and this
    /// is exactly the result the enumerative engine returns for the
    /// same models (bit-identical verdicts, witnesses and errors).
    Definitive(Result<Verdict, CheckError>),
    /// The bound ran out before some closure reached its fixpoint.
    /// This means **no verdict** — in particular it never means
    /// "equivalent": states beyond the bound could still distinguish
    /// the models.
    BoundExhausted {
        /// The bound that was exhausted.
        bound: usize,
        /// States discovered in the closure that failed to complete.
        states_found: usize,
    },
}

impl SymbolicOutcome {
    /// The definitive result, if the bound sufficed.
    pub fn definitive(&self) -> Option<&Result<Verdict, CheckError>> {
        match self {
            SymbolicOutcome::Definitive(r) => Some(r),
            SymbolicOutcome::BoundExhausted { .. } => None,
        }
    }

    /// Whether the bound ran out (no verdict).
    pub fn is_bound_exhausted(&self) -> bool {
        matches!(self, SymbolicOutcome::BoundExhausted { .. })
    }
}

/// One satisfying assignment of a find-mode differ query, decoded into
/// concrete operation paths: replaying `path_m` on the left model and
/// `path_n` on the right model reaches the *same* application state,
/// from which the probed operation and `vs_op` behave differently.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DifferTrace {
    /// Operation indices into the left model, from the empty state.
    pub path_m: Vec<usize>,
    /// Operation indices into the right model, from the empty state.
    pub path_n: Vec<usize>,
    /// The opposite-side operation this trace distinguishes the probed
    /// operation from.
    pub vs_op: usize,
}

/// A Definition 2 counterexample found symbolically: an operation with
/// no behavioural equivalent on the other side, with one replayable
/// [`DifferTrace`] per opposite operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FoundCounterexample {
    /// Which model the unmatched operation belongs to.
    pub side: Side,
    /// Index of the unmatched operation in its model.
    pub op_index: usize,
    /// The operation's witness label.
    pub label: String,
    /// One differ witness per opposite-side operation (empty when the
    /// other side has no operations).
    pub traces: Vec<DifferTrace>,
}

impl FoundCounterexample {
    /// The counterexample as the engine's [`Witness`] type — the same
    /// `(side, label)` entry the enumerative isomorphic check reports.
    pub fn to_witness(&self) -> Witness {
        Witness {
            side: self.side,
            label: self.label.clone(),
        }
    }
}

/// What a [`SymbolicChecker`] compares.
enum SymTarget<'a> {
    Pair(&'a SymbolicSpec, &'a SymbolicSpec),
    Sets(&'a [SymbolicSpec], &'a [SymbolicSpec]),
}

/// The symbolic counterpart of [`crate::Checker`]: same tiers, same
/// verdict type, but decided by bounded CNF encoding instead of closure
/// enumeration. See the module docs for the decide/find split.
pub struct SymbolicChecker<'a> {
    target: SymTarget<'a>,
    tier: Tier,
    state_cap: usize,
    bound: usize,
    observer: Observer,
}

impl<'a> SymbolicChecker<'a> {
    /// A checker over one model pair. Defaults to [`Tier::Isomorphic`],
    /// [`crate::DEFAULT_STATE_CAP`] and [`DEFAULT_BOUND`].
    pub fn new(m: &'a SymbolicSpec, n: &'a SymbolicSpec) -> Self {
        SymbolicChecker {
            target: SymTarget::Pair(m, n),
            tier: Tier::Isomorphic,
            state_cap: crate::check::DEFAULT_STATE_CAP,
            bound: DEFAULT_BOUND,
            observer: Observer::disabled(),
        }
    }

    /// A checker over two data models (sets of application models),
    /// defaulting to Definition 6 over isomorphic equivalence.
    pub fn data_models(ms: &'a [SymbolicSpec], ns: &'a [SymbolicSpec]) -> Self {
        SymbolicChecker {
            target: SymTarget::Sets(ms, ns),
            tier: Tier::DataModel {
                kind: crate::equiv::EquivKind::Isomorphic,
            },
            state_cap: crate::check::DEFAULT_STATE_CAP,
            bound: DEFAULT_BOUND,
            observer: Observer::disabled(),
        }
    }

    /// Selects the equivalence tier (same meaning as on the facade).
    pub fn tier(mut self, tier: Tier) -> Self {
        self.tier = tier;
        self
    }

    /// Caps closure discovery at `cap` states per model; exceeding it
    /// is [`CheckError::Closure`] with the same error the enumerative
    /// engine raises.
    pub fn state_cap(mut self, cap: usize) -> Self {
        self.state_cap = cap;
        self
    }

    /// Sets the path-length bound for both modes (default
    /// [`DEFAULT_BOUND`]). Decide mode needs `bound` ≥ closure BFS
    /// diameter + 1 to certify the fixpoint; find mode searches paths
    /// of exactly `bound` steps (with stutters, so shorter paths are
    /// included).
    pub fn bound(mut self, bound: usize) -> Self {
        self.bound = bound;
        self
    }

    /// Attaches an observer: clause/conflict totals land in the
    /// `symbolic_clauses` / `symbolic_conflicts` counters and exhausted
    /// bounds in `bound_exhausted`.
    pub fn observer(mut self, observer: Observer) -> Self {
        self.observer = observer;
        self
    }

    /// Decide mode: the verdict up to the bound. See
    /// [`SymbolicOutcome`] for the definitive-vs-exhausted contract.
    pub fn run(&self) -> SymbolicOutcome {
        let _span = self.observer.span("symbolic/decide");
        let outcome = match (&self.target, self.tier) {
            (SymTarget::Sets(..), Tier::Operation) => {
                SymbolicOutcome::Definitive(Err(CheckError::Unsupported(
                    "Definition 1 compares the aligned operations of a single model pair; \
                     data-model sets have no operation alignment"
                        .into(),
                )))
            }
            (SymTarget::Pair(m, n), Tier::DataModel { kind }) => self.run_grid(
                std::slice::from_ref(*m),
                std::slice::from_ref(*n),
                Tier::from_kind(kind),
            ),
            (SymTarget::Pair(m, n), tier) => self.run_pair(m, n, tier),
            (SymTarget::Sets(ms, ns), tier) => self.run_grid(ms, ns, tier),
        };
        if outcome.is_bound_exhausted() {
            self.observer.add(Counter::BoundExhausted, 1);
        }
        outcome
    }

    fn run_pair(&self, m: &SymbolicSpec, n: &SymbolicSpec, tier: Tier) -> SymbolicOutcome {
        let me = match self.enumerate(m) {
            Ok(e) => e,
            Err(stop) => return stop,
        };
        let ne = match self.enumerate(n) {
            Ok(e) => e,
            Err(stop) => return stop,
        };
        let report = match tier {
            Tier::Operation => operation_match(&me, &ne),
            Tier::Isomorphic => app_match(&me, &ne, MatchKind::Isomorphic),
            Tier::Composed { max_depth } => {
                app_match(&me, &ne, MatchKind::Composed { max_depth })
            }
            Tier::StateDependent { max_depth } => {
                app_match(&me, &ne, MatchKind::StateDependent { max_depth })
            }
            Tier::DataModel { .. } => unreachable!("grid tiers handled by run_grid"),
        };
        SymbolicOutcome::Definitive(report.map(|r| r.to_verdict()))
    }

    /// Definition 6: replicates the enumerative grid loop — each
    /// model's closure discovered once, a pairing failure in a cell
    /// meaning "not equivalent" (skip), any other error propagating.
    fn run_grid(&self, ms: &[SymbolicSpec], ns: &[SymbolicSpec], tier: Tier) -> SymbolicOutcome {
        let kind = match tier {
            Tier::Operation => {
                return SymbolicOutcome::Definitive(Err(CheckError::Unsupported(
                    "Definition 1 compares the aligned operations of a single model pair; \
                     data-model sets have no operation alignment"
                        .into(),
                )))
            }
            Tier::Isomorphic => MatchKind::Isomorphic,
            Tier::Composed { max_depth } => MatchKind::Composed { max_depth },
            Tier::StateDependent { max_depth } => MatchKind::StateDependent { max_depth },
            Tier::DataModel { kind } => match Tier::from_kind(kind) {
                Tier::Isomorphic => MatchKind::Isomorphic,
                Tier::Composed { max_depth } => MatchKind::Composed { max_depth },
                Tier::StateDependent { max_depth } => MatchKind::StateDependent { max_depth },
                _ => unreachable!("EquivKind maps onto the three app-model tiers"),
            },
        };
        let mut m_enums = Vec::with_capacity(ms.len());
        for m in ms {
            match self.enumerate(m) {
                Ok(e) => m_enums.push(e),
                Err(stop) => return stop,
            }
        }
        let mut n_enums = Vec::with_capacity(ns.len());
        for n in ns {
            match self.enumerate(n) {
                Ok(e) => n_enums.push(e),
                Err(stop) => return stop,
            }
        }
        let mut matches_m: Vec<(String, Vec<String>)> = Vec::new();
        let mut matches_n: Vec<(String, Vec<String>)> = n_enums
            .iter()
            .map(|n| (n.name.clone(), Vec::new()))
            .collect();
        for me in &m_enums {
            let mut found = Vec::new();
            for (ni, ne) in n_enums.iter().enumerate() {
                let report = match app_match(me, ne, kind) {
                    Ok(r) => r,
                    Err(CheckError::Pairing(_)) => continue,
                    Err(e) => return SymbolicOutcome::Definitive(Err(e)),
                };
                if report.equivalent {
                    found.push(ne.name.clone());
                    matches_n[ni].1.push(me.name.clone());
                }
            }
            matches_m.push((me.name.clone(), found));
        }
        let equivalent = matches_m.iter().all(|(_, v)| !v.is_empty())
            && matches_n.iter().all(|(_, v)| !v.is_empty());
        SymbolicOutcome::Definitive(Ok(DataModelReport {
            equivalent,
            matches_m,
            matches_n,
        }
        .to_verdict()))
    }

    /// Discovers one spec's closure by per-depth SAT layer enumeration.
    fn enumerate(&self, spec: &SymbolicSpec) -> Result<SymEnum, SymbolicOutcome> {
        let nvars = spec.facts.len();
        if nvars > 128 {
            return Err(SymbolicOutcome::Definitive(Err(CheckError::Unsupported(
                format!(
                    "symbolic tier supports at most 128 facts per universe; `{}` has {nvars}",
                    spec.name
                ),
            ))));
        }
        let summaries: Vec<OpSummary> =
            spec.ops.iter().map(|op| summarize(&op.steps)).collect();
        let mut known: BTreeSet<u128> = BTreeSet::new();
        known.insert(0);
        let mut complete = false;
        for depth in 1..=self.bound {
            let mut solver = Solver::new();
            let enc = encode_path(
                &mut solver,
                &summaries,
                &spec.constraints,
                nvars,
                depth,
                false,
            );
            for &st in &known {
                block_state(&mut solver, &enc.state[depth], st);
            }
            let mut new_states = 0usize;
            loop {
                match solver.solve() {
                    SatResult::Unsat => break,
                    SatResult::Sat => {
                        let st = read_state(&solver, &enc.state[depth]);
                        if known.len() >= self.state_cap {
                            self.record_solver(&solver);
                            return Err(SymbolicOutcome::Definitive(Err(CheckError::Closure(
                                ClosureTooLarge {
                                    model: spec.name.clone(),
                                    cap: self.state_cap,
                                },
                            ))));
                        }
                        let fresh = known.insert(st);
                        debug_assert!(fresh, "blocked states cannot reappear");
                        new_states += 1;
                        block_state(&mut solver, &enc.state[depth], st);
                    }
                }
            }
            self.record_solver(&solver);
            if new_states == 0 {
                complete = true;
                break;
            }
        }
        if !complete {
            return Err(SymbolicOutcome::BoundExhausted {
                bound: self.bound,
                states_found: known.len(),
            });
        }
        let states: Vec<u128> = known.into_iter().collect();
        let transitions: Vec<Vec<Option<u32>>> = summaries
            .iter()
            .map(|sum| {
                states
                    .iter()
                    .map(|&st| {
                        apply_summary(sum, st, &spec.constraints).map(|next| {
                            states
                                .binary_search(&next)
                                .expect("closure is closed under successful operations")
                                as u32
                        })
                    })
                    .collect()
            })
            .collect();
        Ok(SymEnum {
            name: spec.name.clone(),
            labels: spec.ops.iter().map(|op| op.label.clone()).collect(),
            facts: spec.facts.clone(),
            states,
            transitions,
        })
    }

    /// Records one solver's cumulative work into the observer: the
    /// global counters, plus one observation per per-depth probe
    /// histogram. Each depth layer runs a fresh solver, so one call per
    /// retired solver makes the histograms a per-layer budget profile —
    /// a `BoundExhausted` verdict ships with where the budget went.
    fn record_solver(&self, solver: &Solver) {
        let stats = solver.stats();
        self.observer.add(Counter::SymbolicClauses, stats.clauses);
        self.observer.add(Counter::SymbolicConflicts, stats.conflicts);
        self.observer.add(Counter::SymbolicRestarts, stats.restarts);
        self.observer
            .record(Metric::SymbolicDecisionsPerDepth, stats.decisions);
        self.observer
            .record(Metric::SymbolicConflictsPerDepth, stats.conflicts);
        self.observer
            .record(Metric::SymbolicClausesPerDepth, stats.clauses);
        self.observer
            .record(Metric::SymbolicRestartsPerDepth, stats.restarts);
    }

    /// Find mode: searches, within the bound, for a Definition 2
    /// counterexample — an operation that behaves differently from
    /// *every* opposite-side operation at some state reachable on both
    /// sides. One SAT query per operation pair (same-index twins are
    /// probed first, so matching twins cost a single UNSAT query), no
    /// closure enumeration at all.
    ///
    /// `Ok(None)` is **inconclusive**: no witness exists within the
    /// bound, which proves nothing about equivalence. Only defined for
    /// [`SymbolicChecker::new`] pairs.
    pub fn find_counterexample(&self) -> Result<Option<FoundCounterexample>, CheckError> {
        let (m, n) = match self.target {
            SymTarget::Pair(m, n) => (m, n),
            SymTarget::Sets(..) => {
                return Err(CheckError::Unsupported(
                    "find_counterexample compares a single model pair; use run() for \
                     data-model sets"
                        .into(),
                ))
            }
        };
        let _span = self.observer.span("symbolic/find");
        let (joint_facts, m_map, n_map) = joint_universe(m, n);
        if joint_facts.len() > 128 {
            return Err(CheckError::Unsupported(format!(
                "symbolic tier supports at most 128 joint facts; `{}` vs `{}` has {}",
                m.name,
                n.name,
                joint_facts.len()
            )));
        }
        let mctx = JointCtx::build(m, &m_map);
        let nctx = JointCtx::build(n, &n_map);
        let nvars = joint_facts.len();
        for idx in 0..m.ops.len().max(n.ops.len()) {
            for side in [Side::Left, Side::Right] {
                let (probe_ops, against_ops) = match side {
                    Side::Left => (m.ops.len(), n.ops.len()),
                    Side::Right => (n.ops.len(), m.ops.len()),
                };
                if idx >= probe_ops {
                    continue;
                }
                // Twin first: an unmutated operation is dismissed by
                // one UNSAT query against its same-index counterpart.
                let mut order: Vec<usize> = Vec::with_capacity(against_ops);
                if idx < against_ops {
                    order.push(idx);
                }
                order.extend((0..against_ops).filter(|&j| j != idx));
                let mut traces = Vec::with_capacity(against_ops);
                let mut matched = false;
                for j in order {
                    match self.differ_query(&mctx, &nctx, nvars, side, idx, j) {
                        None => {
                            matched = true;
                            break;
                        }
                        Some((path_m, path_n)) => traces.push(DifferTrace {
                            path_m,
                            path_n,
                            vs_op: j,
                        }),
                    }
                }
                if !matched {
                    let label = match side {
                        Side::Left => m.ops[idx].label.clone(),
                        Side::Right => n.ops[idx].label.clone(),
                    };
                    self.observer.add(Counter::WitnessesFound, 1);
                    return Ok(Some(FoundCounterexample {
                        side,
                        op_index: idx,
                        label,
                        traces,
                    }));
                }
            }
        }
        Ok(None)
    }

    /// One differ query: is there a state reachable on both sides
    /// (within the bound) where the probed operation and opposite
    /// operation `j` disagree — one succeeds and the other errors, or
    /// both succeed with different results? Returns the reaching paths.
    fn differ_query(
        &self,
        mctx: &JointCtx,
        nctx: &JointCtx,
        nvars: usize,
        probe_side: Side,
        probe: usize,
        j: usize,
    ) -> Option<(Vec<usize>, Vec<usize>)> {
        let mut s = Solver::new();
        let pm = encode_path(
            &mut s,
            &mctx.summaries,
            &mctx.constraints,
            nvars,
            self.bound,
            true,
        );
        let pn = encode_path(
            &mut s,
            &nctx.summaries,
            &nctx.constraints,
            nvars,
            self.bound,
            true,
        );
        // The two paths meet: final states equal, fact by fact.
        for v in 0..nvars {
            s.add_clause(&[pm.state[self.bound][v].negate(), pn.state[self.bound][v]]);
            s.add_clause(&[pm.state[self.bound][v], pn.state[self.bound][v].negate()]);
        }
        // Everything below reads the *left* path's final state; the
        // equality clauses make it the shared state.
        let shared = &pm.state[self.bound];
        let (a_sum, a_cons, b_sum, b_cons) = match probe_side {
            Side::Left => (
                &mctx.summaries[probe],
                &mctx.constraints,
                &nctx.summaries[j],
                &nctx.constraints,
            ),
            Side::Right => (
                &nctx.summaries[probe],
                &nctx.constraints,
                &mctx.summaries[j],
                &mctx.constraints,
            ),
        };
        let sa = success_bit(&mut s, a_sum, shared, a_cons);
        let sb = success_bit(&mut s, b_sum, shared, b_cons);
        let ra = result_bits(a_sum, shared);
        let rb = result_bits(b_sum, shared);
        let mut differ_clause = vec![sa.not(), sb.not()];
        for v in 0..nvars {
            differ_clause.push(xor_bit(&mut s, ra[v], rb[v]));
        }
        // differ ≡ (sa ∨ sb) ∧ (¬sa ∨ ¬sb ∨ results differ).
        let consistent = assert_any(&mut s, &[sa, sb]) && assert_any(&mut s, &differ_clause);
        if !consistent {
            self.record_solver(&s);
            return None;
        }
        let outcome = s.solve();
        self.record_solver(&s);
        match outcome {
            SatResult::Unsat => None,
            SatResult::Sat => Some((extract_path(&s, &pm), extract_path(&s, &pn))),
        }
    }
}

/// A discovered closure in symbolic form: sorted fact-subset states
/// with the full transition table — the symbolic analogue of the
/// enumerative `EnumeratedModel`.
struct SymEnum {
    name: String,
    labels: Vec<String>,
    facts: Vec<Fact>,
    /// Sorted fact-subset states over the spec's local universe.
    states: Vec<u128>,
    /// `transitions[op][state index]` = successor state index, `None`
    /// for the error state.
    transitions: Vec<Vec<Option<u32>>>,
}

/// A behaviour signature over pair indices (local reimplementation —
/// see the module docs on differential independence).
type Sig = Vec<Option<u32>>;

enum MatchKind {
    Isomorphic,
    Composed { max_depth: usize },
    StateDependent { max_depth: usize },
}

impl Clone for MatchKind {
    fn clone(&self) -> Self {
        *self
    }
}
impl Copy for MatchKind {}

/// One spec's operation summaries and constraints remapped into a
/// joint pair universe (for find mode).
struct JointCtx {
    summaries: Vec<OpSummary>,
    constraints: Vec<SymbolicConstraint>,
}

impl JointCtx {
    fn build(spec: &SymbolicSpec, map: &[usize]) -> JointCtx {
        let summaries = spec
            .ops
            .iter()
            .map(|op| {
                let steps: Vec<(bool, usize)> =
                    op.steps.iter().map(|&(add, v)| (add, map[v])).collect();
                summarize(&steps)
            })
            .collect();
        let constraints = spec
            .constraints
            .iter()
            .map(|c| match c {
                SymbolicConstraint::AtMost { vars, cap } => SymbolicConstraint::AtMost {
                    vars: vars.iter().map(|&v| map[v]).collect(),
                    cap: *cap,
                },
                SymbolicConstraint::Excludes { a, b } => SymbolicConstraint::Excludes {
                    a: map[*a],
                    b: map[*b],
                },
                SymbolicConstraint::Requires { a, b } => SymbolicConstraint::Requires {
                    a: map[*a],
                    b: map[*b],
                },
            })
            .collect();
        JointCtx {
            summaries,
            constraints,
        }
    }
}

/// The union universe of a model pair, with each side's fact-index map
/// into it (left facts first, then right facts not already present).
fn joint_universe(m: &SymbolicSpec, n: &SymbolicSpec) -> (Vec<Fact>, Vec<usize>, Vec<usize>) {
    let mut joint: Vec<Fact> = m.facts.clone();
    let m_map: Vec<usize> = (0..m.facts.len()).collect();
    let n_map: Vec<usize> = n
        .facts
        .iter()
        .map(|f| match joint.iter().position(|g| g == f) {
            Some(i) => i,
            None => {
                joint.push(f.clone());
                joint.len() - 1
            }
        })
        .collect();
    (joint, m_map, n_map)
}

/// Reads one path's operation sequence from a model, dropping stutter
/// steps.
fn extract_path(s: &Solver, enc: &encode::PathEnc) -> Vec<usize> {
    let mut path = Vec::new();
    for sel in &enc.sel {
        let chosen = sel
            .iter()
            .position(|l| s.value(l.var()))
            .expect("exactly-one selector per step");
        if Some(chosen) != enc.stutter {
            path.push(chosen);
        }
    }
    path
}

/// The §3.3.1 state equivalence correspondence over two discovered
/// closures: states pair iff they compile to the same fact set in the
/// joint universe. Errors exactly as the enumerative pairing does when
/// the correspondence is not onto. (Injectivity cannot fail here:
/// symbolic states *are* fact sets.)
struct SymPaired {
    pairs: usize,
    m_by_pair: Vec<u32>,
    n_by_pair: Vec<u32>,
    m_rank: Vec<u32>,
    n_rank: Vec<u32>,
}

fn pair_sym(me: &SymEnum, ne: &SymEnum) -> Result<SymPaired, CheckError> {
    let (joint, m_map, n_map) = {
        // Rebuild the joint universe from the enumerated facts.
        let m_spec_facts = &me.facts;
        let mut joint: Vec<Fact> = m_spec_facts.clone();
        let m_map: Vec<usize> = (0..m_spec_facts.len()).collect();
        let n_map: Vec<usize> = ne
            .facts
            .iter()
            .map(|f| match joint.iter().position(|g| g == f) {
                Some(i) => i,
                None => {
                    joint.push(f.clone());
                    joint.len() - 1
                }
            })
            .collect();
        (joint, m_map, n_map)
    };
    if joint.len() > 128 {
        return Err(CheckError::Unsupported(format!(
            "symbolic tier supports at most 128 joint facts; `{}` vs `{}` has {}",
            me.name,
            ne.name,
            joint.len()
        )));
    }
    let remap = |bits: u128, map: &[usize]| -> u128 {
        let mut out = 0u128;
        for (v, &jv) in map.iter().enumerate() {
            if bits >> v & 1 == 1 {
                out |= 1 << jv;
            }
        }
        out
    };
    let m_by_joint: BTreeMap<u128, u32> = me
        .states
        .iter()
        .enumerate()
        .map(|(i, &st)| (remap(st, &m_map), i as u32))
        .collect();
    let n_by_joint: BTreeMap<u128, u32> = ne
        .states
        .iter()
        .enumerate()
        .map(|(i, &st)| (remap(st, &n_map), i as u32))
        .collect();
    if m_by_joint.len() != n_by_joint.len() || !m_by_joint.keys().eq(n_by_joint.keys()) {
        let only_left = m_by_joint
            .keys()
            .filter(|k| !n_by_joint.contains_key(*k))
            .count();
        let only_right = n_by_joint
            .keys()
            .filter(|k| !m_by_joint.contains_key(*k))
            .count();
        return Err(CheckError::Pairing(format!(
            "state sets are not onto: {only_left} application states expressible only on the left, {only_right} only on the right"
        )));
    }
    let m_by_pair: Vec<u32> = m_by_joint.into_values().collect();
    let n_by_pair: Vec<u32> = n_by_joint.into_values().collect();
    let mut m_rank = vec![0u32; me.states.len()];
    for (p, &si) in m_by_pair.iter().enumerate() {
        m_rank[si as usize] = p as u32;
    }
    let mut n_rank = vec![0u32; ne.states.len()];
    for (p, &si) in n_by_pair.iter().enumerate() {
        n_rank[si as usize] = p as u32;
    }
    Ok(SymPaired {
        pairs: m_by_pair.len(),
        m_by_pair,
        n_by_pair,
        m_rank,
        n_rank,
    })
}

fn relabel(e: &SymEnum, by_pair: &[u32], rank: &[u32]) -> Vec<Sig> {
    e.transitions
        .iter()
        .map(|row| {
            by_pair
                .iter()
                .map(|&si| row[si as usize].map(|t| rank[t as usize]))
                .collect()
        })
        .collect()
}

fn sig_identity(n: usize) -> Sig {
    (0..n as u32).map(Some).collect()
}

fn sig_compose(first: &Sig, then: &Sig) -> Sig {
    first
        .iter()
        .map(|r| r.and_then(|i| then[i as usize]))
        .collect()
}

/// All signatures expressible as compositions of at most `max_depth`
/// operations (including the identity, the empty composition).
fn composable_sigs(op_sigs: &[Sig], pairs: usize, max_depth: usize) -> BTreeSet<Sig> {
    let mut seen: BTreeSet<Sig> = BTreeSet::new();
    let identity = sig_identity(pairs);
    seen.insert(identity.clone());
    let mut frontier = vec![identity];
    for _ in 0..max_depth {
        let mut next_frontier = Vec::new();
        for sig in &frontier {
            for op in op_sigs {
                let composed = sig_compose(sig, op);
                if seen.insert(composed.clone()) {
                    next_frontier.push(composed);
                }
            }
        }
        if next_frontier.is_empty() {
            break;
        }
        frontier = next_frontier;
    }
    seen
}

/// Per-start reachability within `max_depth` steps, and whether the
/// error state is reachable (by erroring at any point along a valid
/// prefix) — the Definition 5 semantics, matching the enumerative
/// engine's depth accounting exactly.
fn reach_from(op_sigs: &[Sig], pairs: usize, start: u32, max_depth: usize) -> (Vec<bool>, bool) {
    let mut seen = vec![false; pairs];
    seen[start as usize] = true;
    let mut queue: VecDeque<(u32, usize)> = VecDeque::new();
    queue.push_back((start, 0));
    let mut error = false;
    while let Some((state, depth)) = queue.pop_front() {
        if depth >= max_depth {
            continue;
        }
        for sig in op_sigs {
            match sig[state as usize] {
                Some(next) => {
                    if !seen[next as usize] {
                        seen[next as usize] = true;
                        queue.push_back((next, depth + 1));
                    }
                }
                None => error = true,
            }
        }
    }
    (seen, error)
}

/// Definition 1 lifted to whole models: index-aligned signature
/// equality, mismatches contributing both operations and length
/// overhang contributing one.
fn operation_match(me: &SymEnum, ne: &SymEnum) -> Result<MatchReport, CheckError> {
    let paired = pair_sym(me, ne)?;
    let m_sigs = relabel(me, &paired.m_by_pair, &paired.m_rank);
    let n_sigs = relabel(ne, &paired.n_by_pair, &paired.n_rank);
    let mut unmatched_m = Vec::new();
    let mut unmatched_n = Vec::new();
    for i in 0..m_sigs.len().max(n_sigs.len()) {
        match (m_sigs.get(i), n_sigs.get(i)) {
            (Some(a), Some(b)) if a == b => {}
            (Some(_), Some(_)) => {
                unmatched_m.push(me.labels[i].clone());
                unmatched_n.push(ne.labels[i].clone());
            }
            (Some(_), None) => unmatched_m.push(me.labels[i].clone()),
            (None, Some(_)) => unmatched_n.push(ne.labels[i].clone()),
            (None, None) => unreachable!("loop is bounded by the longer side"),
        }
    }
    Ok(MatchReport {
        equivalent: unmatched_m.is_empty() && unmatched_n.is_empty(),
        unmatched_m,
        unmatched_n,
        state_pairs: paired.pairs,
    })
}

/// Definitions 2/3/5 over two discovered closures.
fn app_match(me: &SymEnum, ne: &SymEnum, kind: MatchKind) -> Result<MatchReport, CheckError> {
    let paired = pair_sym(me, ne)?;
    let pairs = paired.pairs;
    let m_sigs = relabel(me, &paired.m_by_pair, &paired.m_rank);
    let n_sigs = relabel(ne, &paired.n_by_pair, &paired.n_rank);
    let (unmatched_m, unmatched_n) = match kind {
        MatchKind::Isomorphic => {
            let n_set: BTreeSet<&Sig> = n_sigs.iter().collect();
            let m_set: BTreeSet<&Sig> = m_sigs.iter().collect();
            let unmatched_m: Vec<String> = me
                .labels
                .iter()
                .zip(&m_sigs)
                .filter(|(_, sig)| !n_set.contains(sig))
                .map(|(label, _)| label.clone())
                .collect();
            let unmatched_n: Vec<String> = ne
                .labels
                .iter()
                .zip(&n_sigs)
                .filter(|(_, sig)| !m_set.contains(sig))
                .map(|(label, _)| label.clone())
                .collect();
            (unmatched_m, unmatched_n)
        }
        MatchKind::Composed { max_depth } => {
            let m_star = composable_sigs(&m_sigs, pairs, max_depth);
            let n_star = composable_sigs(&n_sigs, pairs, max_depth);
            let unmatched_m: Vec<String> = me
                .labels
                .iter()
                .zip(&m_sigs)
                .filter(|(_, sig)| !n_star.contains(*sig))
                .map(|(label, _)| label.clone())
                .collect();
            let unmatched_n: Vec<String> = ne
                .labels
                .iter()
                .zip(&n_sigs)
                .filter(|(_, sig)| !m_star.contains(*sig))
                .map(|(label, _)| label.clone())
                .collect();
            (unmatched_m, unmatched_n)
        }
        MatchKind::StateDependent { max_depth } => {
            let reach_all = |sigs: &[Sig]| -> (Vec<Vec<bool>>, Vec<bool>) {
                let mut reach = Vec::with_capacity(pairs);
                let mut err = vec![false; pairs];
                for start in 0..pairs as u32 {
                    let (seen, e) = reach_from(sigs, pairs, start, max_depth);
                    reach.push(seen);
                    err[start as usize] = e;
                }
                (reach, err)
            };
            let (n_reach, n_err) = reach_all(&n_sigs);
            let (m_reach, m_err) = reach_all(&m_sigs);
            let check = |sigs: &[Sig],
                         labels: &[String],
                         reach: &[Vec<bool>],
                         err: &[bool]|
             -> Vec<String> {
                labels
                    .iter()
                    .zip(sigs)
                    .filter(|(_, sig)| {
                        (0..pairs).any(|i| match sig[i] {
                            Some(target) => !reach[i][target as usize],
                            None => !err[i],
                        })
                    })
                    .map(|(label, _)| label.clone())
                    .collect()
            };
            (
                check(&m_sigs, &me.labels, &n_reach, &n_err),
                check(&n_sigs, &ne.labels, &m_reach, &m_err),
            )
        }
    };
    Ok(MatchReport {
        equivalent: unmatched_m.is_empty() && unmatched_n.is_empty(),
        unmatched_m,
        unmatched_n,
        state_pairs: pairs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dme_value::Atom;

    fn f(n: i64) -> Fact {
        Fact::new("p", [("x", Atom::Int(n))])
    }

    #[test]
    fn identical_toggle_specs_are_equivalent_at_every_tier() {
        let m = SymbolicSpec::toggles("m", vec![f(1), f(2)]);
        let n = SymbolicSpec::toggles("n", vec![f(1), f(2)]);
        for tier in [
            Tier::Operation,
            Tier::Isomorphic,
            Tier::Composed { max_depth: 2 },
            Tier::StateDependent { max_depth: 2 },
        ] {
            let outcome = SymbolicChecker::new(&m, &n).tier(tier).run();
            assert_eq!(
                outcome.definitive().unwrap().as_ref().unwrap(),
                &Verdict::Equivalent { state_pairs: 4 },
                "{tier:?}"
            );
        }
    }

    #[test]
    fn dropped_op_yields_the_enumerative_witness() {
        let m = SymbolicSpec::toggles("m", vec![f(1)]);
        let mut n = SymbolicSpec::toggles("n", vec![f(1)]);
        let dropped = n.ops.remove(1); // "-p(x: 1)"-style delete label
        let outcome = SymbolicChecker::new(&m, &n).run();
        match outcome.definitive().unwrap().as_ref().unwrap() {
            Verdict::Counterexample {
                state_pairs,
                witnesses,
            } => {
                assert_eq!(*state_pairs, 2);
                assert_eq!(witnesses.len(), 1);
                assert_eq!(witnesses[0].side, Side::Left);
                assert_eq!(witnesses[0].label, dropped.label);
            }
            v => panic!("expected counterexample, got {v:?}"),
        }
    }

    #[test]
    fn pairing_failure_matches_the_enumerative_message() {
        let m = SymbolicSpec::toggles("m", vec![f(1)]);
        let n = SymbolicSpec::toggles("n", vec![f(2)]);
        let outcome = SymbolicChecker::new(&m, &n).run();
        let err = outcome.definitive().unwrap().as_ref().unwrap_err();
        assert_eq!(
            err,
            &CheckError::Pairing(
                "state sets are not onto: 1 application states expressible only on the left, \
                 1 only on the right"
                    .into()
            )
        );
    }

    #[test]
    fn state_cap_errors_like_the_enumerative_closure() {
        let m = SymbolicSpec::toggles("m", vec![f(1), f(2), f(3)]);
        let n = SymbolicSpec::toggles("n", vec![f(1), f(2), f(3)]);
        let outcome = SymbolicChecker::new(&m, &n).state_cap(3).run();
        let err = outcome.definitive().unwrap().as_ref().unwrap_err();
        assert_eq!(
            err,
            &CheckError::Closure(ClosureTooLarge {
                model: "m".into(),
                cap: 3
            })
        );
    }

    #[test]
    fn exhausted_bound_is_no_verdict() {
        let m = SymbolicSpec::toggles("m", vec![f(1), f(2), f(3)]);
        let n = SymbolicSpec::toggles("n", vec![f(1), f(2), f(3)]);
        // Closure diameter is 3; bound 2 cannot certify the fixpoint.
        let outcome = SymbolicChecker::new(&m, &n).bound(2).run();
        assert_eq!(
            outcome,
            SymbolicOutcome::BoundExhausted {
                bound: 2,
                states_found: 7
            }
        );
        assert!(outcome.definitive().is_none());
    }

    #[test]
    fn constraints_prune_discovery() {
        let mut m = SymbolicSpec::toggles("m", vec![f(1), f(2)]);
        m.constraints.push(SymbolicConstraint::Excludes { a: 0, b: 1 });
        let mut n = SymbolicSpec::toggles("n", vec![f(1), f(2)]);
        n.constraints.push(SymbolicConstraint::Excludes { a: 0, b: 1 });
        let outcome = SymbolicChecker::new(&m, &n).run();
        assert_eq!(
            outcome.definitive().unwrap().as_ref().unwrap(),
            &Verdict::Equivalent { state_pairs: 3 },
            "excludes prunes the both-facts state"
        );
    }

    #[test]
    fn find_mode_locates_a_mutated_op_and_traces_replay() {
        let m = SymbolicSpec::toggles("m", vec![f(1), f(2)]);
        let mut n = SymbolicSpec::toggles("n", vec![f(1), f(2)]);
        // Break one delete op: deleting f(9) (never insertable) always
        // errors, like a RenameBinding mutation on a delete step.
        n.facts.push(f(9));
        let broken = n
            .ops
            .iter()
            .position(|op| !op.steps[0].0)
            .expect("toggle spec has delete ops");
        n.ops[broken].steps = vec![(false, 2)];
        n.ops[broken].label = format!("-{}", f(9));
        let found = SymbolicChecker::new(&m, &n)
            .bound(2)
            .find_counterexample()
            .unwrap()
            .expect("mutation must be found");
        // Both the broken right op and its orphaned left twin are
        // detectable; the probe order finds one of them.
        assert!(!found.traces.is_empty());
        for trace in &found.traces {
            let at_m = m.replay(&trace.path_m).expect("left path must replay");
            let at_n = n.replay(&trace.path_n).expect("right path must replay");
            assert_eq!(at_m, at_n, "paths must meet at the same fact base");
        }
        let witness = found.to_witness();
        assert_eq!(witness.side, found.side);
    }

    #[test]
    fn find_mode_is_quiet_on_equivalent_specs() {
        let m = SymbolicSpec::toggles("m", vec![f(1), f(2)]);
        let n = SymbolicSpec::toggles("n", vec![f(1), f(2)]);
        let found = SymbolicChecker::new(&m, &n)
            .bound(2)
            .find_counterexample()
            .unwrap();
        assert_eq!(found, None);
    }

    #[test]
    fn replay_rejects_invalid_paths() {
        let m = SymbolicSpec::toggles("m", vec![f(1)]);
        let ins = m.ops.iter().position(|op| op.steps[0].0).unwrap();
        let del = 1 - ins;
        assert!(m.replay(&[ins, del]).is_some());
        assert!(m.replay(&[del]).is_none(), "deleting from empty errors");
        assert!(m.replay(&[ins, ins]).is_none(), "double insert errors");
    }

    #[test]
    fn grid_tier_replicates_definition_6() {
        let a = SymbolicSpec::toggles("a", vec![f(1)]);
        let b = SymbolicSpec::toggles("b", vec![f(1)]);
        let lone = SymbolicSpec::toggles("lone", vec![f(1), f(2)]);
        let ms = vec![a.clone(), lone.clone()];
        let ns = vec![b.clone()];
        let outcome = SymbolicChecker::data_models(&ms, &ns).run();
        match outcome.definitive().unwrap().as_ref().unwrap() {
            Verdict::Counterexample {
                state_pairs,
                witnesses,
            } => {
                assert_eq!(*state_pairs, 2, "2x1 grid");
                assert_eq!(witnesses.len(), 1);
                assert_eq!(witnesses[0].label, "lone");
                assert_eq!(witnesses[0].side, Side::Left);
            }
            v => panic!("expected partial equivalence, got {v:?}"),
        }
        let total = SymbolicChecker::data_models(&ms[..1], &ns).run();
        assert_eq!(
            total.definitive().unwrap().as_ref().unwrap(),
            &Verdict::Equivalent { state_pairs: 1 }
        );
    }

    #[test]
    fn operation_tier_rejects_sets() {
        let ms = vec![SymbolicSpec::toggles("m", vec![f(1)])];
        let ns = vec![SymbolicSpec::toggles("n", vec![f(1)])];
        let outcome = SymbolicChecker::data_models(&ms, &ns)
            .tier(Tier::Operation)
            .run();
        assert!(matches!(
            outcome.definitive().unwrap().as_ref().unwrap_err(),
            CheckError::Unsupported(_)
        ));
    }

    #[test]
    fn observer_sees_symbolic_counters() {
        use dme_obs::RingSink;
        let m = SymbolicSpec::toggles("m", vec![f(1), f(2)]);
        let n = SymbolicSpec::toggles("n", vec![f(1), f(2)]);
        let obs = Observer::new(RingSink::with_capacity(16));
        let outcome = SymbolicChecker::new(&m, &n).observer(obs.clone()).run();
        assert!(outcome.definitive().is_some());
        assert!(obs.counter(Counter::SymbolicClauses) > 0);
        assert_eq!(obs.counter(Counter::BoundExhausted), 0);
        let bounded = SymbolicChecker::new(&m, &n)
            .bound(1)
            .observer(obs.clone())
            .run();
        assert!(bounded.is_bound_exhausted());
        assert_eq!(obs.counter(Counter::BoundExhausted), 1);
    }

    #[test]
    fn per_depth_probes_profile_the_budget() {
        use dme_obs::RingSink;
        let facts = vec![f(1), f(2), f(3)];
        let m = SymbolicSpec::toggles("m", facts.clone());
        let n = SymbolicSpec::toggles("n", facts);
        let obs = Observer::new(RingSink::with_capacity(16));
        let outcome = SymbolicChecker::new(&m, &n).observer(obs.clone()).run();
        assert!(outcome.definitive().is_some());
        // One observation lands per retired depth solver, so the probe
        // histograms carry the per-layer budget profile.
        let decisions = obs.histogram(Metric::SymbolicDecisionsPerDepth);
        let clauses = obs.histogram(Metric::SymbolicClausesPerDepth);
        assert!(decisions.count > 0, "at least one depth layer profiled");
        assert_eq!(
            decisions.count,
            obs.histogram(Metric::SymbolicConflictsPerDepth).count,
            "every probe records the same layers"
        );
        assert_eq!(decisions.count, clauses.count);
        assert!(clauses.sum > 0, "each layer holds encoded clauses");
        // Counters agree with the histogram totals they aggregate.
        assert_eq!(obs.counter(Counter::SymbolicClauses), clauses.sum);
        assert_eq!(
            obs.counter(Counter::SymbolicRestarts),
            obs.histogram(Metric::SymbolicRestartsPerDepth).sum
        );
    }
}
