//! A small hand-rolled CDCL SAT core for the symbolic tier.
//!
//! This is a deliberately compact conflict-driven solver — two watched
//! literals, first-UIP clause learning, activity-ordered decisions with
//! phase saving — vendored in the same spirit as the proptest/criterion
//! shims under `vendor/`: no registry access, no tuning knobs beyond
//! what the encoders in this module need. Clauses can be added between
//! `solve` calls, which is how the closure-discovery loop enumerates
//! models (solve, read the model, add a blocking clause, solve again).
//!
//! The instances produced by [`super::encode`] are tiny by SAT
//! standards (hundreds of variables, low tens of thousands of clauses),
//! so the core optimizes for being obviously correct over being fast:
//! the decision heuristic is a linear scan for the highest-activity
//! unassigned variable, and there is no clause-database reduction. A
//! geometric restart schedule (backtrack to the root after a growing
//! conflict threshold; saved phases keep the search direction) bounds
//! the damage of an early bad decision and is itself observable:
//! [`SolverStats::restarts`] feeds the per-depth solver probes.

/// A propositional literal: variable index plus sign, packed as
/// `var << 1 | negated`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Lit(u32);

impl Lit {
    /// The positive literal of variable `v`.
    pub fn pos(v: usize) -> Lit {
        Lit((v as u32) << 1)
    }

    /// The negative literal of variable `v`.
    pub fn neg(v: usize) -> Lit {
        Lit(((v as u32) << 1) | 1)
    }

    /// A literal of variable `v` with the given truth requirement:
    /// `new(v, true)` is satisfied when `v` is true.
    pub fn new(v: usize, positive: bool) -> Lit {
        if positive {
            Lit::pos(v)
        } else {
            Lit::neg(v)
        }
    }

    /// The variable this literal mentions.
    pub fn var(self) -> usize {
        (self.0 >> 1) as usize
    }

    /// Whether this is the negative literal of its variable.
    pub fn is_neg(self) -> bool {
        self.0 & 1 == 1
    }

    /// The opposite literal of the same variable.
    pub fn negate(self) -> Lit {
        Lit(self.0 ^ 1)
    }

    /// Dense index for watch lists (`2 * var + negated`).
    fn index(self) -> usize {
        self.0 as usize
    }
}

/// Outcome of a [`Solver::solve`] call.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SatResult {
    /// A satisfying assignment exists; read it with [`Solver::value`].
    Sat,
    /// The clause set is unsatisfiable.
    Unsat,
}

/// Cumulative work counters for one solver instance.
#[derive(Clone, Copy, Default, Debug)]
pub struct SolverStats {
    /// Clauses added (input and learned).
    pub clauses: u64,
    /// Conflicts analyzed.
    pub conflicts: u64,
    /// Decisions taken.
    pub decisions: u64,
    /// Literals propagated.
    pub propagations: u64,
    /// Restarts taken (root-level backtracks after the conflict
    /// threshold, phases preserved).
    pub restarts: u64,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Value {
    True,
    False,
    Unassigned,
}

/// `l`'s truth value under an assignment (free function so `propagate`
/// can read it while holding a mutable borrow on a clause).
fn lit_value_in(assign: &[Value], l: Lit) -> Value {
    match assign[l.var()] {
        Value::Unassigned => Value::Unassigned,
        Value::True => {
            if l.is_neg() {
                Value::False
            } else {
                Value::True
            }
        }
        Value::False => {
            if l.is_neg() {
                Value::True
            } else {
                Value::False
            }
        }
    }
}

struct Clause {
    lits: Vec<Lit>,
}

/// The CDCL solver. Variables are created with [`Solver::new_var`] and
/// clauses added with [`Solver::add_clause`]; clause addition is only
/// legal between `solve` calls (the solver backtracks to the root level
/// internally before accepting a clause).
pub struct Solver {
    clauses: Vec<Clause>,
    /// `watches[lit.index()]` lists clauses currently watching `lit`
    /// (i.e. `lit` sits at position 0 or 1 of their literal list); they
    /// must be revisited when `lit` becomes false.
    watches: Vec<Vec<u32>>,
    assign: Vec<Value>,
    /// Saved polarity from the last assignment, used as the decision
    /// phase (initially false, matching the all-empty initial state of
    /// the encodings, which keeps early models near the BFS frontier).
    phase: Vec<bool>,
    level: Vec<u32>,
    reason: Vec<Option<u32>>,
    activity: Vec<f64>,
    var_inc: f64,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    seen: Vec<bool>,
    /// False once a top-level conflict proves the instance UNSAT; the
    /// clause set only ever grows, so this is permanent.
    ok: bool,
    /// Conflicts to absorb before the next restart; grows geometrically
    /// so the solver always terminates (learned clauses are never
    /// forgotten, so each restart resumes strictly wiser).
    restart_limit: u64,
    stats: SolverStats,
}

impl Default for Solver {
    fn default() -> Self {
        Solver::new()
    }
}

impl Solver {
    /// An empty solver with zero variables.
    pub fn new() -> Solver {
        Solver {
            clauses: Vec::new(),
            watches: Vec::new(),
            assign: Vec::new(),
            phase: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            activity: Vec::new(),
            var_inc: 1.0,
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            seen: Vec::new(),
            ok: true,
            restart_limit: 100,
            stats: SolverStats::default(),
        }
    }

    /// Allocates a fresh variable and returns its index.
    pub fn new_var(&mut self) -> usize {
        let v = self.assign.len();
        self.assign.push(Value::Unassigned);
        self.phase.push(false);
        self.level.push(0);
        self.reason.push(None);
        self.activity.push(0.0);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        v
    }

    /// Number of variables allocated so far.
    pub fn num_vars(&self) -> usize {
        self.assign.len()
    }

    /// Work counters accumulated so far.
    pub fn stats(&self) -> &SolverStats {
        &self.stats
    }

    fn lit_value(&self, l: Lit) -> Value {
        lit_value_in(&self.assign, l)
    }

    /// The model value of variable `v` after a `Sat` result.
    pub fn value(&self, v: usize) -> bool {
        self.assign[v] == Value::True
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    /// Adds a clause (a disjunction of literals). Returns `false` if
    /// the clause makes the instance trivially unsatisfiable at the
    /// root level. Tautologies and duplicate literals are simplified
    /// away; literals already false at the root level are dropped.
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        if !self.ok {
            return false;
        }
        self.backtrack(0);
        self.stats.clauses += 1;
        let mut simplified: Vec<Lit> = Vec::with_capacity(lits.len());
        for &l in lits {
            debug_assert!(l.var() < self.num_vars(), "literal beyond allocated vars");
            match self.lit_value(l) {
                Value::True => return true,
                Value::False => continue,
                Value::Unassigned => {
                    if simplified.contains(&l.negate()) {
                        return true;
                    }
                    if !simplified.contains(&l) {
                        simplified.push(l);
                    }
                }
            }
        }
        match simplified.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                if !self.enqueue(simplified[0], None) {
                    self.ok = false;
                    return false;
                }
                self.ok = self.propagate().is_none();
                self.ok
            }
            _ => {
                let ci = self.clauses.len() as u32;
                self.watches[simplified[0].index()].push(ci);
                self.watches[simplified[1].index()].push(ci);
                self.clauses.push(Clause { lits: simplified });
                true
            }
        }
    }

    /// Assigns `l` true with the given reason clause. Returns `false`
    /// when `l` is already false (a conflict for the caller to handle).
    fn enqueue(&mut self, l: Lit, reason: Option<u32>) -> bool {
        match self.lit_value(l) {
            Value::False => false,
            Value::True => true,
            Value::Unassigned => {
                let v = l.var();
                self.assign[v] = if l.is_neg() { Value::False } else { Value::True };
                self.phase[v] = !l.is_neg();
                self.level[v] = self.decision_level();
                self.reason[v] = reason;
                self.trail.push(l);
                true
            }
        }
    }

    /// Unit propagation over the watch lists. Returns the index of a
    /// conflicting clause, or `None` when a fixpoint is reached.
    fn propagate(&mut self) -> Option<u32> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            // `p` just became true, so the literal `¬p` is now false;
            // every clause watching `¬p` must find a new watch, become
            // unit, or conflict.
            let false_lit = p.negate();
            let mut ws = std::mem::take(&mut self.watches[false_lit.index()]);
            let mut i = 0;
            while i < ws.len() {
                let ci = ws[i];
                // Split borrows: watch repair mutates the clause while
                // reading the assignment.
                let (first, moved_to) = {
                    let assign = &self.assign;
                    let clause = &mut self.clauses[ci as usize];
                    // Normalize so the falsified watch sits at position 1.
                    if clause.lits[0] == false_lit {
                        clause.lits.swap(0, 1);
                    }
                    debug_assert_eq!(clause.lits[1], false_lit);
                    let first = clause.lits[0];
                    if lit_value_in(assign, first) == Value::True {
                        i += 1;
                        continue;
                    }
                    // Look for an unfalsified literal to watch instead.
                    let mut moved_to = None;
                    for k in 2..clause.lits.len() {
                        if lit_value_in(assign, clause.lits[k]) != Value::False {
                            clause.lits.swap(1, k);
                            moved_to = Some(clause.lits[1]);
                            break;
                        }
                    }
                    (first, moved_to)
                };
                if let Some(new_watch) = moved_to {
                    self.watches[new_watch.index()].push(ci);
                    ws.swap_remove(i);
                    continue;
                }
                // Clause is unit on `first` (or conflicting).
                if !self.enqueue(first, Some(ci)) {
                    self.watches[false_lit.index()] = ws;
                    self.qhead = self.trail.len();
                    return Some(ci);
                }
                i += 1;
            }
            self.watches[false_lit.index()] = ws;
        }
        None
    }

    fn bump(&mut self, v: usize) {
        self.activity[v] += self.var_inc;
        if self.activity[v] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
    }

    /// First-UIP conflict analysis. Returns the learned clause (with
    /// the asserting literal at position 0) and the backjump level.
    fn analyze(&mut self, conflict: u32) -> (Vec<Lit>, u32) {
        let current = self.decision_level();
        let mut learnt: Vec<Lit> = vec![Lit::pos(0)]; // placeholder for the asserting literal
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut confl = conflict;
        let mut trail_idx = self.trail.len();
        loop {
            let start = if p.is_some() { 1 } else { 0 };
            for k in start..self.clauses[confl as usize].lits.len() {
                let q = self.clauses[confl as usize].lits[k];
                let v = q.var();
                if !self.seen[v] && self.level[v] > 0 {
                    self.seen[v] = true;
                    self.bump(v);
                    if self.level[v] >= current {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Walk the trail backwards to the next marked literal.
            loop {
                trail_idx -= 1;
                if self.seen[self.trail[trail_idx].var()] {
                    break;
                }
            }
            let pl = self.trail[trail_idx];
            self.seen[pl.var()] = false;
            p = Some(pl);
            counter -= 1;
            if counter == 0 {
                break;
            }
            confl = self.reason[pl.var()].expect("non-decision literal must have a reason");
        }
        learnt[0] = p.expect("conflict analysis always finds a UIP").negate();
        for &l in &learnt[1..] {
            self.seen[l.var()] = false;
        }
        let backjump = learnt[1..].iter().map(|l| self.level[l.var()]).max().unwrap_or(0);
        (learnt, backjump)
    }

    fn backtrack(&mut self, target: u32) {
        while self.decision_level() > target {
            let lim = self.trail_lim.pop().expect("level > 0 implies a limit");
            while self.trail.len() > lim {
                let l = self.trail.pop().expect("trail shorter than its limit");
                self.assign[l.var()] = Value::Unassigned;
                self.reason[l.var()] = None;
            }
        }
        self.qhead = self.qhead.min(self.trail.len());
    }

    /// Installs a learned clause, watching the asserting literal and a
    /// literal from the backjump level, and enqueues the assertion.
    fn record_learnt(&mut self, mut learnt: Vec<Lit>, backjump: u32) {
        self.backtrack(backjump);
        if learnt.len() == 1 {
            let ok = self.enqueue(learnt[0], None);
            debug_assert!(ok, "asserting literal must be unassigned after backjump");
            return;
        }
        // Position 1 must hold a literal from the backjump level so the
        // watch invariant survives future backtracking.
        let mut best = 1;
        for k in 2..learnt.len() {
            if self.level[learnt[k].var()] > self.level[learnt[best].var()] {
                best = k;
            }
        }
        learnt.swap(1, best);
        let ci = self.clauses.len() as u32;
        self.stats.clauses += 1;
        self.watches[learnt[0].index()].push(ci);
        self.watches[learnt[1].index()].push(ci);
        let assert_lit = learnt[0];
        self.clauses.push(Clause { lits: learnt });
        let ok = self.enqueue(assert_lit, Some(ci));
        debug_assert!(ok, "asserting literal must be unassigned after backjump");
    }

    fn pick_branch_var(&self) -> Option<usize> {
        let mut best: Option<usize> = None;
        for v in 0..self.num_vars() {
            if self.assign[v] == Value::Unassigned
                && best.is_none_or(|b| self.activity[v] > self.activity[b])
            {
                best = Some(v);
            }
        }
        best
    }

    /// Runs the CDCL loop to completion. May be called repeatedly; new
    /// clauses added between calls are honored.
    pub fn solve(&mut self) -> SatResult {
        if !self.ok {
            return SatResult::Unsat;
        }
        self.backtrack(0);
        let mut conflicts_since_restart = 0u64;
        loop {
            if let Some(conflict) = self.propagate() {
                self.stats.conflicts += 1;
                if self.decision_level() == 0 {
                    self.ok = false;
                    return SatResult::Unsat;
                }
                let (learnt, backjump) = self.analyze(conflict);
                self.record_learnt(learnt, backjump);
                self.var_inc /= 0.95;
                conflicts_since_restart += 1;
                if conflicts_since_restart >= self.restart_limit && self.decision_level() > 0 {
                    self.stats.restarts += 1;
                    // Grow ×1.5 so restarts thin out as the search runs
                    // long; phase saving carries the direction across.
                    self.restart_limit += self.restart_limit / 2;
                    conflicts_since_restart = 0;
                    self.backtrack(0);
                }
            } else {
                let Some(v) = self.pick_branch_var() else {
                    return SatResult::Sat;
                };
                self.stats.decisions += 1;
                self.trail_lim.push(self.trail.len());
                let ok = self.enqueue(Lit::new(v, self.phase[v]), None);
                debug_assert!(ok, "decision variable was unassigned");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Parses a DIMACS-style body: one clause per line, literals as
    /// signed 1-based integers, `0` terminators optional. Returns the
    /// variable count and the clauses.
    fn parse_dimacs(body: &str) -> (usize, Vec<Vec<i32>>) {
        let mut clauses = Vec::new();
        let mut max_var = 0usize;
        for line in body.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('c') || line.starts_with('p') {
                continue;
            }
            let mut clause = Vec::new();
            for tok in line.split_whitespace() {
                let n: i32 = tok.parse().expect("DIMACS literal");
                if n == 0 {
                    break;
                }
                max_var = max_var.max(n.unsigned_abs() as usize);
                clause.push(n);
            }
            if !clause.is_empty() {
                clauses.push(clause);
            }
        }
        (max_var, clauses)
    }

    fn solver_from(num_vars: usize, clauses: &[Vec<i32>]) -> Solver {
        let mut s = Solver::new();
        for _ in 0..num_vars {
            s.new_var();
        }
        for clause in clauses {
            let lits: Vec<Lit> = clause
                .iter()
                .map(|&n| {
                    let v = n.unsigned_abs() as usize - 1;
                    Lit::new(v, n > 0)
                })
                .collect();
            s.add_clause(&lits);
        }
        s
    }

    /// Brute-force satisfiability over all assignments; the oracle for
    /// everything the CDCL core claims. Only usable for ≤ 20 variables.
    fn brute_force_sat(num_vars: usize, clauses: &[Vec<i32>]) -> bool {
        assert!(num_vars <= 20, "oracle is exponential");
        'outer: for bits in 0u32..(1u32 << num_vars) {
            for clause in clauses {
                let sat = clause.iter().any(|&n| {
                    let v = n.unsigned_abs() as usize - 1;
                    (bits >> v) & 1 == u32::from(n > 0)
                });
                if !sat {
                    continue 'outer;
                }
            }
            return true;
        }
        false
    }

    fn check_against_oracle(body: &str) {
        let (num_vars, clauses) = parse_dimacs(body);
        let mut s = solver_from(num_vars, &clauses);
        let got = s.solve();
        let want = if brute_force_sat(num_vars, &clauses) {
            SatResult::Sat
        } else {
            SatResult::Unsat
        };
        assert_eq!(got, want);
        if got == SatResult::Sat {
            // The model must actually satisfy every clause.
            for clause in &clauses {
                assert!(
                    clause.iter().any(|&n| {
                        let v = n.unsigned_abs() as usize - 1;
                        s.value(v) == (n > 0)
                    }),
                    "reported model violates clause {clause:?}"
                );
            }
        }
    }

    #[test]
    fn unit_propagation_chains_to_a_model() {
        // 1; ¬1∨2; ¬2∨3 — pure propagation, no decisions needed.
        let body = "1 0\n-1 2 0\n-2 3 0\n";
        let (n, clauses) = parse_dimacs(body);
        let mut s = solver_from(n, &clauses);
        assert_eq!(s.solve(), SatResult::Sat);
        assert!(s.value(0) && s.value(1) && s.value(2));
        assert_eq!(s.stats().decisions, 0, "chain should resolve by propagation alone");
    }

    #[test]
    fn unit_propagation_detects_root_conflict() {
        let body = "1 0\n-1 0\n";
        let (n, clauses) = parse_dimacs(body);
        let mut s = solver_from(n, &clauses);
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn conflict_learning_instances_match_oracle() {
        // Micro-instances that force at least one conflict/learned
        // clause before resolution.
        let instances = [
            // XOR-ish chain: (1∨2)(¬1∨¬2)(2∨3)(¬2∨¬3)(3∨1)(¬3∨¬1) — UNSAT (odd cycle).
            "1 2 0\n-1 -2 0\n2 3 0\n-2 -3 0\n3 1 0\n-3 -1 0\n",
            // Same cycle minus one clause — SAT.
            "1 2 0\n-1 -2 0\n2 3 0\n-2 -3 0\n3 1 0\n",
            // Forces learning across two decision levels.
            "1 2 3 0\n1 2 -3 0\n1 -2 3 0\n1 -2 -3 0\n-1 2 3 0\n-1 2 -3 0\n-1 -2 3 0\n",
            // Fully contradictory over three variables — UNSAT.
            "1 2 3 0\n1 2 -3 0\n1 -2 3 0\n1 -2 -3 0\n-1 2 3 0\n-1 2 -3 0\n-1 -2 3 0\n-1 -2 -3 0\n",
        ];
        for body in instances {
            check_against_oracle(body);
        }
    }

    #[test]
    fn learning_is_exercised() {
        // The fully contradictory 3-variable instance cannot be solved
        // without conflicts.
        let body = "1 2 3 0\n1 2 -3 0\n1 -2 3 0\n1 -2 -3 0\n-1 2 3 0\n-1 2 -3 0\n-1 -2 3 0\n-1 -2 -3 0\n";
        let (n, clauses) = parse_dimacs(body);
        let mut s = solver_from(n, &clauses);
        assert_eq!(s.solve(), SatResult::Unsat);
        assert!(s.stats().conflicts > 0, "UNSAT proof must analyze conflicts");
    }

    /// Pigeonhole principle PHP(n): n+1 pigeons into n holes, UNSAT for
    /// every n. Exercises deep conflict learning.
    fn pigeonhole(n: usize) -> (usize, Vec<Vec<i32>>) {
        // Variable p_{i,j} (pigeon i in hole j) = i*n + j + 1.
        let var = |i: usize, j: usize| (i * n + j + 1) as i32;
        let mut clauses = Vec::new();
        for i in 0..=n {
            clauses.push((0..n).map(|j| var(i, j)).collect());
        }
        for j in 0..n {
            for i1 in 0..=n {
                for i2 in (i1 + 1)..=n {
                    clauses.push(vec![-var(i1, j), -var(i2, j)]);
                }
            }
        }
        ((n + 1) * n, clauses)
    }

    #[test]
    fn pigeonhole_is_unsat_up_to_n6() {
        for n in 1..=6 {
            let (num_vars, clauses) = pigeonhole(n);
            let mut s = solver_from(num_vars, &clauses);
            assert_eq!(s.solve(), SatResult::Unsat, "PHP({n}) must be UNSAT");
        }
    }

    #[test]
    fn restarts_fire_on_long_searches_and_preserve_answers() {
        // PHP(6) needs thousands of conflicts, so the geometric
        // schedule (first restart at 100) must fire — and the verdict
        // must be exactly what the restart-free search proved above.
        let (num_vars, clauses) = pigeonhole(6);
        let mut s = solver_from(num_vars, &clauses);
        assert_eq!(s.solve(), SatResult::Unsat);
        assert!(
            s.stats().restarts > 0,
            "expected restarts after {} conflicts",
            s.stats().conflicts
        );
        assert!(s.stats().conflicts > s.stats().restarts);
        // Short searches never restart.
        let (n, clauses) = parse_dimacs("1 2 0\n-1 -2 0\n");
        let mut s = solver_from(n, &clauses);
        assert_eq!(s.solve(), SatResult::Sat);
        assert_eq!(s.stats().restarts, 0);
    }

    #[test]
    fn random_instances_match_brute_force_oracle() {
        // Deterministic xorshift so the corpus is stable run to run.
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for round in 0..200 {
            let num_vars = 3 + (next() % 15) as usize; // 3..=17 ≤ 20
            let num_clauses = 2 + (next() % (3 * num_vars as u64)) as usize;
            let mut clauses = Vec::with_capacity(num_clauses);
            for _ in 0..num_clauses {
                let width = 1 + (next() % 3) as usize;
                let mut clause = Vec::with_capacity(width);
                for _ in 0..width {
                    let v = (next() % num_vars as u64) as i32 + 1;
                    clause.push(if next() % 2 == 0 { v } else { -v });
                }
                clauses.push(clause);
            }
            let mut s = solver_from(num_vars, &clauses);
            let got = s.solve();
            let want = if brute_force_sat(num_vars, &clauses) {
                SatResult::Sat
            } else {
                SatResult::Unsat
            };
            assert_eq!(got, want, "round {round}: solver disagrees with oracle on {clauses:?}");
            if got == SatResult::Sat {
                for clause in &clauses {
                    assert!(
                        clause.iter().any(|&n| {
                            let v = n.unsigned_abs() as usize - 1;
                            s.value(v) == (n > 0)
                        }),
                        "round {round}: model violates {clause:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn incremental_blocking_enumerates_all_models() {
        // x ∨ y over two variables has exactly three models; blocking
        // each found model must enumerate all of them then go UNSAT.
        let mut s = Solver::new();
        let x = s.new_var();
        let y = s.new_var();
        s.add_clause(&[Lit::pos(x), Lit::pos(y)]);
        let mut models = Vec::new();
        while s.solve() == SatResult::Sat {
            let m = (s.value(x), s.value(y));
            models.push(m);
            s.add_clause(&[
                Lit::new(x, !m.0),
                Lit::new(y, !m.1),
            ]);
        }
        models.sort();
        assert_eq!(models, vec![(false, true), (true, false), (true, true)]);
    }
}
