//! The application-model abstraction used by the equivalence checkers.
//!
//! §2.1: "an application model consists of a schema and a finite set of
//! operation types", and §2.2 defines the valid database states as "some
//! initial state, most likely the 'empty state', and those states
//! consisting of the closure of the application model's set of allowable
//! operations applied to this initial state."
//!
//! [`FiniteModel`] packages exactly that: an initial state, a finite list
//! of operations (operation types already applied to concrete arguments —
//! the paper's `operations`), and the application function. The checkers
//! in [`crate::equiv`] enumerate the closure with
//! [`FiniteModel::reachable_states`].

use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

use dme_logic::ToFacts;

use dme_graph::{GraphOp, GraphState};
use dme_relation::{RelOp, RelationState};

/// A finite application model: initial state, operations, application
/// function. `None` from `apply` is the paper's error state.
#[derive(Clone)]
pub struct FiniteModel<S, O> {
    name: String,
    initial: S,
    ops: Vec<O>,
    #[allow(clippy::type_complexity)]
    apply: Arc<dyn Fn(&O, &S) -> Option<S> + Send + Sync>,
}

impl<S, O> fmt::Debug for FiniteModel<S, O> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FiniteModel({}, {} ops)", self.name, self.ops.len())
    }
}

/// The closure enumeration exceeded its cap — the model is too large for
/// exhaustive checking.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClosureTooLarge {
    /// The model whose closure blew up.
    pub model: String,
    /// The cap that was exceeded.
    pub cap: usize,
}

impl fmt::Display for ClosureTooLarge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "closure of `{}` exceeds {} states; use the translators instead",
            self.model, self.cap
        )
    }
}

impl std::error::Error for ClosureTooLarge {}

impl<S, O> FiniteModel<S, O>
where
    S: Clone + Ord + ToFacts,
    O: Clone,
{
    /// Creates a model.
    pub fn new(
        name: impl Into<String>,
        initial: S,
        ops: Vec<O>,
        apply: impl Fn(&O, &S) -> Option<S> + Send + Sync + 'static,
    ) -> Self {
        FiniteModel {
            name: name.into(),
            initial,
            ops,
            apply: Arc::new(apply),
        }
    }

    /// The model's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The initial (empty) state.
    pub fn initial(&self) -> &S {
        &self.initial
    }

    /// The simple operations.
    pub fn ops(&self) -> &[O] {
        &self.ops
    }

    /// Applies one operation; `None` is the error state.
    pub fn apply(&self, op: &O, state: &S) -> Option<S> {
        (self.apply)(op, state)
    }

    /// The set of valid states: the closure of the operations from the
    /// initial state (§2.2). Fails when more than `cap` states are
    /// reachable.
    pub fn reachable_states(&self, cap: usize) -> Result<BTreeSet<S>, ClosureTooLarge> {
        let mut seen: BTreeSet<S> = BTreeSet::new();
        let mut frontier: Vec<S> = vec![self.initial.clone()];
        seen.insert(self.initial.clone());
        while let Some(state) = frontier.pop() {
            for op in &self.ops {
                if let Some(next) = self.apply(op, &state) {
                    if !seen.contains(&next) {
                        if seen.len() >= cap {
                            return Err(ClosureTooLarge {
                                model: self.name.clone(),
                                cap,
                            });
                        }
                        seen.insert(next.clone());
                        frontier.push(next);
                    }
                }
            }
        }
        Ok(seen)
    }
}

/// Wraps a semantic-relation application model for the checkers.
pub fn relational_model(
    name: impl Into<String>,
    initial: RelationState,
    ops: Vec<RelOp>,
) -> FiniteModel<RelationState, RelOp> {
    FiniteModel::new(name, initial, ops, |op, state| op.apply(state).ok())
}

/// Wraps a semantic-graph application model for the checkers.
pub fn graph_model(
    name: impl Into<String>,
    initial: GraphState,
    ops: Vec<GraphOp>,
) -> FiniteModel<GraphState, GraphOp> {
    FiniteModel::new(name, initial, ops, |op, state| op.apply(state).ok())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dme_logic::FactBase;

    /// A toy state: a set of small integers, compiled to facts
    /// one-per-element.
    #[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
    struct Ints(BTreeSet<i64>);

    impl ToFacts for Ints {
        fn to_facts(&self) -> FactBase {
            self.0
                .iter()
                .map(|i| dme_logic::Fact::new("n", [("v", dme_value::Atom::Int(*i))]))
                .collect()
        }
    }

    fn counter_model(limit: i64) -> FiniteModel<Ints, i64> {
        FiniteModel::new(
            format!("ints<{limit}"),
            Ints(BTreeSet::new()),
            vec![1, 2],
            move |op, s| {
                let mut next = s.clone();
                let max = s.0.iter().max().copied().unwrap_or(0);
                let v = max + op;
                if v > limit {
                    return None;
                }
                next.0.insert(v);
                Some(next)
            },
        )
    }

    #[test]
    fn closure_enumerates_reachable_states() {
        let m = counter_model(3);
        let states = m.reachable_states(100).unwrap();
        // Reachable: {}, {1}, {2}, {1,2}, {1,3}, {2,3}… (chains of +1/+2
        // from the running max, capped at 3).
        assert!(states.contains(&Ints(BTreeSet::new())));
        assert!(states.contains(&Ints([1].into())));
        assert!(states.contains(&Ints([1, 2, 3].into())));
        assert!(!states.iter().any(|s| s.0.iter().any(|&v| v > 3)));
        assert_eq!(states.len(), 7);
    }

    #[test]
    fn closure_cap_enforced() {
        let m = counter_model(20);
        let err = m.reachable_states(5).unwrap_err();
        assert_eq!(err.cap, 5);
        assert!(err.to_string().contains("exceeds 5 states"));
    }

    #[test]
    fn accessors() {
        let m = counter_model(3);
        assert_eq!(m.ops(), &[1, 2]);
        assert_eq!(m.initial(), &Ints(BTreeSet::new()));
        assert!(m.name().starts_with("ints"));
        assert!(format!("{m:?}").contains("2 ops"));
        assert_eq!(m.apply(&1, m.initial()), Some(Ints([1].into())));
    }
}
