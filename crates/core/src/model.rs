//! The application-model abstraction used by the equivalence checkers.
//!
//! §2.1: "an application model consists of a schema and a finite set of
//! operation types", and §2.2 defines the valid database states as "some
//! initial state, most likely the 'empty state', and those states
//! consisting of the closure of the application model's set of allowable
//! operations applied to this initial state."
//!
//! [`FiniteModel`] packages exactly that: an initial state, a finite list
//! of operations (operation types already applied to concrete arguments —
//! the paper's `operations`), and the application function. The checkers
//! in [`crate::equiv`] enumerate the closure with
//! [`FiniteModel::reachable_states`].

use std::collections::BTreeSet;
use std::fmt;
use std::hash::Hash;
use std::sync::Arc;

use dme_logic::{content_fingerprint, DeltaState, ToFacts};

use dme_graph::{GraphOp, GraphState};
use dme_relation::{RelOp, RelationState};

use crate::arena::{Closure, StateArena, StateId};

/// A one-shot rollback token produced by [`FiniteModel::apply_delta`]:
/// calling it restores the state to what it was before the delta.
pub type UndoFn<S> = Box<dyn FnOnce(&mut S) + Send>;

type ApplyFn<S, O> = Arc<dyn Fn(&O, &S) -> Option<S> + Send + Sync>;
type FingerprintFn<S> = Arc<dyn Fn(&S) -> u64 + Send + Sync>;
type DeltaFn<S, O> = Arc<dyn Fn(&O, &mut S) -> Option<UndoFn<S>> + Send + Sync>;
type ValidateFn<S> = Arc<dyn Fn(&S) -> bool + Send + Sync>;

/// A finite application model: initial state, operations, application
/// function. `None` from `apply` is the paper's error state.
///
/// Beyond the defining triple, a model carries two *kernel hooks* used
/// by the arena-backed closure machinery ([`FiniteModel::closure`]):
/// a state fingerprint (64-bit content hash, used to probe the
/// [`StateArena`] before constructing successors) and a delta
/// application (apply an operation in place, returning an undo token).
/// Both have universal fallbacks — hash the whole state, clone-apply —
/// so plain models work unchanged; the semantic-model wrappers
/// ([`relational_model`], [`graph_model`]) install the incremental
/// implementations from [`DeltaState`].
#[derive(Clone)]
pub struct FiniteModel<S, O> {
    name: String,
    initial: S,
    ops: Vec<O>,
    apply: ApplyFn<S, O>,
    fingerprint: FingerprintFn<S>,
    delta: DeltaFn<S, O>,
    /// Deferred-validation split, when the model supports it: the pair
    /// `(candidate delta, validator)` such that `apply = candidate`
    /// followed by the validator accepting the result. The closure
    /// enumerator then only runs the validator on candidates that
    /// probe-miss the arena — an interned state already passed it.
    candidate: Option<(DeltaFn<S, O>, ValidateFn<S>)>,
}

impl<S, O> fmt::Debug for FiniteModel<S, O> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FiniteModel({}, {} ops)", self.name, self.ops.len())
    }
}

/// The closure enumeration exceeded its cap — the model is too large for
/// exhaustive checking.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClosureTooLarge {
    /// The model whose closure blew up.
    pub model: String,
    /// The cap that was exceeded.
    pub cap: usize,
}

impl fmt::Display for ClosureTooLarge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "closure of `{}` exceeds {} states; use the translators instead",
            self.model, self.cap
        )
    }
}

impl std::error::Error for ClosureTooLarge {}

impl<S, O> FiniteModel<S, O>
where
    S: Clone + Ord + Hash + ToFacts + Send + 'static,
    O: Clone + 'static,
{
    /// Creates a model with the fallback kernel hooks: whole-state
    /// hashing for fingerprints and clone-apply for deltas. (The
    /// `Hash + Send + 'static` bounds exist only for those fallbacks;
    /// everything else lives in the laxer impl below.)
    pub fn new(
        name: impl Into<String>,
        initial: S,
        ops: Vec<O>,
        apply: impl Fn(&O, &S) -> Option<S> + Send + Sync + 'static,
    ) -> Self {
        let apply: ApplyFn<S, O> = Arc::new(apply);
        let delta_apply = apply.clone();
        FiniteModel {
            name: name.into(),
            initial,
            ops,
            apply,
            fingerprint: Arc::new(|s: &S| content_fingerprint(s)),
            delta: Arc::new(move |op: &O, s: &mut S| {
                let next = delta_apply(op, s)?;
                let prev = std::mem::replace(s, next);
                Some(Box::new(move |s: &mut S| *s = prev) as UndoFn<S>)
            }),
            candidate: None,
        }
    }

    /// Replaces the fingerprint hook (must be a pure function of the
    /// state's content: equal states ⇒ equal fingerprints).
    pub fn with_fingerprint(mut self, f: impl Fn(&S) -> u64 + Send + Sync + 'static) -> Self {
        self.fingerprint = Arc::new(f);
        self
    }

    /// Replaces the delta hook. The delta must be observationally
    /// identical to [`FiniteModel::apply`] (same success/error outcome,
    /// same resulting state) and its undo token must restore the exact
    /// prior state.
    pub fn with_delta(
        mut self,
        f: impl Fn(&O, &mut S) -> Option<UndoFn<S>> + Send + Sync + 'static,
    ) -> Self {
        self.delta = Arc::new(f);
        self
    }

    /// Installs a deferred-validation split of the application function.
    ///
    /// `candidate` must behave like the delta hook *minus* some final,
    /// state-only validation pass, and `validate` must be that pass: for
    /// every state and operation, `apply` succeeds iff `candidate`
    /// succeeds *and* `validate` accepts the candidate state, in which
    /// case the candidate state is the applied state. Because
    /// validation is a pure function of the resulting state, the
    /// closure enumerator skips it whenever the candidate hash-conses
    /// to an already-interned (hence already-validated) state.
    pub fn with_candidate(
        mut self,
        candidate: impl Fn(&O, &mut S) -> Option<UndoFn<S>> + Send + Sync + 'static,
        validate: impl Fn(&S) -> bool + Send + Sync + 'static,
    ) -> Self {
        self.candidate = Some((Arc::new(candidate), Arc::new(validate)));
        self
    }
}

impl<S, O> FiniteModel<S, O>
where
    S: Clone + Ord + ToFacts,
    O: Clone,
{
    /// The model's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The initial (empty) state.
    pub fn initial(&self) -> &S {
        &self.initial
    }

    /// The simple operations.
    pub fn ops(&self) -> &[O] {
        &self.ops
    }

    /// Applies one operation; `None` is the error state.
    pub fn apply(&self, op: &O, state: &S) -> Option<S> {
        (self.apply)(op, state)
    }

    /// The state's 64-bit content fingerprint (kernel hook).
    pub fn state_fingerprint(&self, state: &S) -> u64 {
        (self.fingerprint)(state)
    }

    /// Applies one operation in place (kernel hook). Returns an undo
    /// token on success; on error (`None`) the state is untouched.
    pub fn apply_delta(&self, op: &O, state: &mut S) -> Option<UndoFn<S>> {
        (self.delta)(op, state)
    }

    /// The expansion delta used by the closure enumerators: the
    /// candidate hook when a deferred-validation split is installed,
    /// the full delta otherwise. A success must be followed by
    /// [`FiniteModel::validate_candidate`] before the resulting state
    /// may be interned as new.
    pub fn expand_delta(&self, op: &O, state: &mut S) -> Option<UndoFn<S>> {
        match &self.candidate {
            Some((candidate, _)) => candidate(op, state),
            None => (self.delta)(op, state),
        }
    }

    /// Validates a candidate produced by [`FiniteModel::expand_delta`].
    /// Trivially true when no deferred-validation split is installed
    /// (the full delta already validated).
    pub fn validate_candidate(&self, state: &S) -> bool {
        match &self.candidate {
            Some((_, validate)) => validate(state),
            None => true,
        }
    }

    /// Enumerates the closure into a [`StateArena`] with the memoized
    /// transition table, driving expansion through the delta hook: each
    /// frontier state is cloned once into a scratch buffer, every
    /// operation is applied as an undoable delta, and the arena is
    /// probed by fingerprint so successors are only materialized when
    /// genuinely new.
    ///
    /// `on_expand` runs once per state before its expansion (with the
    /// number of operations about to be applied); returning `false`
    /// stops the enumeration early and yields `Ok(None)` — the budget
    /// hook for the engine. IDs are assigned in breadth-first discovery
    /// order, with ID 0 the initial state.
    pub fn closure_with(
        &self,
        cap: usize,
        mut on_expand: impl FnMut(usize) -> bool,
    ) -> Result<Option<Closure<S>>, ClosureTooLarge> {
        let mut arena: StateArena<S> = StateArena::new();
        arena.intern(self.state_fingerprint(&self.initial), self.initial.clone());
        let mut transitions: Vec<Vec<Option<StateId>>> = Vec::new();
        let mut cursor = 0usize;
        while cursor < arena.len() {
            if !on_expand(self.ops.len()) {
                return Ok(None);
            }
            let mut scratch = arena.get(StateId::from_index(cursor)).clone();
            let mut row: Vec<Option<StateId>> = Vec::with_capacity(self.ops.len());
            for op in &self.ops {
                match self.expand_delta(op, &mut scratch) {
                    None => row.push(None),
                    Some(undo) => {
                        let fp = self.state_fingerprint(&scratch);
                        let id = match arena.probe(fp, &scratch) {
                            Some(id) => {
                                arena.add_probe_stats(1, 0);
                                Some(id)
                            }
                            None if !self.validate_candidate(&scratch) => None,
                            None => {
                                if arena.len() >= cap {
                                    return Err(ClosureTooLarge {
                                        model: self.name.clone(),
                                        cap,
                                    });
                                }
                                Some(arena.intern(fp, scratch.clone()).0)
                            }
                        };
                        row.push(id);
                        undo(&mut scratch);
                    }
                }
            }
            transitions.push(row);
            cursor += 1;
        }
        Ok(Some(Closure { arena, transitions }))
    }

    /// [`FiniteModel::closure_with`] without a budget hook.
    pub fn closure(&self, cap: usize) -> Result<Closure<S>, ClosureTooLarge> {
        Ok(self
            .closure_with(cap, |_| true)?
            .expect("unbudgeted closure cannot stop early"))
    }

    /// The set of valid states: the closure of the operations from the
    /// initial state (§2.2). Fails when more than `cap` states are
    /// reachable.
    pub fn reachable_states(&self, cap: usize) -> Result<BTreeSet<S>, ClosureTooLarge> {
        Ok(self.closure(cap)?.arena.states().iter().cloned().collect())
    }
}

/// Wraps a semantic-relation application model for the checkers.
pub fn relational_model(
    name: impl Into<String>,
    initial: RelationState,
    ops: Vec<RelOp>,
) -> FiniteModel<RelationState, RelOp> {
    FiniteModel::new(name, initial, ops, |op, state| op.apply(state).ok())
        .with_fingerprint(RelationState::fingerprint)
        .with_delta(|op, state| {
            DeltaState::apply_delta(state, op)
                .map(|undo| Box::new(move |s: &mut RelationState| s.undo(undo)) as UndoFn<_>)
        })
        // `RelOp::apply` is `apply_candidate` + `check_all`, and the
        // constraint check is by far the expensive half — deferring it
        // to probe-missing candidates is this model's main closure win.
        .with_candidate(
            |op, state| {
                let next = op.apply_candidate(state).ok()?;
                let prev = std::mem::replace(state, next);
                Some(Box::new(move |s: &mut RelationState| *s = prev) as UndoFn<_>)
            },
            |state| dme_relation::constraints::check_all(state.schema(), state).is_ok(),
        )
}

/// Wraps a semantic-graph application model for the checkers.
pub fn graph_model(
    name: impl Into<String>,
    initial: GraphState,
    ops: Vec<GraphOp>,
) -> FiniteModel<GraphState, GraphOp> {
    FiniteModel::new(name, initial, ops, |op, state| op.apply(state).ok())
        .with_fingerprint(GraphState::fingerprint)
        .with_delta(|op, state| {
            DeltaState::apply_delta(state, op)
                .map(|undo| Box::new(move |s: &mut GraphState| s.undo(undo)) as UndoFn<_>)
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dme_logic::FactBase;

    /// A toy state: a set of small integers, compiled to facts
    /// one-per-element.
    #[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
    struct Ints(BTreeSet<i64>);

    impl ToFacts for Ints {
        fn to_facts(&self) -> FactBase {
            self.0
                .iter()
                .map(|i| dme_logic::Fact::new("n", [("v", dme_value::Atom::Int(*i))]))
                .collect()
        }
    }

    fn counter_model(limit: i64) -> FiniteModel<Ints, i64> {
        FiniteModel::new(
            format!("ints<{limit}"),
            Ints(BTreeSet::new()),
            vec![1, 2],
            move |op, s| {
                let mut next = s.clone();
                let max = s.0.iter().max().copied().unwrap_or(0);
                let v = max + op;
                if v > limit {
                    return None;
                }
                next.0.insert(v);
                Some(next)
            },
        )
    }

    #[test]
    fn closure_enumerates_reachable_states() {
        let m = counter_model(3);
        let states = m.reachable_states(100).unwrap();
        // Reachable: {}, {1}, {2}, {1,2}, {1,3}, {2,3}… (chains of +1/+2
        // from the running max, capped at 3).
        assert!(states.contains(&Ints(BTreeSet::new())));
        assert!(states.contains(&Ints([1].into())));
        assert!(states.contains(&Ints([1, 2, 3].into())));
        assert!(!states.iter().any(|s| s.0.iter().any(|&v| v > 3)));
        assert_eq!(states.len(), 7);
    }

    #[test]
    fn closure_cap_enforced() {
        let m = counter_model(20);
        let err = m.reachable_states(5).unwrap_err();
        assert_eq!(err.cap, 5);
        assert!(err.to_string().contains("exceeds 5 states"));
    }

    #[test]
    fn closure_transitions_are_memoized_and_closed() {
        let m = counter_model(3);
        let closure = m.closure(100).unwrap();
        assert_eq!(closure.len(), 7);
        assert_eq!(closure.transitions.len(), 7);
        // ID 0 is the initial state.
        assert_eq!(
            closure.arena.get(crate::arena::StateId::from_index(0)),
            m.initial()
        );
        // Every transition entry agrees with a fresh clone-apply, and
        // every successor is in the arena (closed under operations).
        for (id, state) in closure.arena.iter() {
            for (oi, op) in m.ops().iter().enumerate() {
                let expect = m.apply(op, state);
                let got = closure.transitions[id.index()][oi].map(|t| closure.arena.get(t));
                assert_eq!(got, expect.as_ref());
            }
        }
        // The counter model has no confluence (every successful apply
        // discovers a new state), so all probes were misses.
        let stats = closure.arena.stats();
        assert_eq!(stats.unique, 7);
        assert_eq!(stats.hits, 0);
    }

    #[test]
    fn confluent_closures_probe_hot() {
        // Two independent toggles: 4 states, every edge revisits the
        // lattice, so most probes hit the arena.
        let m = FiniteModel::new(
            "toggles",
            Ints(BTreeSet::new()),
            vec![1, 2],
            |op, s: &Ints| {
                let mut next = s.clone();
                if !next.0.remove(op) {
                    next.0.insert(*op);
                }
                Some(next)
            },
        );
        let closure = m.closure(100).unwrap();
        assert_eq!(closure.len(), 4);
        let stats = closure.arena.stats();
        // 4 states × 2 ops = 8 successors, 3 of them new.
        assert_eq!(stats.unique, 4);
        assert_eq!(stats.hits, 5);
        assert!(stats.hit_rate() > 0.5);
    }

    #[test]
    fn budget_hook_stops_enumeration() {
        let m = counter_model(3);
        let mut calls = 0usize;
        let stopped = m
            .closure_with(100, |ops| {
                assert_eq!(ops, 2);
                calls += 1;
                calls <= 2
            })
            .unwrap();
        assert!(stopped.is_none());
        assert_eq!(calls, 3);
    }

    #[test]
    fn accessors() {
        let m = counter_model(3);
        assert_eq!(m.ops(), &[1, 2]);
        assert_eq!(m.initial(), &Ints(BTreeSet::new()));
        assert!(m.name().starts_with("ints"));
        assert!(format!("{m:?}").contains("2 ops"));
        assert_eq!(m.apply(&1, m.initial()), Some(Ints([1].into())));
    }
}
