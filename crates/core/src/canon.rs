//! Hash-consed fact-base compilation: the canonical-state interner.
//!
//! Every equivalence check (and the ANSI/SPARC consistency audit)
//! repeatedly compiles database states to their fact bases — §3.2.3's
//! state equivalence correspondence works entirely on compiled facts.
//! Compilation is the expensive, perfectly cacheable step: a state's
//! fact base depends only on the state's canonical form.
//!
//! [`FactInterner`] memoizes that step. The first compilation of a state
//! stores the fact base behind an [`Arc`]; every later request for an
//! equal state — from any thread, any checker tier, or any application
//! model of a data-model check — returns the shared `Arc` without
//! recompiling. The table is sharded by state hash so parallel workers
//! rarely contend on the same lock.

use std::collections::HashMap;
use std::hash::{BuildHasher, Hash, RandomState};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use dme_logic::{FactBase, ToFacts};
use dme_obs::{Counter, Observer};

const SHARD_COUNT: usize = 16;

/// Cache counters of a [`FactInterner`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InternerStats {
    /// Compilations answered from the cache.
    pub hits: u64,
    /// Compilations that had to run [`ToFacts::to_facts`].
    pub misses: u64,
    /// Distinct states currently interned.
    pub unique: usize,
}

impl InternerStats {
    /// Hits as a fraction of all lookups (0 when nothing was looked up).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A thread-safe, sharded map from canonical states to their compiled
/// fact bases.
pub struct FactInterner<S> {
    shards: Vec<Mutex<HashMap<S, Arc<FactBase>>>>,
    hasher: RandomState,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<S> Default for FactInterner<S>
where
    S: Clone + Eq + Hash + ToFacts,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<S> FactInterner<S>
where
    S: Clone + Eq + Hash + ToFacts,
{
    /// An empty interner.
    pub fn new() -> Self {
        FactInterner {
            shards: (0..SHARD_COUNT)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            hasher: RandomState::new(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard_of(&self, state: &S) -> usize {
        (self.hasher.hash_one(state) as usize) % SHARD_COUNT
    }

    fn compile_inner(&self, state: &S) -> (Arc<FactBase>, bool) {
        let shard = &self.shards[self.shard_of(state)];
        if let Some(found) = shard.lock().unwrap_or_else(|e| e.into_inner()).get(state) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return (Arc::clone(found), true);
        }
        // Compile outside the lock so a slow compilation doesn't stall
        // the shard; a racing thread may compile the same state, in
        // which case the first insert wins and stays canonical.
        let compiled = Arc::new(state.to_facts());
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut map = shard.lock().unwrap_or_else(|e| e.into_inner());
        (
            Arc::clone(map.entry(state.clone()).or_insert(compiled)),
            false,
        )
    }

    /// The compiled fact base of `state`, computed at most once per
    /// distinct state and shared via [`Arc`] thereafter.
    pub fn compile(&self, state: &S) -> Arc<FactBase> {
        self.compile_inner(state).0
    }

    /// [`FactInterner::compile`], with the hit/miss also charged to the
    /// observer's [`Counter::InternerHits`]/[`Counter::InternerMisses`]
    /// — the engine's per-phase cache attribution.
    pub fn compile_observed(&self, state: &S, obs: &Observer) -> Arc<FactBase> {
        let (compiled, hit) = self.compile_inner(state);
        obs.add(
            if hit {
                Counter::InternerHits
            } else {
                Counter::InternerMisses
            },
            1,
        );
        compiled
    }

    /// Number of distinct states interned.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).len())
            .sum()
    }

    /// Whether nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current cache counters.
    pub fn stats(&self) -> InternerStats {
        InternerStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            unique: self.len(),
        }
    }

    /// Drops all interned states and resets the counters.
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().unwrap_or_else(|e| e.into_inner()).clear();
        }
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }
}

impl<S> std::fmt::Debug for FactInterner<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "FactInterner({} hits, {} misses)",
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dme_logic::Fact;
    use dme_value::Atom;

    fn base(ns: &[i64]) -> FactBase {
        ns.iter()
            .map(|n| Fact::new("p", [("x", Atom::Int(*n))]))
            .collect()
    }

    #[test]
    fn compiles_once_and_shares() {
        let interner: FactInterner<FactBase> = FactInterner::new();
        let s = base(&[1, 2]);
        let first = interner.compile(&s);
        let second = interner.compile(&s.clone());
        assert!(Arc::ptr_eq(&first, &second), "same Arc on a hit");
        assert_eq!(*first, s, "a fact base compiles to itself");
        let stats = interner.stats();
        assert_eq!((stats.hits, stats.misses, stats.unique), (1, 1, 1));
        assert_eq!(stats.hit_rate(), 0.5);
    }

    #[test]
    fn distinct_states_intern_separately() {
        let interner: FactInterner<FactBase> = FactInterner::new();
        for i in 0..10 {
            interner.compile(&base(&[i]));
        }
        assert_eq!(interner.len(), 10);
        assert_eq!(interner.stats().misses, 10);
        interner.clear();
        assert!(interner.is_empty());
        assert_eq!(interner.stats(), InternerStats::default());
    }

    #[test]
    fn concurrent_compilation_converges_on_one_arc() {
        let interner: FactInterner<FactBase> = FactInterner::new();
        let s = base(&[7]);
        let arcs: Vec<Arc<FactBase>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| scope.spawn(|| interner.compile(&s)))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        // All returned Arcs alias the single canonical entry.
        for arc in &arcs {
            assert!(Arc::ptr_eq(arc, &arcs[0]));
        }
        assert_eq!(interner.len(), 1);
        let stats = interner.stats();
        assert_eq!(stats.hits + stats.misses, 8);
        assert!(stats.misses >= 1);
    }

    #[test]
    fn observed_compilation_classifies_hits_and_misses() {
        use dme_obs::{Counter, Observer, RingSink};
        let interner: FactInterner<FactBase> = FactInterner::new();
        let obs = Observer::new(RingSink::with_capacity(8));
        let s = base(&[3]);
        interner.compile_observed(&s, &obs);
        interner.compile_observed(&s, &obs);
        assert_eq!(obs.counter(Counter::InternerMisses), 1);
        assert_eq!(obs.counter(Counter::InternerHits), 1);
        // A disabled observer changes nothing and costs nothing.
        interner.compile_observed(&s, &Observer::disabled());
        assert_eq!(interner.stats().hits, 2);
    }

    #[test]
    fn hit_rate_of_empty_interner_is_zero() {
        let interner: FactInterner<FactBase> = FactInterner::new();
        assert_eq!(interner.stats().hit_rate(), 0.0);
    }
}
