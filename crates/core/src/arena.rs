//! Hash-consed state arena: the integer-ID kernel under the checkers.
//!
//! The closure of an application model (§2.2) can visit the same state
//! along many operation paths. The naive enumeration pays a full
//! `BTreeSet` comparison (deep structural `Ord`) for every probe and
//! clones whole states for every successor. [`StateArena`] hash-conses
//! states instead: every distinct state is stored exactly once and named
//! by a dense [`StateId`] (`u32`), probes go through a 64-bit content
//! fingerprint (see [`dme_logic::DeltaState::fingerprint`]), and the
//! closure machinery downstream — pairing, signatures, reachability —
//! operates on integer IDs and ID-indexed tables rather than on state
//! clones.
//!
//! [`Closure`] couples the arena with the **transition table** recorded
//! while the closure is enumerated: `transitions[s][op]` is the
//! successor's ID (or `None` for the paper's error state). Recording
//! transitions once during enumeration turns the signature computation
//! of Definition 1 into a pure relabelling — no operation is ever
//! applied twice to the same state.
//!
//! IDs are assigned in breadth-first discovery order from the initial
//! state, which makes them deterministic for a given model regardless of
//! how the enumeration is driven (sequentially or by a worker pool that
//! merges discoveries in index order).

use std::collections::HashMap;
use std::fmt;

/// Dense integer name for an interned state.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StateId(u32);

impl StateId {
    /// Builds an ID from a raw index (must come from the owning arena).
    pub fn from_index(index: usize) -> StateId {
        StateId(u32::try_from(index).expect("state arena overflow: > u32::MAX states"))
    }

    /// The position of the state in the owning arena.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for StateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Probe statistics for one arena.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Probes answered by an already-interned state.
    pub hits: u64,
    /// Probes that interned a genuinely new state.
    pub misses: u64,
    /// Number of distinct states interned.
    pub unique: usize,
}

impl ArenaStats {
    /// Fraction of probes answered without interning, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A hash-consing arena over whole states.
///
/// States are appended once and never move, so `&self` probes are safe
/// to run from many threads while a single owner later merges the
/// misses with [`StateArena::intern`]. Lookup is fingerprint-first: the
/// index maps a 64-bit fingerprint to the (almost always singleton)
/// list of IDs carrying it, and the full `Eq` comparison only runs on
/// fingerprint collisions.
#[derive(Clone, Debug)]
pub struct StateArena<S> {
    states: Vec<S>,
    fps: Vec<u64>,
    index: HashMap<u64, Vec<u32>>,
    hits: u64,
    misses: u64,
}

impl<S> Default for StateArena<S> {
    fn default() -> Self {
        StateArena::new()
    }
}

impl<S> StateArena<S> {
    /// Creates an empty arena.
    pub fn new() -> Self {
        StateArena {
            states: Vec::new(),
            fps: Vec::new(),
            index: HashMap::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Number of interned states.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// The interned state named by `id`.
    pub fn get(&self, id: StateId) -> &S {
        &self.states[id.index()]
    }

    /// The cached fingerprint of `id`.
    pub fn fingerprint_of(&self, id: StateId) -> u64 {
        self.fps[id.index()]
    }

    /// All interned states, in ID order.
    pub fn states(&self) -> &[S] {
        &self.states
    }

    /// Iterates `(id, state)` in ID order.
    pub fn iter(&self) -> impl Iterator<Item = (StateId, &S)> {
        self.states
            .iter()
            .enumerate()
            .map(|(i, s)| (StateId::from_index(i), s))
    }

    /// Probe statistics so far.
    pub fn stats(&self) -> ArenaStats {
        ArenaStats {
            hits: self.hits,
            misses: self.misses,
            unique: self.states.len(),
        }
    }

    /// Folds probe counts gathered externally (e.g. by worker threads
    /// probing through `&self`) into the arena's statistics.
    pub fn add_probe_stats(&mut self, hits: u64, misses: u64) {
        self.hits += hits;
        self.misses += misses;
    }
}

impl<S: Eq> StateArena<S> {
    /// Pure lookup: the ID of `state` if it is already interned.
    ///
    /// Does not touch the statistics — callers that probe before
    /// deciding whether to intern count via [`StateArena::intern`] or
    /// [`StateArena::add_probe_stats`].
    pub fn probe(&self, fp: u64, state: &S) -> Option<StateId> {
        self.index
            .get(&fp)?
            .iter()
            .copied()
            .find(|&i| self.states[i as usize] == *state)
            .map(StateId)
    }

    /// Interns `state`, returning its ID and whether it was new.
    ///
    /// First insert wins: re-interning an equal state returns the
    /// existing ID (a hit) and drops the argument.
    pub fn intern(&mut self, fp: u64, state: S) -> (StateId, bool) {
        if let Some(id) = self.probe(fp, &state) {
            self.hits += 1;
            return (id, false);
        }
        let id = StateId::from_index(self.states.len());
        self.states.push(state);
        self.fps.push(fp);
        self.index.entry(fp).or_default().push(id.0);
        self.misses += 1;
        (id, true)
    }
}

/// An enumerated closure: the arena of reachable states plus the
/// transition table recorded while enumerating them.
///
/// `transitions[s][op]` is the ID of the state reached by applying the
/// model's `op`-th operation to state `s`, or `None` when the operation
/// errors (§2.1's error state). Because the closure is closed under the
/// operations, every `Some` entry names a state in the arena.
#[derive(Clone, Debug)]
pub struct Closure<S> {
    /// The reachable states, IDs in breadth-first discovery order
    /// (ID 0 is the initial state).
    pub arena: StateArena<S>,
    /// `transitions[state][op]` — the memoized successor table.
    pub transitions: Vec<Vec<Option<StateId>>>,
}

impl<S> Closure<S> {
    /// Number of states in the closure.
    pub fn len(&self) -> usize {
        self.arena.len()
    }

    /// True when the closure is empty (never: it holds the initial state).
    pub fn is_empty(&self) -> bool {
        self.arena.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_injective_and_stable() {
        let mut arena: StateArena<String> = StateArena::new();
        let (a, new_a) = arena.intern(1, "alpha".into());
        let (b, new_b) = arena.intern(2, "beta".into());
        let (a2, new_a2) = arena.intern(1, "alpha".into());
        assert!(new_a && new_b && !new_a2);
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(arena.get(a), "alpha");
        assert_eq!(arena.fingerprint_of(b), 2);
        assert_eq!(arena.len(), 2);
        let stats = arena.stats();
        assert_eq!((stats.hits, stats.misses, stats.unique), (1, 2, 2));
        assert!((stats.hit_rate() - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn fingerprint_collisions_resolved_by_eq() {
        let mut arena: StateArena<String> = StateArena::new();
        let (a, _) = arena.intern(7, "x".into());
        let (b, new_b) = arena.intern(7, "y".into());
        assert_ne!(a, b);
        assert!(new_b);
        assert_eq!(arena.probe(7, &"x".to_string()), Some(a));
        assert_eq!(arena.probe(7, &"y".to_string()), Some(b));
        assert_eq!(arena.probe(7, &"z".to_string()), None);
        assert_eq!(arena.probe(8, &"x".to_string()), None);
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let mut arena: StateArena<u32> = StateArena::new();
        for v in 0..10u32 {
            let (id, _) = arena.intern(u64::from(v), v);
            assert_eq!(id.index(), v as usize);
        }
        let collected: Vec<u32> = arena.iter().map(|(_, &s)| s).collect();
        assert_eq!(collected, (0..10).collect::<Vec<_>>());
        assert_eq!(StateId::from_index(3).to_string(), "s3");
    }
}
