#![deny(missing_docs)]

//! # dme-core — the formal framework of *Data Model Equivalence*
//!
//! This crate implements the paper's contribution proper: the formal
//! definitions of §2 (Figure 2) and the equivalence hierarchy of §3
//! (Definitions 1–6), as decision procedures and constructive
//! translators over the two semantic data models (`dme-relation`,
//! `dme-graph`).
//!
//! | paper | here |
//! |---|---|
//! | data model = {application model…} | a `Vec<FiniteModel>` checked by [`Checker::data_models`] |
//! | application model = (schema, {operation type…}) | [`model::FiniteModel`]: initial state + operation list + application function |
//! | operation : state → state | a closure returning `Option<State>` (`None` = the error state) |
//! | database = (application model, state) | a `(FiniteModel, State)` pair |
//! | state equivalence (§3.2.3) | fact-base equality via `dme-logic` ([`equiv::pair_states`]) |
//! | Definition 1 (operation equivalence) | signature equality ([`Tier::Operation`]) |
//! | Definition 2 (isomorphic equivalence) | [`Tier::Isomorphic`] |
//! | Definition 3 (composed operation equivalence) | [`Tier::Composed`] |
//! | Definitions 4–5 (state dependent equivalence) | [`Tier::StateDependent`] |
//! | Definition 6 (data model equivalence, partial equivalence) | [`Tier::DataModel`] |
//! | the "algorithm rather than an explicit enumeration" (§3.3.1) | [`translate`]: the graph↔relation operation translators |
//!
//! Every tier is driven through one facade: build a [`Checker`], pick a
//! [`Tier`], and [`Checker::run`] it.
//!
//! The checkers operate on **finite** application models — schemas over
//! enumerated domains — by exhaustively enumerating the closure of the
//! allowable operations from the empty state, exactly the paper's
//! definition of the valid states. For infinite models the constructive
//! translators (verified per call) take over.

pub mod arena;
pub mod bitset;
pub mod canon;
pub mod check;
pub mod enumerate;
pub mod equiv;
pub mod incremental;
pub mod model;
pub mod parallel;
#[cfg(feature = "slow-reference")]
pub mod slow_reference;
pub mod symbolic;
pub mod translate;
pub mod witness;

/// The observability layer ([`dme_obs`]), re-exported so checker
/// callers can build sinks and reports without a separate dependency.
pub use dme_obs as obs;

pub use arena::{ArenaStats, Closure, StateArena, StateId};
pub use bitset::BitSet;
pub use canon::{FactInterner, InternerStats};
pub use check::{Checker, Tier, DEFAULT_STATE_CAP};
pub use equiv::{pair_states, CheckError, DataModelReport, EquivKind, MatchReport};
pub use incremental::{CacheStats, IncrementalChecker, VerdictImageReport};
pub use model::FiniteModel;
pub use parallel::{CheckBudget, ParallelConfig, Side, Verdict, Witness};
pub use symbolic::{
    DifferTrace, FoundCounterexample, SymbolicChecker, SymbolicConstraint, SymbolicOp,
    SymbolicOutcome, SymbolicSpec, DEFAULT_BOUND,
};
pub use translate::{
    compile_time_translation, graph_op_to_relational, graph_op_to_relational_observed,
    materialize_relational_state, relational_op_to_graph, relational_op_to_graph_observed,
    CompletionMode, TranslateError,
};
