//! Word-packed bitsets over dense [`StateId`](crate::arena::StateId)
//! spaces.
//!
//! The reachability computations of Definitions 4–5 maintain per-state
//! sets of reachable pair indices. With states named by dense integers
//! (see [`crate::arena`]), those sets pack into machine words: membership
//! is a shift and a mask, union is a word-wise `OR`, and the whole
//! frontier of a breadth-first sweep fits in `n / 64` words instead of a
//! pointer-chasing tree.

/// A fixed-universe bitset over `0..capacity`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    capacity: usize,
}

impl BitSet {
    /// Creates an empty set over the universe `0..capacity`.
    pub fn with_capacity(capacity: usize) -> BitSet {
        BitSet {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
        }
    }

    /// The universe size this set was created with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Inserts `i`, returning `true` if it was absent.
    ///
    /// Panics if `i` is outside the universe.
    pub fn insert(&mut self, i: usize) -> bool {
        assert!(
            i < self.capacity,
            "bit {i} out of universe {}",
            self.capacity
        );
        let (w, b) = (i / 64, 1u64 << (i % 64));
        let absent = self.words[w] & b == 0;
        self.words[w] |= b;
        absent
    }

    /// Removes `i`, returning `true` if it was present.
    pub fn remove(&mut self, i: usize) -> bool {
        if i >= self.capacity {
            return false;
        }
        let (w, b) = (i / 64, 1u64 << (i % 64));
        let present = self.words[w] & b != 0;
        self.words[w] &= !b;
        present
    }

    /// Membership test. Out-of-universe indices are simply absent.
    pub fn contains(&self, i: usize) -> bool {
        i < self.capacity && self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Word-wise union: `self ∪= other`. Returns `true` if `self` grew.
    ///
    /// Panics if the universes differ.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        assert_eq!(
            self.capacity, other.capacity,
            "bitset union over mismatched universes"
        );
        let mut grew = false;
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            let merged = *w | o;
            grew |= merged != *w;
            *w = merged;
        }
        grew
    }

    /// Number of elements (population count).
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when no element is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterates set elements in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(wi * 64 + b)
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    #[test]
    fn basic_operations() {
        let mut s = BitSet::with_capacity(130);
        assert!(s.is_empty());
        assert!(s.insert(0));
        assert!(s.insert(63));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(64), "second insert reports present");
        assert!(s.contains(129) && !s.contains(128) && !s.contains(500));
        assert_eq!(s.count(), 4);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 63, 64, 129]);
        assert!(s.remove(63));
        assert!(!s.remove(63));
        assert_eq!(s.count(), 3);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// Insert/remove/contains/count/iter agree with a `BTreeSet`
        /// oracle over arbitrary scripts.
        #[test]
        fn agrees_with_btreeset_oracle(
            script in prop::collection::vec((any::<bool>(), 0usize..200), 0..64),
        ) {
            let mut bits = BitSet::with_capacity(200);
            let mut oracle: BTreeSet<usize> = BTreeSet::new();
            for (insert, i) in script {
                if insert {
                    prop_assert_eq!(bits.insert(i), oracle.insert(i));
                } else {
                    prop_assert_eq!(bits.remove(i), oracle.remove(&i));
                }
            }
            prop_assert_eq!(bits.count(), oracle.len());
            prop_assert_eq!(bits.is_empty(), oracle.is_empty());
            prop_assert_eq!(bits.iter().collect::<Vec<_>>(),
                            oracle.iter().copied().collect::<Vec<_>>());
            for i in 0..200 {
                prop_assert_eq!(bits.contains(i), oracle.contains(&i));
            }
        }

        /// Union agrees with the set-theoretic oracle and reports
        /// growth correctly.
        #[test]
        fn union_agrees_with_oracle(
            a in prop::collection::btree_set(0usize..150, 0..40),
            b in prop::collection::btree_set(0usize..150, 0..40),
        ) {
            let mut ba = BitSet::with_capacity(150);
            let mut bb = BitSet::with_capacity(150);
            for &i in &a { ba.insert(i); }
            for &i in &b { bb.insert(i); }
            let grew = ba.union_with(&bb);
            let union: BTreeSet<usize> = a.union(&b).copied().collect();
            prop_assert_eq!(grew, union.len() > a.len());
            prop_assert_eq!(ba.iter().collect::<BTreeSet<_>>(), union);
        }
    }
}
