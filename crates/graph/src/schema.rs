//! The semantic graph schema (the paper's Figure 5).
//!
//! A [`GraphSchema`] refines a [`Universe`] with **participation rules**:
//! for each (predicate, role) pair, whether participation is *total* for
//! the role's entity type (solid edge: "every machine must be part of an
//! operation association") or *optional* (dotted edge: "not every
//! employee need be in an operation association"), and whether it is
//! *functional* (arrowhead: "a machine may belong to only one operation
//! association").
//!
//! Entity identity comes from the universe (each entity type's
//! identifying characteristic — the Figure 5 arrowhead "employees are
//! uniquely identified by their name"); association identity is the full
//! role assignment (two associations of the same type with identical
//! participants are the same association), with functional roles
//! restricting this further.

use std::collections::BTreeMap;
use std::fmt;

use dme_logic::Universe;
use dme_value::Symbol;

/// Participation of an entity type in one (predicate, role).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Participation {
    /// Solid edge: every entity of the role's type must fill this role in
    /// at least one association.
    pub total: bool,
    /// Arrowhead: an entity may fill this role in at most one
    /// association.
    pub functional: bool,
}

impl Participation {
    /// Optional, non-functional (the default dotted edge).
    pub const OPTIONAL: Participation = Participation {
        total: false,
        functional: false,
    };

    /// Total and functional (the machine/operation edge of Figure 5).
    pub const TOTAL_FUNCTIONAL: Participation = Participation {
        total: true,
        functional: true,
    };
}

/// Errors found while validating a graph schema.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GraphSchemaError {
    /// A participation references an undeclared predicate or role.
    UnknownRole {
        /// The undeclared predicate.
        predicate: Symbol,
        /// The undeclared role.
        role: Symbol,
    },
    /// A declared predicate role has no participation rule.
    MissingParticipation {
        /// The predicate missing a rule.
        predicate: Symbol,
        /// The role missing a rule.
        role: Symbol,
    },
}

impl fmt::Display for GraphSchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphSchemaError::UnknownRole { predicate, role } => {
                write!(f, "participation for unknown role `{predicate}:{role}`")
            }
            GraphSchemaError::MissingParticipation { predicate, role } => {
                write!(f, "no participation rule for role `{predicate}:{role}`")
            }
        }
    }
}

impl std::error::Error for GraphSchemaError {}

/// The schema of a semantic-graph application model.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GraphSchema {
    universe: Universe,
    participations: BTreeMap<(Symbol, Symbol), Participation>,
}

impl GraphSchema {
    /// Builds and validates a graph schema. Every (predicate, role) of
    /// the universe must receive exactly one participation rule.
    pub fn new(
        universe: Universe,
        participations: impl IntoIterator<Item = ((Symbol, Symbol), Participation)>,
    ) -> Result<Self, GraphSchemaError> {
        let participations: BTreeMap<_, _> = participations.into_iter().collect();
        for (predicate, role) in participations.keys() {
            let known = universe
                .predicate(predicate.as_str())
                .and_then(|p| p.case_type(role.as_str()))
                .is_some();
            if !known {
                return Err(GraphSchemaError::UnknownRole {
                    predicate: predicate.clone(),
                    role: role.clone(),
                });
            }
        }
        for pred in universe.predicates() {
            for (role, _) in pred.cases() {
                if !participations.contains_key(&(pred.name().clone(), role.clone())) {
                    return Err(GraphSchemaError::MissingParticipation {
                        predicate: pred.name().clone(),
                        role: role.clone(),
                    });
                }
            }
        }
        Ok(GraphSchema {
            universe,
            participations,
        })
    }

    /// The shared universe.
    pub fn universe(&self) -> &Universe {
        &self.universe
    }

    /// The participation rule for a (predicate, role).
    pub fn participation(&self, predicate: &str, role: &str) -> Option<Participation> {
        self.participations
            .get(&(Symbol::new(predicate), Symbol::new(role)))
            .copied()
    }

    /// All participation rules, keyed by (predicate, role).
    pub fn participations(&self) -> impl Iterator<Item = (&(Symbol, Symbol), &Participation)> {
        self.participations.iter()
    }

    /// The full fact vocabulary of this schema: every entity type with
    /// all its characteristics and every predicate of the universe. Used
    /// by view-integration audits — an external view's vocabulary must be
    /// covered by this one, and the union of all views' vocabularies
    /// shows which conceptual information is visible to no user at all.
    pub fn vocabulary(&self) -> dme_logic::vocab::FactFilter {
        let mut filter = dme_logic::vocab::FactFilter::new();
        for et in self.universe.entity_types() {
            filter.entity_types.insert(et.name().clone());
            for (c, _) in et.non_id_characteristics() {
                filter
                    .characteristics
                    .insert((et.name().clone(), c.clone()));
            }
        }
        for pred in self.universe.predicates() {
            filter.predicates.insert(pred.name().clone());
        }
        filter
    }

    /// The roles an entity type must fill (total participations), as
    /// (predicate, role) pairs.
    pub fn required_roles(&self, entity_type: &str) -> Vec<(Symbol, Symbol)> {
        self.participations
            .iter()
            .filter(|((pred, role), p)| {
                p.total
                    && self
                        .universe
                        .predicate(pred.as_str())
                        .and_then(|d| d.case_type(role.as_str()))
                        .is_some_and(|t| t.as_str() == entity_type)
            })
            .map(|(k, _)| k.clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;
    use dme_value::sym;

    #[test]
    fn machine_shop_schema_is_valid() {
        let s = fixtures::machine_shop_graph_schema();
        assert_eq!(
            s.participation("operate", "object"),
            Some(Participation::TOTAL_FUNCTIONAL)
        );
        assert_eq!(
            s.participation("operate", "agent"),
            Some(Participation::OPTIONAL)
        );
        assert_eq!(s.participation("operate", "nope"), None);
        assert_eq!(s.participations().count(), 4);
    }

    #[test]
    fn required_roles_finds_machine_totality() {
        let s = fixtures::machine_shop_graph_schema();
        assert_eq!(
            s.required_roles("machine"),
            vec![(sym!("operate"), sym!("object"))]
        );
        assert!(s.required_roles("employee").is_empty());
    }

    #[test]
    fn rejects_unknown_role() {
        let u = Universe::machine_shop();
        let err = GraphSchema::new(
            u,
            [(
                (sym!("operate"), sym!("instrument")),
                Participation::OPTIONAL,
            )],
        )
        .unwrap_err();
        assert!(matches!(err, GraphSchemaError::UnknownRole { .. }));
    }

    #[test]
    fn rejects_missing_participation() {
        let u = Universe::machine_shop();
        let err = GraphSchema::new(
            u,
            [
                ((sym!("operate"), sym!("agent")), Participation::OPTIONAL),
                (
                    (sym!("operate"), sym!("object")),
                    Participation::TOTAL_FUNCTIONAL,
                ),
                ((sym!("supervise"), sym!("agent")), Participation::OPTIONAL),
                // supervise:object missing
            ],
        )
        .unwrap_err();
        assert_eq!(
            err,
            GraphSchemaError::MissingParticipation {
                predicate: sym!("supervise"),
                role: sym!("object"),
            }
        );
    }

    #[test]
    fn error_display() {
        let e = GraphSchemaError::UnknownRole {
            predicate: sym!("p"),
            role: sym!("r"),
        };
        assert_eq!(e.to_string(), "participation for unknown role `p:r`");
    }
}
