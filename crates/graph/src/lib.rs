#![deny(missing_docs)]

//! # dme-graph — the semantic graph data model
//!
//! An executable implementation of the semantic graph data model of
//! Borkin's *Data Model Equivalence* (§3.2.2) — a "semantic version" of
//! the DBTG network model, similar to Schmid & Swenson and Deheneffe et
//! al.:
//!
//! * the database state "is meant to consist of objects in 1-1
//!   correspondence with the application state": **entities**,
//!   **associations** and **characteristics**, joined by **role** and
//!   **characteristic edges** (Figure 4);
//! * the schema (Figure 5) distinguishes **total** (solid) from
//!   **optional** (dotted) role edges — "every machine must be part of an
//!   operation association but not every employee need be" — and carries
//!   **functionality arrowheads** — "employees are uniquely identified by
//!   their name … a machine may belong to only one operation
//!   association";
//! * the operations "directly model the kinds of transitions which can
//!   take place in the application": insertion/deletion of an independent
//!   entity, an independent association, or a **semantic unit** — "a
//!   group of entities and associations which must be inserted or deleted
//!   as a single unit due to restrictions stated in the schema"
//!   ("whenever a machine is inserted or deleted, an operation
//!   association must also be inserted or deleted").
//!
//! Modules:
//!
//! * [`schema`] — [`GraphSchema`]: participation rules per (entity type,
//!   predicate, role): totality and functionality;
//! * [`state`] — [`GraphState`]: entities and associations with identity,
//!   plus validation against the schema;
//! * [`ops`] — [`GraphOp`]: the six operation types;
//! * [`mod@unit`] — semantic-unit closure computation;
//! * [`facts`] — compilation into `dme-logic` fact bases;
//! * [`fixtures`] — Figures 4, 5 and 6 ready-made.

pub mod display;
pub mod facts;
pub mod fixtures;
pub mod ops;
pub mod schema;
pub mod state;
pub mod unit;

pub use ops::{GraphChange, GraphOp, GraphOpError, GraphTxn, GraphUndo};
pub use schema::{GraphSchema, GraphSchemaError, Participation};
pub use state::{Association, Entity, EntityRef, GraphState, GraphStateError};
pub use unit::SemanticUnit;
