//! The paper's graph-side figures as ready-made schemas and states.

use std::sync::Arc;

use dme_logic::Universe;
use dme_value::{sym, Atom};

use crate::schema::{GraphSchema, Participation};
use crate::state::{Association, Entity, EntityRef, GraphState};

/// The Figure 5 schema: employees and machines; `operate` with a dotted
/// (optional) agent edge and a solid, arrowed (total, functional) object
/// edge; `supervise` fully optional.
pub fn machine_shop_graph_schema() -> GraphSchema {
    GraphSchema::new(
        Universe::machine_shop(),
        [
            ((sym!("operate"), sym!("agent")), Participation::OPTIONAL),
            (
                (sym!("operate"), sym!("object")),
                Participation::TOTAL_FUNCTIONAL,
            ),
            ((sym!("supervise"), sym!("agent")), Participation::OPTIONAL),
            ((sym!("supervise"), sym!("object")), Participation::OPTIONAL),
        ],
    )
    .expect("figure 5 schema is well-formed")
}

fn emp_ref(name: &str) -> EntityRef {
    EntityRef::new("employee", Atom::str(name))
}

fn machine_ref(number: &str) -> EntityRef {
    EntityRef::new("machine", Atom::str(number))
}

fn employees_and_base(schema: Arc<GraphSchema>) -> GraphState {
    let mut s = GraphState::empty(schema);
    for (name, age) in [("T.Manhart", 32), ("C.Gershag", 40), ("G.Wayshum", 50)] {
        s.insert_entity_raw(Entity::new(
            "employee",
            [("name", Atom::str(name)), ("age", Atom::int(age))],
        ))
        .expect("fixture employee");
    }
    s
}

/// The Figure 4 database state: three employees, two machines, two
/// operation associations and one supervision.
pub fn figure4_state() -> GraphState {
    let mut s = employees_and_base(Arc::new(machine_shop_graph_schema()));
    s.insert_entity_raw(Entity::new(
        "machine",
        [("number", Atom::str("NZ745")), ("type", Atom::str("lathe"))],
    ))
    .expect("fixture machine");
    s.insert_entity_raw(Entity::new(
        "machine",
        [
            ("number", Atom::str("JCL181")),
            ("type", Atom::str("press")),
        ],
    ))
    .expect("fixture machine");
    s.insert_association_raw(Association::new(
        "operate",
        [
            ("agent", emp_ref("T.Manhart")),
            ("object", machine_ref("NZ745")),
        ],
    ))
    .expect("fixture operate");
    s.insert_association_raw(Association::new(
        "operate",
        [
            ("agent", emp_ref("C.Gershag")),
            ("object", machine_ref("JCL181")),
        ],
    ))
    .expect("fixture operate");
    s.insert_association_raw(Association::new(
        "supervise",
        [
            ("agent", emp_ref("G.Wayshum")),
            ("object", emp_ref("C.Gershag")),
        ],
    ))
    .expect("fixture supervise");
    s
}

/// The Figure 6 database state: Figure 4 plus the supervision of
/// T.Manhart by G.Wayshum.
pub fn figure6_state() -> GraphState {
    let mut s = figure4_state();
    s.insert_association_raw(Association::new(
        "supervise",
        [
            ("agent", emp_ref("G.Wayshum")),
            ("object", emp_ref("T.Manhart")),
        ],
    ))
    .expect("fixture supervise");
    s
}

/// The premise of the Figure 8 thought experiment: Figure 4 with no
/// operation association involving T.Manhart (and hence no machine
/// NZ745).
pub fn figure8_premise_state() -> GraphState {
    let mut s = employees_and_base(Arc::new(machine_shop_graph_schema()));
    s.insert_entity_raw(Entity::new(
        "machine",
        [
            ("number", Atom::str("JCL181")),
            ("type", Atom::str("press")),
        ],
    ))
    .expect("fixture machine");
    s.insert_association_raw(Association::new(
        "operate",
        [
            ("agent", emp_ref("C.Gershag")),
            ("object", machine_ref("JCL181")),
        ],
    ))
    .expect("fixture operate");
    s.insert_association_raw(Association::new(
        "supervise",
        [
            ("agent", emp_ref("G.Wayshum")),
            ("object", emp_ref("C.Gershag")),
        ],
    ))
    .expect("fixture supervise");
    s
}

/// The Figure 8 graph-side state: the premise plus the supervision of
/// T.Manhart by G.Wayshum. (On the graph side the inserted association is
/// *identical* to the Figure 6 one — only its relational equivalent
/// changes with the state.)
pub fn figure8_graph_state() -> GraphState {
    let mut s = figure8_premise_state();
    s.insert_association_raw(Association::new(
        "supervise",
        [
            ("agent", emp_ref("G.Wayshum")),
            ("object", emp_ref("T.Manhart")),
        ],
    ))
    .expect("fixture supervise");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use dme_logic::{state_equivalent, ToFacts};

    #[test]
    fn all_fixture_states_validate() {
        for s in [
            figure4_state(),
            figure6_state(),
            figure8_premise_state(),
            figure8_graph_state(),
        ] {
            s.validate().unwrap();
        }
    }

    #[test]
    fn figure4_sizes() {
        assert_eq!(figure4_state().sizes(), (5, 3));
        assert_eq!(figure6_state().sizes(), (5, 4));
        assert_eq!(figure8_premise_state().sizes(), (4, 2));
        assert_eq!(figure8_graph_state().sizes(), (4, 3));
    }

    #[test]
    fn figure6_delta_is_exactly_the_supervision_fact() {
        let d = figure4_state()
            .to_facts()
            .delta_to(&figure6_state().to_facts());
        assert!(d.removed.is_empty());
        assert_eq!(d.added.len(), 1);
        assert_eq!(d.added.iter().next().unwrap().predicate(), "supervise");
    }

    #[test]
    fn premise_differs_from_figure4_by_machine_unit_facts() {
        let d = figure4_state()
            .to_facts()
            .delta_to(&figure8_premise_state().to_facts());
        assert!(d.added.is_empty());
        // be machine, machine.type, operate — the semantic unit's facts.
        assert_eq!(d.removed.len(), 3);
    }

    #[test]
    fn graph_states_not_equivalent_to_each_other() {
        let r = state_equivalent(&figure4_state(), &figure6_state());
        assert!(!r.is_equivalent());
    }
}
