//! Semantic graph database states (the paper's Figure 4).
//!
//! A [`GraphState`] holds **entities** (with their characteristic values)
//! and **associations** (with each role bound to an entity). Unlike the
//! relation model — whose state consists of *statements about* the
//! application — the graph state "is meant to consist of objects in 1-1
//! correspondence with the application state" (§3.2.2).
//!
//! Identity: an entity is identified by its type plus the value of its
//! identifying characteristic ([`EntityRef`]); an association by its
//! predicate plus its full role assignment. This mirrors the Figure 5
//! arrowheads ("employees are uniquely identified by their name"; "the
//! identity of both the agent and object roles are necessary to uniquely
//! identify a supervision association").
//!
//! [`GraphState::validate`] separates **shape** errors (dangling role
//! edges, missing characteristics, wrong domains) from **schema
//! constraint** errors (totality, functionality). Operations in
//! [`crate::ops`] apply raw changes and then re-validate, so the error
//! state is reached exactly when the transition would leave the
//! application state inconsistent.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::Arc;

use dme_value::{Atom, Symbol, Value};

use crate::schema::GraphSchema;

/// A reference to an entity: its type and identifying value.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EntityRef {
    /// The entity type.
    pub entity_type: Symbol,
    /// The value of the type's identifying characteristic.
    pub key: Atom,
}

impl EntityRef {
    /// Creates a reference.
    pub fn new(entity_type: impl Into<Symbol>, key: impl Into<Atom>) -> Self {
        EntityRef {
            entity_type: entity_type.into(),
            key: key.into(),
        }
    }
}

impl fmt::Display for EntityRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.entity_type, self.key)
    }
}

/// An entity node: a thing in the application state, with its
/// characteristic values (including the identifying one).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Entity {
    /// The entity type.
    pub entity_type: Symbol,
    /// characteristic → value; must cover exactly the type's declared
    /// characteristics.
    pub characteristics: BTreeMap<Symbol, Atom>,
}

impl Entity {
    /// Creates an entity.
    pub fn new<C, A>(
        entity_type: impl Into<Symbol>,
        characteristics: impl IntoIterator<Item = (C, A)>,
    ) -> Self
    where
        C: Into<Symbol>,
        A: Into<Atom>,
    {
        Entity {
            entity_type: entity_type.into(),
            characteristics: characteristics
                .into_iter()
                .map(|(c, a)| (c.into(), a.into()))
                .collect(),
        }
    }

    /// The value of one characteristic.
    pub fn get(&self, characteristic: &str) -> Option<&Atom> {
        self.characteristics.get(characteristic)
    }

    /// The entity's reference, given its schema (to find the identifying
    /// characteristic). Returns `None` when the identifying value is
    /// missing.
    pub fn to_ref(&self, schema: &GraphSchema) -> Option<EntityRef> {
        let decl = schema.universe().entity_type(self.entity_type.as_str())?;
        let key = self.characteristics.get(decl.id_characteristic())?;
        Some(EntityRef {
            entity_type: self.entity_type.clone(),
            key: key.clone(),
        })
    }
}

impl fmt::Display for Entity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{{", self.entity_type)?;
        for (i, (c, v)) in self.characteristics.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}: {v}")?;
        }
        write!(f, "}}")
    }
}

/// An association node: an event of the application described by a
/// predicate, with each role bound to an entity.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Association {
    /// The association type (predicate).
    pub predicate: Symbol,
    /// role → participant.
    pub roles: BTreeMap<Symbol, EntityRef>,
}

impl Association {
    /// Creates an association.
    pub fn new<R>(
        predicate: impl Into<Symbol>,
        roles: impl IntoIterator<Item = (R, EntityRef)>,
    ) -> Self
    where
        R: Into<Symbol>,
    {
        Association {
            predicate: predicate.into(),
            roles: roles.into_iter().map(|(r, e)| (r.into(), e)).collect(),
        }
    }

    /// The participant filling one role.
    pub fn role(&self, role: &str) -> Option<&EntityRef> {
        self.roles.get(role)
    }

    /// Whether the given entity fills any role.
    pub fn involves(&self, entity: &EntityRef) -> bool {
        self.roles.values().any(|e| e == entity)
    }
}

impl fmt::Display for Association {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.predicate)?;
        for (i, (r, e)) in self.roles.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{r}: {e}")?;
        }
        write!(f, ")")
    }
}

/// Errors raised by graph state validation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GraphStateError {
    /// An entity's type is not declared.
    UnknownEntityType(Symbol),
    /// An entity is missing a declared characteristic or carries an
    /// undeclared one.
    BadCharacteristics(EntityRef),
    /// A characteristic value is outside its domain.
    DomainViolation {
        /// The offending entity.
        entity: EntityRef,
        /// The characteristic with the bad value.
        characteristic: Symbol,
    },
    /// Two entities share a type and identifying value.
    DuplicateEntity(EntityRef),
    /// An association's predicate is not declared.
    UnknownPredicate(Symbol),
    /// An association's roles do not exactly match the predicate's cases.
    BadRoles {
        /// The association's predicate.
        predicate: Symbol,
    },
    /// A role is bound to an entity of the wrong type.
    RoleTypeMismatch {
        /// The association's predicate.
        predicate: Symbol,
        /// The mistyped role.
        role: Symbol,
    },
    /// A role edge points to a non-existent entity.
    DanglingRole {
        /// The association's predicate.
        predicate: Symbol,
        /// The dangling role.
        role: Symbol,
        /// The missing participant.
        entity: EntityRef,
    },
    /// Totality violated: an entity misses a required association.
    TotalityViolation {
        /// The unconnected entity.
        entity: EntityRef,
        /// The required predicate.
        predicate: Symbol,
        /// The required role.
        role: Symbol,
    },
    /// Functionality violated: an entity fills a functional role twice.
    FunctionalityViolation {
        /// The over-connected entity.
        entity: EntityRef,
        /// The functional predicate.
        predicate: Symbol,
        /// The functional role.
        role: Symbol,
    },
    /// The referenced entity does not exist (deletion target).
    NoSuchEntity(EntityRef),
    /// The referenced association does not exist (deletion target).
    NoSuchAssociation(Association),
    /// The entity already exists (insertion target).
    EntityExists(EntityRef),
    /// The association already exists (insertion target).
    AssociationExists(Association),
}

impl fmt::Display for GraphStateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphStateError::UnknownEntityType(t) => write!(f, "unknown entity type `{t}`"),
            GraphStateError::BadCharacteristics(e) => {
                write!(f, "entity {e} has wrong characteristic set")
            }
            GraphStateError::DomainViolation {
                entity,
                characteristic,
            } => {
                write!(
                    f,
                    "entity {entity}: characteristic `{characteristic}` outside domain"
                )
            }
            GraphStateError::DuplicateEntity(e) => write!(f, "duplicate entity {e}"),
            GraphStateError::UnknownPredicate(p) => write!(f, "unknown predicate `{p}`"),
            GraphStateError::BadRoles { predicate } => {
                write!(f, "association `{predicate}` has wrong role set")
            }
            GraphStateError::RoleTypeMismatch { predicate, role } => {
                write!(
                    f,
                    "association `{predicate}`: role `{role}` bound to wrong entity type"
                )
            }
            GraphStateError::DanglingRole {
                predicate,
                role,
                entity,
            } => {
                write!(
                    f,
                    "association `{predicate}`: role `{role}` references missing {entity}"
                )
            }
            GraphStateError::TotalityViolation {
                entity,
                predicate,
                role,
            } => {
                write!(f, "{entity} must fill `{predicate}:{role}` but does not")
            }
            GraphStateError::FunctionalityViolation {
                entity,
                predicate,
                role,
            } => {
                write!(
                    f,
                    "{entity} fills functional role `{predicate}:{role}` more than once"
                )
            }
            GraphStateError::NoSuchEntity(e) => write!(f, "no such entity {e}"),
            GraphStateError::NoSuchAssociation(a) => write!(f, "no such association {a}"),
            GraphStateError::EntityExists(e) => write!(f, "entity {e} already exists"),
            GraphStateError::AssociationExists(a) => write!(f, "association {a} already exists"),
        }
    }
}

impl std::error::Error for GraphStateError {}

/// A database state of the semantic graph model.
///
/// Besides the node sets, the state maintains a **role index** — per
/// (predicate, role, entity), the number of associations in which the
/// entity fills that role — so totality and functionality validation is
/// linear instead of quadratic. The index is derived data: equality,
/// ordering and the fact compilation ignore it, and
/// [`GraphState::validate_scan`] re-checks the same constraints without
/// it (the DESIGN.md ablation baseline).
#[derive(Clone)]
pub struct GraphState {
    schema: Arc<GraphSchema>,
    entities: BTreeMap<EntityRef, Entity>,
    associations: BTreeSet<Association>,
    role_index: BTreeMap<(Symbol, Symbol, EntityRef), usize>,
    /// Incrementally-maintained content fingerprint: the XOR of tagged
    /// per-node hashes over `entities` and `associations`. Derived data,
    /// like the role index — equality and ordering ignore it.
    fp: u64,
}

/// Tagged element hash of one entity (the tag keeps entity and
/// association hashes from cancelling each other in the XOR).
fn entity_fp(entity: &Entity) -> u64 {
    dme_logic::content_fingerprint(&(0u8, entity))
}

/// Tagged element hash of one association.
fn assoc_fp(assoc: &Association) -> u64 {
    dme_logic::content_fingerprint(&(1u8, assoc))
}

impl PartialEq for GraphState {
    fn eq(&self, other: &Self) -> bool {
        self.entities == other.entities && self.associations == other.associations
    }
}

impl Eq for GraphState {}

impl PartialOrd for GraphState {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for GraphState {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.entities
            .cmp(&other.entities)
            .then_with(|| self.associations.cmp(&other.associations))
    }
}

impl std::hash::Hash for GraphState {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // Must agree with `Eq`: the role index is derived data and the
        // schema is shared, so neither participates. The fingerprint is
        // a function of exactly the participating fields, so hashing it
        // keeps `Hash` consistent with `Eq` at O(1).
        state.write_u64(self.fp);
    }
}

impl fmt::Debug for GraphState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "GraphState {{")?;
        for e in self.entities.values() {
            writeln!(f, "  {e}")?;
        }
        for a in &self.associations {
            writeln!(f, "  {a}")?;
        }
        write!(f, "}}")
    }
}

impl GraphState {
    /// The empty state.
    pub fn empty(schema: Arc<GraphSchema>) -> Self {
        GraphState {
            schema,
            entities: BTreeMap::new(),
            associations: BTreeSet::new(),
            role_index: BTreeMap::new(),
            fp: 0,
        }
    }

    /// The state's incrementally-maintained 64-bit content fingerprint
    /// (see [`dme_logic::DeltaState::fingerprint`]). Equal states always
    /// carry equal fingerprints; distinct states may collide.
    pub fn fingerprint(&self) -> u64 {
        self.fp
    }

    fn index_association(&mut self, assoc: &Association, delta: isize) {
        for (role, entity) in &assoc.roles {
            let key = (assoc.predicate.clone(), role.clone(), entity.clone());
            let count = self.role_index.entry(key.clone()).or_insert(0);
            if delta > 0 {
                *count += 1;
            } else {
                *count = count.saturating_sub(1);
                if *count == 0 {
                    self.role_index.remove(&key);
                }
            }
        }
    }

    /// The number of associations where `entity` fills `(predicate,
    /// role)` — an O(log n) index lookup.
    pub fn role_count(&self, entity: &EntityRef, predicate: &str, role: &str) -> usize {
        self.role_index
            .get(&(Symbol::new(predicate), Symbol::new(role), entity.clone()))
            .copied()
            .unwrap_or(0)
    }

    /// The application-model schema this state belongs to.
    pub fn schema(&self) -> &Arc<GraphSchema> {
        &self.schema
    }

    /// Looks up an entity.
    pub fn entity(&self, r: &EntityRef) -> Option<&Entity> {
        self.entities.get(r)
    }

    /// All entities in reference order.
    pub fn entities(&self) -> impl Iterator<Item = &Entity> {
        self.entities.values()
    }

    /// All associations.
    pub fn associations(&self) -> impl Iterator<Item = &Association> {
        self.associations.iter()
    }

    /// Whether the association is present.
    pub fn has_association(&self, a: &Association) -> bool {
        self.associations.contains(a)
    }

    /// Associations involving an entity.
    pub fn associations_of<'a>(
        &'a self,
        entity: &'a EntityRef,
    ) -> impl Iterator<Item = &'a Association> {
        self.associations.iter().filter(move |a| a.involves(entity))
    }

    /// Associations where `entity` fills `(predicate, role)`.
    pub fn associations_filling<'a>(
        &'a self,
        entity: &'a EntityRef,
        predicate: &'a str,
        role: &'a str,
    ) -> impl Iterator<Item = &'a Association> {
        self.associations.iter().filter(move |a| {
            a.predicate.as_str() == predicate && a.role(role).is_some_and(|e| e == entity)
        })
    }

    /// Counts of nodes: (entities, associations).
    pub fn sizes(&self) -> (usize, usize) {
        (self.entities.len(), self.associations.len())
    }

    /// Whether the state has no nodes.
    pub fn is_empty(&self) -> bool {
        self.entities.is_empty() && self.associations.is_empty()
    }

    /// Checks one entity's shape (type, characteristic set, domains).
    pub fn check_entity(
        schema: &GraphSchema,
        entity: &Entity,
    ) -> Result<EntityRef, GraphStateError> {
        let decl = schema
            .universe()
            .entity_type(entity.entity_type.as_str())
            .ok_or_else(|| GraphStateError::UnknownEntityType(entity.entity_type.clone()))?;
        let r = entity.to_ref(schema).ok_or_else(|| {
            GraphStateError::BadCharacteristics(EntityRef {
                entity_type: entity.entity_type.clone(),
                key: Atom::str("<missing id>"),
            })
        })?;
        let declared: BTreeSet<&Symbol> = decl.characteristics().map(|(c, _)| c).collect();
        let actual: BTreeSet<&Symbol> = entity.characteristics.keys().collect();
        if declared != actual {
            return Err(GraphStateError::BadCharacteristics(r));
        }
        for (c, v) in &entity.characteristics {
            let domain = decl
                .domain_of(c.as_str())
                .expect("characteristic sets match");
            if schema
                .universe()
                .domains()
                .check(domain, &Value::Atom(v.clone()))
                .is_err()
            {
                return Err(GraphStateError::DomainViolation {
                    entity: r,
                    characteristic: c.clone(),
                });
            }
        }
        Ok(r)
    }

    /// Checks one association's shape against the universe (roles match
    /// the predicate's cases; role types agree). Does **not** check that
    /// participants exist — that is state-level.
    pub fn check_association(
        schema: &GraphSchema,
        assoc: &Association,
    ) -> Result<(), GraphStateError> {
        let decl = schema
            .universe()
            .predicate(assoc.predicate.as_str())
            .ok_or_else(|| GraphStateError::UnknownPredicate(assoc.predicate.clone()))?;
        let declared: BTreeSet<&Symbol> = decl.cases().map(|(c, _)| c).collect();
        let actual: BTreeSet<&Symbol> = assoc.roles.keys().collect();
        if declared != actual {
            return Err(GraphStateError::BadRoles {
                predicate: assoc.predicate.clone(),
            });
        }
        for (role, entity) in &assoc.roles {
            let expected = decl.case_type(role.as_str()).expect("role sets match");
            if *expected != entity.entity_type {
                return Err(GraphStateError::RoleTypeMismatch {
                    predicate: assoc.predicate.clone(),
                    role: role.clone(),
                });
            }
        }
        Ok(())
    }

    /// Inserts an entity after shape checks (no schema-constraint check).
    pub fn insert_entity_raw(&mut self, entity: Entity) -> Result<EntityRef, GraphStateError> {
        let r = Self::check_entity(&self.schema, &entity)?;
        if self.entities.contains_key(&r) {
            return Err(GraphStateError::EntityExists(r));
        }
        self.fp ^= entity_fp(&entity);
        self.entities.insert(r.clone(), entity);
        Ok(r)
    }

    /// Removes an entity (no dangling-edge check; validation will catch).
    pub fn remove_entity_raw(&mut self, r: &EntityRef) -> Result<Entity, GraphStateError> {
        let entity = self
            .entities
            .remove(r)
            .ok_or_else(|| GraphStateError::NoSuchEntity(r.clone()))?;
        self.fp ^= entity_fp(&entity);
        Ok(entity)
    }

    /// Inserts an association after shape checks.
    pub fn insert_association_raw(&mut self, assoc: Association) -> Result<(), GraphStateError> {
        Self::check_association(&self.schema, &assoc)?;
        if !self.associations.insert(assoc.clone()) {
            return Err(GraphStateError::AssociationExists(assoc));
        }
        self.fp ^= assoc_fp(&assoc);
        self.index_association(&assoc, 1);
        Ok(())
    }

    /// Removes an association.
    pub fn remove_association_raw(&mut self, assoc: &Association) -> Result<(), GraphStateError> {
        if !self.associations.remove(assoc) {
            return Err(GraphStateError::NoSuchAssociation(assoc.clone()));
        }
        self.fp ^= assoc_fp(assoc);
        self.index_association(assoc, -1);
        Ok(())
    }

    fn validate_shapes_and_references(&self) -> Result<(), GraphStateError> {
        for entity in self.entities.values() {
            Self::check_entity(&self.schema, entity)?;
        }
        for assoc in &self.associations {
            Self::check_association(&self.schema, assoc)?;
            for (role, entity) in &assoc.roles {
                if !self.entities.contains_key(entity) {
                    return Err(GraphStateError::DanglingRole {
                        predicate: assoc.predicate.clone(),
                        role: role.clone(),
                        entity: entity.clone(),
                    });
                }
            }
        }
        Ok(())
    }

    /// Full validation: shapes, references, totality, functionality —
    /// using the role index for the participation constraints.
    pub fn validate(&self) -> Result<(), GraphStateError> {
        self.validate_shapes_and_references()?;
        for ((predicate, role), p) in self.schema.participations() {
            let entity_type = self
                .schema
                .universe()
                .predicate(predicate.as_str())
                .and_then(|d| d.case_type(role.as_str()))
                .expect("schema validated against universe");
            if p.total {
                for r in self
                    .entities
                    .keys()
                    .filter(|r| r.entity_type == *entity_type)
                {
                    if self.role_count(r, predicate.as_str(), role.as_str()) == 0 {
                        return Err(GraphStateError::TotalityViolation {
                            entity: r.clone(),
                            predicate: predicate.clone(),
                            role: role.clone(),
                        });
                    }
                }
            }
            if p.functional {
                for ((pred, rl, entity), count) in &self.role_index {
                    if pred == predicate && rl == role && *count > 1 {
                        return Err(GraphStateError::FunctionalityViolation {
                            entity: entity.clone(),
                            predicate: predicate.clone(),
                            role: role.clone(),
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Incremental validation restricted to the entity references an
    /// operation touched.
    ///
    /// Sound whenever the pre-operation state was valid: entity and
    /// association *shapes* are enforced by the raw mutations
    /// themselves, and the remaining whole-state invariants — dangling
    /// roles, totality, functionality — depend only on which entities
    /// are present and on per-entity role counts, both of which an
    /// operation changes exclusively at the refs it touched. A touched
    /// ref that is present is checked for participation constraints; a
    /// touched ref that is absent must fill no role of any predicate
    /// (otherwise some association — pre-existing or just inserted —
    /// dangles on it). Equivalence with [`GraphState::validate`] on
    /// op-derived touched sets is property-tested in `tests/`.
    pub fn validate_touched(&self, touched: &BTreeSet<EntityRef>) -> Result<(), GraphStateError> {
        for r in touched {
            if self.entities.contains_key(r) {
                for ((predicate, role), p) in self.schema.participations() {
                    let entity_type = self
                        .schema
                        .universe()
                        .predicate(predicate.as_str())
                        .and_then(|d| d.case_type(role.as_str()))
                        .expect("schema validated against universe");
                    if *entity_type != r.entity_type {
                        continue;
                    }
                    let count = self.role_count(r, predicate.as_str(), role.as_str());
                    if p.total && count == 0 {
                        return Err(GraphStateError::TotalityViolation {
                            entity: r.clone(),
                            predicate: predicate.clone(),
                            role: role.clone(),
                        });
                    }
                    if p.functional && count > 1 {
                        return Err(GraphStateError::FunctionalityViolation {
                            entity: r.clone(),
                            predicate: predicate.clone(),
                            role: role.clone(),
                        });
                    }
                }
            } else {
                for decl in self.schema.universe().predicates() {
                    for (role, _) in decl.cases() {
                        if self.role_count(r, decl.name().as_str(), role.as_str()) > 0 {
                            return Err(GraphStateError::DanglingRole {
                                predicate: decl.name().clone(),
                                role: role.clone(),
                                entity: r.clone(),
                            });
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// The index-free validation baseline: identical semantics to
    /// [`GraphState::validate`], quadratic participation checks. Kept as
    /// the DESIGN.md ablation reference and cross-checked against the
    /// indexed path by the property tests.
    pub fn validate_scan(&self) -> Result<(), GraphStateError> {
        self.validate_shapes_and_references()?;
        for ((predicate, role), p) in self.schema.participations() {
            let entity_type = self
                .schema
                .universe()
                .predicate(predicate.as_str())
                .and_then(|d| d.case_type(role.as_str()))
                .expect("schema validated against universe");
            if p.total {
                for r in self
                    .entities
                    .keys()
                    .filter(|r| r.entity_type == *entity_type)
                {
                    if self
                        .associations_filling(r, predicate.as_str(), role.as_str())
                        .next()
                        .is_none()
                    {
                        return Err(GraphStateError::TotalityViolation {
                            entity: r.clone(),
                            predicate: predicate.clone(),
                            role: role.clone(),
                        });
                    }
                }
            }
            if p.functional {
                let mut seen: BTreeSet<&EntityRef> = BTreeSet::new();
                for a in self
                    .associations
                    .iter()
                    .filter(|a| a.predicate == *predicate)
                {
                    if let Some(e) = a.role(role.as_str()) {
                        if !seen.insert(e) {
                            return Err(GraphStateError::FunctionalityViolation {
                                entity: e.clone(),
                                predicate: predicate.clone(),
                                role: role.clone(),
                            });
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;

    fn emp(name: &str) -> EntityRef {
        EntityRef::new("employee", Atom::str(name))
    }

    fn machine(number: &str) -> EntityRef {
        EntityRef::new("machine", Atom::str(number))
    }

    #[test]
    fn figure4_is_valid() {
        let s = fixtures::figure4_state();
        s.validate().unwrap();
        assert_eq!(s.sizes(), (5, 3));
        assert!(!s.is_empty());
    }

    #[test]
    fn figure6_is_valid_and_adds_supervision() {
        let s = fixtures::figure6_state();
        s.validate().unwrap();
        assert_eq!(s.sizes(), (5, 4));
        let sup = Association::new(
            "supervise",
            [("agent", emp("G.Wayshum")), ("object", emp("T.Manhart"))],
        );
        assert!(s.has_association(&sup));
    }

    #[test]
    fn lookup_and_iteration() {
        let s = fixtures::figure4_state();
        let e = s.entity(&emp("T.Manhart")).unwrap();
        assert_eq!(e.get("age"), Some(&Atom::int(32)));
        assert_eq!(e.get("shoe-size"), None);
        assert!(s.entity(&emp("Nobody")).is_none());
        assert_eq!(s.entities().count(), 5);
        assert_eq!(s.associations().count(), 3);
        assert_eq!(s.associations_of(&emp("C.Gershag")).count(), 2);
        assert_eq!(
            s.associations_filling(&emp("C.Gershag"), "operate", "agent")
                .count(),
            1
        );
        assert_eq!(
            s.associations_filling(&emp("C.Gershag"), "operate", "object")
                .count(),
            0
        );
    }

    #[test]
    fn entity_shape_errors() {
        let schema = fixtures::machine_shop_graph_schema();
        // Unknown type.
        assert!(matches!(
            GraphState::check_entity(&schema, &Entity::new("droid", [("name", Atom::str("R2"))])),
            Err(GraphStateError::UnknownEntityType(_))
        ));
        // Missing characteristic.
        assert!(matches!(
            GraphState::check_entity(
                &schema,
                &Entity::new("employee", [("name", Atom::str("T.Manhart"))])
            ),
            Err(GraphStateError::BadCharacteristics(_))
        ));
        // Domain violation.
        assert!(matches!(
            GraphState::check_entity(
                &schema,
                &Entity::new(
                    "employee",
                    [("name", Atom::str("T.Manhart")), ("age", Atom::str("old"))]
                )
            ),
            Err(GraphStateError::DomainViolation { .. })
        ));
    }

    #[test]
    fn association_shape_errors() {
        let schema = fixtures::machine_shop_graph_schema();
        assert!(matches!(
            GraphState::check_association(
                &schema,
                &Association::new("teleport", [("agent", emp("T.Manhart"))])
            ),
            Err(GraphStateError::UnknownPredicate(_))
        ));
        assert!(matches!(
            GraphState::check_association(
                &schema,
                &Association::new("operate", [("agent", emp("T.Manhart"))])
            ),
            Err(GraphStateError::BadRoles { .. })
        ));
        assert!(matches!(
            GraphState::check_association(
                &schema,
                &Association::new(
                    "operate",
                    [("agent", emp("T.Manhart")), ("object", emp("C.Gershag"))]
                )
            ),
            Err(GraphStateError::RoleTypeMismatch { .. })
        ));
    }

    #[test]
    fn dangling_role_detected() {
        let mut s = fixtures::figure4_state();
        s.remove_entity_raw(&emp("G.Wayshum")).unwrap();
        // G.Wayshum still supervises C.Gershag.
        assert!(matches!(
            s.validate(),
            Err(GraphStateError::DanglingRole { .. })
        ));
    }

    #[test]
    fn totality_violation_detected() {
        let mut s = fixtures::figure4_state();
        // Remove NZ745's operation association: the machine violates
        // totality ("every machine must be part of an operation
        // association").
        let op = Association::new(
            "operate",
            [("agent", emp("T.Manhart")), ("object", machine("NZ745"))],
        );
        s.remove_association_raw(&op).unwrap();
        assert_eq!(
            s.validate(),
            Err(GraphStateError::TotalityViolation {
                entity: machine("NZ745"),
                predicate: Symbol::new("operate"),
                role: Symbol::new("object"),
            })
        );
    }

    #[test]
    fn functionality_violation_detected() {
        let mut s = fixtures::figure4_state();
        // A second operator for NZ745.
        s.insert_association_raw(Association::new(
            "operate",
            [("agent", emp("C.Gershag")), ("object", machine("NZ745"))],
        ))
        .unwrap();
        assert_eq!(
            s.validate(),
            Err(GraphStateError::FunctionalityViolation {
                entity: machine("NZ745"),
                predicate: Symbol::new("operate"),
                role: Symbol::new("object"),
            })
        );
    }

    #[test]
    fn duplicate_insertions_rejected() {
        let mut s = fixtures::figure4_state();
        assert!(matches!(
            s.insert_entity_raw(Entity::new(
                "employee",
                [("name", Atom::str("T.Manhart")), ("age", Atom::int(32))]
            )),
            Err(GraphStateError::EntityExists(_))
        ));
        let sup = Association::new(
            "supervise",
            [("agent", emp("G.Wayshum")), ("object", emp("C.Gershag"))],
        );
        assert!(matches!(
            s.insert_association_raw(sup),
            Err(GraphStateError::AssociationExists(_))
        ));
    }

    #[test]
    fn missing_removals_rejected() {
        let mut s = fixtures::figure4_state();
        assert!(matches!(
            s.remove_entity_raw(&emp("Nobody")),
            Err(GraphStateError::NoSuchEntity(_))
        ));
        let ghost = Association::new(
            "supervise",
            [("agent", emp("T.Manhart")), ("object", emp("T.Manhart"))],
        );
        assert!(matches!(
            s.remove_association_raw(&ghost),
            Err(GraphStateError::NoSuchAssociation(_))
        ));
    }

    #[test]
    fn displays() {
        assert_eq!(emp("X").to_string(), "employee[X]");
        let e = Entity::new(
            "employee",
            [("name", Atom::str("X")), ("age", Atom::int(1))],
        );
        assert_eq!(e.to_string(), "employee{age: 1, name: X}");
        let a = Association::new("supervise", [("agent", emp("X")), ("object", emp("Y"))]);
        assert_eq!(
            a.to_string(),
            "supervise(agent: employee[X], object: employee[Y])"
        );
    }
}
