//! Semantic units (§3.2.2).
//!
//! "A *semantic unit* is a group of entities and associations which must
//! be inserted or deleted as a single unit due to restrictions stated in
//! the schema. … a semantic unit is formed from a machine and its
//! associated operation association. Whenever a machine is inserted or
//! deleted, an operation association must also be inserted or deleted."
//!
//! For insertion the caller assembles the unit (the new machine plus its
//! operation association); [`crate::ops::GraphOp::InsertUnit`] applies it
//! atomically and validation confirms it is self-sufficient. For deletion
//! this module *derives* the unit: [`deletion_unit`] computes the cascade
//! closure — deleting an entity drags every association it participates
//! in, and deleting an association drags any participant whose **total**
//! participation would otherwise be violated.

use std::collections::BTreeSet;
use std::fmt;

use crate::state::{Association, Entity, EntityRef, GraphState};

/// A group of entities and associations inserted or deleted together.
#[derive(Clone, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SemanticUnit {
    /// Entities of the unit (full entities for insertion; for deletion
    /// only the references matter but entities are returned for
    /// symmetry/undo).
    pub entities: Vec<Entity>,
    /// Associations of the unit.
    pub associations: Vec<Association>,
}

impl SemanticUnit {
    /// An empty unit.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder: adds an entity.
    pub fn with_entity(mut self, e: Entity) -> Self {
        self.entities.push(e);
        self
    }

    /// Builder: adds an association.
    pub fn with_association(mut self, a: Association) -> Self {
        self.associations.push(a);
        self
    }

    /// Whether the unit is empty.
    pub fn is_empty(&self) -> bool {
        self.entities.is_empty() && self.associations.is_empty()
    }

    /// Node count (entities + associations).
    pub fn len(&self) -> usize {
        self.entities.len() + self.associations.len()
    }
}

impl fmt::Display for SemanticUnit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unit{{")?;
        let mut first = true;
        for e in &self.entities {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{e}")?;
            first = false;
        }
        for a in &self.associations {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

/// Computes the deletion semantic unit seeded by the given entities and
/// associations: the least set closed under
///
/// 1. deleting an entity deletes every association it participates in;
/// 2. deleting an association deletes any participant with a **total**
///    participation in its (predicate, role) that has no surviving
///    association filling that role.
///
/// Seeds that do not exist in the state are ignored (deleting what is
/// absent requires no cascade).
///
/// The paper's machine ⊕ operation-association unit:
///
/// ```
/// use dme_graph::{fixtures, unit::deletion_unit, EntityRef};
/// use dme_value::Atom;
///
/// let state = fixtures::figure4_state();
/// let unit = deletion_unit(
///     &state,
///     [EntityRef::new("machine", Atom::str("NZ745"))],
///     [],
/// );
/// // The machine drags its operation association, nothing more.
/// assert_eq!(unit.entities.len(), 1);
/// assert_eq!(unit.associations.len(), 1);
/// assert_eq!(unit.associations[0].predicate, "operate");
/// ```
pub fn deletion_unit(
    state: &GraphState,
    seed_entities: impl IntoIterator<Item = EntityRef>,
    seed_associations: impl IntoIterator<Item = Association>,
) -> SemanticUnit {
    let schema = state.schema();
    let mut entities: BTreeSet<EntityRef> = seed_entities
        .into_iter()
        .filter(|r| state.entity(r).is_some())
        .collect();
    let mut associations: BTreeSet<Association> = seed_associations
        .into_iter()
        .filter(|a| state.has_association(a))
        .collect();

    loop {
        let mut changed = false;

        // Rule 1: entities drag their associations.
        for e in entities.clone() {
            for a in state.associations_of(&e) {
                if associations.insert(a.clone()) {
                    changed = true;
                }
            }
        }

        // Rule 2: associations drag totality-bound participants.
        for a in associations.clone() {
            for (role, participant) in &a.roles {
                if entities.contains(participant) {
                    continue;
                }
                let p = schema
                    .participation(a.predicate.as_str(), role.as_str())
                    .expect("state validated against schema");
                if !p.total {
                    continue;
                }
                let survives = state
                    .associations_filling(participant, a.predicate.as_str(), role.as_str())
                    .any(|other| !associations.contains(other));
                if !survives && entities.insert(participant.clone()) {
                    changed = true;
                }
            }
        }

        if !changed {
            break;
        }
    }

    SemanticUnit {
        entities: entities
            .iter()
            .filter_map(|r| state.entity(r).cloned())
            .collect(),
        associations: associations.into_iter().collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;
    use dme_value::Atom;

    fn emp(name: &str) -> EntityRef {
        EntityRef::new("employee", Atom::str(name))
    }

    fn machine(number: &str) -> EntityRef {
        EntityRef::new("machine", Atom::str(number))
    }

    #[test]
    fn deleting_an_operation_association_drags_the_machine() {
        // The paper's example: machine ⊕ operation association form a
        // semantic unit.
        let s = fixtures::figure4_state();
        let op = Association::new(
            "operate",
            [("agent", emp("T.Manhart")), ("object", machine("NZ745"))],
        );
        let unit = deletion_unit(&s, [], [op.clone()]);
        assert_eq!(unit.associations, vec![op]);
        assert_eq!(unit.entities.len(), 1);
        assert_eq!(unit.entities[0].entity_type, "machine");
        assert_eq!(unit.entities[0].get("number"), Some(&Atom::str("NZ745")));
        assert_eq!(unit.len(), 2);
    }

    #[test]
    fn deleting_a_machine_drags_its_operation_association() {
        let s = fixtures::figure4_state();
        let unit = deletion_unit(&s, [machine("NZ745")], []);
        assert_eq!(unit.entities.len(), 1);
        assert_eq!(unit.associations.len(), 1);
        assert_eq!(unit.associations[0].predicate, "operate");
    }

    #[test]
    fn deleting_an_employee_cascades_through_their_machine() {
        // Deleting C.Gershag removes their operation and supervision
        // associations; machine JCL181 then has no operator and joins the
        // unit.
        let s = fixtures::figure4_state();
        let unit = deletion_unit(&s, [emp("C.Gershag")], []);
        assert_eq!(unit.entities.len(), 2, "{unit}");
        assert_eq!(unit.associations.len(), 2, "{unit}");
    }

    #[test]
    fn supervision_deletion_is_independent() {
        // Supervisions drag nothing: both participations are optional.
        let s = fixtures::figure4_state();
        let sup = Association::new(
            "supervise",
            [("agent", emp("G.Wayshum")), ("object", emp("C.Gershag"))],
        );
        let unit = deletion_unit(&s, [], [sup.clone()]);
        assert_eq!(unit.associations, vec![sup]);
        assert!(unit.entities.is_empty());
    }

    #[test]
    fn absent_seeds_are_ignored() {
        let s = fixtures::figure4_state();
        let unit = deletion_unit(&s, [emp("Nobody")], []);
        assert!(unit.is_empty());
        assert_eq!(unit.len(), 0);
    }

    #[test]
    fn machine_survives_when_another_operation_remains() {
        // Hypothetical: if a machine filled two operation associations,
        // deleting one would not drag it. Build a state with functionality
        // relaxed to test rule 2's "survives" branch.
        use crate::schema::{GraphSchema, Participation};
        use dme_logic::Universe;
        use dme_value::sym;
        let schema = GraphSchema::new(
            Universe::machine_shop(),
            [
                ((sym!("operate"), sym!("agent")), Participation::OPTIONAL),
                (
                    (sym!("operate"), sym!("object")),
                    Participation {
                        total: true,
                        functional: false,
                    },
                ),
                ((sym!("supervise"), sym!("agent")), Participation::OPTIONAL),
                ((sym!("supervise"), sym!("object")), Participation::OPTIONAL),
            ],
        )
        .unwrap();
        let mut s = GraphState::empty(std::sync::Arc::new(schema));
        s.insert_entity_raw(Entity::new(
            "employee",
            [("name", Atom::str("T.Manhart")), ("age", Atom::int(32))],
        ))
        .unwrap();
        s.insert_entity_raw(Entity::new(
            "employee",
            [("name", Atom::str("C.Gershag")), ("age", Atom::int(40))],
        ))
        .unwrap();
        s.insert_entity_raw(Entity::new(
            "machine",
            [("number", Atom::str("NZ745")), ("type", Atom::str("lathe"))],
        ))
        .unwrap();
        let op1 = Association::new(
            "operate",
            [("agent", emp("T.Manhart")), ("object", machine("NZ745"))],
        );
        let op2 = Association::new(
            "operate",
            [("agent", emp("C.Gershag")), ("object", machine("NZ745"))],
        );
        s.insert_association_raw(op1.clone()).unwrap();
        s.insert_association_raw(op2).unwrap();
        s.validate().unwrap();

        let unit = deletion_unit(&s, [], [op1.clone()]);
        assert_eq!(unit.associations, vec![op1]);
        assert!(unit.entities.is_empty(), "machine survives via op2");
    }

    #[test]
    fn builders_and_display() {
        let u = SemanticUnit::new()
            .with_entity(Entity::new(
                "machine",
                [("number", Atom::str("NZ745")), ("type", Atom::str("lathe"))],
            ))
            .with_association(Association::new(
                "operate",
                [("agent", emp("T.Manhart")), ("object", machine("NZ745"))],
            ));
        assert_eq!(u.len(), 2);
        assert!(u.to_string().starts_with("unit{"));
    }
}
