//! The operation types of the semantic graph model (§3.2.2).
//!
//! "The operations in this data model are meant to directly model the
//! kinds of transitions which can take place in the application. The
//! operations allowed are the insertion or deletion of an independent
//! entity, an independent association or a semantic unit."
//!
//! Every operation applies its raw changes and then re-validates the
//! whole state against the schema; any violation — a machine inserted
//! without its operation association, a deletion leaving a dangling role
//! edge — yields the paper's *error state* (`Err`), leaving the input
//! state untouched.

use std::fmt;

use dme_logic::DeltaState;

use crate::state::{Association, Entity, EntityRef, GraphState, GraphStateError};
use crate::unit::SemanticUnit;

/// Errors turning a graph operation into the paper's error state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GraphOpError(pub GraphStateError);

impl fmt::Display for GraphOpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "graph operation failed: {}", self.0)
    }
}

impl std::error::Error for GraphOpError {}

impl From<GraphStateError> for GraphOpError {
    fn from(e: GraphStateError) -> Self {
        GraphOpError(e)
    }
}

/// An operation of the semantic graph model.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum GraphOp {
    /// Insert an independent entity (valid only when the entity's type
    /// has no total participation).
    InsertEntity(Entity),
    /// Delete an independent entity (valid only when it participates in
    /// no association).
    DeleteEntity(EntityRef),
    /// Insert an independent association between existing entities.
    InsertAssociation(Association),
    /// Delete an independent association (valid only when no
    /// participant's totality depends on it).
    DeleteAssociation(Association),
    /// Insert a semantic unit atomically (e.g. a machine together with
    /// its operation association).
    InsertUnit(SemanticUnit),
    /// Delete a semantic unit atomically.
    DeleteUnit(SemanticUnit),
}

impl GraphOp {
    /// Applies the operation, yielding the new state or the error state.
    ///
    /// The paper's Figure 4 → Figure 6 transition:
    ///
    /// ```
    /// use dme_graph::{fixtures, Association, EntityRef, GraphOp};
    /// use dme_value::Atom;
    ///
    /// let op = GraphOp::InsertAssociation(Association::new(
    ///     "supervise",
    ///     [
    ///         ("agent", EntityRef::new("employee", Atom::str("G.Wayshum"))),
    ///         ("object", EntityRef::new("employee", Atom::str("T.Manhart"))),
    ///     ],
    /// ));
    /// let after = op.apply(&fixtures::figure4_state()).unwrap();
    /// assert_eq!(after, fixtures::figure6_state());
    /// // Inserting it again is the error state (strict object semantics):
    /// assert!(op.apply(&after).is_err());
    /// ```
    pub fn apply(&self, state: &GraphState) -> Result<GraphState, GraphOpError> {
        let mut next = state.clone();
        match self {
            GraphOp::InsertEntity(e) => {
                next.insert_entity_raw(e.clone())?;
            }
            GraphOp::DeleteEntity(r) => {
                next.remove_entity_raw(r)?;
            }
            GraphOp::InsertAssociation(a) => {
                next.insert_association_raw(a.clone())?;
            }
            GraphOp::DeleteAssociation(a) => {
                next.remove_association_raw(a)?;
            }
            GraphOp::InsertUnit(u) => {
                for e in &u.entities {
                    next.insert_entity_raw(e.clone())?;
                }
                for a in &u.associations {
                    next.insert_association_raw(a.clone())?;
                }
            }
            GraphOp::DeleteUnit(u) => {
                for a in &u.associations {
                    next.remove_association_raw(a)?;
                }
                for e in &u.entities {
                    let r = e.to_ref(next.schema()).ok_or_else(|| {
                        GraphStateError::BadCharacteristics(EntityRef::new(
                            e.entity_type.clone(),
                            dme_value::Atom::str("<missing id>"),
                        ))
                    })?;
                    next.remove_entity_raw(&r)?;
                }
            }
        }
        next.validate()?;
        Ok(next)
    }

    /// Applies a sequence of operations (a composed operation), stopping
    /// at the first error.
    pub fn apply_all<'a>(
        ops: impl IntoIterator<Item = &'a GraphOp>,
        state: &GraphState,
    ) -> Result<GraphState, GraphOpError> {
        let mut cur = state.clone();
        for op in ops {
            cur = op.apply(&cur)?;
        }
        Ok(cur)
    }

    /// In-place O(delta) application of a composed operation: the same
    /// outcome as [`GraphOp::apply_all`] without the per-op state clone
    /// and without the per-op whole-state validation.
    ///
    /// Each operation's raw mutations run in place and validation is
    /// restricted to the entity refs they touched (see
    /// [`GraphState::validate_touched`] for the soundness argument —
    /// it requires the pre-sequence state to be valid, which every
    /// state reachable through `GraphOp` application is). Validation
    /// still runs after *every* operation, so a sequence stops at
    /// exactly the same first operation as `apply_all`.
    ///
    /// On success returns the transaction record: the raw change log in
    /// application order (a replay-exact script of the sequence's
    /// effect) plus the undo log. On error the state is rolled back to
    /// its pre-sequence value exactly, fingerprint and role index
    /// included.
    pub fn apply_all_delta<'a>(
        ops: impl IntoIterator<Item = &'a GraphOp>,
        state: &mut GraphState,
    ) -> Result<GraphTxn, GraphOpError> {
        let mut undo_all: Vec<GraphUndoEntry> = Vec::new();
        let mut changes: Vec<GraphChange> = Vec::new();
        for op in ops {
            let log = match apply_raw_logged(state, op) {
                Ok(log) => log,
                Err(e) => {
                    rollback(state, undo_all);
                    return Err(e);
                }
            };
            let mut touched: std::collections::BTreeSet<EntityRef> =
                std::collections::BTreeSet::new();
            for entry in &log {
                match entry {
                    GraphUndoEntry::RemoveEntity(r) => {
                        touched.insert(r.clone());
                    }
                    GraphUndoEntry::ReinsertEntity(e) => {
                        touched.insert(
                            e.to_ref(state.schema())
                                .expect("entity was present in the state"),
                        );
                    }
                    GraphUndoEntry::RemoveAssociation(a)
                    | GraphUndoEntry::ReinsertAssociation(a) => {
                        touched.extend(a.roles.values().cloned());
                    }
                }
            }
            if let Err(e) = state.validate_touched(&touched) {
                rollback(state, log);
                rollback(state, undo_all);
                return Err(GraphOpError(e));
            }
            for entry in &log {
                changes.push(match entry {
                    GraphUndoEntry::RemoveEntity(r) => GraphChange::InsertEntity(
                        state.entity(r).expect("entity was just inserted").clone(),
                    ),
                    GraphUndoEntry::ReinsertEntity(e) => GraphChange::DeleteEntity(e.clone()),
                    GraphUndoEntry::RemoveAssociation(a) => {
                        GraphChange::InsertAssociation(a.clone())
                    }
                    GraphUndoEntry::ReinsertAssociation(a) => {
                        GraphChange::DeleteAssociation(a.clone())
                    }
                });
            }
            undo_all.extend(log);
        }
        Ok(GraphTxn {
            changes,
            undo: undo_all,
        })
    }

    /// Clone-based convenience over [`GraphOp::apply_all_delta`]:
    /// applies the sequence to a copy, returning the post-state and the
    /// raw change log. Observationally identical to `apply_all` on
    /// success/error, one clone total instead of one per operation.
    pub fn apply_all_incremental<'a>(
        ops: impl IntoIterator<Item = &'a GraphOp>,
        state: &GraphState,
    ) -> Result<(GraphState, Vec<GraphChange>), GraphOpError> {
        let mut cur = state.clone();
        let txn = GraphOp::apply_all_delta(ops, &mut cur)?;
        Ok((cur, txn.into_changes()))
    }

    /// Reverts a transaction produced by [`GraphOp::apply_all_delta`],
    /// restoring the exact pre-sequence state. Only meaningful against
    /// the state the transaction was applied to, with no interleaving
    /// mutations.
    pub fn undo_txn(state: &mut GraphState, txn: GraphTxn) {
        rollback(state, txn.undo);
    }
}

/// One raw mutation of a successfully applied operation sequence, in
/// application order. The log is a replay-exact script: applying each
/// change's raw mutation to the pre-state reproduces the post-state,
/// which is what lets the server encode a transaction's WAL payload in
/// O(changes) instead of diffing two whole states.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GraphChange {
    /// An entity was inserted.
    InsertEntity(Entity),
    /// An entity was deleted (the full entity, so the change log is
    /// invertible and delete records can carry the tuple image).
    DeleteEntity(Entity),
    /// An association was inserted.
    InsertAssociation(Association),
    /// An association was deleted.
    DeleteAssociation(Association),
}

/// The record of one successful [`GraphOp::apply_all_delta`] call: the
/// forward change log plus the inverse log needed to revert it.
#[derive(Debug)]
pub struct GraphTxn {
    changes: Vec<GraphChange>,
    undo: Vec<GraphUndoEntry>,
}

impl GraphTxn {
    /// The raw change log in application order.
    pub fn changes(&self) -> &[GraphChange] {
        &self.changes
    }

    /// Consumes the transaction, keeping only the forward change log
    /// (forfeiting the ability to undo).
    pub fn into_changes(self) -> Vec<GraphChange> {
        self.changes
    }
}

/// One inverse raw mutation recorded while applying a [`GraphOp`] in
/// place; replaying the log in reverse restores the pre-apply state
/// (including its fingerprint and role index) exactly.
#[derive(Debug)]
enum GraphUndoEntry {
    /// Undoes an entity insertion.
    RemoveEntity(EntityRef),
    /// Undoes an entity removal.
    ReinsertEntity(Entity),
    /// Undoes an association insertion.
    RemoveAssociation(Association),
    /// Undoes an association removal.
    ReinsertAssociation(Association),
}

/// The undo token of one successful in-place [`GraphOp`] application.
#[derive(Debug)]
pub struct GraphUndo {
    log: Vec<GraphUndoEntry>,
}

fn rollback(state: &mut GraphState, log: Vec<GraphUndoEntry>) {
    for entry in log.into_iter().rev() {
        let outcome = match entry {
            GraphUndoEntry::RemoveEntity(r) => state.remove_entity_raw(&r).map(|_| ()),
            GraphUndoEntry::ReinsertEntity(e) => state.insert_entity_raw(e).map(|_| ()),
            GraphUndoEntry::RemoveAssociation(a) => state.remove_association_raw(&a),
            GraphUndoEntry::ReinsertAssociation(a) => state.insert_association_raw(a),
        };
        outcome.expect("undo entries invert previously applied raw mutations");
    }
}

/// In-place raw application of `op`, recording inverse entries. On
/// error the partial log is rolled back and the state is untouched.
fn apply_raw_logged(
    state: &mut GraphState,
    op: &GraphOp,
) -> Result<Vec<GraphUndoEntry>, GraphOpError> {
    let mut log: Vec<GraphUndoEntry> = Vec::new();
    let step =
        |state: &mut GraphState, log: &mut Vec<GraphUndoEntry>| -> Result<(), GraphOpError> {
            match op {
                GraphOp::InsertEntity(e) => {
                    let r = state.insert_entity_raw(e.clone())?;
                    log.push(GraphUndoEntry::RemoveEntity(r));
                }
                GraphOp::DeleteEntity(r) => {
                    let e = state.remove_entity_raw(r)?;
                    log.push(GraphUndoEntry::ReinsertEntity(e));
                }
                GraphOp::InsertAssociation(a) => {
                    state.insert_association_raw(a.clone())?;
                    log.push(GraphUndoEntry::RemoveAssociation(a.clone()));
                }
                GraphOp::DeleteAssociation(a) => {
                    state.remove_association_raw(a)?;
                    log.push(GraphUndoEntry::ReinsertAssociation(a.clone()));
                }
                GraphOp::InsertUnit(u) => {
                    for e in &u.entities {
                        let r = state.insert_entity_raw(e.clone())?;
                        log.push(GraphUndoEntry::RemoveEntity(r));
                    }
                    for a in &u.associations {
                        state.insert_association_raw(a.clone())?;
                        log.push(GraphUndoEntry::RemoveAssociation(a.clone()));
                    }
                }
                GraphOp::DeleteUnit(u) => {
                    for a in &u.associations {
                        state.remove_association_raw(a)?;
                        log.push(GraphUndoEntry::ReinsertAssociation(a.clone()));
                    }
                    for e in &u.entities {
                        let r = e.to_ref(state.schema()).ok_or_else(|| {
                            GraphStateError::BadCharacteristics(EntityRef::new(
                                e.entity_type.clone(),
                                dme_value::Atom::str("<missing id>"),
                            ))
                        })?;
                        let e = state.remove_entity_raw(&r)?;
                        log.push(GraphUndoEntry::ReinsertEntity(e));
                    }
                }
            }
            Ok(())
        };
    match step(state, &mut log) {
        Ok(()) => Ok(log),
        Err(e) => {
            rollback(state, log);
            Err(e)
        }
    }
}

/// In-place, undoable graph operation application: the raw mutations of
/// [`GraphOp::apply`] without the whole-state clone. The full
/// post-state validation still runs; on the error state the partial
/// mutation is rolled back, leaving `self` untouched — exactly
/// `apply`'s semantics (property-tested in `tests/`).
impl DeltaState for GraphState {
    type Op = GraphOp;
    type Undo = GraphUndo;

    fn fingerprint(&self) -> u64 {
        GraphState::fingerprint(self)
    }

    fn apply_delta(&mut self, op: &GraphOp) -> Option<GraphUndo> {
        let log = apply_raw_logged(self, op).ok()?;
        if self.validate().is_err() {
            rollback(self, log);
            return None;
        }
        Some(GraphUndo { log })
    }

    fn undo(&mut self, token: GraphUndo) {
        rollback(self, token.log);
    }
}

impl fmt::Display for GraphOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphOp::InsertEntity(e) => write!(f, "insert-entity {e}"),
            GraphOp::DeleteEntity(r) => write!(f, "delete-entity {r}"),
            GraphOp::InsertAssociation(a) => write!(f, "insert-association {a}"),
            GraphOp::DeleteAssociation(a) => write!(f, "delete-association {a}"),
            GraphOp::InsertUnit(u) => write!(f, "insert-unit {u}"),
            GraphOp::DeleteUnit(u) => write!(f, "delete-unit {u}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;
    use crate::unit::deletion_unit;
    use dme_value::Atom;

    fn emp(name: &str) -> EntityRef {
        EntityRef::new("employee", Atom::str(name))
    }

    fn machine(number: &str) -> EntityRef {
        EntityRef::new("machine", Atom::str(number))
    }

    fn gw_tm_supervision() -> Association {
        Association::new(
            "supervise",
            [("agent", emp("G.Wayshum")), ("object", emp("T.Manhart"))],
        )
    }

    #[test]
    fn figure4_to_figure6_via_insert_association() {
        // §3.3.1: "adding to the graph database state of Figure 4 a
        // supervision association between G.Wayshum and T.Manhart
        // resulting in Figure 6."
        let f4 = fixtures::figure4_state();
        let op = GraphOp::InsertAssociation(gw_tm_supervision());
        let out = op.apply(&f4).unwrap();
        assert_eq!(out, fixtures::figure6_state());
        // Input untouched.
        assert_eq!(f4, fixtures::figure4_state());
    }

    #[test]
    fn delete_association_restores_figure4() {
        let f6 = fixtures::figure6_state();
        let op = GraphOp::DeleteAssociation(gw_tm_supervision());
        assert_eq!(op.apply(&f6).unwrap(), fixtures::figure4_state());
    }

    #[test]
    fn independent_entity_insert_and_delete() {
        // Employees have no total participation: they are independent.
        let f4 = fixtures::figure4_state();
        let new_emp = Entity::new(
            "employee",
            [("name", Atom::str("T.Manhart")), ("age", Atom::int(32))],
        );
        // Already exists → error.
        assert!(GraphOp::InsertEntity(new_emp).apply(&f4).is_err());

        // Delete an employee with no associations: G.Wayshum supervises,
        // so deleting them dangles.
        assert!(GraphOp::DeleteEntity(emp("G.Wayshum")).apply(&f4).is_err());

        // But a freshly inserted, unconnected employee can be deleted.
        // (Use the figure 8 premise where T.Manhart has no associations.)
        let premise = fixtures::figure8_premise_state();
        let out = GraphOp::DeleteEntity(emp("T.Manhart"))
            .apply(&premise)
            .unwrap();
        assert_eq!(out.sizes(), (3, 2));
    }

    #[test]
    fn machine_cannot_be_inserted_independently() {
        // "Whenever a machine is inserted or deleted, an operation
        // association must also be inserted or deleted."
        let premise = fixtures::figure8_premise_state();
        let m = Entity::new(
            "machine",
            [("number", Atom::str("NZ745")), ("type", Atom::str("lathe"))],
        );
        let err = GraphOp::InsertEntity(m.clone())
            .apply(&premise)
            .unwrap_err();
        assert!(matches!(err.0, GraphStateError::TotalityViolation { .. }));

        // As a semantic unit with its operation association it works.
        let unit = SemanticUnit::new()
            .with_entity(m)
            .with_association(Association::new(
                "operate",
                [("agent", emp("T.Manhart")), ("object", machine("NZ745"))],
            ));
        let out = GraphOp::InsertUnit(unit).apply(&premise).unwrap();
        assert_eq!(out, fixtures::figure4_state());
    }

    #[test]
    fn delete_unit_of_machine() {
        let f4 = fixtures::figure4_state();
        let unit = deletion_unit(&f4, [machine("NZ745")], []);
        let out = GraphOp::DeleteUnit(unit).apply(&f4).unwrap();
        assert_eq!(out, fixtures::figure8_premise_state());
    }

    #[test]
    fn deleting_operation_association_alone_is_an_error() {
        let f4 = fixtures::figure4_state();
        let op = Association::new(
            "operate",
            [("agent", emp("T.Manhart")), ("object", machine("NZ745"))],
        );
        let err = GraphOp::DeleteAssociation(op).apply(&f4).unwrap_err();
        assert!(matches!(err.0, GraphStateError::TotalityViolation { .. }));
    }

    #[test]
    fn functionality_enforced_on_insert() {
        let f4 = fixtures::figure4_state();
        let second_operator = Association::new(
            "operate",
            [("agent", emp("C.Gershag")), ("object", machine("NZ745"))],
        );
        let err = GraphOp::InsertAssociation(second_operator)
            .apply(&f4)
            .unwrap_err();
        assert!(matches!(
            err.0,
            GraphStateError::FunctionalityViolation { .. }
        ));
    }

    #[test]
    fn association_between_missing_entities_is_an_error() {
        let premise = fixtures::figure8_premise_state(); // no NZ745
        let op = Association::new(
            "operate",
            [("agent", emp("T.Manhart")), ("object", machine("NZ745"))],
        );
        let err = GraphOp::InsertAssociation(op).apply(&premise).unwrap_err();
        assert!(matches!(err.0, GraphStateError::DanglingRole { .. }));
    }

    #[test]
    fn apply_all_composes() {
        let f4 = fixtures::figure4_state();
        let ops = vec![
            GraphOp::InsertAssociation(gw_tm_supervision()),
            GraphOp::DeleteAssociation(gw_tm_supervision()),
        ];
        assert_eq!(GraphOp::apply_all(&ops, &f4).unwrap(), f4);
        let bad = vec![GraphOp::DeleteEntity(emp("Nobody"))];
        assert!(GraphOp::apply_all(&bad, &f4).is_err());
    }

    #[test]
    fn display() {
        let op = GraphOp::DeleteEntity(emp("X"));
        assert_eq!(op.to_string(), "delete-entity employee[X]");
        assert!(GraphOp::InsertAssociation(gw_tm_supervision())
            .to_string()
            .starts_with("insert-association supervise("));
    }
}
