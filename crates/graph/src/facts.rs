//! Compilation of graph states into logic facts (§3.2.3).
//!
//! "We could show this by translating each relational statement into a
//! formal logic statement and then showing that the semantic graph state
//! is a model, in the formal logic sense, for the set of logical
//! statements." Here we go one step further and compile the graph state
//! itself into the statements true of it — the same canonical vocabulary
//! the relation model compiles into — so that "is a model for" becomes
//! fact-base equality:
//!
//! * each entity asserts its **existence** fact and one **characteristic**
//!   fact per non-identifying characteristic;
//! * each association asserts one **association** fact binding every role
//!   to its participant's identifying value.

use dme_logic::{vocab, FactBase, ToFacts};

use crate::schema::GraphSchema;
use crate::state::{Association, Entity, GraphState};

/// The facts asserted by one entity.
pub fn entity_facts(schema: &GraphSchema, entity: &Entity) -> FactBase {
    let mut out = FactBase::new();
    let Some(decl) = schema.universe().entity_type(entity.entity_type.as_str()) else {
        return out;
    };
    let Some(key) = entity.get(decl.id_characteristic().as_str()) else {
        return out;
    };
    out.insert(vocab::existence(
        &entity.entity_type,
        decl.id_characteristic(),
        key.clone(),
    ));
    for (c, v) in &entity.characteristics {
        if c != decl.id_characteristic() {
            out.insert(vocab::characteristic(
                &entity.entity_type,
                decl.id_characteristic(),
                key.clone(),
                c,
                v.clone(),
            ));
        }
    }
    out
}

/// The fact asserted by one association.
pub fn association_fact(assoc: &Association) -> dme_logic::Fact {
    vocab::association(
        &assoc.predicate,
        assoc
            .roles
            .iter()
            .map(|(role, e)| (role.clone(), e.key.clone())),
    )
}

/// The facts asserted by an entire graph state.
pub fn state_facts(state: &GraphState) -> FactBase {
    let mut out = FactBase::new();
    for e in state.entities() {
        out.extend(entity_facts(state.schema(), e).iter().cloned());
    }
    for a in state.associations() {
        out.insert(association_fact(a));
    }
    out
}

impl ToFacts for GraphState {
    fn to_facts(&self) -> FactBase {
        state_facts(self)
    }
}

/// Errors raised while materializing a graph state from facts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MaterializeError {
    /// A fact's predicate is not in the schema's vocabulary.
    UnknownPredicate(String),
    /// A fact is malformed (missing case or identifying value).
    Malformed(String),
    /// An entity lacks a declared characteristic (graph entities are
    /// total).
    IncompleteEntity(String),
    /// The resulting state violates the schema.
    Invalid(String),
}

impl std::fmt::Display for MaterializeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MaterializeError::UnknownPredicate(s) => write!(f, "unknown predicate: {s}"),
            MaterializeError::Malformed(s) => write!(f, "malformed fact: {s}"),
            MaterializeError::IncompleteEntity(s) => write!(f, "incomplete entity: {s}"),
            MaterializeError::Invalid(s) => write!(f, "materialized state is invalid: {s}"),
        }
    }
}

impl std::error::Error for MaterializeError {}

/// Materializes a graph state from a fact base — the inverse of
/// [`state_facts`], and the state-level mapping behind §4's remark that
/// "the same types of equivalence mappings must be involved in the
/// transportation of a database and associated programs from one
/// database system to another": any database whose content compiles to
/// these facts can be rebuilt as a graph database.
pub fn materialize_graph_state(
    schema: std::sync::Arc<GraphSchema>,
    facts: &FactBase,
) -> Result<GraphState, MaterializeError> {
    use std::collections::BTreeMap;
    let universe = schema.universe().clone();
    // entity ref → characteristic map.
    let mut entities: BTreeMap<
        crate::state::EntityRef,
        BTreeMap<dme_value::Symbol, dme_value::Atom>,
    > = BTreeMap::new();
    let mut associations: Vec<crate::state::Association> = Vec::new();

    for fact in facts.iter() {
        let p = fact.predicate().as_str();
        if let Some(entity_type) = p.strip_prefix("be ") {
            let decl = universe
                .entity_type(entity_type)
                .ok_or_else(|| MaterializeError::UnknownPredicate(fact.to_string()))?;
            let key = fact
                .get(decl.id_characteristic().as_str())
                .ok_or_else(|| MaterializeError::Malformed(fact.to_string()))?;
            entities
                .entry(crate::state::EntityRef::new(entity_type, key.clone()))
                .or_default()
                .insert(decl.id_characteristic().clone(), key.clone());
        } else if let Some((entity_type, characteristic)) = p.split_once('.') {
            let decl = universe
                .entity_type(entity_type)
                .ok_or_else(|| MaterializeError::UnknownPredicate(fact.to_string()))?;
            let key = fact
                .get(decl.id_characteristic().as_str())
                .ok_or_else(|| MaterializeError::Malformed(fact.to_string()))?;
            let value = fact
                .get(vocab::VALUE_CASE)
                .ok_or_else(|| MaterializeError::Malformed(fact.to_string()))?;
            entities
                .entry(crate::state::EntityRef::new(entity_type, key.clone()))
                .or_default()
                .insert(dme_value::Symbol::new(characteristic), value.clone());
        } else {
            let decl = universe
                .predicate(p)
                .ok_or_else(|| MaterializeError::UnknownPredicate(fact.to_string()))?;
            let mut roles = Vec::new();
            for (case, et) in decl.cases() {
                let key = fact
                    .get(case.as_str())
                    .ok_or_else(|| MaterializeError::Malformed(fact.to_string()))?;
                roles.push((
                    case.clone(),
                    crate::state::EntityRef::new(et.clone(), key.clone()),
                ));
            }
            associations.push(crate::state::Association::new(
                fact.predicate().clone(),
                roles,
            ));
        }
    }

    let mut state = GraphState::empty(schema);
    for (r, characteristics) in entities {
        let decl = universe
            .entity_type(r.entity_type.as_str())
            .expect("checked above");
        for (c, _) in decl.characteristics() {
            if !characteristics.contains_key(c) {
                return Err(MaterializeError::IncompleteEntity(format!(
                    "{r} lacks characteristic `{c}`"
                )));
            }
        }
        state
            .insert_entity_raw(Entity::new(r.entity_type.clone(), characteristics))
            .map_err(|e| MaterializeError::Invalid(e.to_string()))?;
    }
    for a in associations {
        state
            .insert_association_raw(a)
            .map_err(|e| MaterializeError::Invalid(e.to_string()))?;
    }
    state
        .validate()
        .map_err(|e| MaterializeError::Invalid(e.to_string()))?;
    Ok(state)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;
    use crate::state::EntityRef;
    use dme_logic::Fact;
    use dme_value::Atom;

    #[test]
    fn entity_compiles_to_existence_and_characteristics() {
        let schema = fixtures::machine_shop_graph_schema();
        let e = Entity::new(
            "employee",
            [("name", Atom::str("T.Manhart")), ("age", Atom::int(32))],
        );
        let facts = entity_facts(&schema, &e);
        assert_eq!(facts.len(), 2);
        assert!(facts.holds(&Fact::new(
            "be employee",
            [("name", Atom::str("T.Manhart"))]
        )));
        assert!(facts.holds(&Fact::new(
            "employee.age",
            [("name", Atom::str("T.Manhart")), ("value", Atom::int(32))],
        )));
    }

    #[test]
    fn association_compiles_to_one_fact() {
        let a = Association::new(
            "operate",
            [
                ("agent", EntityRef::new("employee", Atom::str("T.Manhart"))),
                ("object", EntityRef::new("machine", Atom::str("NZ745"))),
            ],
        );
        assert_eq!(
            association_fact(&a),
            Fact::new(
                "operate",
                [
                    ("agent", Atom::str("T.Manhart")),
                    ("object", Atom::str("NZ745"))
                ],
            )
        );
    }

    #[test]
    fn figure4_fact_count() {
        // 3 employees × 2 + 2 machines × 2 + 3 associations = 13.
        let facts = fixtures::figure4_state().to_facts();
        assert_eq!(facts.len(), 13);
    }

    #[test]
    fn materialization_inverts_compilation() {
        for state in [
            fixtures::figure4_state(),
            fixtures::figure6_state(),
            fixtures::figure8_premise_state(),
        ] {
            let rebuilt =
                materialize_graph_state(std::sync::Arc::clone(state.schema()), &state.to_facts())
                    .unwrap();
            assert_eq!(rebuilt, state);
        }
    }

    #[test]
    fn materialization_rejects_garbage() {
        let schema = std::sync::Arc::new(fixtures::machine_shop_graph_schema());
        // Unknown predicate.
        let facts = FactBase::from_facts([Fact::new("teleport", [("agent", Atom::str("x"))])]);
        assert!(matches!(
            materialize_graph_state(std::sync::Arc::clone(&schema), &facts),
            Err(MaterializeError::UnknownPredicate(_))
        ));
        // Existence without the age characteristic: incomplete entity.
        let facts =
            FactBase::from_facts([Fact::new("be employee", [("name", Atom::str("T.Manhart"))])]);
        assert!(matches!(
            materialize_graph_state(std::sync::Arc::clone(&schema), &facts),
            Err(MaterializeError::IncompleteEntity(_))
        ));
        // An association dangling off a missing entity: invalid state.
        let facts = FactBase::from_facts([Fact::new(
            "supervise",
            [("agent", Atom::str("A")), ("object", Atom::str("B"))],
        )]);
        assert!(matches!(
            materialize_graph_state(schema, &facts),
            Err(MaterializeError::Invalid(_))
        ));
    }

    #[test]
    fn distinct_states_compile_to_distinct_fact_bases() {
        let f4 = fixtures::figure4_state().to_facts();
        let f6 = fixtures::figure6_state().to_facts();
        assert_ne!(f4, f6);
        let delta = f4.delta_to(&f6);
        assert!(delta.removed.is_empty());
        assert_eq!(delta.added.len(), 1);
    }
}
