//! Text rendering of graph states.
//!
//! Figure 4 is a node-and-edge drawing; [`render_state`] produces the
//! closest text analogue — entities with their characteristics, then
//! associations with role edges pointing at the entities they connect —
//! grouped and ordered deterministically.

use std::fmt::Write as _;

use crate::state::GraphState;

/// Renders a graph state: one block per entity type, then one block per
/// association type.
pub fn render_state(state: &GraphState) -> String {
    let mut out = String::new();
    let universe = state.schema().universe();

    for et in universe.entity_types() {
        let members: Vec<_> = state
            .entities()
            .filter(|e| e.entity_type == *et.name())
            .collect();
        if members.is_empty() {
            continue;
        }
        let _ = writeln!(out, "{} entities:", et.name());
        for e in members {
            let _ = write!(
                out,
                "  ({})",
                e.get(et.id_characteristic().as_str())
                    .map(|a| a.to_string())
                    .unwrap_or_else(|| "?".into())
            );
            for (c, v) in &e.characteristics {
                if c != et.id_characteristic() {
                    let _ = write!(out, " —{c}→ {v}");
                }
            }
            let _ = writeln!(out);
        }
    }

    for pred in universe.predicates() {
        let members: Vec<_> = state
            .associations()
            .filter(|a| a.predicate == *pred.name())
            .collect();
        if members.is_empty() {
            continue;
        }
        let _ = writeln!(out, "{} associations:", pred.name());
        for a in members {
            let _ = write!(out, "  [{}]", a.predicate);
            for (role, e) in &a.roles {
                let _ = write!(out, " —{role}→ {}[{}]", e.entity_type, e.key);
            }
            let _ = writeln!(out);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;

    #[test]
    fn renders_figure4() {
        let text = render_state(&fixtures::figure4_state());
        assert!(text.contains("employee entities:"));
        assert!(text.contains("machine entities:"));
        assert!(text.contains("(T.Manhart) —age→ 32"));
        assert!(text.contains("operate associations:"));
        assert!(text.contains("—agent→ employee[T.Manhart]"));
        assert!(text.contains("—object→ machine[NZ745]"));
        assert!(text.contains("supervise associations:"));
    }

    #[test]
    fn empty_blocks_are_omitted() {
        let schema = std::sync::Arc::new(fixtures::machine_shop_graph_schema());
        let text = render_state(&GraphState::empty(schema));
        assert!(text.is_empty());
    }
}
