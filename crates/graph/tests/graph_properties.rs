//! Property tests for the semantic graph model:
//!
//! * fact compilation is injective on valid states (distinct states ⇒
//!   distinct fact bases) — the graph side of the 1-1 state
//!   correspondence;
//! * applying a deletion unit always yields a valid state (the closure
//!   computed by `deletion_unit` really is "a group … which must be
//!   deleted as a single unit");
//! * operations are pure: a failed apply leaves the input untouched, a
//!   successful apply never mutates it either.

use std::collections::BTreeSet;
use std::sync::Arc;

use dme_graph::unit::deletion_unit;
use dme_graph::{fixtures, Association, Entity, EntityRef, GraphChange, GraphOp, GraphState};
use dme_logic::ToFacts;
use dme_value::Atom;
use proptest::prelude::*;

const NAMES: [&str; 3] = ["T.Manhart", "C.Gershag", "G.Wayshum"];
const AGES: [i64; 3] = [32, 40, 50];
const MACHINES: [(&str, &str); 2] = [("NZ745", "lathe"), ("JCL181", "press")];

/// Builds a random *valid* machine-shop graph state from selector bits.
fn build_state(
    employees: [bool; 3],
    machines: [Option<usize>; 2],
    supervisions: [bool; 9],
) -> Option<GraphState> {
    let schema = Arc::new(fixtures::machine_shop_graph_schema());
    let mut s = GraphState::empty(schema);
    for (i, present) in employees.iter().enumerate() {
        if *present {
            s.insert_entity_raw(Entity::new(
                "employee",
                [("name", Atom::str(NAMES[i])), ("age", Atom::Int(AGES[i]))],
            ))
            .ok()?;
        }
    }
    for (m, operator) in machines.iter().enumerate() {
        if let Some(op_idx) = operator {
            if !employees[*op_idx] {
                return None; // operator must exist
            }
            let (number, ty) = MACHINES[m];
            s.insert_entity_raw(Entity::new(
                "machine",
                [("number", Atom::str(number)), ("type", Atom::str(ty))],
            ))
            .ok()?;
            s.insert_association_raw(Association::new(
                "operate",
                [
                    (
                        "agent",
                        EntityRef::new("employee", Atom::str(NAMES[*op_idx])),
                    ),
                    ("object", EntityRef::new("machine", Atom::str(number))),
                ],
            ))
            .ok()?;
        }
    }
    for (k, present) in supervisions.iter().enumerate() {
        if *present {
            let (a, b) = (k / 3, k % 3);
            if !employees[a] || !employees[b] {
                return None;
            }
            s.insert_association_raw(Association::new(
                "supervise",
                [
                    ("agent", EntityRef::new("employee", Atom::str(NAMES[a]))),
                    ("object", EntityRef::new("employee", Atom::str(NAMES[b]))),
                ],
            ))
            .ok()?;
        }
    }
    s.validate().ok()?;
    Some(s)
}

fn arb_state() -> impl Strategy<Value = Option<GraphState>> {
    (
        prop::array::uniform3(any::<bool>()),
        prop::array::uniform2(prop_oneof![
            Just(None),
            Just(Some(0usize)),
            Just(Some(1usize)),
            Just(Some(2usize)),
        ]),
        prop::array::uniform9(any::<bool>()),
    )
        .prop_map(|(e, m, s)| build_state(e, m, s))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn fact_compilation_is_injective(a in arb_state(), b in arb_state()) {
        if let (Some(a), Some(b)) = (a, b) {
            prop_assert_eq!(a.to_facts() == b.to_facts(), a == b);
        }
    }

    #[test]
    fn deletion_units_yield_valid_states(
        state in arb_state(),
        seed_employee in 0usize..3,
        seed_machine in 0usize..2,
        use_machine in any::<bool>(),
    ) {
        let Some(state) = state else { return Ok(()) };
        let seed: EntityRef = if use_machine {
            EntityRef::new("machine", Atom::str(MACHINES[seed_machine].0))
        } else {
            EntityRef::new("employee", Atom::str(NAMES[seed_employee]))
        };
        let unit = deletion_unit(&state, [seed.clone()], []);
        if unit.is_empty() {
            // Seed absent from the state.
            prop_assert!(state.entity(&seed).is_none());
            return Ok(());
        }
        let after = GraphOp::DeleteUnit(unit).apply(&state)
            .expect("deletion units are closed under schema restrictions");
        after.validate().expect("result is a valid state");
        prop_assert!(after.entity(&seed).is_none());
    }

    #[test]
    fn operations_are_pure(state in arb_state(), k in 0usize..9) {
        let Some(state) = state else { return Ok(()) };
        let snapshot = state.clone();
        let (a, b) = (k / 3, k % 3);
        let op = GraphOp::InsertAssociation(Association::new(
            "supervise",
            [
                ("agent", EntityRef::new("employee", Atom::str(NAMES[a]))),
                ("object", EntityRef::new("employee", Atom::str(NAMES[b]))),
            ],
        ));
        let _ = op.apply(&state);
        prop_assert_eq!(state, snapshot, "apply never mutates its input");
    }

    /// The indexed validation agrees with the index-free scan baseline —
    /// including on *invalid* states built by raw mutation.
    #[test]
    fn indexed_validation_agrees_with_scan(
        state in arb_state(),
        break_it in any::<bool>(),
        victim in 0usize..2,
    ) {
        let Some(mut state) = state else { return Ok(()) };
        if break_it {
            // Remove a machine's operation association (if any) to break
            // totality, or a machine entity to dangle a role edge.
            let op = state
                .associations()
                .find(|a| a.predicate == "operate")
                .cloned();
            match (victim, op) {
                (0, Some(a)) => { let _ = state.remove_association_raw(&a); }
                (_, Some(a)) => {
                    let m = a.role("object").expect("operate has object").clone();
                    let _ = state.remove_entity_raw(&m);
                }
                _ => {}
            }
        }
        prop_assert_eq!(state.validate().is_ok(), state.validate_scan().is_ok());
    }

    /// Delta application is observationally identical to clone-apply
    /// over whole generated operation scripts: same success/error
    /// outcomes, same resulting states, same fingerprints — and undoing
    /// the script in LIFO order walks back through the exact
    /// intermediate states.
    #[test]
    fn delta_apply_matches_clone_apply(
        state in arb_state(),
        script in prop::collection::vec((0usize..4, any::<bool>(), 0usize..9), 1..8),
    ) {
        use dme_logic::DeltaState;
        let Some(state) = state else { return Ok(()) };
        let mut cur = state.clone();
        let mut trail: Vec<(dme_graph::GraphUndo, GraphState)> = Vec::new();
        for (kind, insert, k) in script {
            let op = match kind {
                0 => {
                    let (a, b) = (k / 3, k % 3);
                    let assoc = Association::new(
                        "supervise",
                        [
                            ("agent", EntityRef::new("employee", Atom::str(NAMES[a]))),
                            ("object", EntityRef::new("employee", Atom::str(NAMES[b]))),
                        ],
                    );
                    if insert {
                        GraphOp::InsertAssociation(assoc)
                    } else {
                        GraphOp::DeleteAssociation(assoc)
                    }
                }
                1 => GraphOp::InsertEntity(Entity::new(
                    "employee",
                    [
                        ("name", Atom::str(NAMES[k % 3])),
                        ("age", Atom::Int(AGES[k % 3])),
                    ],
                )),
                2 => GraphOp::DeleteEntity(EntityRef::new("employee", Atom::str(NAMES[k % 3]))),
                _ => {
                    let seed = EntityRef::new("machine", Atom::str(MACHINES[k % 2].0));
                    GraphOp::DeleteUnit(deletion_unit(&cur, [seed], []))
                }
            };
            let cloned = op.apply(&cur);
            let before = cur.clone();
            match cur.apply_delta(&op) {
                Some(undo) => {
                    let applied = cloned.expect("delta succeeded, clone-apply must too");
                    prop_assert_eq!(&cur, &applied);
                    prop_assert_eq!(cur.fingerprint(), applied.fingerprint());
                    trail.push((undo, before));
                }
                None => {
                    prop_assert!(cloned.is_err(), "clone-apply succeeded where delta failed");
                    prop_assert_eq!(&cur, &before, "failed delta must leave the state untouched");
                    prop_assert_eq!(cur.fingerprint(), before.fingerprint());
                }
            }
        }
        for (undo, before) in trail.into_iter().rev() {
            cur.undo(undo);
            prop_assert_eq!(&cur, &before, "undo must restore the exact prior state");
            prop_assert_eq!(cur.fingerprint(), before.fingerprint());
            cur.validate().expect("undone states stay valid");
        }
    }

    /// The O(delta) composed-apply (`apply_all_incremental`: in-place
    /// raw mutations + touched-ref validation) agrees with the O(state)
    /// baseline (`apply_all`: clone per op + whole-state validation)
    /// over whole generated scripts: same success/error outcome, same
    /// post-state and fingerprint, a change log that raw-replays the
    /// pre-state to the post-state exactly, and an in-place apply whose
    /// error rollback / explicit undo restore the pre-state exactly.
    #[test]
    fn incremental_apply_matches_clone_apply(
        state in arb_state(),
        script in prop::collection::vec((0usize..4, any::<bool>(), 0usize..9), 1..8),
    ) {
        let Some(state) = state else { return Ok(()) };
        // Materialize the script into concrete ops, advancing a cursor
        // on success so deletion units are computed against the state
        // they will meet (ops past the first failure are still valid
        // data — both paths must stop at the same place).
        let mut cur = state.clone();
        let mut ops: Vec<GraphOp> = Vec::new();
        for (kind, insert, k) in script {
            let op = match kind {
                0 => {
                    let (a, b) = (k / 3, k % 3);
                    let assoc = Association::new(
                        "supervise",
                        [
                            ("agent", EntityRef::new("employee", Atom::str(NAMES[a]))),
                            ("object", EntityRef::new("employee", Atom::str(NAMES[b]))),
                        ],
                    );
                    if insert {
                        GraphOp::InsertAssociation(assoc)
                    } else {
                        GraphOp::DeleteAssociation(assoc)
                    }
                }
                1 => GraphOp::InsertEntity(Entity::new(
                    "employee",
                    [
                        ("name", Atom::str(NAMES[k % 3])),
                        ("age", Atom::Int(AGES[k % 3])),
                    ],
                )),
                2 => GraphOp::DeleteEntity(EntityRef::new("employee", Atom::str(NAMES[k % 3]))),
                _ => {
                    let seed = EntityRef::new("machine", Atom::str(MACHINES[k % 2].0));
                    GraphOp::DeleteUnit(deletion_unit(&cur, [seed], []))
                }
            };
            if let Ok(next) = op.apply(&cur) {
                cur = next;
            }
            ops.push(op);
        }

        let slow = GraphOp::apply_all(&ops, &state);
        let fast = GraphOp::apply_all_incremental(&ops, &state);
        match (slow, fast) {
            (Ok(slow_state), Ok((fast_state, changes))) => {
                prop_assert_eq!(&slow_state, &fast_state);
                prop_assert_eq!(slow_state.fingerprint(), fast_state.fingerprint());
                // The change log is a replay-exact script pre → post.
                let mut replay = state.clone();
                for c in &changes {
                    match c {
                        GraphChange::InsertEntity(e) => {
                            replay.insert_entity_raw(e.clone()).expect("replay insert");
                        }
                        GraphChange::DeleteEntity(e) => {
                            let r = e.to_ref(replay.schema()).expect("logged entity has a key");
                            replay.remove_entity_raw(&r).expect("replay delete");
                        }
                        GraphChange::InsertAssociation(a) => {
                            replay.insert_association_raw(a.clone()).expect("replay insert");
                        }
                        GraphChange::DeleteAssociation(a) => {
                            replay.remove_association_raw(a).expect("replay delete");
                        }
                    }
                }
                prop_assert_eq!(&replay, &fast_state);
                prop_assert_eq!(replay.fingerprint(), fast_state.fingerprint());
                // Undoing the in-place transaction restores the input.
                let mut undone = state.clone();
                let txn = GraphOp::apply_all_delta(&ops, &mut undone)
                    .expect("incremental path already succeeded");
                GraphOp::undo_txn(&mut undone, txn);
                prop_assert_eq!(&undone, &state);
                prop_assert_eq!(undone.fingerprint(), state.fingerprint());
            }
            (Err(_), Err(_)) => {
                // Error rollback leaves an in-place state untouched.
                let mut rolled = state.clone();
                prop_assert!(GraphOp::apply_all_delta(&ops, &mut rolled).is_err());
                prop_assert_eq!(&rolled, &state);
                prop_assert_eq!(rolled.fingerprint(), state.fingerprint());
            }
            (slow, fast) => {
                prop_assert!(
                    false,
                    "outcome mismatch: apply_all ok={} incremental ok={}",
                    slow.is_ok(),
                    fast.is_ok()
                );
            }
        }
    }

    /// Fingerprints are coherent with equality: equal states (however
    /// they were built) carry equal fingerprints.
    #[test]
    fn fingerprints_agree_on_equal_states(a in arb_state(), b in arb_state()) {
        if let (Some(a), Some(b)) = (a, b) {
            if a == b {
                prop_assert_eq!(a.fingerprint(), b.fingerprint());
            }
        }
    }

    /// Entity and association counts compiled into facts add up.
    #[test]
    fn fact_counts_match_structure(state in arb_state()) {
        let Some(state) = state else { return Ok(()) };
        let (entities, associations) = state.sizes();
        // Every entity: existence + exactly one non-id characteristic.
        prop_assert_eq!(state.to_facts().len(), entities * 2 + associations);
    }
}

#[test]
fn unit_deletion_covers_all_reachable_seeds() {
    // Exhaustive mini-check: from Figure 4, deleting any single entity's
    // unit produces a valid state not containing that entity.
    let state = fixtures::figure4_state();
    let refs: BTreeSet<EntityRef> = state
        .entities()
        .map(|e| e.to_ref(state.schema()).expect("valid fixture"))
        .collect();
    for r in refs {
        let unit = deletion_unit(&state, [r.clone()], []);
        let after = GraphOp::DeleteUnit(unit).apply(&state);
        match after {
            Ok(after) => {
                after.validate().expect("valid");
                assert!(after.entity(&r).is_none());
            }
            Err(e) => {
                // The only admissible failure is a dangling reference from
                // an association the unit did not drag (supervisions are
                // optional and so not dragged by rule 2) — G.Wayshum and
                // C.Gershag supervise/are supervised.
                let msg = e.to_string();
                assert!(msg.contains("missing"), "unexpected failure: {msg}");
            }
        }
    }
}
