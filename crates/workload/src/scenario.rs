//! Scenario corpus: seeded random universes and a mutation engine.
//!
//! This is the fuzzing rig for the incremental re-verification session
//! (`dme_core::incremental`), in the style of bounded adversarial
//! instance generation: a [`Scenario`] is a random fact universe with
//! tunable **fact arity**, **constraint density** and **closure size**
//! (≈ `2^toggles` states, pruned by the constraints — the knobs span
//! 10²–10⁵ comfortably), compiled into a [`FiniteModel`] over
//! [`FactBase`] states. A [`Mutation`] then derives an adversarial
//! *near-equivalent* variant — drop a constraint, swap an operation's
//! direction (its pre/post), rename a case binding, drop an operation —
//! so differential suites can hammer `mutate → incremental re-check →
//! full re-check` and require identical verdicts and witnesses.
//!
//! Everything is deterministic in the seed: the same
//! [`ScenarioConfig`] always generates the same scenario, on every
//! platform.
//!
//! ## Model identity
//!
//! The incremental session caches by model name + initial state +
//! operation labels. Operation labels here are derived from the
//! operation's effect (`+fact`, `-fact`, `+a&-b`), so any operation
//! mutation changes the label; constraints live in the validator
//! closure, invisible to labels, so [`Scenario::model`] suffixes the
//! model name with a digest of the constraint set. Together the two
//! rules make the generated models honest cache citizens: equal keys
//! really do imply equal semantics.

use std::fmt;

use dme_core::model::{FiniteModel, UndoFn};
use dme_logic::{content_fingerprint, Fact, FactBase};
use dme_value::Atom;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Tuning knobs for [`Scenario::generate`]. The closure of the
/// generated model has at most `2^toggles` states; constraints prune
/// that powerset.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScenarioConfig {
    /// Seed for the deterministic generator.
    pub seed: u64,
    /// Number of independently toggleable facts (closure ≤ 2^toggles).
    pub toggles: usize,
    /// Case bindings per fact (the paper's named cases).
    pub fact_arity: usize,
    /// Constraints per toggle (rounded); 0.0 disables constraints.
    pub constraint_density: f64,
    /// Extra two-step operations (insert/delete two facts atomically).
    /// They enlarge the operation alphabet without adding states.
    pub composite_ops: usize,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            seed: 0,
            toggles: 4,
            fact_arity: 2,
            constraint_density: 0.5,
            composite_ops: 0,
        }
    }
}

impl ScenarioConfig {
    /// A config whose unconstrained closure has at least
    /// `target_states` states (`toggles = ⌈log2 target⌉`, no
    /// constraints). The 10²–10⁵ closure-size knob.
    pub fn sized(seed: u64, target_states: usize) -> Self {
        let mut toggles = 1;
        while (1usize << toggles) < target_states {
            toggles += 1;
        }
        ScenarioConfig {
            seed,
            toggles,
            fact_arity: 3,
            constraint_density: 0.0,
            composite_ops: 0,
        }
    }
}

/// One generated operation: a strict sequence of single-fact steps.
/// `(true, f)` inserts `f` (error if present), `(false, f)` deletes it
/// (error if absent); a later step failing rolls the earlier ones back.
/// The `Display` label is derived from the steps, so equal labels imply
/// equal semantics — the incremental session's keying contract.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScenarioOp {
    /// The steps, applied in order; all must succeed.
    pub steps: Vec<(bool, Fact)>,
}

impl fmt::Display for ScenarioOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, (add, fact)) in self.steps.iter().enumerate() {
            if i > 0 {
                f.write_str("&")?;
            }
            write!(f, "{}{}", if *add { "+" } else { "-" }, fact)?;
        }
        Ok(())
    }
}

impl ScenarioOp {
    /// Applies every step strictly, in place. On success returns the
    /// applied steps (for undo); on any failure the state is restored
    /// and `None` is returned.
    fn apply_steps(&self, state: &mut FactBase) -> Option<Vec<(bool, Fact)>> {
        let mut applied: Vec<(bool, Fact)> = Vec::with_capacity(self.steps.len());
        for (add, fact) in &self.steps {
            let ok = if *add {
                state.insert(fact.clone())
            } else {
                state.remove(fact)
            };
            if !ok {
                for (add, fact) in applied.iter().rev() {
                    undo_step(state, *add, fact);
                }
                return None;
            }
            applied.push((*add, fact.clone()));
        }
        Some(applied)
    }
}

fn undo_step(state: &mut FactBase, was_insert: bool, fact: &Fact) {
    if was_insert {
        state.remove(fact);
    } else {
        state.insert(fact.clone());
    }
}

/// A state-only constraint over the fact base; the generated model's
/// validator accepts exactly the states satisfying all of them. Every
/// kind holds on the empty initial state, so the closure is never
/// vacuously empty.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScenarioConstraint {
    /// At most `cap` facts with this predicate may hold.
    AtMost {
        /// The constrained predicate name.
        predicate: String,
        /// Maximum fact count for the predicate.
        cap: usize,
    },
    /// `a` and `b` may not hold simultaneously.
    Excludes {
        /// First of the mutually exclusive facts.
        a: Fact,
        /// Second of the mutually exclusive facts.
        b: Fact,
    },
    /// If `a` holds then `b` must hold.
    Requires {
        /// The triggering fact.
        a: Fact,
        /// The required fact.
        b: Fact,
    },
}

impl fmt::Display for ScenarioConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioConstraint::AtMost { predicate, cap } => {
                write!(f, "at_most({predicate}, {cap})")
            }
            ScenarioConstraint::Excludes { a, b } => write!(f, "excludes({a}, {b})"),
            ScenarioConstraint::Requires { a, b } => write!(f, "requires({a}, {b})"),
        }
    }
}

impl ScenarioConstraint {
    /// Whether the constraint holds in `state`.
    pub fn holds(&self, state: &FactBase) -> bool {
        match self {
            ScenarioConstraint::AtMost { predicate, cap } => {
                state.with_predicate(predicate).count() <= *cap
            }
            ScenarioConstraint::Excludes { a, b } => !(state.holds(a) && state.holds(b)),
            ScenarioConstraint::Requires { a, b } => !state.holds(a) || state.holds(b),
        }
    }
}

/// One mutation kind: a small, semantics-changing edit deriving an
/// adversarial near-equivalent scenario. Indices refer to
/// [`Scenario::constraints`] / [`Scenario::ops`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mutation {
    /// Remove one constraint (the mutant's closure is a superset).
    DropConstraint(usize),
    /// Invert every step of one operation (insert ↔ delete) — the
    /// pre/post swap.
    SwapOpDirection(usize),
    /// Rename the first case binding of one operation's first step, so
    /// the operation now toggles a fact outside the original universe.
    RenameBinding(usize),
    /// Remove one operation.
    DropOp(usize),
}

/// A generated universe: toggleable facts, the operation alphabet and
/// the constraint set. Compile with [`Scenario::model`], derive
/// adversarial variants with [`Scenario::mutate`].
#[derive(Clone, Debug, PartialEq)]
pub struct Scenario {
    /// The config that generated this scenario (mutants keep the
    /// ancestor's config).
    pub config: ScenarioConfig,
    /// The toggleable fact universe.
    pub facts: Vec<Fact>,
    /// The operation alphabet.
    pub ops: Vec<ScenarioOp>,
    /// The constraint set baked into the model's validator.
    pub constraints: Vec<ScenarioConstraint>,
}

impl Scenario {
    /// Generates the scenario determined by `config`.
    pub fn generate(config: ScenarioConfig) -> Scenario {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let toggles = config.toggles.max(1);
        let arity = config.fact_arity.max(1);
        // A few predicate groups so AtMost constraints have something
        // to count.
        let predicates = ["supervise", "operate", "assign", "audit"];
        let pred_count = predicates.len().min(toggles.div_ceil(2)).max(1);
        let facts: Vec<Fact> = (0..toggles)
            .map(|i| {
                let pred = predicates[i % pred_count];
                let args: Vec<(String, Atom)> = (0..arity)
                    .map(|c| {
                        let case = format!("c{c}");
                        // The first case carries the toggle index, so
                        // facts are always distinct; the rest are
                        // random payload.
                        let value = if c == 0 {
                            Atom::Int(i as i64)
                        } else {
                            Atom::Int(rng.gen_range(0..100i64))
                        };
                        (case, value)
                    })
                    .collect();
                Fact::new(pred, args)
            })
            .collect();

        let mut ops: Vec<ScenarioOp> = Vec::with_capacity(2 * toggles + config.composite_ops);
        for fact in &facts {
            ops.push(ScenarioOp {
                steps: vec![(true, fact.clone())],
            });
            ops.push(ScenarioOp {
                steps: vec![(false, fact.clone())],
            });
        }
        for _ in 0..config.composite_ops {
            if toggles < 2 {
                break;
            }
            let i = rng.gen_range(0..toggles);
            let mut j = rng.gen_range(0..toggles);
            if j == i {
                j = (j + 1) % toggles;
            }
            ops.push(ScenarioOp {
                steps: vec![
                    (rng.gen_bool(0.5), facts[i].clone()),
                    (rng.gen_bool(0.5), facts[j].clone()),
                ],
            });
        }

        let constraint_count = (config.constraint_density * toggles as f64)
            .round()
            .max(0.0) as usize;
        let constraints: Vec<ScenarioConstraint> = (0..constraint_count)
            .map(|_| match rng.gen_range(0..3u8) {
                0 => {
                    let predicate = predicates[rng.gen_range(0..pred_count)].to_owned();
                    let population = facts
                        .iter()
                        .filter(|f| f.predicate().as_str() == predicate)
                        .count();
                    ScenarioConstraint::AtMost {
                        predicate,
                        cap: rng.gen_range(1..=population.max(1)),
                    }
                }
                1 => {
                    let (a, b) = distinct_pair(&mut rng, &facts);
                    ScenarioConstraint::Excludes { a, b }
                }
                _ => {
                    let (a, b) = distinct_pair(&mut rng, &facts);
                    ScenarioConstraint::Requires { a, b }
                }
            })
            .collect();

        Scenario {
            config,
            facts,
            ops,
            constraints,
        }
    }

    /// A 64-bit digest of the constraint set (order-sensitive), used to
    /// salt the model name — constraints live in the validator closure
    /// and would otherwise be invisible to the incremental session's
    /// cache key.
    pub fn constraint_digest(&self) -> u64 {
        let rendered: Vec<String> = self.constraints.iter().map(|c| c.to_string()).collect();
        content_fingerprint(&rendered)
    }

    /// Compiles the scenario into a checker model. The model name is
    /// `{name}[c{constraint digest}]`; states are fact bases starting
    /// empty; the application function applies the operation's steps
    /// strictly and then requires every constraint, with the
    /// deferred-validation split installed so the closure enumerators
    /// validate only probe-missing candidates.
    pub fn model(&self, name: &str) -> FiniteModel<FactBase, ScenarioOp> {
        let full_name = format!("{name}[c{:016x}]", self.constraint_digest());
        let apply_constraints = self.constraints.clone();
        let validate_constraints = self.constraints.clone();
        FiniteModel::new(
            full_name,
            FactBase::new(),
            self.ops.clone(),
            move |op: &ScenarioOp, state: &FactBase| {
                let mut next = state.clone();
                op.apply_steps(&mut next)?;
                apply_constraints
                    .iter()
                    .all(|c| c.holds(&next))
                    .then_some(next)
            },
        )
        .with_fingerprint(FactBase::fingerprint)
        .with_candidate(
            |op: &ScenarioOp, state: &mut FactBase| {
                let applied = op.apply_steps(state)?;
                Some(Box::new(move |s: &mut FactBase| {
                    for (add, fact) in applied.iter().rev() {
                        undo_step(s, *add, fact);
                    }
                }) as UndoFn<FactBase>)
            },
            move |state| validate_constraints.iter().all(|c| c.holds(state)),
        )
    }

    /// Compiles the scenario for the symbolic tier: the same model as
    /// [`Scenario::model`] (same salted name, same operation labels,
    /// same transition semantics) expressed as a
    /// [`dme_core::symbolic::SymbolicSpec`] fact-toggle universe, so
    /// `SymbolicChecker` verdicts are bit-identical to running the
    /// enumerative checker on [`Scenario::model`].
    ///
    /// The universe is the scenario's fact list extended with any
    /// operation-step facts outside it (mutants from
    /// [`Mutation::RenameBinding`] toggle such facts), in first
    /// appearance order. Constraints are resolved against that
    /// universe: an `AtMost` counts the universe facts of its
    /// predicate, an `Excludes`/`Requires` mentioning a fact no
    /// operation can ever produce reduces to its residual form
    /// (trivially true, or `a` must never hold).
    pub fn symbolic_spec(&self, name: &str) -> dme_core::symbolic::SymbolicSpec {
        use dme_core::symbolic::{SymbolicConstraint, SymbolicOp, SymbolicSpec};
        let mut universe: Vec<Fact> = self.facts.clone();
        let index_of = |facts: &mut Vec<Fact>, fact: &Fact| -> usize {
            match facts.iter().position(|f| f == fact) {
                Some(i) => i,
                None => {
                    facts.push(fact.clone());
                    facts.len() - 1
                }
            }
        };
        let ops: Vec<SymbolicOp> = self
            .ops
            .iter()
            .map(|op| SymbolicOp {
                label: op.to_string(),
                steps: op
                    .steps
                    .iter()
                    .map(|(add, fact)| (*add, index_of(&mut universe, fact)))
                    .collect(),
            })
            .collect();
        let mut constraints = Vec::new();
        for c in &self.constraints {
            match c {
                ScenarioConstraint::AtMost { predicate, cap } => {
                    let vars: Vec<usize> = universe
                        .iter()
                        .enumerate()
                        .filter(|(_, f)| f.predicate().as_str() == predicate)
                        .map(|(v, _)| v)
                        .collect();
                    if !vars.is_empty() {
                        constraints.push(SymbolicConstraint::AtMost { vars, cap: *cap });
                    }
                }
                ScenarioConstraint::Excludes { a, b } => {
                    let ia = universe.iter().position(|f| f == a);
                    let ib = universe.iter().position(|f| f == b);
                    // A fact outside the universe never holds, so the
                    // exclusion is trivially satisfied.
                    if let (Some(a), Some(b)) = (ia, ib) {
                        constraints.push(SymbolicConstraint::Excludes { a, b });
                    }
                }
                ScenarioConstraint::Requires { a, b } => {
                    let ia = universe.iter().position(|f| f == a);
                    let ib = universe.iter().position(|f| f == b);
                    match (ia, ib) {
                        (Some(a), Some(b)) => {
                            constraints.push(SymbolicConstraint::Requires { a, b });
                        }
                        // `b` can never hold, so `a` must never hold.
                        (Some(a), None) => {
                            constraints.push(SymbolicConstraint::AtMost {
                                vars: vec![a],
                                cap: 0,
                            });
                        }
                        // `a` can never hold: trivially satisfied.
                        (None, _) => {}
                    }
                }
            }
        }
        SymbolicSpec {
            name: format!("{name}[c{:016x}]", self.constraint_digest()),
            facts: universe,
            ops,
            constraints,
        }
    }

    /// Every mutation applicable to this scenario, in a deterministic
    /// order: constraint drops first, then per-op direction swaps,
    /// binding renames and drops.
    pub fn mutations(&self) -> Vec<Mutation> {
        let mut out = Vec::new();
        for i in 0..self.constraints.len() {
            out.push(Mutation::DropConstraint(i));
        }
        for i in 0..self.ops.len() {
            out.push(Mutation::SwapOpDirection(i));
            out.push(Mutation::RenameBinding(i));
            out.push(Mutation::DropOp(i));
        }
        out
    }

    /// Applies one mutation, producing the near-equivalent variant.
    /// Out-of-range indices are a caller bug.
    pub fn mutate(&self, mutation: Mutation) -> Scenario {
        let mut next = self.clone();
        match mutation {
            Mutation::DropConstraint(i) => {
                next.constraints.remove(i);
            }
            Mutation::SwapOpDirection(i) => {
                for (add, _) in &mut next.ops[i].steps {
                    *add = !*add;
                }
            }
            Mutation::RenameBinding(i) => {
                let (add, fact) = next.ops[i].steps[0].clone();
                let args: Vec<(String, Atom)> = fact
                    .args()
                    .enumerate()
                    .map(|(k, (case, atom))| {
                        let case = if k == 0 {
                            format!("renamed_{case}")
                        } else {
                            case.as_str().to_owned()
                        };
                        (case, atom.clone())
                    })
                    .collect();
                next.ops[i].steps[0] = (add, Fact::new(fact.predicate().clone(), args));
            }
            Mutation::DropOp(i) => {
                next.ops.remove(i);
            }
        }
        next
    }
}

fn distinct_pair(rng: &mut StdRng, facts: &[Fact]) -> (Fact, Fact) {
    let i = rng.gen_range(0..facts.len());
    let j = if facts.len() < 2 {
        i
    } else {
        let mut j = rng.gen_range(0..facts.len());
        if j == i {
            j = (j + 1) % facts.len();
        }
        j
    };
    (facts[i].clone(), facts[j].clone())
}

/// A deterministic corpus of `count` scenarios with varied knobs
/// (toggles 2–5, arity 1–3, density 0–1, with and without composite
/// operations), for the differential and thread-invariance suites.
pub fn corpus(seed: u64, count: usize) -> Vec<Scenario> {
    (0..count)
        .map(|i| {
            let i = i as u64;
            Scenario::generate(ScenarioConfig {
                seed: seed.wrapping_add(i.wrapping_mul(0x9E37_79B9)),
                toggles: 2 + (i % 4) as usize,
                fact_arity: 1 + (i % 3) as usize,
                constraint_density: (i % 5) as f64 * 0.25,
                composite_ops: (i % 3) as usize,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = Scenario::generate(ScenarioConfig::default());
        let b = Scenario::generate(ScenarioConfig::default());
        assert_eq!(a, b);
        let c = Scenario::generate(ScenarioConfig {
            seed: 1,
            ..ScenarioConfig::default()
        });
        assert_ne!(a, c);
    }

    #[test]
    fn closure_size_tracks_toggles() {
        // Unconstrained toggles enumerate the full powerset.
        let s = Scenario::generate(ScenarioConfig {
            seed: 3,
            toggles: 5,
            fact_arity: 2,
            constraint_density: 0.0,
            composite_ops: 0,
        });
        let closure = s.model("m").closure(10_000).unwrap();
        assert_eq!(closure.arena.len(), 32);
        assert_eq!(ScenarioConfig::sized(0, 10_000).toggles, 14);
    }

    #[test]
    fn constraints_prune_the_closure() {
        let free = Scenario::generate(ScenarioConfig {
            seed: 5,
            toggles: 5,
            fact_arity: 2,
            constraint_density: 0.0,
            composite_ops: 0,
        });
        let mut constrained = free.clone();
        constrained.constraints.push(ScenarioConstraint::Excludes {
            a: free.facts[0].clone(),
            b: free.facts[1].clone(),
        });
        let full = free.model("m").closure(10_000).unwrap().arena.len();
        let pruned = constrained.model("m").closure(10_000).unwrap().arena.len();
        assert_eq!(full, 32);
        assert_eq!(pruned, 24, "excluding one pair removes a quarter");
        // The constraint digest differs, so the model names differ.
        assert_ne!(
            free.model("m").name().to_owned(),
            constrained.model("m").name()
        );
    }

    #[test]
    fn apply_agrees_with_candidate_plus_validate() {
        let s = Scenario::generate(ScenarioConfig {
            seed: 7,
            toggles: 4,
            fact_arity: 2,
            constraint_density: 1.0,
            composite_ops: 3,
        });
        let model = s.model("m");
        let states = model.reachable_states(10_000).unwrap();
        for state in &states {
            for op in model.ops().to_vec() {
                let pure = model.apply(&op, state);
                let mut scratch = state.clone();
                let via_candidate = match model.expand_delta(&op, &mut scratch) {
                    None => None,
                    Some(undo) => {
                        let out = model.validate_candidate(&scratch).then(|| scratch.clone());
                        undo(&mut scratch);
                        out
                    }
                };
                assert_eq!(pure, via_candidate, "op {op} on {state:?}");
                assert_eq!(&scratch, state, "undo restores");
            }
        }
    }

    #[test]
    fn mutations_change_semantics_visibly() {
        let s = Scenario::generate(ScenarioConfig {
            seed: 11,
            toggles: 3,
            fact_arity: 2,
            constraint_density: 1.0,
            composite_ops: 1,
        });
        assert!(!s.mutations().is_empty());
        for mutation in s.mutations() {
            let mutant = s.mutate(mutation);
            match mutation {
                Mutation::DropConstraint(_) => {
                    assert_eq!(mutant.constraints.len(), s.constraints.len() - 1);
                    assert_ne!(mutant.constraint_digest(), s.constraint_digest());
                }
                Mutation::SwapOpDirection(i) | Mutation::RenameBinding(i) => {
                    assert_ne!(mutant.ops[i].to_string(), s.ops[i].to_string());
                }
                Mutation::DropOp(_) => assert_eq!(mutant.ops.len(), s.ops.len() - 1),
            }
        }
    }

    #[test]
    fn corpus_is_deterministic_and_varied() {
        let a = corpus(42, 16);
        let b = corpus(42, 16);
        assert_eq!(a, b);
        let toggles: std::collections::BTreeSet<usize> =
            a.iter().map(|s| s.config.toggles).collect();
        assert!(toggles.len() > 1, "corpus varies closure sizes");
        assert!(a.iter().any(|s| !s.constraints.is_empty()));
        assert!(a.iter().any(|s| s.constraints.is_empty()));
    }
}
