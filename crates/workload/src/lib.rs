#![deny(missing_docs)]

//! # dme-workload — deterministic workload generators
//!
//! Scaled machine-shop universes, states and operation streams for the
//! benchmark harness and stress tests. Everything is deterministic in the
//! [`ShopConfig::seed`], so benchmark runs are reproducible.
//!
//! The generator produces *paired* states — a graph state and a
//! relational state built independently but representing the same
//! application state — so equivalence-checking and translation benches
//! measure real work rather than set-up artifacts.

pub mod scenario;

pub use scenario::{corpus, Mutation, Scenario, ScenarioConfig, ScenarioConstraint, ScenarioOp};

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use dme_logic::{EntityTypeDecl, PredicateDecl, Universe};
use dme_value::{sym, tuple, Domain, DomainCatalog, Symbol, Value};

use dme_graph::{Association, Entity, EntityRef, GraphOp, GraphSchema, GraphState, Participation};
use dme_relation::{
    CharacteristicCol, ColsRef, Constraint, Pair, Participant, RelOp, RelationSchema,
    RelationState, RelationalSchema,
};

/// Machine-shop workload parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShopConfig {
    /// Number of employees.
    pub employees: usize,
    /// Number of machines (each machine gets an operator).
    pub machines: usize,
    /// Number of supervision associations.
    pub supervisions: usize,
    /// RNG seed.
    pub seed: u64,
}

impl ShopConfig {
    /// A small configuration for tests.
    pub fn small() -> Self {
        ShopConfig {
            employees: 10,
            machines: 6,
            supervisions: 8,
            seed: 42,
        }
    }

    /// A configuration scaled by `n` (n employees, 2n/3 machines, n
    /// supervisions).
    pub fn scaled(n: usize) -> Self {
        ShopConfig {
            employees: n,
            machines: (2 * n) / 3,
            supervisions: n,
            seed: 42,
        }
    }
}

const TYPES: [&str; 4] = ["lathe", "press", "mill", "drill"];

fn employee_name(i: usize) -> String {
    format!("E{i:05}")
}

fn machine_number(i: usize) -> String {
    format!("M{i:05}")
}

/// The scaled machine-shop universe for a configuration.
pub fn universe(cfg: ShopConfig) -> Universe {
    let names: Vec<String> = (0..cfg.employees).map(employee_name).collect();
    let numbers: Vec<String> = (0..cfg.machines).map(machine_number).collect();
    let domains = DomainCatalog::new()
        .with(Domain::of_strs("names", names.iter().map(String::as_str)))
        .with(Domain::of_ints("years", 20..=65))
        .with(Domain::of_strs(
            "serial-numbers",
            numbers.iter().map(String::as_str),
        ))
        .with(Domain::of_strs("machine-types", TYPES));
    Universe::new(
        domains,
        [
            EntityTypeDecl::new(
                "employee",
                "name",
                [
                    (Symbol::new("name"), Symbol::new("names")),
                    (Symbol::new("age"), Symbol::new("years")),
                ],
            ),
            EntityTypeDecl::new(
                "machine",
                "number",
                [
                    (Symbol::new("number"), Symbol::new("serial-numbers")),
                    (Symbol::new("type"), Symbol::new("machine-types")),
                ],
            ),
        ],
        [
            PredicateDecl::new(
                "operate",
                [
                    (Symbol::new("agent"), Symbol::new("employee")),
                    (Symbol::new("object"), Symbol::new("machine")),
                ],
            ),
            PredicateDecl::new(
                "supervise",
                [
                    (Symbol::new("agent"), Symbol::new("employee")),
                    (Symbol::new("object"), Symbol::new("employee")),
                ],
            ),
        ],
    )
    .expect("workload universe is well-formed")
}

/// The Figure 5 graph schema over the scaled universe.
pub fn graph_schema(cfg: ShopConfig) -> GraphSchema {
    GraphSchema::new(
        universe(cfg),
        [
            ((sym!("operate"), sym!("agent")), Participation::OPTIONAL),
            (
                (sym!("operate"), sym!("object")),
                Participation::TOTAL_FUNCTIONAL,
            ),
            ((sym!("supervise"), sym!("agent")), Participation::OPTIONAL),
            ((sym!("supervise"), sym!("object")), Participation::OPTIONAL),
        ],
    )
    .expect("workload graph schema is well-formed")
}

/// The Figure 3 relational schema over the scaled universe.
pub fn relational_schema(cfg: ShopConfig) -> RelationalSchema {
    RelationalSchema::new(
        universe(cfg),
        [
            RelationSchema::new(
                "Employees",
                [Participant::new(
                    "employee",
                    [Pair::Existence],
                    [
                        CharacteristicCol::required("name", "names"),
                        CharacteristicCol::required("age", "years"),
                    ],
                )],
            ),
            RelationSchema::new(
                "Operate",
                [
                    Participant::new(
                        "employee",
                        [Pair::case("operate", "agent")],
                        [CharacteristicCol::required("name", "names")],
                    ),
                    Participant::new(
                        "machine",
                        [Pair::Existence, Pair::case("operate", "object")],
                        [
                            CharacteristicCol::required("number", "serial-numbers"),
                            CharacteristicCol::required("type", "machine-types"),
                        ],
                    ),
                ],
            ),
            RelationSchema::new(
                "Jobs",
                [
                    Participant::new(
                        "employee",
                        [Pair::case("supervise", "agent")],
                        [CharacteristicCol::optional("name", "names")],
                    ),
                    Participant::new(
                        "employee",
                        [
                            Pair::case("supervise", "object"),
                            Pair::case("operate", "agent"),
                        ],
                        [CharacteristicCol::required("name", "names")],
                    ),
                    Participant::new(
                        "machine",
                        [Pair::case("operate", "object")],
                        [CharacteristicCol::optional("number", "serial-numbers")],
                    ),
                ],
            ),
        ],
        [
            Constraint::Subset {
                from: ColsRef::new("Operate", [0]),
                to: ColsRef::new("Employees", [0]),
            },
            Constraint::NotNull {
                relation: "Operate".into(),
                column: 0,
            },
            Constraint::Unique {
                relation: "Operate".into(),
                columns: vec![1],
            },
            Constraint::Agreement {
                left: ColsRef::new("Operate", [0, 1]),
                right: ColsRef::new("Jobs", [1, 2]),
            },
            Constraint::Unique {
                relation: "Employees".into(),
                columns: vec![0],
            },
            Constraint::Subset {
                from: ColsRef::new("Jobs", [0]),
                to: ColsRef::new("Employees", [0]),
            },
            Constraint::Subset {
                from: ColsRef::new("Jobs", [1]),
                to: ColsRef::new("Employees", [0]),
            },
        ],
    )
    .expect("workload relational schema is well-formed")
}

/// The deterministic population plan shared by both state builders.
struct Plan {
    /// (name, age) per employee.
    employees: Vec<(String, i64)>,
    /// (number, type, operator index) per machine.
    machines: Vec<(String, &'static str, usize)>,
    /// (supervisor index, supervisee index).
    supervisions: BTreeSet<(usize, usize)>,
}

fn plan(cfg: ShopConfig) -> Plan {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let employees: Vec<(String, i64)> = (0..cfg.employees)
        .map(|i| (employee_name(i), rng.gen_range(20..=65)))
        .collect();
    let machines: Vec<(String, &'static str, usize)> = (0..cfg.machines)
        .map(|i| {
            (
                machine_number(i),
                *TYPES.choose(&mut rng).expect("nonempty"),
                rng.gen_range(0..cfg.employees.max(1)),
            )
        })
        .collect();
    let mut supervisions = BTreeSet::new();
    let mut attempts = 0;
    while supervisions.len() < cfg.supervisions && attempts < cfg.supervisions * 20 {
        attempts += 1;
        if cfg.employees < 2 {
            break;
        }
        let sup = rng.gen_range(0..cfg.employees);
        let sub = rng.gen_range(0..cfg.employees);
        if sup != sub {
            supervisions.insert((sup, sub));
        }
    }
    Plan {
        employees,
        machines,
        supervisions,
    }
}

/// Builds the populated graph state.
pub fn graph_state(cfg: ShopConfig) -> GraphState {
    let p = plan(cfg);
    let schema = Arc::new(graph_schema(cfg));
    let mut s = GraphState::empty(schema);
    for (name, age) in &p.employees {
        s.insert_entity_raw(Entity::new(
            "employee",
            [
                ("name", dme_value::Atom::str(name.clone())),
                ("age", dme_value::Atom::Int(*age)),
            ],
        ))
        .expect("generated employee is valid");
    }
    for (number, ty, operator) in &p.machines {
        s.insert_entity_raw(Entity::new(
            "machine",
            [
                ("number", dme_value::Atom::str(number.clone())),
                ("type", dme_value::Atom::str(*ty)),
            ],
        ))
        .expect("generated machine is valid");
        s.insert_association_raw(Association::new(
            "operate",
            [
                (
                    "agent",
                    EntityRef::new(
                        "employee",
                        dme_value::Atom::str(p.employees[*operator].0.clone()),
                    ),
                ),
                (
                    "object",
                    EntityRef::new("machine", dme_value::Atom::str(number.clone())),
                ),
            ],
        ))
        .expect("generated operation is valid");
    }
    for (sup, sub) in &p.supervisions {
        s.insert_association_raw(Association::new(
            "supervise",
            [
                (
                    "agent",
                    EntityRef::new(
                        "employee",
                        dme_value::Atom::str(p.employees[*sup].0.clone()),
                    ),
                ),
                (
                    "object",
                    EntityRef::new(
                        "employee",
                        dme_value::Atom::str(p.employees[*sub].0.clone()),
                    ),
                ),
            ],
        ))
        .expect("generated supervision is valid");
    }
    s
}

/// Builds the relational state representing the same application state
/// as [`graph_state`] (canonical, normalized form).
pub fn relational_state(cfg: ShopConfig) -> RelationState {
    let p = plan(cfg);
    let schema = Arc::new(relational_schema(cfg));
    let mut s = RelationState::empty(schema);
    for (name, age) in &p.employees {
        s.insert_raw("Employees", tuple![name.as_str(), *age])
            .expect("generated employee statement");
    }
    // Per employee: machines operated and supervisors.
    let mut machines_of: BTreeMap<usize, Vec<&(String, &'static str, usize)>> = BTreeMap::new();
    for m in &p.machines {
        machines_of.entry(m.2).or_default().push(m);
        s.insert_raw(
            "Operate",
            tuple![p.employees[m.2].0.as_str(), m.0.as_str(), m.1],
        )
        .expect("generated operate statement");
    }
    let mut supervisors_of: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for (sup, sub) in &p.supervisions {
        supervisors_of.entry(*sub).or_default().push(*sup);
    }
    for (i, (name, _)) in p.employees.iter().enumerate() {
        match (machines_of.get(&i), supervisors_of.get(&i)) {
            (None, None) => {}
            (Some(ms), None) => {
                for m in ms {
                    s.insert_raw("Jobs", tuple![Value::Null, name.as_str(), m.0.as_str()])
                        .expect("generated jobs statement");
                }
            }
            (None, Some(sups)) => {
                for &sup in sups {
                    s.insert_raw(
                        "Jobs",
                        tuple![p.employees[sup].0.as_str(), name.as_str(), Value::Null],
                    )
                    .expect("generated jobs statement");
                }
            }
            (Some(ms), Some(sups)) => {
                for &sup in sups {
                    for m in ms {
                        s.insert_raw(
                            "Jobs",
                            tuple![p.employees[sup].0.as_str(), name.as_str(), m.0.as_str()],
                        )
                        .expect("generated jobs statement");
                    }
                }
            }
        }
    }
    s
}

/// A deterministic stream of `n` supervision toggles (insert if absent,
/// delete if present) — every one valid against the evolving state.
pub fn supervision_toggle_ops(cfg: ShopConfig, n: usize) -> Vec<GraphOp> {
    let p = plan(cfg);
    let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(1));
    let mut present = p.supervisions.clone();
    let mut ops = Vec::with_capacity(n);
    while ops.len() < n {
        if cfg.employees < 2 {
            break;
        }
        let sup = rng.gen_range(0..cfg.employees);
        let sub = rng.gen_range(0..cfg.employees);
        if sup == sub {
            continue;
        }
        let assoc = Association::new(
            "supervise",
            [
                (
                    "agent",
                    EntityRef::new("employee", dme_value::Atom::str(p.employees[sup].0.clone())),
                ),
                (
                    "object",
                    EntityRef::new("employee", dme_value::Atom::str(p.employees[sub].0.clone())),
                ),
            ],
        );
        if present.remove(&(sup, sub)) {
            ops.push(GraphOp::DeleteAssociation(assoc));
        } else {
            present.insert((sup, sub));
            ops.push(GraphOp::InsertAssociation(assoc));
        }
    }
    ops
}

/// A deterministic stream of `n` machine-unit toggles: each step deletes
/// a machine's semantic unit (the machine plus its operation
/// association) or re-inserts it, alternating per machine — the workload
/// that exercises multi-object atomicity end to end.
pub fn machine_toggle_ops(cfg: ShopConfig, n: usize) -> Vec<GraphOp> {
    use dme_graph::SemanticUnit;
    let p = plan(cfg);
    let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(2));
    let mut present: Vec<bool> = vec![true; p.machines.len()];
    let mut ops = Vec::with_capacity(n);
    for _ in 0..n {
        if p.machines.is_empty() {
            break;
        }
        let m = rng.gen_range(0..p.machines.len());
        let (number, ty, operator) = &p.machines[m];
        let entity = Entity::new(
            "machine",
            [
                ("number", dme_value::Atom::str(number.clone())),
                ("type", dme_value::Atom::str(*ty)),
            ],
        );
        let assoc = Association::new(
            "operate",
            [
                (
                    "agent",
                    EntityRef::new(
                        "employee",
                        dme_value::Atom::str(p.employees[*operator].0.clone()),
                    ),
                ),
                (
                    "object",
                    EntityRef::new("machine", dme_value::Atom::str(number.clone())),
                ),
            ],
        );
        let unit = SemanticUnit::new()
            .with_entity(entity)
            .with_association(assoc);
        if present[m] {
            ops.push(GraphOp::DeleteUnit(unit));
        } else {
            ops.push(GraphOp::InsertUnit(unit));
        }
        present[m] = !present[m];
    }
    ops
}

/// `k` disjoint supervision toggles as *simple operations*: inserting
/// and deleting `supervise(E(2i) -> E(2i+1))` for `i < k`. From a state
/// with no supervisions, each pair is independently present or absent,
/// so the closure of these operations is the full powerset — exactly
/// `2^k` valid states. That makes `k` the state-count knob for the
/// closure-scaling benches: every state has `k` successful successors
/// (its hypercube neighbours), all but the frontier already interned,
/// so the expected arena hit rate approaches `(k-1)/k`.
///
/// Requires `cfg.employees >= 2 * k` (the pairs must be disjoint) and a
/// base state with no supervisions.
pub fn supervision_closure_ops(cfg: ShopConfig, k: usize) -> Vec<GraphOp> {
    assert!(
        2 * k <= cfg.employees,
        "k disjoint supervision pairs need 2k employees ({} < {})",
        cfg.employees,
        2 * k
    );
    (0..k)
        .flat_map(|i| {
            let assoc = Association::new(
                "supervise",
                [
                    (
                        "agent",
                        EntityRef::new("employee", dme_value::Atom::str(employee_name(2 * i))),
                    ),
                    (
                        "object",
                        EntityRef::new("employee", dme_value::Atom::str(employee_name(2 * i + 1))),
                    ),
                ],
            );
            [
                GraphOp::InsertAssociation(assoc.clone()),
                GraphOp::DeleteAssociation(assoc),
            ]
        })
        .collect()
}

/// The relational `insert-statements`/`delete-statements` mirror of
/// [`supervision_toggle_ops`] (Minimal completion: machine column null).
pub fn supervision_toggle_rel_ops(cfg: ShopConfig, n: usize) -> Vec<RelOp> {
    supervision_toggle_ops(cfg, n)
        .into_iter()
        .filter_map(|op| {
            let (assoc, insert) = match op {
                GraphOp::InsertAssociation(a) => (a, true),
                GraphOp::DeleteAssociation(a) => (a, false),
                _ => return None,
            };
            let t = tuple![
                assoc.role("agent").expect("has agent").key.clone(),
                assoc.role("object").expect("has object").key.clone(),
                Value::Null
            ];
            Some(if insert {
                RelOp::insert("Jobs", [t])
            } else {
                RelOp::delete("Jobs", [t])
            })
        })
        .collect()
}

/// A scaled §1.2 **subset** external schema over the same universe:
/// employees and supervisions only — machines and operate associations
/// are invisible to sessions using this view.
pub fn personnel_schema(cfg: ShopConfig) -> RelationalSchema {
    RelationalSchema::new(
        universe(cfg),
        [
            RelationSchema::new(
                "Employees",
                [Participant::new(
                    "employee",
                    [Pair::Existence],
                    [
                        CharacteristicCol::required("name", "names"),
                        CharacteristicCol::required("age", "years"),
                    ],
                )],
            ),
            RelationSchema::new(
                "Supervisions",
                [
                    Participant::new(
                        "employee",
                        [Pair::case("supervise", "agent")],
                        [CharacteristicCol::required("name", "names")],
                    ),
                    Participant::new(
                        "employee",
                        [Pair::case("supervise", "object")],
                        [CharacteristicCol::required("name", "names")],
                    ),
                ],
            ),
        ],
        [
            Constraint::Unique {
                relation: "Employees".into(),
                columns: vec![0],
            },
            Constraint::Subset {
                from: ColsRef::new("Supervisions", [0]),
                to: ColsRef::new("Employees", [0]),
            },
            Constraint::Subset {
                from: ColsRef::new("Supervisions", [1]),
                to: ColsRef::new("Employees", [0]),
            },
        ],
    )
    .expect("workload personnel schema is well-formed")
}

/// One concurrent session's scripted operation stream: the model the
/// session speaks and the operations it will submit, in order.
#[derive(Clone, Debug)]
pub enum SessionStream {
    /// A session speaking the conceptual graph model directly.
    Graph {
        /// The operations to submit.
        ops: Vec<GraphOp>,
    },
    /// A session speaking a relational external schema.
    Relational {
        /// The external view the session is attached to
        /// (`"shop"` = [`relational_schema`], `"personnel"` =
        /// [`personnel_schema`]).
        view: String,
        /// The operations to submit.
        ops: Vec<RelOp>,
    },
}

impl SessionStream {
    /// Number of scripted operations.
    pub fn len(&self) -> usize {
        match self {
            SessionStream::Graph { ops } => ops.len(),
            SessionStream::Relational { ops, .. } => ops.len(),
        }
    }

    /// Whether the script is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Deterministic multi-session operation streams for the concurrent
/// session service: `sessions` scripts of `ops_each` operations each,
/// cycling through the three session kinds — graph (conceptual
/// supervision toggles), relational over the full `"shop"` view (Jobs
/// insert/delete mirrors) and relational over the `"personnel"` §1.2
/// subset view (Supervisions insert/delete).
///
/// Every operation is well-formed against the *initial* state family;
/// under concurrent interleaving some will fail at apply time (the
/// association already present / already gone), which is exactly the
/// abort-and-leave-no-trace path the service must handle.
pub fn session_streams(cfg: ShopConfig, sessions: usize, ops_each: usize) -> Vec<SessionStream> {
    let p = plan(cfg);
    (0..sessions)
        .map(|s| {
            let mut rng = StdRng::seed_from_u64(
                cfg.seed
                    .wrapping_add(1000)
                    .wrapping_add((s as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            );
            let mut pairs = Vec::with_capacity(ops_each);
            while pairs.len() < ops_each {
                if cfg.employees < 2 {
                    break;
                }
                let sup = rng.gen_range(0..cfg.employees);
                let sub = rng.gen_range(0..cfg.employees);
                if sup == sub {
                    continue;
                }
                let insert = rng.gen_range(0..2) == 0;
                pairs.push((sup, sub, insert));
            }
            let pair_names =
                |sup: usize, sub: usize| (p.employees[sup].0.clone(), p.employees[sub].0.clone());
            match s % 3 {
                0 => SessionStream::Graph {
                    ops: pairs
                        .into_iter()
                        .map(|(sup, sub, insert)| {
                            let (a, o) = pair_names(sup, sub);
                            let assoc = Association::new(
                                "supervise",
                                [
                                    ("agent", EntityRef::new("employee", dme_value::Atom::str(a))),
                                    (
                                        "object",
                                        EntityRef::new("employee", dme_value::Atom::str(o)),
                                    ),
                                ],
                            );
                            if insert {
                                GraphOp::InsertAssociation(assoc)
                            } else {
                                GraphOp::DeleteAssociation(assoc)
                            }
                        })
                        .collect(),
                },
                1 => SessionStream::Relational {
                    view: "shop".into(),
                    ops: pairs
                        .into_iter()
                        .map(|(sup, sub, insert)| {
                            let (a, o) = pair_names(sup, sub);
                            let t = tuple![a.as_str(), o.as_str(), Value::Null];
                            if insert {
                                RelOp::insert("Jobs", [t])
                            } else {
                                RelOp::delete("Jobs", [t])
                            }
                        })
                        .collect(),
                },
                _ => SessionStream::Relational {
                    view: "personnel".into(),
                    ops: pairs
                        .into_iter()
                        .map(|(sup, sub, insert)| {
                            let (a, o) = pair_names(sup, sub);
                            let t = tuple![a.as_str(), o.as_str()];
                            if insert {
                                RelOp::insert("Supervisions", [t])
                            } else {
                                RelOp::delete("Supervisions", [t])
                            }
                        })
                        .collect(),
                },
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dme_logic::state_equivalent;
    use dme_relation::constraints::check_all;

    #[test]
    fn generated_states_are_valid() {
        let cfg = ShopConfig::small();
        let g = graph_state(cfg);
        g.validate().unwrap();
        assert_eq!(g.sizes().0, cfg.employees + cfg.machines);

        let r = relational_state(cfg);
        r.well_formed().unwrap();
        assert!(r.is_normalized());
        check_all(r.schema(), &r).unwrap();
    }

    #[test]
    fn generated_pair_is_state_equivalent() {
        let cfg = ShopConfig::small();
        let report = state_equivalent(&graph_state(cfg), &relational_state(cfg));
        assert!(report.is_equivalent(), "{report}");
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = ShopConfig::small();
        assert_eq!(graph_state(cfg), graph_state(cfg));
        assert_eq!(relational_state(cfg), relational_state(cfg));
        let other = ShopConfig {
            seed: 7,
            ..ShopConfig::small()
        };
        assert_ne!(graph_state(cfg), graph_state(other));
    }

    #[test]
    fn toggle_ops_apply_cleanly() {
        let cfg = ShopConfig::small();
        let mut g = graph_state(cfg);
        for op in supervision_toggle_ops(cfg, 50) {
            g = op.apply(&g).expect("toggles are valid by construction");
        }
        g.validate().unwrap();
    }

    #[test]
    fn relational_toggles_mirror_graph_toggles() {
        let cfg = ShopConfig::small();
        let mut g = graph_state(cfg);
        let mut r = relational_state(cfg);
        let gops = supervision_toggle_ops(cfg, 30);
        let rops = supervision_toggle_rel_ops(cfg, 30);
        assert_eq!(gops.len(), rops.len());
        for (gop, rop) in gops.iter().zip(&rops) {
            g = gop.apply(&g).unwrap();
            r = rop.apply(&r).unwrap();
            assert!(state_equivalent(&g, &r).is_equivalent());
        }
    }

    #[test]
    fn personnel_schema_is_a_subset_view() {
        let cfg = ShopConfig::small();
        let schema = personnel_schema(cfg);
        assert_eq!(schema.len(), 2);
        // The subset view sees the scaled graph state's employees and
        // supervisions only; within its vocabulary it is equivalent.
        let g = graph_state(cfg);
        use dme_logic::ToFacts;
        let vocab = schema.vocabulary();
        let state = dme_core::translate::materialize_relational_state(
            &Arc::new(schema),
            &vocab.filter(&g.to_facts()),
        )
        .unwrap();
        assert!(state_equivalent(&state, &vocab.filter(&g.to_facts())).is_equivalent());
        assert_eq!(
            state.relation("Supervisions").map(|r| r.len()),
            Some(cfg.supervisions)
        );
    }

    #[test]
    fn session_streams_are_deterministic_and_cover_all_kinds() {
        let cfg = ShopConfig::small();
        let streams = session_streams(cfg, 6, 8);
        assert_eq!(streams.len(), 6);
        assert!(streams.iter().all(|s| s.len() == 8 && !s.is_empty()));
        let mut graph = 0;
        let mut shop = 0;
        let mut personnel = 0;
        for s in &streams {
            match s {
                SessionStream::Graph { .. } => graph += 1,
                SessionStream::Relational { view, .. } if view == "shop" => shop += 1,
                SessionStream::Relational { .. } => personnel += 1,
            }
        }
        assert_eq!((graph, shop, personnel), (2, 2, 2));
        // Deterministic: same config produces the same scripts.
        let again = session_streams(cfg, 6, 8);
        for (a, b) in streams.iter().zip(&again) {
            match (a, b) {
                (SessionStream::Graph { ops: x }, SessionStream::Graph { ops: y }) => {
                    assert_eq!(x, y)
                }
                (
                    SessionStream::Relational { view: v, ops: x },
                    SessionStream::Relational { view: w, ops: y },
                ) => {
                    assert_eq!(v, w);
                    assert_eq!(x, y);
                }
                _ => panic!("stream kinds diverged between runs"),
            }
        }
        // Distinct sessions get distinct scripts.
        match (&streams[0], &streams[3]) {
            (SessionStream::Graph { ops: x }, SessionStream::Graph { ops: y }) => {
                assert_ne!(x, y)
            }
            _ => panic!("sessions 0 and 3 should both be graph sessions"),
        }
    }

    #[test]
    fn closure_ops_span_the_powerset() {
        let cfg = ShopConfig {
            employees: 8,
            machines: 0,
            supervisions: 0,
            seed: 42,
        };
        let k = 4;
        let ops = supervision_closure_ops(cfg, k);
        assert_eq!(ops.len(), 2 * k);
        let model = dme_core::model::graph_model("closure-knob", graph_state(cfg), ops);
        let closure = model.closure(1 << (k + 1)).expect("closure fits");
        assert_eq!(closure.arena.len(), 1 << k, "closure is the full powerset");
        // Every state has k successful successors (k·2^k probes, plus
        // the initial intern); all but the 2^k discoveries are hits.
        let stats = closure.arena.stats();
        assert_eq!(stats.hits + stats.misses, (k << k) as u64 + 1);
        assert_eq!(stats.misses, 1u64 << k);
    }

    #[test]
    fn scaling_works() {
        let cfg = ShopConfig::scaled(100);
        let g = graph_state(cfg);
        g.validate().unwrap();
        assert_eq!(g.sizes().0, 100 + 66);
    }
}
