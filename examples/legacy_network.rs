//! The syntactic baselines and the restricted mappings of §3.1.
//!
//! A DBTG network database presented relationally under the
//! Zimmerman/Fleck record-per-tuple mapping, with Kay's update
//! restriction — and demonstrations of exactly the limitations the paper
//! cites as motivation for the semantic treatment.
//!
//! Run with: `cargo run --example legacy_network`

use borkin_equiv::syntactic::codd::{CoddOp, SynRelation};
use borkin_equiv::syntactic::dbtg::DbtgOp;
use borkin_equiv::syntactic::fixtures;
use borkin_equiv::syntactic::mapping::{zimmerman_ops, zimmerman_state, KayError, KayMapper};
use borkin_equiv::value::{tuple, Atom};

fn main() {
    // ── The network database ─────────────────────────────────────────────
    let dbtg = fixtures::dbtg_machine_shop_state();
    println!("DBTG machine shop:\n{dbtg:?}\n");

    // ── The Zimmerman image: tuple per record, binary tuple per link ────
    let image = zimmerman_state(&dbtg);
    println!("Zimmerman relational image:");
    for rel in image.schema().relations() {
        println!(
            "  {} ({} tuples)",
            rel.name(),
            image.tuples(rel.name().as_str()).count()
        );
    }
    println!();

    // ── Update translation under the mapping ────────────────────────────
    let gw = dbtg
        .find("EMP", "name", &Atom::str("G.Wayshum"))
        .next()
        .expect("fixture employee");
    let tm = dbtg
        .find("EMP", "name", &Atom::str("T.Manhart"))
        .next()
        .expect("fixture employee");
    let connect = DbtgOp::Connect {
        set_type: "SUPERVISES".into(),
        owner: gw,
        member: tm,
    };
    println!("DBTG operation: {connect}");
    for op in zimmerman_ops(&connect, &dbtg).expect("translates") {
        println!("  maps to: {op}");
    }
    println!();

    // ── The expressiveness limitation the paper points out ─────────────
    // "These restrictions … severely limit the types of information which
    // a user might desire to appear together in a single relation."
    let mapper = KayMapper::new(dbtg.clone());
    let img = mapper.codd_state();
    let emp = SynRelation::base(&img, "EMP").expect("record relation");
    let operates = SynRelation::base(&img, "OPERATES").expect("link relation");
    let machine = SynRelation::base(&img, "MACHINE").expect("record relation");
    let desired = emp
        .rename("dbkey", "owner")
        .expect("attribute exists")
        .natural_join(&operates)
        .rename("member", "dbkey")
        .expect("attribute exists")
        .natural_join(&machine);
    println!("The 'user-desired' employee⋈machine relation exists only as a view:");
    for t in desired.tuples() {
        println!("  {t}");
    }
    println!();

    // ── Kay's restriction: no updates through views ─────────────────────
    let mut mapper = mapper;
    let view_update = CoddOp::insert("EMPMACHINES", [tuple![1, 2]]);
    match mapper.update(&view_update) {
        Err(KayError::NotUpdatable(rel)) => {
            println!("Update through the view `{rel}` rejected (Kay's restriction).")
        }
        other => unreachable!("expected rejection, got {other:?}"),
    }

    // Base-relation updates do work:
    let link = CoddOp::insert("SUPERVISES", [tuple![gw.0 as i64, tm.0 as i64]]);
    mapper.update(&link).expect("base-relation update");
    println!("Base-relation update applied: G.Wayshum now supervises T.Manhart.");
    assert_eq!(mapper.dbtg().owner_of("SUPERVISES", tm), Some(gw));

    println!("\nContrast with the semantic models (see `multi_model_shop`),");
    println!("where *every* equivalent view is updatable through the verified");
    println!("operation translators.");
}
