//! The parallel, memoized engine end to end: verdicts, witnesses,
//! budgets and the compilation cache, on the witness models.
//!
//! ```console
//! $ cargo run --release -p borkin-equiv --example parallel_audit
//! ```

use std::sync::Arc;
use std::time::Instant;

use borkin_equiv::equivalence::enumerate::{enumerate_graph_ops, enumerate_rel_ops};
use borkin_equiv::equivalence::equiv::EquivKind;
use borkin_equiv::equivalence::model::{graph_model, relational_model, FiniteModel};
use borkin_equiv::equivalence::parallel::{
    parallel_application_models_equivalent, parallel_data_model_equivalent_with, CheckBudget,
    ParallelConfig, Verdict,
};
use borkin_equiv::equivalence::witness;
use borkin_equiv::equivalence::FactInterner;
use borkin_equiv::graph::{GraphOp, GraphState};
use borkin_equiv::relation::{RelOp, RelationState};

const STATE_CAP: usize = 4_000;

fn rel_micro(name: &str, max_statements: usize) -> FiniteModel<RelationState, RelOp> {
    let schema = witness::micro_relational_schema();
    let ops = enumerate_rel_ops(&schema, max_statements);
    relational_model(name, RelationState::empty(Arc::new(schema)), ops)
}

fn graph_micro(name: &str) -> FiniteModel<GraphState, GraphOp> {
    let schema = Arc::new(witness::micro_graph_schema());
    let ops = enumerate_graph_ops(&schema);
    graph_model(name, GraphState::empty(schema), ops)
}

fn main() {
    let config = ParallelConfig::with_threads(0); // all cores

    // 1. A passing check: the micro relational and graph models are
    //    state dependent equivalent (Definition 5).
    let m = rel_micro("micro-rel", 2);
    let n = graph_micro("micro-graph");
    let started = Instant::now();
    let verdict = parallel_application_models_equivalent(
        &m,
        &n,
        EquivKind::StateDependent { max_depth: 3 },
        STATE_CAP,
        &config,
    )
    .expect("checkable");
    println!("[1] Def. 5, rel vs graph:   {verdict}  ({:?})", started.elapsed());
    assert!(verdict.is_equivalent());

    // 2. A counterexample with witnesses: the same pair is NOT composed
    //    equivalent (Definition 3) — the idempotent relational insert
    //    has no uniform composition of strict graph operations.
    let verdict = parallel_application_models_equivalent(
        &m,
        &n,
        EquivKind::Composed { max_depth: 3 },
        STATE_CAP,
        &config,
    )
    .expect("checkable");
    println!("[2] Def. 3, rel vs graph:   {verdict}");
    assert!(!verdict.is_equivalent());

    // 3. Early exit: only the first witness, deterministically.
    let verdict = parallel_application_models_equivalent(
        &m,
        &n,
        EquivKind::Composed { max_depth: 3 },
        STATE_CAP,
        &ParallelConfig::with_threads(0).early_exit(),
    )
    .expect("checkable");
    println!("[3] …with early exit:       {verdict}");
    assert_eq!(verdict.witnesses().len(), 1);

    // 4. A budgeted run that cannot finish reports exhaustion instead
    //    of guessing.
    let verdict = parallel_application_models_equivalent(
        &m,
        &n,
        EquivKind::StateDependent { max_depth: 3 },
        STATE_CAP,
        &ParallelConfig::with_threads(0).budget(CheckBudget::nodes(1_000)),
    )
    .expect("checkable");
    println!("[4] …on a 1k-node budget:   {verdict}");
    assert!(matches!(verdict, Verdict::BudgetExhausted { .. }));

    // 5. A Definition 6 grid with shared interners: every state
    //    compiles once for the whole grid.
    let ms = vec![rel_micro("micro-rel", 2), rel_micro("micro-rel-b", 2)];
    let ns = vec![graph_micro("micro-graph")];
    let left = FactInterner::new();
    let right = FactInterner::new();
    let verdict = parallel_data_model_equivalent_with(
        &ms,
        &ns,
        EquivKind::StateDependent { max_depth: 3 },
        STATE_CAP,
        &config,
        &left,
        &right,
    )
    .expect("checkable");
    println!("[5] Def. 6, 2x1 grid:       {verdict}");
    let stats = left.stats();
    println!(
        "    left interner: {} unique states, {} hits / {} misses ({:.0}% hit rate)",
        stats.unique,
        stats.hits,
        stats.misses,
        stats.hit_rate() * 100.0
    );
    assert!(stats.hits > 0, "the grid must reuse compiled states");
}
