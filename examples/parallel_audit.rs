//! The parallel, memoized engine end to end — through the unified
//! [`Checker`] facade: verdicts, witnesses, budgets, the compilation
//! cache, and the observability layer (JSON-lines transcript plus a
//! phase report).
//!
//! ```console
//! $ cargo run --release -p borkin-equiv --example parallel_audit
//! ```

use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

use borkin_equiv::equivalence::enumerate::{enumerate_graph_ops, enumerate_rel_ops};
use borkin_equiv::equivalence::equiv::EquivKind;
use borkin_equiv::equivalence::model::{graph_model, relational_model, FiniteModel};
use borkin_equiv::equivalence::parallel::{CheckBudget, ParallelConfig, Verdict};
use borkin_equiv::equivalence::witness;
use borkin_equiv::equivalence::{Checker, FactInterner, Tier};
use borkin_equiv::graph::{GraphOp, GraphState};
use borkin_equiv::obs::{JsonLinesSink, Observer, Report, RingSink};
use borkin_equiv::relation::{RelOp, RelationState};

const STATE_CAP: usize = 4_000;

fn rel_micro(name: &str, max_statements: usize) -> FiniteModel<RelationState, RelOp> {
    let schema = witness::micro_relational_schema();
    let ops = enumerate_rel_ops(&schema, max_statements);
    relational_model(name, RelationState::empty(Arc::new(schema)), ops)
}

fn graph_micro(name: &str) -> FiniteModel<GraphState, GraphOp> {
    let schema = Arc::new(witness::micro_graph_schema());
    let ops = enumerate_graph_ops(&schema);
    graph_model(name, GraphState::empty(schema), ops)
}

fn main() {
    let config = ParallelConfig::with_threads(0); // all cores

    // 1. A passing check: the micro relational and graph models are
    //    state dependent equivalent (Definition 5). The ring sink
    //    records the run; its phase report prints at the end.
    let m = rel_micro("micro-rel", 2);
    let n = graph_micro("micro-graph");
    let ring = RingSink::with_capacity(4096);
    let obs = Observer::new(ring.clone());
    let started = Instant::now();
    let verdict = Checker::new(&m, &n)
        .tier(Tier::StateDependent { max_depth: 3 })
        .state_cap(STATE_CAP)
        .parallel(config)
        .observer(obs.clone())
        .run()
        .expect("checkable");
    println!(
        "[1] Def. 5, rel vs graph:   {verdict}  ({:?})",
        started.elapsed()
    );
    assert!(verdict.is_equivalent());

    // 2. A counterexample with witnesses: the same pair is NOT composed
    //    equivalent (Definition 3) — the idempotent relational insert
    //    has no uniform composition of strict graph operations.
    let verdict = Checker::new(&m, &n)
        .tier(Tier::Composed { max_depth: 3 })
        .state_cap(STATE_CAP)
        .parallel(config)
        .run()
        .expect("checkable");
    println!("[2] Def. 3, rel vs graph:   {verdict}");
    assert!(!verdict.is_equivalent());

    // 3. Early exit: only the first witness, deterministically.
    let verdict = Checker::new(&m, &n)
        .tier(Tier::Composed { max_depth: 3 })
        .state_cap(STATE_CAP)
        .parallel(ParallelConfig::with_threads(0).early_exit())
        .run()
        .expect("checkable");
    println!("[3] …with early exit:       {verdict}");
    assert_eq!(verdict.witnesses().len(), 1);

    // 4. A budgeted run that cannot finish reports exhaustion instead
    //    of guessing.
    let verdict = Checker::new(&m, &n)
        .tier(Tier::StateDependent { max_depth: 3 })
        .state_cap(STATE_CAP)
        .parallel(config)
        .budget(CheckBudget::nodes(1_000))
        .run()
        .expect("checkable");
    println!("[4] …on a 1k-node budget:   {verdict}");
    assert!(matches!(verdict, Verdict::BudgetExhausted { .. }));

    // 5. A Definition 6 grid with shared interners: every state
    //    compiles once for the whole grid. The JSON-lines sink writes a
    //    machine-readable transcript of the whole check.
    let ms = vec![rel_micro("micro-rel", 2), rel_micro("micro-rel-b", 2)];
    let ns = vec![graph_micro("micro-graph")];
    let left = FactInterner::new();
    let right = FactInterner::new();
    let transcript = Path::new(env!("CARGO_MANIFEST_DIR")).join("target/parallel_audit.jsonl");
    let sink = JsonLinesSink::create(&transcript).expect("transcript file");
    let verdict = Checker::data_models(&ms, &ns)
        .tier(Tier::DataModel {
            kind: EquivKind::StateDependent { max_depth: 3 },
        })
        .state_cap(STATE_CAP)
        .parallel(config)
        .interners(&left, &right)
        .sink(sink)
        .run()
        .expect("checkable");
    println!("[5] Def. 6, 2x1 grid:       {verdict}");
    let stats = left.stats();
    println!(
        "    left interner: {} unique states, {} hits / {} misses ({:.0}% hit rate)",
        stats.unique,
        stats.hits,
        stats.misses,
        stats.hit_rate() * 100.0
    );
    assert!(stats.hits > 0, "the grid must reuse compiled states");
    println!("    transcript: {}", transcript.display());

    // The phase report of check [1], from the ring sink.
    let report = Report::from_events(&ring.events()).with_totals(obs.counters());
    println!("\n== check [1] phase report ==\n{report}");
}
