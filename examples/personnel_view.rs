//! A subset external schema in action (§1.2's extension).
//!
//! The personnel department sees only employees and supervisions; the
//! machine floor is invisible. Updates through the view translate up to
//! the conceptual graph model — including a deletion whose conceptual
//! cascade (removing the deleted employee's machine) happens entirely
//! outside the view's vocabulary.
//!
//! Run with: `cargo run --example personnel_view`

use borkin_equiv::ansi::MultiModelDatabase;
use borkin_equiv::equivalence::translate::CompletionMode;
use borkin_equiv::graph::fixtures as gfix;
use borkin_equiv::relation::fixtures as rfix;
use borkin_equiv::relation::RelOp;
use borkin_equiv::value::tuple;

fn main() {
    let db = MultiModelDatabase::new(gfix::figure4_state()).expect("database initializes");
    db.add_view(
        "shopfloor",
        rfix::machine_shop_schema(),
        CompletionMode::StateCompleted,
    )
    .expect("full view");
    db.add_view(
        "personnel",
        rfix::personnel_schema(),
        CompletionMode::Minimal,
    )
    .expect("subset view");

    println!(
        "Conceptual state (Figure 4):\n{}",
        borkin_equiv::graph::display::render_state(&db.conceptual())
    );
    println!(
        "Personnel view (subset — no machines):\n{}",
        borkin_equiv::relation::display::render_state(&db.view_state("personnel").unwrap())
    );

    // The clerk removes T.Manhart. The view knows nothing about machine
    // NZ745 — but the conceptual schema says every machine needs an
    // operator, so the semantic unit cascade removes it too.
    let op = RelOp::delete("Employees", [tuple!["T.Manhart", 32]]);
    println!("Personnel update: {op}\n");
    db.update_view("personnel", &op).expect("valid update");
    db.verify_consistency().expect("all levels equivalent");

    println!("Conceptual state after (machine NZ745 cascaded away):");
    println!(
        "{}",
        borkin_equiv::graph::display::render_state(&db.conceptual())
    );
    println!(
        "Shop-floor view after:\n{}",
        borkin_equiv::relation::display::render_state(&db.view_state("shopfloor").unwrap())
    );
    println!(
        "Personnel view after:\n{}",
        borkin_equiv::relation::display::render_state(&db.view_state("personnel").unwrap())
    );

    assert!(db
        .conceptual()
        .entity(&borkin_equiv::graph::EntityRef::new(
            "machine",
            borkin_equiv::value::Atom::str("NZ745"),
        ))
        .is_none());
    println!("\nEvery level consistent; the cascade stayed invisible to the");
    println!("personnel view but reached the shop floor and storage. ✓");
}
