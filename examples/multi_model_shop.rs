//! The paper's conclusion, running: "the ability to support equivalent
//! relational and graph application models accessing a shared database
//! would allow the best of both worlds — a simple relational view for
//! retrieval and a graph model for updating."
//!
//! An ANSI/SPARC three-schema database with a graph conceptual model,
//! two different relational external views (the Figure 3 three-relation
//! schema and the Figure 9 single-relation schema), and a storage-backed
//! internal level. Updates enter at both the conceptual and an external
//! level; every level stays equivalent.
//!
//! Run with: `cargo run --example multi_model_shop`

use borkin_equiv::ansi::MultiModelDatabase;
use borkin_equiv::equivalence::translate::CompletionMode;
use borkin_equiv::graph::fixtures as gfix;
use borkin_equiv::graph::{Association, EntityRef, GraphOp};
use borkin_equiv::relation::fixtures as rfix;
use borkin_equiv::relation::RelOp;
use borkin_equiv::value::{tuple, Atom, Value};

fn emp(name: &str) -> EntityRef {
    EntityRef::new("employee", Atom::str(name))
}

fn main() {
    // Conceptual level: the Figure 4 graph state.
    let db = MultiModelDatabase::new(gfix::figure4_state()).expect("database initializes");

    // Two external relational views of the same conceptual model —
    // Figure 9's point that several relational application models can be
    // equivalent to one graph model.
    db.add_view(
        "three-relations",
        rfix::machine_shop_schema(),
        CompletionMode::StateCompleted,
    )
    .expect("Figure 3 view materializes");
    db.add_view(
        "single-relation",
        rfix::figure9_schema(),
        CompletionMode::Minimal,
    )
    .expect("Figure 9 view materializes");

    println!("Views registered: {:?}\n", db.view_names());
    println!(
        "three-relations view:\n{}",
        borkin_equiv::relation::display::render_state(&db.view_state("three-relations").unwrap())
    );
    println!(
        "single-relation view (Figure 9):\n{}",
        borkin_equiv::relation::display::render_state(&db.view_state("single-relation").unwrap())
    );

    // ── Update through the graph model ───────────────────────────────────
    let op = GraphOp::InsertAssociation(Association::new(
        "supervise",
        [("agent", emp("G.Wayshum")), ("object", emp("T.Manhart"))],
    ));
    println!("Conceptual update: {op}");
    db.update_conceptual(&op).expect("valid update");
    db.verify_consistency().expect("all levels equivalent");
    println!("→ propagated to both views and to storage; audit passed.\n");
    println!(
        "three-relations view now (Figure 7):\n{}",
        borkin_equiv::relation::display::render_state(&db.view_state("three-relations").unwrap())
    );

    // ── Update through a relational view ─────────────────────────────────
    let rel_op = RelOp::delete("Jobs", [tuple!["G.Wayshum", "T.Manhart", Value::Null]]);
    println!("External update on `three-relations`: {rel_op}");
    db.update_view("three-relations", &rel_op)
        .expect("valid update");
    db.verify_consistency().expect("all levels equivalent");
    assert_eq!(db.conceptual(), gfix::figure4_state());
    println!("→ the supervision is gone at every level; back to Figure 4.\n");

    // ── Invalid updates reach the error state and change nothing ────────
    let bad = RelOp::insert("Operate", [tuple!["G.Wayshum", "JCL181", "press"]]);
    println!("Invalid external update (second operator for JCL181): {bad}");
    match db.update_view("three-relations", &bad) {
        Err(e) => println!("→ rejected as the paper's error state: {e}"),
        Ok(()) => unreachable!("functionality constraint must reject this"),
    }
    db.verify_consistency().expect("nothing changed");
    println!("\nFinal audit passed: conceptual, internal and both external");
    println!("levels represent the same application state. ✓");
}
