//! Quickstart: the paper's machine shop in both data models.
//!
//! Builds Figure 3 (semantic relation state) and Figure 4 (semantic graph
//! state), shows they are state equivalent, then replays the paper's
//! §3.3.1 example: inserting the supervision of T.Manhart by G.Wayshum on
//! the graph side and translating it to the relational side — landing on
//! Figures 6 and 7, with the old Jobs tuple auto-deleted by subsumption.
//!
//! Run with: `cargo run --example quickstart`

use borkin_equiv::equivalence::translate::{graph_op_to_relational, CompletionMode};
use borkin_equiv::graph::fixtures as gfix;
use borkin_equiv::graph::{Association, EntityRef, GraphOp};
use borkin_equiv::logic::{state_equivalent, ToFacts};
use borkin_equiv::relation::fixtures as rfix;
use borkin_equiv::value::Atom;

fn main() {
    // ── The two representations of the same machine shop ────────────────
    let relational = rfix::figure3_state(); // Figure 3
    let graph = gfix::figure4_state(); // Figure 4

    println!("Figure 3 — semantic relation state:");
    println!(
        "{}",
        borkin_equiv::relation::display::render_state(&relational)
    );
    println!("Figure 4 — semantic graph state:");
    println!("{}", borkin_equiv::graph::display::render_state(&graph));

    // ── §3.2.3: state equivalence via logical interpretation ────────────
    let report = state_equivalent(&graph, &relational);
    assert!(report.is_equivalent());
    println!(
        "Both states assert the same {} logical statements — state equivalent.\n",
        graph.to_facts().len()
    );
    for fact in graph.to_facts().iter() {
        println!("  {fact}");
    }

    // ── §3.3.1: the Figure 6 → Figure 7 insertion ────────────────────────
    let supervision = Association::new(
        "supervise",
        [
            ("agent", EntityRef::new("employee", Atom::str("G.Wayshum"))),
            ("object", EntityRef::new("employee", Atom::str("T.Manhart"))),
        ],
    );
    let graph_op = GraphOp::InsertAssociation(supervision);
    println!("\nGraph operation: {graph_op}");

    let rel_ops = graph_op_to_relational(
        &graph_op,
        &graph,
        &relational,
        CompletionMode::StateCompleted,
    )
    .expect("the supervision insertion translates");
    for op in &rel_ops {
        println!("Equivalent relational operation: {op}");
    }

    let graph_after = graph_op.apply(&graph).expect("valid on Figure 4");
    let rel_after = rel_ops
        .iter()
        .try_fold(relational, |s, op| op.apply(&s))
        .expect("valid on Figure 3");

    assert_eq!(graph_after, gfix::figure6_state());
    assert_eq!(rel_after, rfix::figure7_state());
    println!("\nFigure 7 — Jobs after the insertion (note the subsumed");
    println!("(----, T.Manhart, NZ745) row is gone):");
    println!(
        "{}",
        borkin_equiv::relation::display::render_relation(&rel_after, "Jobs").expect("Jobs exists")
    );

    let report = state_equivalent(&graph_after, &rel_after);
    assert!(report.is_equivalent());
    println!("\nStill equivalent after the update. ✓");
}
