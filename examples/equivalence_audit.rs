//! The equivalence hierarchy, decided mechanically.
//!
//! Runs the Definition 2 / 3 / 5 checkers on the witness application
//! models and the Definition 6 data-model check with its partial-
//! equivalence outcome, printing each report — the executable version of
//! the paper's §3.3 discussion, including the strictness chain
//!
//!   isomorphic ⇒ composed operation ⇒ state dependent
//!
//! with separating witnesses at each level.
//!
//! Run with: `cargo run --release --example equivalence_audit`

use std::sync::Arc;

use borkin_equiv::equivalence::enumerate::{enumerate_graph_ops, enumerate_rel_ops};
use borkin_equiv::equivalence::equiv::{
    composed_equivalent, data_model_equivalent, isomorphic_equivalent, state_dependent_equivalent,
    EquivKind,
};
use borkin_equiv::equivalence::model::{graph_model, relational_model};
use borkin_equiv::equivalence::witness;
use borkin_equiv::graph::GraphState;
use borkin_equiv::relation::RelationState;

const CAP: usize = 10_000;

fn main() {
    let rel = |name: &str, schema, max| {
        let ops = enumerate_rel_ops(&schema, max);
        relational_model(name, RelationState::empty(Arc::new(schema)), ops)
    };
    let graph = |name: &str, schema: borkin_equiv::graph::GraphSchema| {
        let schema = Arc::new(schema);
        let ops = enumerate_graph_ops(&schema);
        graph_model(name, GraphState::empty(schema), ops)
    };

    println!("== Definition 2: isomorphic application model equivalence ==");
    let m = rel("micro", witness::micro_relational_schema(), 2);
    let n = rel(
        "micro-renamed",
        witness::micro_relational_schema_renamed(),
        2,
    );
    let report = isomorphic_equivalent(&m, &n, CAP).expect("check runs");
    println!("micro vs renamed micro: {report}\n");

    println!("== Definition 3: composed operation equivalence (not isomorphic) ==");
    let singles = rel("micro-singles", witness::micro_relational_schema(), 1);
    let pairs = rel("micro-pairs", witness::micro_relational_schema(), 2);
    let iso = isomorphic_equivalent(&singles, &pairs, CAP).expect("check runs");
    println!("singles vs pairs, isomorphic? {}", iso.equivalent);
    if let Some(witness_op) = iso.unmatched_n.first() {
        println!("  e.g. no single operation is equivalent to: {witness_op}");
    }
    let composed = composed_equivalent(&singles, &pairs, CAP, 2).expect("check runs");
    println!("singles vs pairs, composed? {}\n", composed.equivalent);

    println!("== Definition 5: state dependent equivalence (not composed) ==");
    let m = rel("micro-rel", witness::micro_relational_schema(), 2);
    let g = graph("micro-graph", witness::micro_graph_schema());
    let composed = composed_equivalent(&m, &g, CAP, 3).expect("check runs");
    println!("relational vs graph, composed? {}", composed.equivalent);
    if let Some(witness_op) = composed.unmatched_m.first() {
        println!("  witness (idempotent insert vs strict insert): {witness_op}");
    }
    let state_dep = state_dependent_equivalent(&m, &g, CAP, 3).expect("check runs");
    println!(
        "relational vs graph, state dependent? {}\n",
        state_dep.equivalent
    );

    println!("== Definition 6: data model equivalence and partiality ==");
    let graphs: Vec<_> = witness::all_micro_graph_schemas()
        .into_iter()
        .enumerate()
        .filter(|(_, s)| s.participations().all(|(_, p)| !p.total))
        .map(|(i, s)| graph(&format!("graph-{i}"), s))
        .collect();
    let ms = vec![
        rel("micro-rel", witness::micro_relational_schema(), 2),
        rel(
            "micro-rel-supervisors-supervised",
            witness::micro_relational_schema_supervisors_supervised(),
            2,
        ),
    ];
    let kind = EquivKind::StateDependent { max_depth: 3 };
    let report = data_model_equivalent(&ms, &graphs, kind, CAP).expect("check runs");
    println!("{report}");
    for (name, matches) in &report.matches_m {
        println!("  {name}: {} graph counterpart(s)", matches.len());
    }
    println!();
    println!("The relational application model with the constraint \"every");
    println!("supervisor is also supervised\" has no graph counterpart:");
    println!("graph schemas express only totality and functionality per");
    println!("(predicate, role) — the paper's 'too many or too few");
    println!("constraints' (§3.3.2). The data models are partially equivalent.");
}
