//! The equivalence hierarchy, decided mechanically.
//!
//! Runs the Definition 2 / 3 / 5 checks on the witness application
//! models and the Definition 6 data-model check with its partial-
//! equivalence outcome through the unified [`Checker`] facade — the
//! executable version of the paper's §3.3 discussion, including the
//! strictness chain
//!
//!   isomorphic ⇒ composed operation ⇒ state dependent
//!
//! with separating witnesses at each level, plus the instrumentation
//! report of every checker phase.
//!
//! Run with: `cargo run --release --example equivalence_audit`

use std::sync::Arc;

use borkin_equiv::equivalence::enumerate::{enumerate_graph_ops, enumerate_rel_ops};
use borkin_equiv::equivalence::equiv::EquivKind;
use borkin_equiv::equivalence::model::{graph_model, relational_model};
use borkin_equiv::equivalence::parallel::Side;
use borkin_equiv::equivalence::witness;
use borkin_equiv::equivalence::{Checker, Tier};
use borkin_equiv::graph::GraphState;
use borkin_equiv::obs::{Observer, Report, RingSink};
use borkin_equiv::relation::RelationState;

const CAP: usize = 10_000;

fn main() {
    let rel = |name: &str, schema, max| {
        let ops = enumerate_rel_ops(&schema, max);
        relational_model(name, RelationState::empty(Arc::new(schema)), ops)
    };
    let graph = |name: &str, schema: borkin_equiv::graph::GraphSchema| {
        let schema = Arc::new(schema);
        let ops = enumerate_graph_ops(&schema);
        graph_model(name, GraphState::empty(schema), ops)
    };
    // One observer across the whole audit: the final report aggregates
    // every check below by phase.
    let ring = RingSink::with_capacity(8192);
    let obs = Observer::new(ring.clone());

    println!("== Definition 2: isomorphic application model equivalence ==");
    let m = rel("micro", witness::micro_relational_schema(), 2);
    let n = rel(
        "micro-renamed",
        witness::micro_relational_schema_renamed(),
        2,
    );
    let verdict = Checker::new(&m, &n)
        .state_cap(CAP)
        .observer(obs.clone())
        .run()
        .expect("check runs");
    println!("micro vs renamed micro: {verdict}\n");

    println!("== Definition 3: composed operation equivalence (not isomorphic) ==");
    let singles = rel("micro-singles", witness::micro_relational_schema(), 1);
    let pairs = rel("micro-pairs", witness::micro_relational_schema(), 2);
    let iso = Checker::new(&singles, &pairs)
        .state_cap(CAP)
        .observer(obs.clone())
        .run()
        .expect("check runs");
    println!("singles vs pairs, isomorphic? {}", iso.is_equivalent());
    if let Some(w) = iso.witnesses().iter().find(|w| w.side == Side::Right) {
        println!("  e.g. no single operation is equivalent to: {}", w.label);
    }
    let composed = Checker::new(&singles, &pairs)
        .tier(Tier::Composed { max_depth: 2 })
        .state_cap(CAP)
        .observer(obs.clone())
        .run()
        .expect("check runs");
    println!("singles vs pairs, composed? {}\n", composed.is_equivalent());

    println!("== Definition 5: state dependent equivalence (not composed) ==");
    let m = rel("micro-rel", witness::micro_relational_schema(), 2);
    let g = graph("micro-graph", witness::micro_graph_schema());
    let composed = Checker::new(&m, &g)
        .tier(Tier::Composed { max_depth: 3 })
        .state_cap(CAP)
        .observer(obs.clone())
        .run()
        .expect("check runs");
    println!(
        "relational vs graph, composed? {}",
        composed.is_equivalent()
    );
    if let Some(w) = composed.witnesses().iter().find(|w| w.side == Side::Left) {
        println!(
            "  witness (idempotent insert vs strict insert): {}",
            w.label
        );
    }
    let state_dep = Checker::new(&m, &g)
        .tier(Tier::StateDependent { max_depth: 3 })
        .state_cap(CAP)
        .observer(obs.clone())
        .run()
        .expect("check runs");
    println!(
        "relational vs graph, state dependent? {}\n",
        state_dep.is_equivalent()
    );

    println!("== Definition 6: data model equivalence and partiality ==");
    let graphs: Vec<_> = witness::all_micro_graph_schemas()
        .into_iter()
        .enumerate()
        .filter(|(_, s)| s.participations().all(|(_, p)| !p.total))
        .map(|(i, s)| graph(&format!("graph-{i}"), s))
        .collect();
    let ms = vec![
        rel("micro-rel", witness::micro_relational_schema(), 2),
        rel(
            "micro-rel-supervisors-supervised",
            witness::micro_relational_schema_supervisors_supervised(),
            2,
        ),
    ];
    let kind = EquivKind::StateDependent { max_depth: 3 };
    let verdict = Checker::data_models(&ms, &graphs)
        .tier(Tier::DataModel { kind })
        .state_cap(CAP)
        .observer(obs.clone())
        .run()
        .expect("check runs");
    println!("2x{} grid: {verdict}", graphs.len());
    println!();
    println!("The relational application model with the constraint \"every");
    println!("supervisor is also supervised\" has no graph counterpart:");
    println!("graph schemas express only totality and functionality per");
    println!("(predicate, role) — the paper's 'too many or too few");
    println!("constraints' (§3.3.2). The data models are partially equivalent.");

    let report = Report::from_events(&ring.events()).with_totals(obs.counters());
    println!("\n== instrumentation report (all checks) ==\n{report}");
}
