//! The machine shop behind the networked front door.
//!
//! Where `shop_service` drives `SessionService` in-process, this demo
//! speaks to it the way a remote client would: through `NetServer`,
//! over the length/LSN/CRC-framed duplex transport, using the typed
//! wire protocol (`Request`/`Response`) and its client-side surface
//! (`Client`, `RemoteSession`):
//!
//! 1. boots a 4-shard service and serves it over the in-process
//!    transport,
//! 2. runs graph-speaking and relational-speaking sessions concurrently
//!    from several clients, all multiplexed over shared connections,
//! 3. provokes admission control with a commit stampede through a
//!    deliberately shallow lane queue — typed `Overloaded` responses
//!    name the refusing shard and observed depth, and the clients
//!    retry with backoff until every transaction lands,
//! 4. reads an external view and the telemetry over the same wire.
//!
//! Run with: `cargo run --release --example shop_server`

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use borkin_equiv::equivalence::translate::CompletionMode;
use borkin_equiv::graph::{Association, EntityRef, GraphOp};
use borkin_equiv::obs::{Observer, RingSink};
use borkin_equiv::server::shard::shard_of;
use borkin_equiv::server::{
    CommitOutcome, LogDevice, MemDevice, NetServer, ServiceConfig, SessionKind, SessionService,
    ViewSpec,
};
use borkin_equiv::value::Atom;
use borkin_equiv::workload::{self, SessionStream, ShopConfig};

const SHARDS: usize = 4;

fn main() {
    let cfg = ShopConfig {
        employees: 6,
        machines: 3,
        supervisions: 4,
        seed: 2026,
    };
    let initial = workload::graph_state(cfg);
    let views = vec![
        ViewSpec {
            name: "shop".into(),
            schema: workload::relational_schema(cfg),
            mode: CompletionMode::Minimal,
        },
        ViewSpec {
            name: "personnel".into(),
            schema: workload::personnel_schema(cfg),
            mode: CompletionMode::Minimal,
        },
    ];

    let obs = Observer::new(RingSink::with_capacity(8192));
    let wals: Vec<Box<dyn LogDevice>> = (0..SHARDS)
        .map(|_| {
            // A visible sync cost plus a shallow queue make admission
            // control observable in step 3.
            Box::new(MemDevice::new().with_sync_delay(Duration::from_millis(2)))
                as Box<dyn LogDevice>
        })
        .collect();
    let service = SessionService::new_sharded(
        initial,
        views,
        ServiceConfig {
            shards: SHARDS,
            queue_depth: 2,
            obs: obs.clone(),
            ..ServiceConfig::default()
        },
        wals,
        Box::new(MemDevice::new()),
    )
    .expect("service boots");

    // ── Serve it: everything below goes over the wire ─────────────────
    let server = NetServer::serve(service.clone());

    // ── Concurrent sessions from several multiplexed clients ──────────
    println!("== remote sessions over {SHARDS} shards ==");
    let clients: Vec<_> = (0..3).map(|_| server.connect().expect("connect")).collect();
    let streams = workload::session_streams(cfg, 6, 4);
    // Open sequentially (admission control applies to every wire
    // request, opens included), then drive the streams concurrently.
    let opened: Vec<_> = streams
        .iter()
        .enumerate()
        .map(|(i, stream)| {
            let (kind, label) = match stream {
                SessionStream::Graph { .. } => (SessionKind::Graph, "graph".to_string()),
                SessionStream::Relational { view, .. } => (
                    SessionKind::Relational { view: view.clone() },
                    format!("relational/{view}"),
                ),
            };
            let sess = clients[i % clients.len()]
                .open_session(kind)
                .expect("session admits");
            (sess, label)
        })
        .collect();
    std::thread::scope(|scope| {
        for (stream, (sess, label)) in streams.iter().zip(&opened) {
            scope.spawn(move || {
                let (mut committed, mut rejected) = (0usize, 0usize);
                match stream {
                    SessionStream::Graph { ops } => {
                        for op in ops {
                            match sess.submit_graph(vec![op.clone()]) {
                                Ok(out) if out.info().is_some() => committed += 1,
                                _ => rejected += 1,
                            }
                        }
                    }
                    SessionStream::Relational { ops, .. } => {
                        for op in ops {
                            match sess.submit_relational(op.clone()) {
                                Ok(out) if out.info().is_some() => committed += 1,
                                _ => rejected += 1,
                            }
                        }
                    }
                }
                println!(
                    "  session {} ({label}): {committed} committed, {rejected} rejected",
                    sess.id()
                );
            });
        }
    });
    // Close after the concurrent section: a close racing other lanes'
    // submits would be shed like any other wire request.
    for (sess, _) in opened {
        sess.close().expect("closing equivalence holds");
    }

    // ── Admission control: a stampede through a shallow lane queue ────
    println!("\n== typed overload handling ==");
    let shed_seen = AtomicUsize::new(0);
    let toggles = workload::supervision_toggle_ops(cfg, 16);
    // Pre-open the stampeding sessions: admission control applies to
    // *every* wire request, so opens racing the stampede would be shed
    // too.
    let stampeders: Vec<_> = (0..toggles.len())
        .map(|i| {
            clients[i % clients.len()]
                .open_session(SessionKind::Graph)
                .expect("admits")
        })
        .collect();
    std::thread::scope(|scope| {
        for (op, sess) in toggles.iter().zip(&stampeders) {
            let shed_seen = &shed_seen;
            scope.spawn(move || {
                // Submit until the transaction lands: `Overloaded` is a
                // typed admission verdict, not an error — nothing was
                // enqueued, so the client backs off and resubmits.
                let mut backoff = Duration::from_micros(500);
                loop {
                    match sess.submit_graph(vec![op.clone()]) {
                        Ok(CommitOutcome::Shed { shard, depth }) => {
                            shed_seen.fetch_add(1, Ordering::Relaxed);
                            println!(
                                "  shard {shard} shed at depth {depth}; backing off {backoff:?}"
                            );
                            std::thread::sleep(backoff);
                            backoff = backoff.saturating_mul(2);
                        }
                        Ok(out) => {
                            out.expect_commit();
                            break;
                        }
                        Err(e) => {
                            // Toggles can legitimately conflict/abort
                            // under interleaving; that ends the session's
                            // story, shedding does not.
                            println!("  aborted: {e}");
                            break;
                        }
                    }
                }
            });
        }
    });
    for sess in stampeders {
        sess.close().expect("graceful close");
    }
    println!(
        "  {} typed Overloaded responses observed, every transaction answered",
        shed_seen.load(Ordering::Relaxed)
    );

    // ── Reads over the same wire: a view and the telemetry ────────────
    println!("\n== remote reads ==");
    let personnel = clients[0].view_state("personnel").expect("view read");
    for (name, tuples) in &personnel {
        println!("  personnel/{name}: {} tuples", tuples.len());
    }
    let text = clients[0].metrics(false).expect("metrics render");
    for line in text
        .lines()
        .filter(|l| l.contains("txns_committed") || l.contains("requests_shed"))
    {
        println!("  {line}");
    }

    // ── Cluster observability: stitching and streaming ────────────────
    println!("\n== cluster observability ==");
    // Subscribe before committing so the streamed deltas see it land.
    let watch = clients[0].watch_metrics(50).expect("subscription opens");

    // One deliberately cross-shard transaction: a supervision between
    // two employees homed on different commit lanes.
    let employee = |i: usize| EntityRef::new("employee", Atom::str(format!("E{i:05}")));
    let sess = clients[1].open_session(SessionKind::Graph).expect("admits");
    let mut committed = None;
    'pairs: for a in 0..cfg.employees {
        for b in 0..cfg.employees {
            if a == b || shard_of(&employee(a), SHARDS) == shard_of(&employee(b), SHARDS) {
                continue;
            }
            // Seeded supervisions may already hold a candidate pair (an
            // abort, not a bug) — keep probing until one commits.
            let op = GraphOp::InsertAssociation(Association::new(
                "supervise",
                [("agent", employee(a)), ("object", employee(b))],
            ));
            if let Ok(out) = sess.submit_graph(vec![op]) {
                if let Some(info) = out.info() {
                    committed = Some((info, a, b));
                    break 'pairs;
                }
            }
        }
    }
    let (info, a, b) = committed.expect("some cross-lane pair is free to supervise");
    sess.close().expect("graceful close");
    println!(
        "  committed E{a:05} -> E{b:05} across shards {} and {}",
        shard_of(&employee(a), SHARDS),
        shard_of(&employee(b), SHARDS)
    );

    // TraceLookup over the wire: the transaction's stitched causal
    // tree, with a wal_append span on every involved lane.
    let tree = clients[2]
        .trace_lookup(info.trace.as_u64())
        .expect("trace resolves");
    println!("  TraceLookup({}) ->\n    {tree}", info.trace);

    // Two consecutive streamed deltas from the subscription opened
    // above — the first one carries the commit we just watched land.
    for i in 0..2 {
        let delta = watch.recv_blocking().expect("stream is live");
        let brief: String = delta.chars().take(120).collect();
        println!("  delta {i}: {brief}…");
    }
    drop(watch);

    // The labelled per-shard render over the same wire.
    let text = clients[0].metrics(false).expect("metrics render");
    for line in text.lines().filter(|l| {
        l.starts_with("dme_shard_lane_depth")
            || (l.starts_with("dme_shard_counter") && l.contains("txns_committed"))
    }) {
        println!("  {line}");
    }

    drop(clients);
    server.shutdown();
    println!("\nserver drained and shut down cleanly");
}
