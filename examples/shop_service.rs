//! The machine shop as a live multi-model service.
//!
//! Boots the concurrent session service over the scaled machine-shop
//! conceptual database with two external views — the full `"shop"`
//! relational model and the §1.2 `"personnel"` subset — then:
//!
//! 1. runs graph-speaking and relational-speaking sessions concurrently
//!    (group commit through the journal, optimistic retry on conflict),
//! 2. crashes the service by tearing the journal mid-record and
//!    recovers to the last committed transaction,
//! 3. prints the observation report of every service phase
//!    (admit → translate → commit → recover),
//! 4. serves the telemetry exporters over the admin wire codec: the
//!    Prometheus-style text rendering and the single-line JSON
//!    snapshot, both with commit-latency percentiles.
//!
//! Run with: `cargo run --release --example shop_service`

use std::sync::Arc;

use borkin_equiv::equivalence::translate::CompletionMode;
use borkin_equiv::obs::{Counter, Observer, Report, RingSink};
use borkin_equiv::relation::display::render_relation;
use borkin_equiv::server::wire::{Request, Response};
use borkin_equiv::server::{
    AdminRequest, CommitMode, MemDevice, ServiceConfig, SessionKind, SessionService, ViewSpec,
};
use borkin_equiv::workload::{self, SessionStream, ShopConfig};

fn main() {
    let cfg = ShopConfig {
        employees: 6,
        machines: 3,
        supervisions: 4,
        seed: 2026,
    };
    let initial = workload::graph_state(cfg);
    let views = || {
        vec![
            ViewSpec {
                name: "shop".into(),
                schema: workload::relational_schema(cfg),
                mode: CompletionMode::Minimal,
            },
            ViewSpec {
                name: "personnel".into(),
                schema: workload::personnel_schema(cfg),
                mode: CompletionMode::Minimal,
            },
        ]
    };

    let ring = RingSink::with_capacity(8192);
    let obs = Observer::new(ring.clone());
    let service = SessionService::new(
        initial.clone(),
        views(),
        ServiceConfig {
            commit_mode: CommitMode::Group,
            checkpoint_every: 4,
            obs: obs.clone(),
            ..ServiceConfig::default()
        },
        Box::new(MemDevice::new()),
        Box::new(MemDevice::new()),
    )
    .expect("service boots");

    // ── Concurrent sessions: three models of the same database ────────
    println!("== concurrent sessions ==");
    let streams = workload::session_streams(cfg, 6, 4);
    std::thread::scope(|scope| {
        for (i, stream) in streams.iter().enumerate() {
            let service = service.clone();
            scope.spawn(move || {
                let (kind, label) = match stream {
                    SessionStream::Graph { .. } => (SessionKind::Graph, "graph".to_string()),
                    SessionStream::Relational { view, .. } => (
                        SessionKind::Relational { view: view.clone() },
                        format!("relational/{view}"),
                    ),
                };
                let mut sess = service.open_session(kind).expect("session admits");
                let (mut committed, mut rejected) = (0usize, 0usize);
                match stream {
                    SessionStream::Graph { ops } => {
                        for op in ops {
                            match sess.submit_graph(vec![op.clone()]) {
                                Ok(_) => committed += 1,
                                Err(_) => rejected += 1,
                            }
                        }
                    }
                    SessionStream::Relational { ops, .. } => {
                        for op in ops {
                            match sess.submit_relational(op) {
                                Ok(outcome) if outcome.info().is_some_and(|i| i.attempts > 1) => {
                                    let info = outcome.expect_commit();
                                    println!(
                                        "  session {i} ({label}): committed lsn {} after \
                                         {} attempts (conflict retry)",
                                        info.lsn, info.attempts
                                    );
                                    committed += 1;
                                }
                                Ok(_) => committed += 1,
                                Err(_) => rejected += 1,
                            }
                        }
                    }
                }
                sess.close().expect("graceful teardown");
                println!("  session {i} ({label}): {committed} committed, {rejected} rejected");
            });
        }
    });
    println!(
        "committed {} transactions in {} group commits ({} journal syncs, \
         {} conflicts retried)",
        service.committed_history().len(),
        obs.counter(Counter::GroupCommits),
        service.wal_syncs(),
        obs.counter(Counter::TxnConflicts),
    );
    let personnel = service.view_state("personnel").expect("view exists");
    println!("\npersonnel view after the session mix:");
    print!(
        "{}",
        render_relation(&personnel, "Supervisions").expect("relation exists")
    );

    // ── Crash: tear the journal mid-record, then recover ───────────────
    println!("\n== crash and recovery ==");
    let mut image = service.durable_image();
    let torn = image.wal.len().saturating_sub(7);
    image.wal.truncate(torn);
    println!(
        "tearing the journal at byte {torn} of {} (mid-record)",
        torn + 7
    );
    let (recovered, report) = SessionService::recover(
        Arc::clone(initial.schema()),
        &image,
        views(),
        ServiceConfig {
            obs: obs.clone(),
            ..ServiceConfig::default()
        },
        Box::new(MemDevice::new()),
        Box::new(MemDevice::new()),
    )
    .expect("recovery succeeds");
    println!(
        "recovered from checkpoint lsn {} + {} replayed transactions \
         (torn WAL tail: {}, torn checkpoint tail: {})",
        report.checkpoint_lsn,
        report.replayed,
        report.wal_tail.is_some(),
        report.checkpoint_tail.is_some()
    );
    println!(
        "recovered service serves {} views ({} commits since recovery)",
        recovered.view_names().len(),
        recovered.version()
    );

    // ── The phase report ───────────────────────────────────────────────
    println!("\n== service phase report ==");
    let report = Report::from_events(&ring.events()).with_totals(obs.counters());
    println!("{report}");

    // ── Telemetry over the typed wire API ──────────────────────────────
    // Both renderings are served through the single typed front door —
    // the same path a scraper or dashboard would use (the legacy
    // one-byte admin codec still tunnels through `Request::Admin`). The
    // recovered service shares the observer, so its counters fold the
    // pre-crash sessions and the recovery replay together.
    let metrics = |json: bool| match recovered.handle(Request::Metrics { json }) {
        Response::Metrics { body } => body,
        other => panic!("metrics request answered with {other:?}"),
    };
    println!("== telemetry over the wire (Prometheus text) ==");
    print!("{}", metrics(false));
    println!("\n== telemetry over the wire (JSON snapshot) ==");
    println!("{}", metrics(true));
    match recovered.handle(Request::Admin {
        body: AdminRequest::MetricsText.encode(),
    }) {
        Response::Admin { .. } => println!("(legacy admin envelope still answers)"),
        other => panic!("admin tunnel answered with {other:?}"),
    }
}
