//! Differential testing of incremental re-verification against the
//! generated scenario corpus.
//!
//! Three proofs, matching the incremental session's contract:
//!
//! 1. **Thread and warmth invariance** — over 64 generated scenarios,
//!    the session returns the one-shot [`Checker`] facade's exact
//!    outcome (verdict, witnesses, or error) at 1, 2 and 4 threads,
//!    cache-cold and cache-warm.
//! 2. **Mutation differential** — for *every* mutation kind the corpus
//!    generator can derive (drop a constraint, swap an operation's
//!    direction, rename a case binding, drop an operation), priming a
//!    session on the base pair and re-checking the mutant
//!    incrementally equals a cold full check — and, with
//!    `--features slow-reference`, the pre-arena reference engine.
//!    Failing cases are greedily minimized and appended to
//!    `proptest-regressions/incremental.txt` before the panic (the
//!    vendored proptest shim has no shrinking or persistence of its
//!    own, so this suite carries both by hand).
//! 3. **Torn durable images** — a verdict image cut at *every* byte
//!    boundary, or with bytes flipped, loads as a checksum-clean
//!    prefix; whatever was dropped simply re-checks cold. No cut and
//!    no corruption ever changes an answer.

use std::fmt::Write as _;
use std::fs;
use std::io::Write as _;
use std::path::PathBuf;

use borkin_equiv::equivalence::equiv::{CheckError, EquivKind};
use borkin_equiv::equivalence::model::FiniteModel;
use borkin_equiv::equivalence::parallel::Verdict;
use borkin_equiv::equivalence::{Checker, IncrementalChecker, Tier};
use borkin_equiv::logic::FactBase;
use borkin_equiv::workload::scenario::{corpus, Mutation, Scenario, ScenarioConfig, ScenarioOp};

const STATE_CAP: usize = 4096;

const KINDS: [EquivKind; 3] = [
    EquivKind::Isomorphic,
    EquivKind::Composed { max_depth: 2 },
    EquivKind::StateDependent { max_depth: 2 },
];

type Model = FiniteModel<FactBase, ScenarioOp>;
type Outcome = Result<Verdict, CheckError>;

/// The one-shot ground truth: the `Checker` facade with a fresh
/// parallel engine.
fn full_check(m: &Model, n: &Model, kind: EquivKind) -> Outcome {
    Checker::new(m, n)
        .tier(Tier::from_kind(kind))
        .state_cap(STATE_CAP)
        .run()
}

fn session() -> IncrementalChecker<FactBase, FactBase> {
    IncrementalChecker::new()
}

/// Satellite: verdicts and witnesses are identical across thread counts
/// and cache warmth on every corpus scenario (base vs. a mutant — the
/// adversarial near-equivalent pairs the generator exists to produce).
#[test]
fn verdicts_survive_threads_and_cache_warmth() {
    let scenarios = corpus(0xB05_EED, 64);
    assert!(scenarios.len() >= 64);
    for (i, base) in scenarios.iter().enumerate() {
        let mutations = base.mutations();
        let mutant = base.mutate(mutations[i % mutations.len()]);
        let m = base.model("left");
        let n = mutant.model("right");
        let kind = KINDS[i % KINDS.len()];
        let full = full_check(&m, &n, kind);
        for threads in [1usize, 2, 4] {
            let mut s = session().with_threads(threads);
            let cold = s.check(&m, &n, kind, STATE_CAP);
            let warm = s.check(&m, &n, kind, STATE_CAP);
            assert_eq!(cold, full, "cold t{threads} diverges on scenario {i}");
            assert_eq!(warm, full, "warm t{threads} diverges on scenario {i}");
            if full.is_ok() {
                assert!(
                    s.stats().verdict_hits >= 1,
                    "warm re-check of scenario {i} missed the verdict cache"
                );
            }
        }
    }
}

/// One differential probe: prime a session on `(base, base)`, mutate the
/// right side, re-check incrementally, and compare against a cold full
/// check (and the slow reference, when compiled). Returns a description
/// of the first disagreement.
fn mismatch(base: &Scenario, mutation: Mutation) -> Option<String> {
    let mutant = base.mutate(mutation);
    let m = base.model("left");
    let n_before = base.model("right");
    let n_after = mutant.model("right");
    for kind in KINDS {
        let mut s = session();
        let _primed = s.check(&m, &n_before, kind, STATE_CAP);
        let incremental = s.check(&m, &n_after, kind, STATE_CAP);
        let full = full_check(&m, &n_after, kind);
        if incremental != full {
            return Some(format!(
                "kind {kind:?}: incremental {incremental:?} != full {full:?}"
            ));
        }
        #[cfg(feature = "slow-reference")]
        {
            use borkin_equiv::equivalence::slow_reference;
            let slow = slow_reference::app_models_verdict_slow(&m, &n_after, kind, STATE_CAP);
            if full != slow {
                return Some(format!("kind {kind:?}: full {full:?} != slow {slow:?}"));
            }
        }
    }
    None
}

/// Rewrites a mutation's index after removing constraint `removed` from
/// the base scenario; `None` when the mutation targeted it.
fn remap_constraint_removal(mutation: Mutation, removed: usize) -> Option<Mutation> {
    match mutation {
        Mutation::DropConstraint(k) if k == removed => None,
        Mutation::DropConstraint(k) if k > removed => Some(Mutation::DropConstraint(k - 1)),
        other => Some(other),
    }
}

/// Rewrites a mutation's index after removing operation `removed`;
/// `None` when the mutation targeted it.
fn remap_op_removal(mutation: Mutation, removed: usize) -> Option<Mutation> {
    let shift = |k: usize| if k > removed { k - 1 } else { k };
    match mutation {
        Mutation::DropConstraint(_) => Some(mutation),
        Mutation::SwapOpDirection(k) if k != removed => Some(Mutation::SwapOpDirection(shift(k))),
        Mutation::RenameBinding(k) if k != removed => Some(Mutation::RenameBinding(shift(k))),
        Mutation::DropOp(k) if k != removed => Some(Mutation::DropOp(shift(k))),
        _ => None,
    }
}

/// Greedy 1-removal minimizer: keep deleting constraints and operations
/// from the base scenario while the differential mismatch reproduces.
fn minimize(mut base: Scenario, mut mutation: Mutation) -> (Scenario, Mutation) {
    loop {
        let mut shrunk = false;
        for i in 0..base.constraints.len() {
            if let Some(remapped) = remap_constraint_removal(mutation, i) {
                let mut candidate = base.clone();
                candidate.constraints.remove(i);
                if mismatch(&candidate, remapped).is_some() {
                    base = candidate;
                    mutation = remapped;
                    shrunk = true;
                    break;
                }
            }
        }
        if shrunk {
            continue;
        }
        for i in 0..base.ops.len() {
            if base.ops.len() == 1 {
                break;
            }
            if let Some(remapped) = remap_op_removal(mutation, i) {
                let mut candidate = base.clone();
                candidate.ops.remove(i);
                if mismatch(&candidate, remapped).is_some() {
                    base = candidate;
                    mutation = remapped;
                    shrunk = true;
                    break;
                }
            }
        }
        if !shrunk {
            return (base, mutation);
        }
    }
}

/// Appends a minimized counterexample to
/// `proptest-regressions/incremental.txt` (human-readable repro record;
/// CI uploads the directory as an artifact on failure).
fn persist_regression(base: &Scenario, mutation: Mutation, detail: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("proptest-regressions");
    let _ = fs::create_dir_all(&dir);
    let path = dir.join("incremental.txt");
    let mut entry = String::new();
    let _ = writeln!(
        entry,
        "# incremental-vs-full mismatch (minimized): {detail}"
    );
    let _ = writeln!(entry, "cc mutation={mutation:?} scenario={base:?}");
    if let Ok(mut file) = fs::OpenOptions::new().create(true).append(true).open(&path) {
        let _ = file.write_all(entry.as_bytes());
    }
    path
}

/// Satellite: for every mutation kind on every probe scenario, the
/// incremental re-check, the full enumeration and (when compiled) the
/// slow reference agree exactly. A disagreement is minimized and
/// persisted before failing.
#[test]
fn every_mutation_kind_matches_full_and_reference() {
    let probes = [
        ScenarioConfig {
            seed: 0xD1FF,
            toggles: 3,
            fact_arity: 2,
            constraint_density: 1.0,
            composite_ops: 2,
        },
        ScenarioConfig {
            seed: 0xD2FF,
            toggles: 4,
            fact_arity: 1,
            constraint_density: 0.5,
            composite_ops: 1,
        },
        ScenarioConfig {
            seed: 0xD3FF,
            toggles: 2,
            fact_arity: 3,
            constraint_density: 1.5,
            composite_ops: 0,
        },
    ];
    let mut covered = std::collections::BTreeSet::new();
    for config in probes {
        let base = Scenario::generate(config);
        for mutation in base.mutations() {
            covered.insert(match mutation {
                Mutation::DropConstraint(_) => "drop-constraint",
                Mutation::SwapOpDirection(_) => "swap-op-direction",
                Mutation::RenameBinding(_) => "rename-binding",
                Mutation::DropOp(_) => "drop-op",
            });
            if let Some(detail) = mismatch(&base, mutation) {
                let (min_base, min_mutation) = minimize(base.clone(), mutation);
                let path = persist_regression(&min_base, min_mutation, &detail);
                panic!(
                    "incremental differential failed ({detail}); minimized case \
                     appended to {}: mutation {min_mutation:?} on {min_base:?}",
                    path.display()
                );
            }
        }
    }
    assert_eq!(covered.len(), 4, "all four mutation kinds exercised");
}

/// Cross-tier leg (enabled with `--features symbolic`): a *warm*
/// incremental session — primed on the base pair, its caches reused for
/// the mutant re-check — agrees with a *cold* symbolic decision on every
/// mutation kind. The two paths share nothing (one replays cached
/// closure columns, the other enumerates BFS layers through a SAT
/// encoder), so this catches cache-invalidation bugs and encoder drift
/// in one comparison.
#[cfg(feature = "symbolic")]
#[test]
fn warm_incremental_rechecks_agree_with_cold_symbolic() {
    use borkin_equiv::equivalence::symbolic::{SymbolicChecker, SymbolicOutcome};
    let base = Scenario::generate(ScenarioConfig {
        seed: 0xC0DE,
        toggles: 3,
        fact_arity: 2,
        constraint_density: 1.0,
        composite_ops: 2,
    });
    let mut covered = std::collections::BTreeSet::new();
    for mutation in base.mutations() {
        covered.insert(match mutation {
            Mutation::DropConstraint(_) => "drop-constraint",
            Mutation::SwapOpDirection(_) => "swap-op-direction",
            Mutation::RenameBinding(_) => "rename-binding",
            Mutation::DropOp(_) => "drop-op",
        });
        let mutant = base.mutate(mutation);
        let m = base.model("left");
        let n_before = base.model("right");
        let n_after = mutant.model("right");
        let ms = base.symbolic_spec("left");
        let ns = mutant.symbolic_spec("right");
        for kind in KINDS {
            let mut s = session();
            let _primed = s.check(&m, &n_before, kind, STATE_CAP);
            let warm = s.check(&m, &n_after, kind, STATE_CAP);
            let cold = SymbolicChecker::new(&ms, &ns)
                .tier(Tier::from_kind(kind))
                .state_cap(STATE_CAP)
                .run();
            match cold {
                SymbolicOutcome::Definitive(sym) => assert_eq!(
                    warm, sym,
                    "warm incremental vs cold symbolic diverge: {mutation:?} {kind:?}"
                ),
                SymbolicOutcome::BoundExhausted { bound, .. } => panic!(
                    "probe closure must fit the default bound {bound}: {mutation:?}"
                ),
            }
        }
    }
    assert_eq!(covered.len(), 4, "all four mutation kinds exercised");
}

/// Op mutations take the delta path (columns for unchanged operations
/// are reused); constraint mutations change the model's universe key and
/// invalidate wholesale. Both still agree with the full check — that is
/// the suite above — here we pin the *mechanism*.
#[test]
fn mutations_invalidate_exactly_the_affected_frontier() {
    let base = Scenario::generate(ScenarioConfig {
        seed: 0xF00D,
        toggles: 4,
        fact_arity: 2,
        constraint_density: 0.75,
        composite_ops: 2,
    });
    assert!(!base.constraints.is_empty());

    // Swap one operation's direction: every other column is reusable.
    let swapped = base.mutate(Mutation::SwapOpDirection(0));
    let mut s = session();
    s.check(
        &base.model("left"),
        &base.model("right"),
        EquivKind::Isomorphic,
        STATE_CAP,
    )
    .unwrap();
    let after = s.check(
        &base.model("left"),
        &swapped.model("right"),
        EquivKind::Isomorphic,
        STATE_CAP,
    );
    assert_eq!(
        after,
        full_check(
            &base.model("left"),
            &swapped.model("right"),
            EquivKind::Isomorphic
        )
    );
    let stats = s.stats();
    assert!(
        stats.transitions_reused > 0,
        "op mutation should reuse unchanged columns: {stats:?}"
    );
    assert_eq!(stats.invalidations, 0, "op mutation keeps the universe");

    // Drop a constraint: the universe key changes, the cache rebuilds.
    let relaxed = base.mutate(Mutation::DropConstraint(0));
    let before = s.stats();
    let after = s.check(
        &base.model("left"),
        &relaxed.model("right"),
        EquivKind::Isomorphic,
        STATE_CAP,
    );
    assert_eq!(
        after,
        full_check(
            &base.model("left"),
            &relaxed.model("right"),
            EquivKind::Isomorphic
        )
    );
    assert_eq!(
        s.stats().invalidations,
        before.invalidations + 1,
        "constraint mutation must invalidate the right-side closure cache"
    );
}

/// Satellite: crash safety of the durable verdict image. Cutting the
/// image at any byte, or flipping bytes, loses at most a suffix of the
/// cached verdicts — the checksum catches the tear, the session falls
/// back to a cold re-check, and every answer stays exactly equal to the
/// cold ground truth.
#[test]
fn torn_verdict_images_never_change_answers() {
    // Two cached pairs: an equivalent one and a counterexample one, so
    // the image carries both row encodings (with and without witnesses).
    let eq_scenario = Scenario::generate(ScenarioConfig {
        seed: 0x70A7,
        toggles: 2,
        fact_arity: 2,
        constraint_density: 0.5,
        composite_ops: 1,
    });
    let toy = Scenario::generate(ScenarioConfig {
        seed: 0x70A8,
        toggles: 1,
        fact_arity: 1,
        constraint_density: 0.0,
        composite_ops: 0,
    });
    // Dropping the delete op leaves the same 2-state closure minus one
    // transition: pairable, inequivalent — a cacheable counterexample.
    let drop_delete = Mutation::DropOp(1);
    assert!(toy.mutations().contains(&drop_delete));
    let toy_mutant = toy.mutate(drop_delete);

    let pairs: [(Model, Model); 2] = [
        (eq_scenario.model("left"), eq_scenario.model("right")),
        (toy.model("left"), toy_mutant.model("right")),
    ];

    let mut writer = session();
    let mut expected: Vec<Outcome> = Vec::new();
    for (m, n) in &pairs {
        for kind in KINDS {
            expected.push(writer.check(m, n, kind, STATE_CAP));
        }
    }
    assert!(
        expected
            .iter()
            .any(|o| matches!(o, Ok(Verdict::Counterexample { .. }))),
        "fixture must cache at least one counterexample"
    );
    let total = writer.verdict_entries();
    let image = writer.save_verdicts();
    assert!(total >= 6 && !image.is_empty());

    let check_all = |s: &mut IncrementalChecker<FactBase, FactBase>| {
        for (i, (m, n)) in pairs.iter().enumerate() {
            for (j, kind) in KINDS.iter().enumerate() {
                let got = s.check(m, n, *kind, STATE_CAP);
                assert_eq!(got, expected[i * KINDS.len() + j], "pair {i} kind {kind:?}");
            }
        }
    };

    // Every byte-boundary cut: a strict prefix loads strictly fewer
    // rows (the tail record is torn or missing) and answers stay right.
    for cut in 0..=image.len() {
        let mut s = session();
        let report = s.load_verdicts(&image[..cut]);
        assert!(report.loaded <= total);
        if cut < image.len() {
            assert!(
                report.loaded < total,
                "a strict cut at byte {cut} must lose the torn tail"
            );
        } else {
            assert_eq!((report.loaded, report.torn), (total, false));
        }
        check_all(&mut s);
    }

    // Byte flips anywhere in the image: the per-record checksum (or the
    // row decoder) rejects the damage; answers stay right.
    for i in (0..image.len()).step_by(3) {
        let mut corrupt = image.clone();
        corrupt[i] ^= 0x41;
        let mut s = session();
        let report = s.load_verdicts(&corrupt);
        assert!(report.loaded <= total);
        check_all(&mut s);
    }
}
