//! Facade parity: [`Checker`] must be bit-identical to every legacy
//! entry point it replaces — sequential checkers via
//! `MatchReport::to_verdict` / `DataModelReport::to_verdict`, the four
//! `parallel_*` functions directly — with the observer enabled and
//! disabled.

#![allow(deprecated)]

use std::collections::BTreeMap;
use std::sync::Arc;

use borkin_equiv::equivalence::enumerate::{enumerate_graph_ops, enumerate_rel_ops};
use borkin_equiv::equivalence::equiv::{
    application_models_equivalent, composed_equivalent, data_model_equivalent,
    isomorphic_equivalent, state_dependent_equivalent, EquivKind,
};
use borkin_equiv::equivalence::model::{graph_model, relational_model, FiniteModel};
use borkin_equiv::equivalence::parallel::{
    parallel_application_models_equivalent, parallel_application_models_equivalent_with,
    parallel_data_model_equivalent, parallel_data_model_equivalent_with, CheckBudget,
    ParallelConfig, Verdict,
};
use borkin_equiv::equivalence::witness;
use borkin_equiv::equivalence::{Checker, FactInterner, Tier};
use borkin_equiv::graph::{GraphOp, GraphState};
use borkin_equiv::logic::{Fact, FactBase};
use borkin_equiv::obs::{Observer, RingSink};
use borkin_equiv::relation::{RelOp, RelationState};
use borkin_equiv::value::Atom;

const STATE_CAP: usize = 4_000;

/// Errors don't implement `PartialEq`; compare through their debug
/// rendering so `Err(Pairing(..))` parity is asserted too.
fn norm<E: std::fmt::Debug>(r: Result<Verdict, E>) -> Result<Verdict, String> {
    r.map_err(|e| format!("{e:?}"))
}

fn fact(n: u8) -> Fact {
    Fact::new("p", [("x", Atom::Int(n as i64))])
}

/// Insert/remove toy models over a small fact universe — cheap enough
/// to sweep every tier over several pairs.
fn toy_model(name: &str, ops: &[(bool, u8)]) -> FiniteModel<FactBase, String> {
    let universe: BTreeMap<String, (bool, Fact)> = ops
        .iter()
        .map(|(add, n)| {
            let f = fact(*n);
            (format!("{}{}", if *add { "+" } else { "-" }, f), (*add, f))
        })
        .collect();
    let op_names: Vec<String> = universe.keys().cloned().collect();
    FiniteModel::new(name, FactBase::default(), op_names, move |op, s| {
        let (add, f) = &universe[op];
        let mut next = s.clone();
        if *add {
            next.insert(f.clone()).then_some(next)
        } else {
            next.remove(f).then_some(next)
        }
    })
}

/// Pairs that exercise equivalent, inequivalent, and asymmetric cases.
fn toy_pairs() -> Vec<(FiniteModel<FactBase, String>, FiniteModel<FactBase, String>)> {
    vec![
        (
            toy_model("m-two", &[(true, 0), (true, 1)]),
            toy_model("n-two", &[(true, 0), (true, 1)]),
        ),
        (
            toy_model("m-two", &[(true, 0), (true, 1)]),
            toy_model("n-one", &[(true, 0)]),
        ),
        (
            toy_model("m-undo", &[(true, 0), (false, 0)]),
            toy_model("n-undo", &[(true, 1), (false, 1)]),
        ),
        (
            toy_model("m-rich", &[(true, 0), (true, 1), (false, 1)]),
            toy_model("n-poor", &[(true, 0), (false, 0)]),
        ),
    ]
}

fn micro_rel() -> FiniteModel<RelationState, RelOp> {
    let schema = witness::micro_relational_schema();
    let ops = enumerate_rel_ops(&schema, 2);
    relational_model("micro-rel", RelationState::empty(Arc::new(schema)), ops)
}

fn micro_graph() -> FiniteModel<GraphState, GraphOp> {
    let schema = Arc::new(witness::micro_graph_schema());
    let ops = enumerate_graph_ops(&schema);
    graph_model("micro-graph", GraphState::empty(schema), ops)
}

#[test]
fn facade_matches_sequential_isomorphic() {
    for (m, n) in toy_pairs() {
        let legacy = isomorphic_equivalent(&m, &n, STATE_CAP).map(|r| r.to_verdict());
        let facade = Checker::new(&m, &n)
            .tier(Tier::Isomorphic)
            .state_cap(STATE_CAP)
            .run();
        assert_eq!(norm(facade), norm(legacy));
    }
}

#[test]
fn facade_matches_sequential_composed_and_state_dependent() {
    for (m, n) in toy_pairs() {
        for max_depth in [1usize, 2, 3] {
            let legacy = composed_equivalent(&m, &n, STATE_CAP, max_depth).map(|r| r.to_verdict());
            let facade = Checker::new(&m, &n)
                .tier(Tier::Composed { max_depth })
                .state_cap(STATE_CAP)
                .run();
            assert_eq!(norm(facade), norm(legacy), "composed depth {max_depth}");

            let legacy =
                state_dependent_equivalent(&m, &n, STATE_CAP, max_depth).map(|r| r.to_verdict());
            let facade = Checker::new(&m, &n)
                .tier(Tier::StateDependent { max_depth })
                .state_cap(STATE_CAP)
                .run();
            assert_eq!(norm(facade), norm(legacy), "state-dependent depth {max_depth}");
        }
    }
}

#[test]
fn facade_matches_sequential_on_paper_witness() {
    let m = micro_rel();
    let n = micro_graph();
    for kind in [
        EquivKind::Isomorphic,
        EquivKind::Composed { max_depth: 2 },
        EquivKind::StateDependent { max_depth: 2 },
    ] {
        let legacy = application_models_equivalent(&m, &n, kind, STATE_CAP)
            .map(|r| r.to_verdict())
            .unwrap();
        let facade = Checker::new(&m, &n)
            .tier(Tier::from_kind(kind))
            .state_cap(STATE_CAP)
            .run()
            .unwrap();
        assert_eq!(facade, legacy, "{kind:?}");
    }
}

#[test]
fn facade_matches_sequential_data_model() {
    let ms = vec![micro_rel()];
    let ns = vec![micro_graph()];
    let kind = EquivKind::StateDependent { max_depth: 2 };
    let legacy = data_model_equivalent(&ms, &ns, kind, STATE_CAP)
        .map(|r| r.to_verdict())
        .unwrap();
    let facade = Checker::data_models(&ms, &ns)
        .tier(Tier::DataModel { kind })
        .state_cap(STATE_CAP)
        .run()
        .unwrap();
    assert_eq!(facade, legacy);
}

#[test]
fn facade_matches_parallel_application_models() {
    let m = micro_rel();
    let n = micro_graph();
    let kind = EquivKind::StateDependent { max_depth: 2 };
    for threads in [1usize, 2, 4] {
        let config = ParallelConfig::with_threads(threads);
        let legacy =
            parallel_application_models_equivalent(&m, &n, kind, STATE_CAP, &config).unwrap();
        let facade = Checker::new(&m, &n)
            .tier(Tier::from_kind(kind))
            .state_cap(STATE_CAP)
            .parallel(config)
            .run()
            .unwrap();
        assert_eq!(facade, legacy, "threads {threads}");
    }
}

#[test]
fn facade_matches_parallel_with_interners() {
    let m = micro_rel();
    let n = micro_graph();
    let kind = EquivKind::StateDependent { max_depth: 2 };
    let config = ParallelConfig::with_threads(2);
    let legacy_mi = FactInterner::new();
    let legacy_ni = FactInterner::new();
    let legacy = parallel_application_models_equivalent_with(
        &m, &n, kind, STATE_CAP, &config, &legacy_mi, &legacy_ni,
    )
    .unwrap();
    let facade_mi = FactInterner::new();
    let facade_ni = FactInterner::new();
    let facade = Checker::new(&m, &n)
        .tier(Tier::from_kind(kind))
        .state_cap(STATE_CAP)
        .parallel(config)
        .interners(&facade_mi, &facade_ni)
        .run()
        .unwrap();
    assert_eq!(facade, legacy);
    assert_eq!(facade_mi.stats().unique, legacy_mi.stats().unique);
    assert_eq!(facade_ni.stats().unique, legacy_ni.stats().unique);
}

#[test]
fn facade_matches_parallel_data_model() {
    let ms = vec![micro_rel()];
    let ns = vec![micro_graph()];
    let kind = EquivKind::StateDependent { max_depth: 2 };
    let config = ParallelConfig::with_threads(2);
    let legacy = parallel_data_model_equivalent(&ms, &ns, kind, STATE_CAP, &config).unwrap();
    let facade = Checker::data_models(&ms, &ns)
        .tier(Tier::DataModel { kind })
        .state_cap(STATE_CAP)
        .parallel(config)
        .run()
        .unwrap();
    assert_eq!(facade, legacy);

    let legacy_mi = FactInterner::new();
    let legacy_ni = FactInterner::new();
    let legacy_with = parallel_data_model_equivalent_with(
        &ms, &ns, kind, STATE_CAP, &config, &legacy_mi, &legacy_ni,
    )
    .unwrap();
    let facade_mi = FactInterner::new();
    let facade_ni = FactInterner::new();
    let facade_with = Checker::data_models(&ms, &ns)
        .tier(Tier::DataModel { kind })
        .state_cap(STATE_CAP)
        .parallel(config)
        .interners(&facade_mi, &facade_ni)
        .run()
        .unwrap();
    assert_eq!(facade_with, legacy_with);
    assert_eq!(facade_with, legacy);
}

#[test]
fn facade_budget_matches_budgeted_engine() {
    let m = micro_rel();
    let n = micro_graph();
    let kind = EquivKind::StateDependent { max_depth: 2 };
    let budget = CheckBudget::nodes(50);
    let config = ParallelConfig::with_threads(1).budget(budget);
    let legacy = parallel_application_models_equivalent(&m, &n, kind, STATE_CAP, &config).unwrap();
    let facade = Checker::new(&m, &n)
        .tier(Tier::from_kind(kind))
        .state_cap(STATE_CAP)
        .budget(budget)
        .run()
        .unwrap();
    // `elapsed` is wall-clock and differs between the two runs; a
    // single-threaded budgeted sweep stops at the same node either way.
    match (&facade, &legacy) {
        (
            Verdict::BudgetExhausted { nodes_explored: f, .. },
            Verdict::BudgetExhausted { nodes_explored: l, .. },
        ) => assert_eq!(f, l),
        other => panic!("expected both budget-exhausted, got {other:?}"),
    }
}

#[test]
fn observer_enabled_and_disabled_agree_everywhere() {
    let m = micro_rel();
    let n = micro_graph();
    let kind = EquivKind::StateDependent { max_depth: 2 };
    for parallel in [None, Some(ParallelConfig::with_threads(2))] {
        let silent = {
            let mut c = Checker::new(&m, &n)
                .tier(Tier::from_kind(kind))
                .state_cap(STATE_CAP);
            if let Some(config) = parallel {
                c = c.parallel(config);
            }
            c.run().unwrap()
        };
        let ring = RingSink::with_capacity(4096);
        let observed = {
            let mut c = Checker::new(&m, &n)
                .tier(Tier::from_kind(kind))
                .state_cap(STATE_CAP)
                .observer(Observer::new(ring.clone()));
            if let Some(config) = parallel {
                c = c.parallel(config);
            }
            c.run().unwrap()
        };
        assert_eq!(observed, silent, "parallel={}", parallel.is_some());
        assert!(!ring.events().is_empty(), "instrumented run emitted events");
    }
}

#[test]
fn operation_tier_compares_index_aligned_signatures() {
    let m = toy_model("m", &[(true, 0), (true, 1)]);
    let n = toy_model("n", &[(true, 0), (true, 1)]);
    let verdict = Checker::new(&m, &n).tier(Tier::Operation).run().unwrap();
    assert!(verdict.is_equivalent());

    // Same valid-state closure ({∅, {p(0)}}) but one extra operation on
    // the left: pairing succeeds and the overhang becomes a witness.
    let undo = toy_model("m-undo", &[(true, 0), (false, 0)]);
    let shorter = toy_model("n-short", &[(true, 0)]);
    let verdict = Checker::new(&undo, &shorter)
        .tier(Tier::Operation)
        .run()
        .unwrap();
    assert!(matches!(verdict, Verdict::Counterexample { .. }));
}

/// Acceptance check: a Definition 6 run with the JSON-lines sink
/// produces a machine-readable transcript.
#[test]
fn def6_with_jsonl_sink_writes_machine_readable_transcript() {
    use borkin_equiv::obs::JsonLinesSink;

    let ms = vec![micro_rel()];
    let ns = vec![micro_graph()];
    let kind = EquivKind::StateDependent { max_depth: 2 };
    let path = std::env::temp_dir().join(format!("dme_facade_def6_{}.jsonl", std::process::id()));
    let sink = JsonLinesSink::create(&path).unwrap();
    let verdict = Checker::data_models(&ms, &ns)
        .tier(Tier::DataModel { kind })
        .state_cap(STATE_CAP)
        .parallel(ParallelConfig::with_threads(2))
        .sink(sink)
        .run()
        .unwrap();
    let legacy = data_model_equivalent(&ms, &ns, kind, STATE_CAP)
        .map(|r| r.to_verdict())
        .unwrap();
    assert_eq!(verdict.is_equivalent(), legacy.is_equivalent());

    let transcript = std::fs::read_to_string(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert!(!transcript.is_empty());
    for line in transcript.lines() {
        assert!(
            line.starts_with('{') && line.ends_with('}') && line.contains("\"ev\""),
            "not a JSON event line: {line}"
        );
    }
}
