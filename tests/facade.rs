//! Facade routing parity: the sequential reference checkers and the
//! parallel engine behind [`Checker`] decide the same predicates, so
//! every routing rule (plain, `.parallel(..)`, `.budget(..)`,
//! `.interners(..)`) must agree on the verdict — with the observer
//! enabled and disabled.

use std::collections::BTreeMap;
use std::sync::Arc;

use borkin_equiv::equivalence::enumerate::{enumerate_graph_ops, enumerate_rel_ops};
use borkin_equiv::equivalence::equiv::EquivKind;
use borkin_equiv::equivalence::model::{graph_model, relational_model, FiniteModel};
use borkin_equiv::equivalence::parallel::{CheckBudget, ParallelConfig, Verdict};
use borkin_equiv::equivalence::witness;
use borkin_equiv::equivalence::{Checker, FactInterner, Tier};
use borkin_equiv::graph::{GraphOp, GraphState};
use borkin_equiv::logic::{Fact, FactBase};
use borkin_equiv::obs::{Observer, RingSink};
use borkin_equiv::relation::{RelOp, RelationState};
use borkin_equiv::value::Atom;

const STATE_CAP: usize = 4_000;

/// Errors don't implement `PartialEq`; compare through their debug
/// rendering so `Err(Pairing(..))` parity is asserted too.
fn norm<E: std::fmt::Debug>(r: Result<Verdict, E>) -> Result<Verdict, String> {
    r.map_err(|e| format!("{e:?}"))
}

fn fact(n: u8) -> Fact {
    Fact::new("p", [("x", Atom::Int(n as i64))])
}

/// Insert/remove toy models over a small fact universe — cheap enough
/// to sweep every tier over several pairs.
fn toy_model(name: &str, ops: &[(bool, u8)]) -> FiniteModel<FactBase, String> {
    let universe: BTreeMap<String, (bool, Fact)> = ops
        .iter()
        .map(|(add, n)| {
            let f = fact(*n);
            (format!("{}{}", if *add { "+" } else { "-" }, f), (*add, f))
        })
        .collect();
    let op_names: Vec<String> = universe.keys().cloned().collect();
    FiniteModel::new(name, FactBase::default(), op_names, move |op, s| {
        let (add, f) = &universe[op];
        let mut next = s.clone();
        if *add {
            next.insert(f.clone()).then_some(next)
        } else {
            next.remove(f).then_some(next)
        }
    })
}

/// Pairs that exercise equivalent, inequivalent, and asymmetric cases.
fn toy_pairs() -> Vec<(FiniteModel<FactBase, String>, FiniteModel<FactBase, String>)> {
    vec![
        (
            toy_model("m-two", &[(true, 0), (true, 1)]),
            toy_model("n-two", &[(true, 0), (true, 1)]),
        ),
        (
            toy_model("m-two", &[(true, 0), (true, 1)]),
            toy_model("n-one", &[(true, 0)]),
        ),
        (
            toy_model("m-undo", &[(true, 0), (false, 0)]),
            toy_model("n-undo", &[(true, 1), (false, 1)]),
        ),
        (
            toy_model("m-rich", &[(true, 0), (true, 1), (false, 1)]),
            toy_model("n-poor", &[(true, 0), (false, 0)]),
        ),
    ]
}

fn micro_rel() -> FiniteModel<RelationState, RelOp> {
    let schema = witness::micro_relational_schema();
    let ops = enumerate_rel_ops(&schema, 2);
    relational_model("micro-rel", RelationState::empty(Arc::new(schema)), ops)
}

fn micro_graph() -> FiniteModel<GraphState, GraphOp> {
    let schema = Arc::new(witness::micro_graph_schema());
    let ops = enumerate_graph_ops(&schema);
    graph_model("micro-graph", GraphState::empty(schema), ops)
}

#[test]
fn sequential_and_engine_agree_on_every_toy_pair_and_tier() {
    for (m, n) in toy_pairs() {
        for tier in [
            Tier::Isomorphic,
            Tier::Composed { max_depth: 1 },
            Tier::Composed { max_depth: 2 },
            Tier::Composed { max_depth: 3 },
            Tier::StateDependent { max_depth: 1 },
            Tier::StateDependent { max_depth: 2 },
            Tier::StateDependent { max_depth: 3 },
        ] {
            let sequential = Checker::new(&m, &n).tier(tier).state_cap(STATE_CAP).run();
            let engine = Checker::new(&m, &n)
                .tier(tier)
                .state_cap(STATE_CAP)
                .parallel(ParallelConfig::with_threads(1))
                .run();
            assert_eq!(
                norm(sequential),
                norm(engine),
                "{}/{} {tier:?}",
                m.name(),
                n.name()
            );
        }
    }
}

#[test]
fn thread_count_never_changes_the_verdict_on_paper_witness() {
    let m = micro_rel();
    let n = micro_graph();
    let kind = EquivKind::StateDependent { max_depth: 2 };
    let sequential = Checker::new(&m, &n)
        .tier(Tier::from_kind(kind))
        .state_cap(STATE_CAP)
        .run()
        .unwrap();
    for threads in [1usize, 2, 4] {
        let engine = Checker::new(&m, &n)
            .tier(Tier::from_kind(kind))
            .state_cap(STATE_CAP)
            .parallel(ParallelConfig::with_threads(threads))
            .run()
            .unwrap();
        assert_eq!(engine, sequential, "threads {threads}");
    }
}

#[test]
fn data_model_routes_agree_on_paper_witness() {
    let ms = vec![micro_rel()];
    let ns = vec![micro_graph()];
    let kind = EquivKind::StateDependent { max_depth: 2 };
    let sequential = Checker::data_models(&ms, &ns)
        .tier(Tier::DataModel { kind })
        .state_cap(STATE_CAP)
        .run()
        .unwrap();
    let engine = Checker::data_models(&ms, &ns)
        .tier(Tier::DataModel { kind })
        .state_cap(STATE_CAP)
        .parallel(ParallelConfig::with_threads(2))
        .run()
        .unwrap();
    assert_eq!(sequential.is_equivalent(), engine.is_equivalent());
}

#[test]
fn interners_fill_identically_across_routes() {
    let m = micro_rel();
    let n = micro_graph();
    let kind = EquivKind::StateDependent { max_depth: 2 };
    let one_mi = FactInterner::new();
    let one_ni = FactInterner::new();
    let one_thread = Checker::new(&m, &n)
        .tier(Tier::from_kind(kind))
        .state_cap(STATE_CAP)
        .interners(&one_mi, &one_ni)
        .run()
        .unwrap();
    let two_mi = FactInterner::new();
    let two_ni = FactInterner::new();
    let two_threads = Checker::new(&m, &n)
        .tier(Tier::from_kind(kind))
        .state_cap(STATE_CAP)
        .parallel(ParallelConfig::with_threads(2))
        .interners(&two_mi, &two_ni)
        .run()
        .unwrap();
    assert_eq!(one_thread, two_threads);
    assert_eq!(one_mi.stats().unique, two_mi.stats().unique);
    assert_eq!(one_ni.stats().unique, two_ni.stats().unique);
    assert!(one_mi.stats().unique > 0, "interner saw the left closure");
}

#[test]
fn budget_exhaustion_is_deterministic_on_one_thread() {
    let m = micro_rel();
    let n = micro_graph();
    let kind = EquivKind::StateDependent { max_depth: 2 };
    let budget = CheckBudget::nodes(50);
    let first = Checker::new(&m, &n)
        .tier(Tier::from_kind(kind))
        .state_cap(STATE_CAP)
        .budget(budget)
        .run()
        .unwrap();
    let second = Checker::new(&m, &n)
        .tier(Tier::from_kind(kind))
        .state_cap(STATE_CAP)
        .parallel(ParallelConfig::with_threads(1))
        .budget(budget)
        .run()
        .unwrap();
    // `elapsed` is wall-clock and differs between the two runs; a
    // single-threaded budgeted sweep stops at the same node either way.
    match (&first, &second) {
        (
            Verdict::BudgetExhausted {
                nodes_explored: f, ..
            },
            Verdict::BudgetExhausted {
                nodes_explored: l, ..
            },
        ) => assert_eq!(f, l),
        other => panic!("expected both budget-exhausted, got {other:?}"),
    }
}

#[test]
fn observer_enabled_and_disabled_agree_everywhere() {
    let m = micro_rel();
    let n = micro_graph();
    let kind = EquivKind::StateDependent { max_depth: 2 };
    for parallel in [None, Some(ParallelConfig::with_threads(2))] {
        let silent = {
            let mut c = Checker::new(&m, &n)
                .tier(Tier::from_kind(kind))
                .state_cap(STATE_CAP);
            if let Some(config) = parallel {
                c = c.parallel(config);
            }
            c.run().unwrap()
        };
        let ring = RingSink::with_capacity(4096);
        let observed = {
            let mut c = Checker::new(&m, &n)
                .tier(Tier::from_kind(kind))
                .state_cap(STATE_CAP)
                .observer(Observer::new(ring.clone()));
            if let Some(config) = parallel {
                c = c.parallel(config);
            }
            c.run().unwrap()
        };
        assert_eq!(observed, silent, "parallel={}", parallel.is_some());
        assert!(!ring.events().is_empty(), "instrumented run emitted events");
    }
}

#[test]
fn observed_run_lands_in_the_check_latency_histogram() {
    use borkin_equiv::obs::Metric;

    let m = toy_model("m", &[(true, 0), (true, 1)]);
    let n = toy_model("n", &[(true, 0), (true, 1)]);
    let obs = Observer::new(RingSink::with_capacity(64));
    for _ in 0..3 {
        Checker::new(&m, &n).observer(obs.clone()).run().unwrap();
    }
    let snapshots = obs.histograms();
    let check = snapshots
        .iter()
        .find(|(metric, _)| *metric == Metric::CheckLatency)
        .map(|(_, snap)| snap)
        .expect("Checker::run records check_latency_us");
    assert_eq!(check.count, 3);
}

#[test]
fn operation_tier_compares_index_aligned_signatures() {
    let m = toy_model("m", &[(true, 0), (true, 1)]);
    let n = toy_model("n", &[(true, 0), (true, 1)]);
    let verdict = Checker::new(&m, &n).tier(Tier::Operation).run().unwrap();
    assert!(verdict.is_equivalent());

    // Same valid-state closure ({∅, {p(0)}}) but one extra operation on
    // the left: pairing succeeds and the overhang becomes a witness.
    let undo = toy_model("m-undo", &[(true, 0), (false, 0)]);
    let shorter = toy_model("n-short", &[(true, 0)]);
    let verdict = Checker::new(&undo, &shorter)
        .tier(Tier::Operation)
        .run()
        .unwrap();
    assert!(matches!(verdict, Verdict::Counterexample { .. }));
}

/// Acceptance check: a Definition 6 run with the JSON-lines sink
/// produces a machine-readable transcript.
#[test]
fn def6_with_jsonl_sink_writes_machine_readable_transcript() {
    use borkin_equiv::obs::JsonLinesSink;

    let ms = vec![micro_rel()];
    let ns = vec![micro_graph()];
    let kind = EquivKind::StateDependent { max_depth: 2 };
    let path = std::env::temp_dir().join(format!("dme_facade_def6_{}.jsonl", std::process::id()));
    let sink = JsonLinesSink::create(&path).unwrap();
    let verdict = Checker::data_models(&ms, &ns)
        .tier(Tier::DataModel { kind })
        .state_cap(STATE_CAP)
        .parallel(ParallelConfig::with_threads(2))
        .sink(sink)
        .run()
        .unwrap();
    let sequential = Checker::data_models(&ms, &ns)
        .tier(Tier::DataModel { kind })
        .state_cap(STATE_CAP)
        .run()
        .unwrap();
    assert_eq!(verdict.is_equivalent(), sequential.is_equivalent());

    let transcript = std::fs::read_to_string(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert!(!transcript.is_empty());
    for line in transcript.lines() {
        assert!(
            line.starts_with('{') && line.ends_with('}') && line.contains("\"ev\""),
            "not a JSON event line: {line}"
        );
    }
}
