//! §4: "The same types of equivalence mappings must be involved in the
//! transportation of a database and associated programs from one
//! database system to another."
//!
//! Transport here is compile → ship facts → materialize: a standalone
//! semantic-relation database is moved onto a brand-new graph-conceptual
//! multi-model system (and back), preserving state equivalence and
//! continuing to accept updates on the new system.

use std::sync::Arc;

use borkin_equiv::ansi::MultiModelDatabase;
use borkin_equiv::equivalence::translate::{materialize_relational_state, CompletionMode};
use borkin_equiv::graph::facts::materialize_graph_state;
use borkin_equiv::graph::fixtures as gfix;
use borkin_equiv::logic::{state_equivalent, ToFacts};
use borkin_equiv::relation::fixtures as rfix;
use borkin_equiv::relation::RelOp;
use borkin_equiv::value::tuple;

#[test]
fn relational_database_transports_to_a_graph_system() {
    // The "old system": a standalone Figure 3 relational database.
    let old = rfix::figure3_state();
    let shipped = old.to_facts();

    // The "new system": a graph conceptual schema over the same
    // case-grammar universe — the §3.2.3 agreement that makes transport
    // well-defined.
    let conceptual = materialize_graph_state(Arc::new(gfix::machine_shop_graph_schema()), &shipped)
        .expect("shipped content materializes as a graph state");
    assert_eq!(conceptual, gfix::figure4_state());

    // Spin up the full new system with the old schema as one of its
    // views; the users' old queries keep working.
    let db = MultiModelDatabase::new(conceptual).expect("new system initializes");
    db.add_view(
        "legacy",
        rfix::machine_shop_schema(),
        CompletionMode::StateCompleted,
    )
    .expect("legacy view materializes");
    assert_eq!(db.view_state("legacy").unwrap(), old);
    db.verify_consistency().expect("consistent after transport");

    // And the migrated database accepts updates through the legacy view.
    let op = RelOp::insert("Jobs", [tuple!["G.Wayshum", "T.Manhart", "NZ745"]]);
    db.update_view("legacy", &op)
        .expect("post-migration update");
    assert_eq!(db.conceptual(), gfix::figure6_state());
}

#[test]
fn graph_database_transports_to_a_relational_system() {
    let old = gfix::figure4_state();
    let shipped = old.to_facts();

    // Either relational application model can receive the content.
    for schema in [rfix::machine_shop_schema(), rfix::figure9_schema()] {
        let schema = Arc::new(schema);
        let new = materialize_relational_state(&schema, &shipped)
            .expect("shipped content materializes relationally");
        assert!(state_equivalent(&old, &new).is_equivalent());
    }
}

#[test]
fn round_trip_transport_is_identity() {
    let original = rfix::figure3_state();
    let graph = materialize_graph_state(
        Arc::new(gfix::machine_shop_graph_schema()),
        &original.to_facts(),
    )
    .unwrap();
    let back =
        materialize_relational_state(&Arc::new(rfix::machine_shop_schema()), &graph.to_facts())
            .unwrap();
    assert_eq!(back, original);
}
