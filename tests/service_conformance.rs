//! Property-based conformance suite for the concurrent session service.
//!
//! Each generated case is a multi-session schedule: N sessions — graph
//! sessions speaking conceptual operations, relational sessions
//! speaking against the full `"shop"` view or the §1.2 `"personnel"`
//! subset view — submit their scripted streams concurrently. The
//! **oracle** is the sequential machinery the service is built from:
//!
//! 1. the committed schedule, replayed one transaction at a time with
//!    `GraphOp::apply_all`, must reproduce the service's final
//!    conceptual state;
//! 2. each external view, replayed through `ExternalView` with the same
//!    committed schedule, must reproduce the service's final view
//!    state, and must satisfy Definition 2 (state equivalence within
//!    the view's vocabulary) against the final conceptual state;
//! 3. recovery from the durable image must rebuild the same state.
//!
//! The vendored proptest shim does not shrink, so this suite carries
//! its own schedule minimizer: a failing spec is greedily delta-debugged
//! to a locally minimal failing schedule (fewest sessions, then fewest
//! operations) before the failure is reported, and the minimal spec is
//! appended to `proptest-regressions/` for replay.

use std::sync::Arc;

use proptest::prelude::*;

use borkin_equiv::ansi::ExternalView;
use borkin_equiv::equivalence::translate::CompletionMode;
use borkin_equiv::graph::GraphOp;
use borkin_equiv::server::{
    CommitMode, MemDevice, ServiceConfig, SessionKind, SessionService, ViewSpec,
};
use borkin_equiv::workload::{self, SessionStream, ShopConfig};

/// One generated schedule: everything needed to re-run it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct ScheduleSpec {
    seed: u64,
    sessions: usize,
    ops_each: usize,
    per_op_commit: bool,
}

fn shop_cfg(seed: u64) -> ShopConfig {
    ShopConfig {
        employees: 6,
        machines: 3,
        supervisions: 4,
        seed,
    }
}

fn views(cfg: ShopConfig) -> Vec<ViewSpec> {
    vec![
        ViewSpec {
            name: "shop".into(),
            schema: workload::relational_schema(cfg),
            mode: CompletionMode::Minimal,
        },
        ViewSpec {
            name: "personnel".into(),
            schema: workload::personnel_schema(cfg),
            mode: CompletionMode::Minimal,
        },
    ]
}

/// Runs one schedule concurrently and checks every conformance
/// property. `Err` carries a human-readable violation.
fn run_schedule(spec: ScheduleSpec) -> Result<(), String> {
    run_schedule_with(spec, 0, 1)
}

/// [`run_schedule`] with a checkpoint cadence: `checkpoint_every`
/// commits between images, every `full_checkpoint_every`-th a full one.
/// A non-zero cadence exercises incremental chains, MVCC garbage
/// collection, and WAL truncation *under* the concurrent storm.
fn run_schedule_with(
    spec: ScheduleSpec,
    checkpoint_every: u64,
    full_checkpoint_every: u64,
) -> Result<(), String> {
    let cfg = shop_cfg(spec.seed);
    let initial = workload::graph_state(cfg);
    let config = ServiceConfig {
        commit_mode: if spec.per_op_commit {
            CommitMode::PerOp
        } else {
            CommitMode::Group
        },
        checkpoint_every,
        full_checkpoint_every,
        ..ServiceConfig::default()
    };
    let service = SessionService::new(
        initial.clone(),
        views(cfg),
        config,
        Box::new(MemDevice::new()),
        Box::new(MemDevice::new()),
    )
    .map_err(|e| format!("boot: {e}"))?;

    // A sentinel relational session opened *before* the storm: its
    // pinned snapshot must still read the initial state afterwards, no
    // matter how many commits, checkpoints, or GC passes happened — the
    // MVCC pin, not a private state copy, is what holds that history.
    let sentinel = service
        .open_session(SessionKind::Relational {
            view: "personnel".into(),
        })
        .map_err(|e| format!("sentinel admit: {e}"))?;
    let sentinel_view = {
        let spec = &views(cfg)[1];
        ExternalView::materialize(&spec.name, spec.schema.clone(), &initial, spec.mode)
            .map_err(|e| format!("sentinel oracle: {e}"))?
    };

    let streams = workload::session_streams(cfg, spec.sessions, spec.ops_each);
    std::thread::scope(|scope| {
        for stream in &streams {
            let service = service.clone();
            scope.spawn(move || match stream {
                SessionStream::Graph { ops } => {
                    let mut sess = service
                        .open_session(SessionKind::Graph)
                        .expect("graph session admits");
                    for op in ops {
                        // Aborts are legitimate under interleaving (the
                        // association is already present / already
                        // gone); the conformance claim is about what
                        // *committed*.
                        let _ = sess.submit_graph(vec![op.clone()]);
                    }
                    sess.close().expect("graceful graph teardown");
                }
                SessionStream::Relational { view, ops } => {
                    let mut sess = service
                        .open_session(SessionKind::Relational { view: view.clone() })
                        .expect("relational session admits");
                    for op in ops {
                        let _ = sess.submit_relational(op);
                    }
                    sess.close().expect("graceful relational teardown");
                }
            });
        }
    });

    // The un-refreshed sentinel still reads its pre-storm snapshot.
    if sentinel
        .relational_state()
        .map_err(|e| format!("sentinel read: {e}"))?
        != sentinel_view.state()
    {
        return Err("sentinel snapshot drifted during the storm".into());
    }
    if *sentinel
        .conceptual_state()
        .map_err(|e| format!("sentinel conceptual read: {e}"))?
        != initial
    {
        return Err("sentinel conceptual snapshot drifted during the storm".into());
    }
    sentinel
        .close()
        .map_err(|e| format!("sentinel teardown: {e}"))?;

    if service.open_sessions() != 0 {
        return Err(format!(
            "{} sessions still open after teardown",
            service.open_sessions()
        ));
    }

    // Oracle 1: sequential replay of the committed schedule.
    let history = service.committed_history();
    let mut oracle = initial.clone();
    for txn in &history {
        oracle = GraphOp::apply_all(&txn.ops, &oracle).map_err(|e| {
            format!(
                "committed txn lsn {} does not replay sequentially: {e}",
                txn.lsn
            )
        })?;
    }
    let live = service.conceptual();
    if *live != oracle {
        return Err("final conceptual state != sequential replay of committed schedule".into());
    }
    oracle
        .validate()
        .map_err(|e| format!("committed state violates the conceptual schema: {e}"))?;

    // Oracle 2: every view through the sequential view machinery.
    for spec in views(cfg) {
        let mut view = ExternalView::materialize(&spec.name, spec.schema, &initial, spec.mode)
            .map_err(|e| format!("oracle materialize {}: {e}", spec.name))?;
        let mut cursor = initial.clone();
        for txn in &history {
            view.apply_conceptual(&txn.ops, &cursor)
                .map_err(|e| format!("oracle replay into {}: {e}", spec.name))?;
            cursor = GraphOp::apply_all(&txn.ops, &cursor).expect("already replayed once");
        }
        let served = service
            .view_state(&spec.name)
            .ok_or_else(|| format!("service lost view {}", spec.name))?;
        if view.state() != &served {
            return Err(format!(
                "view {} diverged from its sequential replay",
                spec.name
            ));
        }
        if !view.consistent_with(&oracle) {
            return Err(format!(
                "view {} violates Definition 2 against the final conceptual state",
                spec.name
            ));
        }
    }

    // Oracle 4: time travel. `state_at(lsn)` must reproduce the
    // sequential replay of every committed prefix. Only meaningful when
    // no checkpoint cadence runs — a cadence garbage-collects version
    // history behind the GC horizon, by design.
    if checkpoint_every == 0 {
        let mut cursor = initial.clone();
        let at = service
            .state_at(0)
            .map_err(|e| format!("state_at(0): {e}"))?;
        if at != cursor {
            return Err("state_at(0) != initial state".into());
        }
        for txn in &history {
            cursor = GraphOp::apply_all(&txn.ops, &cursor).expect("already replayed once");
            let at = service
                .state_at(txn.lsn)
                .map_err(|e| format!("state_at({}): {e}", txn.lsn))?;
            if at != cursor {
                return Err(format!(
                    "state_at({}) != sequential replay of the first {} transactions",
                    txn.lsn,
                    history.iter().take_while(|t| t.lsn <= txn.lsn).count()
                ));
            }
        }
    }

    // Oracle 3: recovery from the durable image agrees with the live
    // service.
    let (recovered, report) = SessionService::recover(
        Arc::clone(oracle.schema()),
        &service.durable_image(),
        views(cfg),
        ServiceConfig::default(),
        Box::new(MemDevice::new()),
        Box::new(MemDevice::new()),
    )
    .map_err(|e| format!("recovery: {e}"))?;
    if *recovered.conceptual() != oracle {
        return Err("recovered conceptual state != committed state".into());
    }
    // Without a cadence the only checkpoint is the boot image, so
    // recovery must replay the whole history; under a cadence the
    // resolved chain (and WAL truncation) legitimately bound replay.
    if checkpoint_every == 0 && report.replayed != history.len() {
        return Err(format!(
            "recovery replayed {} of {} committed transactions",
            report.replayed,
            history.len()
        ));
    }
    if report.replayed > history.len() {
        return Err(format!(
            "recovery replayed {} transactions, more than the {} committed",
            report.replayed,
            history.len()
        ));
    }
    Ok(())
}

/// The MVCC economy under fire: the same concurrent schedules, now with
/// checkpoint cadences that interleave incremental images, version GC,
/// base advancement, and WAL truncation with the commit storm — every
/// oracle (including the pinned pre-storm sentinel) must still hold.
#[test]
fn checkpoint_cadences_conform_under_concurrency() {
    for seed in [7, 42, 1978] {
        // (commits per image, images per full): every-full baseline,
        // incremental chains, and a sparser full cadence.
        for (every, full) in [(1, 1), (2, 3), (3, 2)] {
            let spec = ScheduleSpec {
                seed,
                sessions: 5,
                ops_each: 4,
                per_op_commit: seed % 2 == 0,
            };
            run_schedule_with(spec, every, full).unwrap_or_else(|violation| {
                panic!("seed {seed}, cadence ({every},{full}): {violation}")
            });
        }
    }
}

/// Greedy delta-debugging over schedule specs: shrink sessions, then
/// ops per session, keeping any candidate on which the failure still
/// reproduces. `fails` decides reproduction (for the live suite it
/// re-runs the schedule a few times, since interleaving is
/// nondeterministic).
fn minimize_spec<F: Fn(ScheduleSpec) -> bool>(mut spec: ScheduleSpec, fails: F) -> ScheduleSpec {
    loop {
        let mut shrunk = false;
        while spec.sessions > 1 {
            let candidate = ScheduleSpec {
                sessions: spec.sessions - 1,
                ..spec
            };
            if fails(candidate) {
                spec = candidate;
                shrunk = true;
            } else {
                break;
            }
        }
        while spec.ops_each > 1 {
            let candidate = ScheduleSpec {
                ops_each: spec.ops_each - 1,
                ..spec
            };
            if fails(candidate) {
                spec = candidate;
                shrunk = true;
            } else {
                break;
            }
        }
        if !shrunk {
            return spec;
        }
    }
}

/// Re-runs a schedule up to three times; any failure counts as
/// reproducing (concurrent interleavings vary between runs).
fn reproduces(spec: ScheduleSpec) -> bool {
    (0..3).any(|_| run_schedule(spec).is_err())
}

fn record_regression(spec: ScheduleSpec, violation: &str) {
    use std::io::Write;
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("proptest-regressions");
    let _ = std::fs::create_dir_all(&dir);
    if let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(dir.join("service_conformance.txt"))
    {
        let _ = writeln!(f, "# {violation}");
        let _ = writeln!(
            f,
            "seed={} sessions={} ops_each={} per_op_commit={}",
            spec.seed, spec.sessions, spec.ops_each, spec.per_op_commit
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// ≥256 generated interleaved schedules, each checked against the
    /// sequential oracle; failures are minimized before reporting.
    #[test]
    fn concurrent_schedules_conform_to_the_sequential_oracle(
        seed in 0u64..1_000_000,
        sessions in 2usize..=6,
        ops_each in 1usize..=6,
        per_op_commit in 0u32..2,
    ) {
        let spec = ScheduleSpec {
            seed,
            sessions,
            ops_each,
            per_op_commit: per_op_commit == 1,
        };
        if let Err(violation) = run_schedule(spec) {
            let minimal = minimize_spec(spec, reproduces);
            record_regression(minimal, &violation);
            prop_assert!(
                false,
                "schedule violates conformance: {violation}\n  minimal failing spec: {minimal:?}"
            );
        }
    }
}

/// The minimizer itself must find minimal failing schedules: on a
/// synthetic failure predicate with a known frontier, greedy shrinking
/// lands exactly on the frontier.
#[test]
fn minimizer_produces_a_minimal_failing_schedule() {
    let fails = |s: ScheduleSpec| s.sessions >= 3 && s.ops_each >= 2;
    let minimal = minimize_spec(
        ScheduleSpec {
            seed: 7,
            sessions: 6,
            ops_each: 6,
            per_op_commit: false,
        },
        fails,
    );
    assert_eq!((minimal.sessions, minimal.ops_each), (3, 2));
    // Already-minimal specs are fixed points.
    let fixed = minimize_spec(minimal, fails);
    assert_eq!(fixed, minimal);
}

/// Acceptance check: one transaction's `TraceId` is greppable from a
/// JSON-lines transcript and reconstructs the causal path admit →
/// verify (with the equivalence tier that checked it) → group commit →
/// WAL append → recovery replay.
#[test]
fn one_trace_id_reconstructs_the_transaction_causal_path() {
    use borkin_equiv::obs::{JsonLinesSink, Observer};

    let cfg = shop_cfg(7);
    let initial = workload::graph_state(cfg);
    let path = std::env::temp_dir().join(format!(
        "dme_conformance_trace_{}.jsonl",
        std::process::id()
    ));
    let sink = JsonLinesSink::create(&path).unwrap();
    let obs = Observer::new(sink.clone());
    let config = ServiceConfig {
        obs: obs.clone(),
        ..ServiceConfig::default()
    };
    let service = SessionService::new(
        initial.clone(),
        views(cfg),
        config.clone(),
        Box::new(MemDevice::new()),
        Box::new(MemDevice::new()),
    )
    .unwrap();
    let mut sess = service.open_session(SessionKind::Graph).unwrap();
    let mut infos = Vec::new();
    for op in workload::supervision_toggle_ops(cfg, 3) {
        infos.push(sess.submit_graph(vec![op]).unwrap().expect_commit());
    }
    sess.close().unwrap();

    // Recovery replays into the same transcript, closing the loop.
    let (recovered, _) = SessionService::recover(
        Arc::clone(initial.schema()),
        &service.durable_image(),
        views(cfg),
        config,
        Box::new(MemDevice::new()),
        Box::new(MemDevice::new()),
    )
    .unwrap();
    assert_eq!(recovered.conceptual(), service.conceptual());

    sink.flush().unwrap();
    let transcript = std::fs::read_to_string(&path).unwrap();
    std::fs::remove_file(&path).ok();
    // Every commit got a distinct trace id.
    let mut ids: Vec<String> = infos.iter().map(|i| i.trace.to_string()).collect();
    ids.sort();
    ids.dedup();
    assert_eq!(ids.len(), infos.len(), "trace ids are distinct per txn");

    // Grep the middle transaction's id out of the transcript: its
    // trace events, in file (= causal) order.
    let info = &infos[1];
    let needle = info.trace.to_string();
    let mut names = Vec::new();
    let mut verify_detail = String::new();
    for line in transcript.lines().filter(|l| l.contains(&needle)) {
        assert!(line.contains("\"ev\":\"trace\""), "non-trace line: {line}");
        let name = line
            .split("\"name\":\"")
            .nth(1)
            .and_then(|rest| rest.split('"').next())
            .unwrap_or_else(|| panic!("unnamed trace line: {line}"));
        if name == "server/verify" {
            verify_detail = line.to_string();
        }
        names.push(name.to_string());
    }
    assert_eq!(
        names,
        vec![
            "server/admit",
            "server/verify",
            "server/group_commit",
            "server/wal_append",
            "server/replay",
        ],
        "trace {needle} causal path"
    );
    assert!(
        verify_detail.contains("tier=def2-state-equivalence")
            || verify_detail.contains("tier=def1-translation"),
        "verify event names its equivalence tier: {verify_detail}"
    );
    // And the WAL record itself is stamped with the same id.
    let records = borkin_equiv::storage::wal::replay(&service.durable_image().wal).unwrap();
    assert!(
        records
            .iter()
            .any(|r| r.trace == Some(info.trace.as_u64()) && r.lsn == info.lsn),
        "WAL carries the trace stamp"
    );
}

/// Acceptance check for cross-shard stitching: a transaction touching
/// ≥2 shard lanes assembles — via the service's trace hub — into one
/// causal tree rooted at its admit span, with a `server/wal_append`
/// span on *every* involved shard, and each involved shard's WAL frame
/// is stamped with that shard's own span pair.
#[test]
fn a_cross_shard_transaction_stitches_into_one_causal_tree() {
    use borkin_equiv::graph::{Association, EntityRef};
    use borkin_equiv::server::shard::shard_of;
    use borkin_equiv::storage::wal;
    use borkin_equiv::value::Atom;

    const SHARDS: usize = 4;
    let cfg = ShopConfig {
        employees: 12,
        machines: 2,
        supervisions: 0,
        seed: 9,
    };
    let initial = workload::graph_state(cfg);
    let service = SessionService::new_sharded(
        initial,
        Vec::new(),
        ServiceConfig {
            shards: SHARDS,
            ..ServiceConfig::default()
        },
        (0..SHARDS)
            .map(|_| Box::new(MemDevice::new()) as Box<dyn borkin_equiv::server::LogDevice>)
            .collect(),
        Box::new(MemDevice::new()),
    )
    .unwrap();

    // Pick two employees homed on *different* shard lanes so the
    // supervision between them journals cross-shard.
    let employee = |i: usize| EntityRef::new("employee", Atom::str(format!("E{i:05}")));
    let home = shard_of(&employee(0), SHARDS);
    let other = (1..cfg.employees)
        .find(|&i| shard_of(&employee(i), SHARDS) != home)
        .expect("a dozen employees span more than one of four shards");
    let mut sess = service.open_session(SessionKind::Graph).unwrap();
    let info = sess
        .submit_graph(vec![GraphOp::InsertAssociation(Association::new(
            "supervise",
            [("agent", employee(0)), ("object", employee(other))],
        ))])
        .unwrap()
        .expect_commit();
    sess.close().unwrap();

    let involved = vec![
        shard_of(&employee(0), SHARDS).min(shard_of(&employee(other), SHARDS)) as u32,
        shard_of(&employee(0), SHARDS).max(shard_of(&employee(other), SHARDS)) as u32,
    ];
    let asm = service
        .trace_hub()
        .assemble(info.trace)
        .expect("the hub kept the trace");
    assert_eq!(asm.shards(), involved, "spans from every involved shard");
    let events = service.trace_hub().lookup(info.trace).unwrap();
    let admit: Vec<_> = events.iter().filter(|e| e.parent == 0).collect();
    assert_eq!(admit.len(), 1, "one causal root");
    assert_eq!(admit[0].name, "server/admit");
    let tree = asm.to_json(info.trace);
    for step in [
        "server/admit",
        "server/verify",
        "server/group_commit",
        "server/wal_append",
        "server/reply",
    ] {
        assert!(tree.contains(step), "stitched tree lost {step}: {tree}");
    }
    // lookup_trace (the TraceLookup admin surface) renders the same tree.
    assert_eq!(service.lookup_trace(info.trace), tree);

    // Every involved shard's WAL carries the transaction, stamped with
    // that shard's own (span, parent) pair from the stitched tree.
    let image = service.durable_image();
    let wal_bytes =
        |s: u32| -> &Vec<u8> { if s == 0 { &image.wal } else { &image.shard_wals[s as usize - 1] } };
    for &s in &involved {
        let records = wal::replay(wal_bytes(s)).unwrap();
        let record = records
            .iter()
            .find(|r| r.lsn == info.lsn)
            .unwrap_or_else(|| panic!("shard {s} journaled lsn {}", info.lsn));
        assert_eq!(record.trace, Some(info.trace.as_u64()));
        let (span, parent) = record.span.expect("frame is span-stamped");
        let stamped = events
            .iter()
            .find(|e| e.span == span)
            .expect("stamped span is in the stitched tree");
        assert_eq!(stamped.name, "server/wal_append");
        assert_eq!(stamped.shard, Some(s), "frame stamped with its own lane");
        assert_eq!(stamped.parent, parent, "stamp carries the commit parent");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The assembler is order-insensitive: any arrival permutation of a
    /// trace's events stitches into the identical rendered tree (spans
    /// order the tree; arrival order is only a span-less tiebreaker).
    #[test]
    fn trace_assembly_is_order_insensitive(seed in 0u64..1_000_000) {
        use borkin_equiv::obs::{TraceAssembler, TraceEvent, TraceId};

        let event = |seq: u64, span: u64, parent: u64, name: &str, shard: Option<u32>| TraceEvent {
            seq,
            span,
            parent,
            name: name.into(),
            shard,
            detail: format!("step {span}"),
        };
        let canonical = vec![
            event(0, 1, 0, "server/admit", None),
            event(1, 2, 1, "server/verify", None),
            event(2, 3, 1, "server/group_commit", None),
            event(3, 4, 3, "server/wal_append", Some(0)),
            event(4, 5, 3, "server/wal_append", Some(2)),
            event(5, 6, 1, "server/reply", None),
        ];
        let expected = {
            let mut asm = TraceAssembler::new();
            for e in &canonical {
                asm.push(e.clone());
            }
            asm.to_json(TraceId(seed))
        };
        // Fisher–Yates keyed off the case seed: a different arrival
        // permutation per case, same event set.
        let mut mix = seed;
        let mut shuffled = canonical;
        for i in (1..shuffled.len()).rev() {
            mix = mix.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            shuffled.swap(i, (mix >> 33) as usize % (i + 1));
        }
        let mut asm = TraceAssembler::new();
        for e in &shuffled {
            asm.push(e.clone());
        }
        prop_assert_eq!(asm.to_json(TraceId(seed)), expected);
    }
}

/// A deterministic smoke case pinning the oracle end to end (the
/// property above runs it across many random specs).
#[test]
fn fixed_schedule_conforms() {
    run_schedule(ScheduleSpec {
        seed: 42,
        sessions: 6,
        ops_each: 4,
        per_op_commit: false,
    })
    .unwrap();
    run_schedule(ScheduleSpec {
        seed: 43,
        sessions: 4,
        ops_each: 3,
        per_op_commit: true,
    })
    .unwrap();
}
