//! Property tests: the translators keep multi-model databases in
//! lockstep over random operation sequences.
//!
//! This is Definition 4 (state dependent operation equivalence) tested
//! constructively: for a random walk of graph operations from Figure 4,
//! every step's translation applied to the relational replica must land
//! on a state-equivalent pair — and vice versa for random relational
//! walks.

use borkin_equiv::equivalence::enumerate::{enumerate_graph_ops, enumerate_rel_ops};
use borkin_equiv::equivalence::translate::{
    graph_op_to_relational, relational_op_to_graph, CompletionMode, TranslateError,
};
use borkin_equiv::equivalence::witness;
use borkin_equiv::graph::{GraphOp, GraphState};
use borkin_equiv::logic::state_equivalent;
use borkin_equiv::relation::{RelOp, RelationState};
use proptest::prelude::*;
use std::sync::Arc;

fn graph_setup() -> (GraphState, Vec<GraphOp>) {
    let schema = Arc::new(witness::mini_graph_schema());
    let ops = enumerate_graph_ops(&schema);
    (GraphState::empty(schema), ops)
}

fn rel_setup() -> (RelationState, Vec<RelOp>) {
    let schema = witness::mini_relational_schema();
    let ops = enumerate_rel_ops(&schema, 2);
    (RelationState::empty(Arc::new(schema)), ops)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random graph walks stay in lockstep with their translated
    /// relational replica, in both completion modes.
    #[test]
    fn graph_walk_keeps_replicas_equivalent(
        choices in prop::collection::vec(0usize..1000, 1..12),
        state_completed in any::<bool>(),
    ) {
        let (mut graph, gops) = graph_setup();
        let (mut rel, _) = rel_setup();
        let mode = if state_completed {
            CompletionMode::StateCompleted
        } else {
            CompletionMode::Minimal
        };
        for c in choices {
            // Prefer an applicable operation near the chosen index so the
            // walk makes progress; fall back to the erroring one.
            let op = (0..gops.len())
                .map(|d| &gops[(c + d) % gops.len()])
                .find(|op| op.apply(&graph).is_ok())
                .unwrap_or(&gops[c % gops.len()]);
            match graph_op_to_relational(op, &graph, &rel, mode) {
                Ok(rops) => {
                    graph = op.apply(&graph).expect("translator verified source op");
                    rel = RelOp::apply_all(&rops, &rel).expect("translator verified target ops");
                    let eq = state_equivalent(&graph, &rel);
                    prop_assert!(eq.is_equivalent(), "diverged after {op}: {eq}");
                }
                Err(TranslateError::SourceOpFailed(_)) => {
                    // The op errors on the graph side: both replicas stay.
                    prop_assert!(op.apply(&graph).is_err());
                }
                Err(e) => prop_assert!(false, "translation failed for {op}: {e}"),
            }
        }
    }

    /// Random relational walks stay in lockstep with their translated
    /// graph replica.
    #[test]
    fn relational_walk_keeps_replicas_equivalent(
        choices in prop::collection::vec(0usize..10_000, 1..10),
    ) {
        let (mut graph, _) = graph_setup();
        let (mut rel, rops) = rel_setup();
        for c in choices {
            let op = (0..rops.len())
                .map(|d| &rops[(c + d) % rops.len()])
                .find(|op| op.apply(&rel).is_ok())
                .unwrap_or(&rops[c % rops.len()]);
            match relational_op_to_graph(op, &rel, &graph) {
                Ok(gops) => {
                    rel = op.apply(&rel).expect("translator verified source op");
                    graph = GraphOp::apply_all(&gops, &graph)
                        .expect("translator verified target ops");
                    let eq = state_equivalent(&rel, &graph);
                    prop_assert!(eq.is_equivalent(), "diverged after {op}: {eq}");
                }
                Err(TranslateError::SourceOpFailed(_)) => {
                    prop_assert!(op.apply(&rel).is_err());
                }
                Err(e) => prop_assert!(false, "translation failed for {op}: {e}"),
            }
        }
    }

    /// Insert-statements is idempotent: applying the same insertion twice
    /// equals applying it once (and the second application translates to
    /// the empty graph composition).
    #[test]
    fn repeated_insert_is_idempotent(
        choices in prop::collection::vec(0usize..10_000, 1..6),
    ) {
        let (mut rel, rops) = rel_setup();
        for c in choices {
            let op = &rops[c % rops.len()];
            if let Ok(next) = op.apply(&rel) {
                if matches!(op, RelOp::Insert(_)) {
                    prop_assert_eq!(op.apply(&next).ok(), Some(next.clone()));
                }
                rel = next;
            }
        }
    }
}
