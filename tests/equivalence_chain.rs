//! E-D1 … E-D6: the equivalence hierarchy (Definitions 1–6) exercised on
//! the witness application models, establishing the paper's strictness
//! chain
//!
//! > isomorphic ⇒ composed operation ⇒ state dependent
//!
//! with separating witnesses at each level, and the Definition 6
//! data-model check with a partial-equivalence witness. All checks run
//! through the [`Checker`] facade.

use std::sync::Arc;

use borkin_equiv::equivalence::enumerate::{enumerate_graph_ops, enumerate_rel_ops};
use borkin_equiv::equivalence::equiv::EquivKind;
use borkin_equiv::equivalence::model::{graph_model, relational_model, FiniteModel};
use borkin_equiv::equivalence::parallel::{Side, Verdict};
use borkin_equiv::equivalence::witness;
use borkin_equiv::equivalence::{Checker, Tier};
use borkin_equiv::graph::{GraphOp, GraphState};
use borkin_equiv::relation::{RelOp, RelationState, RelationalSchema};

const STATE_CAP: usize = 4_000;

fn rel_model(
    name: &str,
    schema: RelationalSchema,
    max_statements: usize,
) -> FiniteModel<RelationState, RelOp> {
    let ops = enumerate_rel_ops(&schema, max_statements);
    let schema = Arc::new(schema);
    relational_model(name, RelationState::empty(schema), ops)
}

fn graph_witness_model(name: &str) -> FiniteModel<GraphState, GraphOp> {
    let schema = Arc::new(witness::micro_graph_schema());
    let ops = enumerate_graph_ops(&schema);
    graph_model(name, GraphState::empty(schema), ops)
}

/// Witness labels on one side of a counterexample verdict.
fn side_labels(verdict: &Verdict, side: Side) -> Vec<&str> {
    verdict
        .witnesses()
        .iter()
        .filter(|w| w.side == side)
        .map(|w| w.label.as_str())
        .collect()
}

/// E-D1/E-D2: a pure renaming of an application model is isomorphically
/// equivalent — and isomorphic implies composed implies state dependent.
#[test]
fn e_d2_renaming_is_isomorphically_equivalent() {
    let m = rel_model("micro", witness::micro_relational_schema(), 2);
    let n = rel_model(
        "micro-renamed",
        witness::micro_relational_schema_renamed(),
        2,
    );

    let iso = Checker::new(&m, &n)
        .tier(Tier::Isomorphic)
        .state_cap(STATE_CAP)
        .run()
        .unwrap();
    assert!(iso.is_equivalent(), "{iso}");

    // Strictness chain: the weaker equivalences must also hold.
    let composed = Checker::new(&m, &n)
        .tier(Tier::Composed { max_depth: 2 })
        .state_cap(STATE_CAP)
        .run()
        .unwrap();
    assert!(composed.is_equivalent(), "{composed}");
    let state_dep = Checker::new(&m, &n)
        .tier(Tier::StateDependent { max_depth: 2 })
        .state_cap(STATE_CAP)
        .run()
        .unwrap();
    assert!(state_dep.is_equivalent(), "{state_dep}");
}

/// E-D3: the same schema with single-statement vs two-statement
/// operations: composed-operation equivalent (a two-statement insertion
/// is a composition of single insertions) but *not* isomorphic.
#[test]
fn e_d3_composed_but_not_isomorphic() {
    let singles = rel_model("micro-singles", witness::micro_relational_schema(), 1);
    let pairs = rel_model("micro-pairs", witness::micro_relational_schema(), 2);

    let iso = Checker::new(&singles, &pairs)
        .tier(Tier::Isomorphic)
        .state_cap(STATE_CAP)
        .run()
        .unwrap();
    assert!(!iso.is_equivalent());
    // Every single op exists on the pair side; only pair ops lack single
    // equivalents.
    assert!(side_labels(&iso, Side::Left).is_empty(), "{iso}");
    assert!(!side_labels(&iso, Side::Right).is_empty());

    let composed = Checker::new(&singles, &pairs)
        .tier(Tier::Composed { max_depth: 2 })
        .state_cap(STATE_CAP)
        .run()
        .unwrap();
    assert!(composed.is_equivalent(), "{composed}");
}

/// E-D4/E-D5: the micro relational and micro graph models are state
/// dependent equivalent but *not* composed equivalent: `insert-statements`
/// is idempotent while `insert-association` is strict, so the relational
/// insertion corresponds to `insert-association` where the association is
/// absent and to the empty composition where it is present — a per-state
/// choice (§3.3.1's phenomenon, reduced to its essence).
#[test]
fn e_d5_state_dependent_but_not_composed() {
    let m = rel_model("micro-rel", witness::micro_relational_schema(), 2);
    let n = graph_witness_model("micro-graph");

    let composed = Checker::new(&m, &n)
        .tier(Tier::Composed { max_depth: 3 })
        .state_cap(STATE_CAP)
        .run()
        .unwrap();
    assert!(!composed.is_equivalent());
    assert!(
        side_labels(&composed, Side::Left)
            .iter()
            .any(|op| op.starts_with("insert-statements")),
        "the idempotent relational insert should be a witness: {composed}"
    );

    let state_dep = Checker::new(&m, &n)
        .tier(Tier::StateDependent { max_depth: 3 })
        .state_cap(STATE_CAP)
        .run()
        .unwrap();
    assert!(state_dep.is_equivalent(), "{state_dep}");
}

/// §3.3.2's headline claim at machine-shop scale: "By restricting the
/// allowed constraints, total state dependent equivalence can be defined
/// for the semantic relation and graph data models." The mini machine
/// shop — with machines, totality, functionality and semantic units —
/// is state dependent equivalent across the full enumerated closure.
#[test]
fn e_d5_mini_machine_shop_is_state_dependent_equivalent() {
    let m = rel_model("mini-rel", witness::mini_relational_schema(), 2);
    let schema = Arc::new(witness::mini_graph_schema());
    let ops = enumerate_graph_ops(&schema);
    let n = graph_model("mini-graph", GraphState::empty(schema), ops);

    let verdict = Checker::new(&m, &n)
        .tier(Tier::StateDependent { max_depth: 3 })
        .state_cap(STATE_CAP)
        .run()
        .unwrap();
    let Verdict::Equivalent { state_pairs } = verdict else {
        panic!("{verdict}");
    };
    assert!(state_pairs > 20, "non-trivial closure: {state_pairs}");
}

/// §3.3.2: "there may be several relational application models state
/// dependent equivalent to each graph model" — both the three-relation
/// and the single-relation (Figure 9 shape) mini models are equivalent
/// to the mini graph model, so Definition 6's correspondence is
/// many-to-one by construction.
#[test]
fn e_f9_two_relational_models_equivalent_to_one_graph_model() {
    // Depth 8: a single two-statement delete can deny *everything* —
    // both employees, all supervisions, and the machine's semantic unit —
    // which decomposes into up to seven graph operations.
    let kind = EquivKind::StateDependent { max_depth: 8 };
    let ms = vec![
        rel_model("mini-three-relations", witness::mini_relational_schema(), 2),
        rel_model("mini-single-relation", witness::mini_figure9_schema(), 2),
    ];
    let schema = Arc::new(witness::mini_graph_schema());
    let ops = enumerate_graph_ops(&schema);
    let ns = vec![graph_model("mini-graph", GraphState::empty(schema), ops)];

    let verdict = Checker::data_models(&ms, &ns)
        .tier(Tier::DataModel { kind })
        .state_cap(STATE_CAP)
        .run()
        .unwrap();
    assert!(verdict.is_equivalent(), "{verdict}");
    // The one graph model is matched by BOTH relational models: each is
    // pairwise state dependent equivalent to it.
    for m in &ms {
        let pairwise = Checker::new(m, &ns[0])
            .tier(Tier::from_kind(kind))
            .state_cap(STATE_CAP)
            .run()
            .unwrap();
        assert!(
            pairwise.is_equivalent(),
            "{} should match the graph model: {pairwise}",
            m.name()
        );
    }
}

/// E-D6: data model equivalence and its failure mode. The relational
/// data model {micro} and the graph data model {micro} are state
/// dependent equivalent; adding a relational application model whose
/// constraint no graph schema can express leaves the data models only
/// *partially* equivalent.
#[test]
fn e_d6_data_model_equivalence_and_partiality() {
    let kind = EquivKind::StateDependent { max_depth: 3 };

    let graphs: Vec<FiniteModel<GraphState, GraphOp>> = witness::all_micro_graph_schemas()
        .into_iter()
        .enumerate()
        .filter(|(_, schema)| {
            // Totality on a supervise role makes *every* non-empty state
            // invalid (inserting the first employee violates totality, and
            // associations need entities first): keep the generable ones.
            schema.participations().all(|(_, p)| !p.total)
        })
        .map(|(i, schema)| {
            let schema = Arc::new(schema);
            let ops = enumerate_graph_ops(&schema);
            graph_model(format!("graph-{i}"), GraphState::empty(schema), ops)
        })
        .collect();

    // Total equivalence for the unconstrained micro model.
    let ms = vec![rel_model(
        "micro-rel",
        witness::micro_relational_schema(),
        2,
    )];
    let verdict = Checker::data_models(&ms, &graphs[..1])
        .tier(Tier::DataModel { kind })
        .state_cap(STATE_CAP)
        .run()
        .unwrap();
    assert!(verdict.is_equivalent(), "{verdict}");

    // Partial equivalence once the inexpressible model joins.
    let ms = vec![
        rel_model("micro-rel", witness::micro_relational_schema(), 2),
        rel_model(
            "micro-rel-supervisors-supervised",
            witness::micro_relational_schema_supervisors_supervised(),
            2,
        ),
    ];
    let verdict = Checker::data_models(&ms, &graphs)
        .tier(Tier::DataModel { kind })
        .state_cap(STATE_CAP)
        .run()
        .unwrap();
    assert!(!verdict.is_equivalent(), "{verdict}");
    assert_eq!(
        side_labels(&verdict, Side::Left),
        vec!["micro-rel-supervisors-supervised"],
        "exactly the inexpressibly-constrained model lacks a counterpart: {verdict}"
    );
    // The plain model still has a graph counterpart: pairwise it is
    // equivalent to the unconstrained micro graph model.
    let pairwise = Checker::new(&ms[0], &graphs[0])
        .tier(Tier::from_kind(kind))
        .state_cap(STATE_CAP)
        .run()
        .unwrap();
    assert!(pairwise.is_equivalent(), "{pairwise}");
}
