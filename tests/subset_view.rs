//! The §1.2 extension: external schemas describing a **subset** of the
//! conceptual schema.
//!
//! "The external schema may present to the user just a subset of the
//! information described in the conceptual schema. … the definitions to
//! be presented can be extended to handle the case where the external
//! schema describes a subset of the conceptual schema."
//!
//! The personnel view sees employees and supervisions; machines and
//! operate associations are invisible. State equivalence and operation
//! translation are relativized to the view's vocabulary; conceptual
//! cascades outside that vocabulary are permitted side-effects.

use std::sync::Arc;

use borkin_equiv::ansi::MultiModelDatabase;
use borkin_equiv::equivalence::translate::{
    graph_op_to_relational, materialize_relational_state, relational_op_to_graph, CompletionMode,
};
use borkin_equiv::graph::fixtures as gfix;
use borkin_equiv::graph::{Association, EntityRef, GraphOp};
use borkin_equiv::logic::{state_equivalent, ToFacts};
use borkin_equiv::relation::fixtures as rfix;
use borkin_equiv::relation::RelOp;
use borkin_equiv::value::{tuple, Atom};

fn emp(name: &str) -> EntityRef {
    EntityRef::new("employee", Atom::str(name))
}

fn personnel_state() -> borkin_equiv::relation::RelationState {
    let schema = Arc::new(rfix::personnel_schema());
    materialize_relational_state(&schema, &gfix::figure4_state().to_facts())
        .expect("personnel view materializes")
}

#[test]
fn vocabulary_excludes_machines() {
    let vocab = rfix::personnel_schema().vocabulary();
    assert!(vocab.entity_types.contains("employee"));
    assert!(!vocab.entity_types.contains("machine"));
    assert!(vocab.predicates.contains("supervise"));
    assert!(!vocab.predicates.contains("operate"));
    // And the full machine-shop schema's vocabulary covers it.
    assert!(rfix::machine_shop_schema().vocabulary().covers(&vocab));
    assert!(!vocab.covers(&rfix::machine_shop_schema().vocabulary()));
}

#[test]
fn materialization_keeps_only_visible_facts() {
    let view = personnel_state();
    view.well_formed().unwrap();
    assert_eq!(view.tuples("Employees").count(), 3);
    assert_eq!(view.tuples("Supervisions").count(), 1);
    // 3 existence + 3 ages + 1 supervise = 7 facts.
    assert_eq!(view.to_facts().len(), 7);
    // Equivalent to the conceptual state *within the vocabulary*.
    let vocab = view.schema().vocabulary();
    let filtered = vocab.filter(&gfix::figure4_state().to_facts());
    assert!(state_equivalent(&view, &filtered).is_equivalent());
}

#[test]
fn conceptual_update_visible_to_the_view() {
    let view = personnel_state();
    let op = GraphOp::InsertAssociation(Association::new(
        "supervise",
        [("agent", emp("G.Wayshum")), ("object", emp("T.Manhart"))],
    ));
    let rops = graph_op_to_relational(
        &op,
        &gfix::figure4_state(),
        &view,
        CompletionMode::StateCompleted,
    )
    .unwrap();
    let after = RelOp::apply_all(&rops, &view).unwrap();
    assert_eq!(after.tuples("Supervisions").count(), 2);
}

#[test]
fn conceptual_update_invisible_to_the_view() {
    // Deleting the machine unit changes nothing the personnel view can
    // see: the translation is the empty composed operation.
    let view = personnel_state();
    let unit = borkin_equiv::graph::unit::deletion_unit(
        &gfix::figure4_state(),
        [EntityRef::new("machine", Atom::str("NZ745"))],
        [],
    );
    let rops = graph_op_to_relational(
        &GraphOp::DeleteUnit(unit),
        &gfix::figure4_state(),
        &view,
        CompletionMode::Minimal,
    )
    .unwrap();
    assert!(rops.is_empty());
}

#[test]
fn view_update_translates_up() {
    let view = personnel_state();
    let op = RelOp::insert("Supervisions", [tuple!["G.Wayshum", "T.Manhart"]]);
    let gops = relational_op_to_graph(&op, &view, &gfix::figure4_state()).unwrap();
    assert_eq!(gops.len(), 1);
    let after = GraphOp::apply_all(&gops, &gfix::figure4_state()).unwrap();
    assert_eq!(after, gfix::figure6_state());
}

#[test]
fn view_delete_cascades_invisibly() {
    // The personnel clerk deletes T.Manhart (and their statements). On
    // the conceptual side the machine T.Manhart operates must go too —
    // a cascade outside the view's vocabulary, permitted and verified
    // within it.
    let view = personnel_state();
    let op = RelOp::delete("Employees", [tuple!["T.Manhart", 32]]);
    let gops = relational_op_to_graph(&op, &view, &gfix::figure4_state()).unwrap();
    assert_eq!(gops.len(), 1);
    assert!(matches!(&gops[0], GraphOp::DeleteUnit(u) if u.entities.len() == 2));
    let after = GraphOp::apply_all(&gops, &gfix::figure4_state()).unwrap();
    // Machine NZ745 is gone from the conceptual state.
    assert!(after
        .entity(&EntityRef::new("machine", Atom::str("NZ745")))
        .is_none());
    assert!(after.entity(&emp("T.Manhart")).is_none());
}

#[test]
fn ansi_database_with_mixed_full_and_subset_views() {
    let db = MultiModelDatabase::new(gfix::figure4_state()).unwrap();
    db.add_view(
        "full",
        rfix::machine_shop_schema(),
        CompletionMode::StateCompleted,
    )
    .unwrap();
    db.add_view(
        "personnel",
        rfix::personnel_schema(),
        CompletionMode::Minimal,
    )
    .unwrap();
    db.verify_consistency().unwrap();

    // A conceptual machine deletion: the full view changes, the
    // personnel view does not.
    let unit = borkin_equiv::graph::unit::deletion_unit(
        &db.conceptual(),
        [EntityRef::new("machine", Atom::str("NZ745"))],
        [],
    );
    let personnel_before = db.view_state("personnel").unwrap();
    db.update_conceptual(&GraphOp::DeleteUnit(unit)).unwrap();
    db.verify_consistency().unwrap();
    assert_eq!(db.view_state("personnel").unwrap(), personnel_before);
    assert_eq!(
        db.view_state("full").unwrap(),
        rfix::figure8_premise_state()
    );

    // An update through the subset view propagates everywhere.
    let op = RelOp::insert("Supervisions", [tuple!["G.Wayshum", "T.Manhart"]]);
    db.update_view("personnel", &op).unwrap();
    db.verify_consistency().unwrap();
    assert!(db
        .view_state("full")
        .unwrap()
        .tuples("Jobs")
        .any(|t| t[0] == borkin_equiv::value::Value::str("G.Wayshum")
            && t[1] == borkin_equiv::value::Value::str("T.Manhart")));
}
