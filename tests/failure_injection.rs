//! Failure injection: every invalid operation, at every level of every
//! model, must yield the paper's error state and leave the database
//! byte-identical — "one such possible new state is the *error* state"
//! (§2.1), and operations are pure functions of the state.

use borkin_equiv::ansi::MultiModelDatabase;
use borkin_equiv::equivalence::translate::CompletionMode;
use borkin_equiv::graph::fixtures as gfix;
use borkin_equiv::graph::{Association, Entity, EntityRef, GraphOp, SemanticUnit};
use borkin_equiv::relation::fixtures as rfix;
use borkin_equiv::relation::ops::StatementSet;
use borkin_equiv::relation::RelOp;
use borkin_equiv::syntactic::codd::CoddOp;
use borkin_equiv::syntactic::dbtg::{DbtgOp, Record, RecordId};
use borkin_equiv::syntactic::fixtures as sfix;
use borkin_equiv::value::{tuple, Atom, Value};

fn emp(name: &str) -> EntityRef {
    EntityRef::new("employee", Atom::str(name))
}

fn machine(number: &str) -> EntityRef {
    EntityRef::new("machine", Atom::str(number))
}

#[test]
fn every_invalid_relational_op_is_rejected_cleanly() {
    let state = rfix::figure3_state();
    let invalid: Vec<RelOp> = vec![
        // Unknown relation.
        RelOp::insert("Ghost", [tuple!["x"]]),
        // Domain violation.
        RelOp::insert("Employees", [tuple!["Nobody", 32]]),
        // Wrong arity.
        RelOp::insert("Employees", [tuple!["T.Manhart"]]),
        // Null in non-nullable column.
        RelOp::insert("Employees", [tuple![Value::Null, 32]]),
        // Vacuous statement.
        RelOp::insert("Jobs", [tuple![Value::Null, "G.Wayshum", Value::Null]]),
        // Key violation (constraint 3): second operator for JCL181.
        RelOp::insert("Operate", [tuple!["G.Wayshum", "JCL181", "press"]]),
        // Second age for an employee (Unique Employees[0]).
        RelOp::insert("Employees", [tuple!["T.Manhart", 40]]),
        // Agreement violation: Jobs pair Operate lacks.
        RelOp::insert("Jobs", [tuple![Value::Null, "G.Wayshum", "NZ745"]]),
        // Deleting an employee still referenced by statements.
        RelOp::delete("Employees", [tuple!["C.Gershag", 40]]),
        // Multi-relation set where one statement is malformed.
        RelOp::insert_set(
            StatementSet::new()
                .with("Employees", tuple!["T.Manhart", 32])
                .with("Ghost", tuple!["x"]),
        ),
    ];
    for op in invalid {
        assert!(op.apply(&state).is_err(), "{op} should be rejected");
        assert_eq!(state, rfix::figure3_state(), "{op} must not mutate input");
    }
}

#[test]
fn every_invalid_graph_op_is_rejected_cleanly() {
    let state = gfix::figure4_state();
    let bad_entity = Entity::new("employee", [("name", Atom::str("T.Manhart"))]);
    let invalid: Vec<GraphOp> = vec![
        // Existing entity.
        GraphOp::InsertEntity(Entity::new(
            "employee",
            [("name", Atom::str("T.Manhart")), ("age", Atom::int(32))],
        )),
        // Missing characteristic.
        GraphOp::InsertEntity(bad_entity),
        // Unknown type.
        GraphOp::InsertEntity(Entity::new("droid", [("name", Atom::str("R2"))])),
        // Machine without its operation association (semantic unit).
        GraphOp::InsertEntity(Entity::new(
            "machine",
            [("number", Atom::str("NZ745")), ("type", Atom::str("lathe"))],
        )),
        // Entity with live role edges.
        GraphOp::DeleteEntity(emp("G.Wayshum")),
        // Missing entity.
        GraphOp::DeleteEntity(emp("Nobody")),
        // Existing association.
        GraphOp::InsertAssociation(Association::new(
            "supervise",
            [("agent", emp("G.Wayshum")), ("object", emp("C.Gershag"))],
        )),
        // Functionality violation: second operator for NZ745.
        GraphOp::InsertAssociation(Association::new(
            "operate",
            [("agent", emp("C.Gershag")), ("object", machine("NZ745"))],
        )),
        // Totality violation: strip a machine's only operation.
        GraphOp::DeleteAssociation(Association::new(
            "operate",
            [("agent", emp("T.Manhart")), ("object", machine("NZ745"))],
        )),
        // A unit that re-inserts an existing machine.
        GraphOp::InsertUnit(SemanticUnit::new().with_entity(Entity::new(
            "machine",
            [
                ("number", Atom::str("JCL181")),
                ("type", Atom::str("press")),
            ],
        ))),
    ];
    for op in invalid {
        assert!(op.apply(&state).is_err(), "{op} should be rejected");
        assert_eq!(state, gfix::figure4_state(), "{op} must not mutate input");
    }
}

#[test]
fn every_invalid_syntactic_op_is_rejected_cleanly() {
    let codd = sfix::codd_machine_shop_state();
    for op in [
        CoddOp::insert("EMP", [tuple!["T.Manhart", 32]]), // duplicate
        CoddOp::insert("EMP", [tuple![Value::Null, 32]]), // null
        CoddOp::insert("EMP", [tuple!["G.Wayshum", 32]]), // key violation
        CoddOp::delete("EMP", [tuple!["G.Wayshum", 99]]), // absent
        CoddOp::insert("GHOST", [tuple!["x"]]),           // unknown relation
    ] {
        assert!(op.apply(&codd).is_err(), "{op} should be rejected");
        assert_eq!(codd, sfix::codd_machine_shop_state());
    }

    let dbtg = sfix::dbtg_machine_shop_state();
    let tm = dbtg
        .find("EMP", "name", &Atom::str("T.Manhart"))
        .next()
        .expect("fixture employee");
    for op in [
        DbtgOp::Erase(tm),                                // still linked
        DbtgOp::Erase(RecordId(999)),                     // missing
        DbtgOp::Modify(tm, vec![Atom::str("T.Manhart")]), // wrong arity
        DbtgOp::Store(Record::new("EMP", [Atom::str("Nobody"), Atom::int(32)])), // bad domain
        DbtgOp::Disconnect {
            set_type: "SUPERVISES".into(),
            member: tm,
        }, // not connected
    ] {
        assert!(op.apply(&dbtg).is_err(), "{op} should be rejected");
        assert_eq!(dbtg, sfix::dbtg_machine_shop_state());
    }
}

#[test]
fn multi_model_database_survives_a_barrage_of_invalid_updates() {
    let db = MultiModelDatabase::new(gfix::figure4_state()).unwrap();
    db.add_view(
        "full",
        rfix::machine_shop_schema(),
        CompletionMode::StateCompleted,
    )
    .unwrap();
    db.add_view(
        "personnel",
        rfix::personnel_schema(),
        CompletionMode::Minimal,
    )
    .unwrap();

    let graph_attacks = vec![
        GraphOp::DeleteEntity(emp("G.Wayshum")),
        GraphOp::InsertAssociation(Association::new(
            "operate",
            [("agent", emp("C.Gershag")), ("object", machine("NZ745"))],
        )),
    ];
    for op in &graph_attacks {
        assert!(db.update_conceptual(op).is_err());
    }
    let rel_attacks = vec![
        (
            "full",
            RelOp::insert("Operate", [tuple!["G.Wayshum", "JCL181", "press"]]),
        ),
        ("full", RelOp::insert("Ghost", [tuple!["x"]])),
        (
            "personnel",
            RelOp::insert("Supervisions", [tuple!["Nobody", "T.Manhart"]]),
        ),
        (
            "personnel",
            RelOp::delete("Employees", [tuple!["C.Gershag", 40]]),
        ),
    ];
    for (view, op) in &rel_attacks {
        assert!(db.update_view(view, op).is_err(), "{view}: {op}");
    }
    // Nothing moved, everything still consistent.
    db.verify_consistency().unwrap();
    assert_eq!(db.conceptual(), gfix::figure4_state());
    assert_eq!(db.view_state("full").unwrap(), rfix::figure3_state());
}

/// One run of the invalid-update barrage, returning the transcript of
/// every rejection message and the final audit outcome.
fn barrage_transcript() -> Vec<String> {
    let db = MultiModelDatabase::new(gfix::figure4_state()).unwrap();
    db.add_view(
        "full",
        rfix::machine_shop_schema(),
        CompletionMode::StateCompleted,
    )
    .unwrap();
    let mut transcript = Vec::new();
    let graph_attacks = vec![
        GraphOp::DeleteEntity(emp("G.Wayshum")),
        GraphOp::InsertAssociation(Association::new(
            "operate",
            [("agent", emp("C.Gershag")), ("object", machine("NZ745"))],
        )),
        GraphOp::DeleteEntity(emp("Nobody")),
    ];
    for op in &graph_attacks {
        let err = db.update_conceptual(op).unwrap_err();
        transcript.push(format!("{op} => {err}"));
    }
    let rel_attacks = vec![
        RelOp::insert("Operate", [tuple!["G.Wayshum", "JCL181", "press"]]),
        RelOp::insert("Ghost", [tuple!["x"]]),
        RelOp::delete("Employees", [tuple!["C.Gershag", 40]]),
    ];
    for op in &rel_attacks {
        let err = db.update_view("full", op).unwrap_err();
        transcript.push(format!("{op} => {err}"));
    }
    transcript.push(format!("audit => {:?}", db.verify_consistency()));
    transcript
}

/// Failure injection is deterministic: two in-process runs of the same
/// barrage produce identical rejection transcripts — error *messages*
/// included, so diagnostics can be asserted on and diffed.
#[test]
fn failure_barrage_is_deterministic() {
    let first = barrage_transcript();
    let second = barrage_transcript();
    assert_eq!(first, second, "rejection transcripts diverged");
    assert_eq!(first.len(), 7);
    assert!(first.last().unwrap().contains("Ok"), "audit stays green");
}

#[test]
fn storage_transactions_roll_back_on_panic_free_abort() {
    // The internal level's journal under interleaved valid/invalid work.
    let mut store = borkin_equiv::storage::RecordStore::new();
    store.create_table("T").unwrap();
    let mut txn = store.begin();
    txn.insert("T", tuple![1]).unwrap();
    txn.commit();
    for _ in 0..10 {
        let mut txn = store.begin();
        txn.insert("T", tuple![2]).unwrap();
        txn.delete("T", &tuple![1]).unwrap();
        assert!(txn.insert("Ghost", tuple![3]).is_err());
        // Abort by drop.
    }
    assert_eq!(store.scan("T").unwrap(), vec![tuple![1]]);
}

#[test]
fn personnel_delete_of_supervising_employee_is_rejected() {
    // Deleting G.Wayshum through the personnel view: the view itself
    // still asserts the supervision (subset constraint) — error, and the
    // conceptual model is untouched.
    let db = MultiModelDatabase::new(gfix::figure4_state()).unwrap();
    db.add_view(
        "personnel",
        rfix::personnel_schema(),
        CompletionMode::Minimal,
    )
    .unwrap();
    let op = RelOp::delete("Employees", [tuple!["G.Wayshum", 50]]);
    assert!(db.update_view("personnel", &op).is_err());
    db.verify_consistency().unwrap();

    // Denying the supervision in the same statement set succeeds and
    // cascades correctly everywhere.
    let op = RelOp::delete_set(
        StatementSet::new()
            .with("Employees", tuple!["G.Wayshum", 50])
            .with("Supervisions", tuple!["G.Wayshum", "C.Gershag"]),
    );
    db.update_view("personnel", &op).unwrap();
    db.verify_consistency().unwrap();
    assert!(db.conceptual().entity(&emp("G.Wayshum")).is_none());
}
