//! Differential testing of the symbolic bounded-equivalence tier
//! against the enumerative engine (and, with `--features
//! slow-reference`, the pre-arena reference engine).
//!
//! The contract under test: whenever [`SymbolicChecker::run`] returns
//! [`SymbolicOutcome::Definitive`], its verdict — including witnesses,
//! their order, the searched pair count, and pairing/closure *errors* —
//! is **bit-identical** to running the enumerative [`Checker`] facade
//! on the same models. Four proofs:
//!
//! 1. **Corpus differential** — the 64-scenario workload corpus, each
//!    base paired against one of its adversarial mutants, across
//!    Definitions 1/2/3/5 (and Definition 6 grids on scenario sets).
//! 2. **Mutation differential** — every mutation kind the generator can
//!    derive, on dense probe scenarios; a disagreement is greedily
//!    minimized and appended to `proptest-regressions/symbolic.txt`
//!    before the panic (the vendored proptest shim has no shrinking or
//!    persistence of its own).
//! 3. **Random toy models** — proptest over the same toy universe as
//!    `tests/differential.rs`, so the symbolic tier faces the exact
//!    model distribution the enumerative engines were proven on.
//! 4. **Bound soundness** — every witness the find mode produces at
//!    bound *k* replays as a real concrete counterexample: the two
//!    paths execute strictly in the concrete models, meet at the same
//!    fact base, and the probed operation really does disagree there
//!    with every opposite operation.
//!
//! [`SymbolicOutcome::BoundExhausted`] is pinned to mean "no verdict",
//! never "equivalent": the suite asserts it carries no verdict at all
//! and that raising the bound on the same pair yields the enumerative
//! answer.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs;
use std::io::Write as _;
use std::path::PathBuf;

use proptest::prelude::*;

use borkin_equiv::equivalence::equiv::{CheckError, EquivKind};
use borkin_equiv::equivalence::model::FiniteModel;
use borkin_equiv::equivalence::parallel::Verdict;
use borkin_equiv::equivalence::symbolic::{
    SymbolicChecker, SymbolicOp, SymbolicOutcome, SymbolicSpec,
};
use borkin_equiv::equivalence::{Checker, Tier};
use borkin_equiv::logic::{Fact, FactBase};
use borkin_equiv::obs::{Counter, Observer, RingSink};
use borkin_equiv::value::Atom;
use borkin_equiv::workload::scenario::{corpus, Mutation, Scenario, ScenarioConfig, ScenarioOp};

const STATE_CAP: usize = 4096;
/// Deep enough to certify the closure fixpoint of every corpus scenario
/// (toggle count + 1 BFS rounds); see `bound_exhaustion_is_no_verdict`
/// for what happens below that.
const BOUND: usize = 12;

const KINDS: [EquivKind; 3] = [
    EquivKind::Isomorphic,
    EquivKind::Composed { max_depth: 2 },
    EquivKind::StateDependent { max_depth: 2 },
];

/// Every pair tier the symbolic checker must agree on: Definition 1
/// plus the three application-model definitions.
const PAIR_TIERS: [Tier; 4] = [
    Tier::Operation,
    Tier::Isomorphic,
    Tier::Composed { max_depth: 2 },
    Tier::StateDependent { max_depth: 2 },
];

type Model = FiniteModel<FactBase, ScenarioOp>;
type Outcome = Result<Verdict, CheckError>;

/// The enumerative ground truth through the facade.
fn full_check(m: &Model, n: &Model, tier: Tier) -> Outcome {
    Checker::new(m, n).tier(tier).state_cap(STATE_CAP).run()
}

fn symbolic_check(m: &SymbolicSpec, n: &SymbolicSpec, tier: Tier) -> SymbolicOutcome {
    SymbolicChecker::new(m, n)
        .tier(tier)
        .state_cap(STATE_CAP)
        .bound(BOUND)
        .run()
}

/// Unwraps a definitive outcome; the corpus is sized so BOUND always
/// certifies the fixpoint, so exhaustion here is itself a failure.
fn definitive(outcome: SymbolicOutcome, context: &str) -> Outcome {
    match outcome {
        SymbolicOutcome::Definitive(r) => r,
        SymbolicOutcome::BoundExhausted {
            bound,
            states_found,
        } => panic!(
            "{context}: bound {bound} exhausted after {states_found} states — \
             corpus closures must fit the suite bound"
        ),
    }
}

// ---------------------------------------------------------------------
// 1. Corpus differential
// ---------------------------------------------------------------------

/// The 64-scenario corpus, each base against one of its mutants, on a
/// rotating definition plus always Definition 1: symbolic ≡ enumerative
/// bit for bit (verdict, witnesses, errors).
#[test]
fn symbolic_agrees_with_enumerative_on_the_corpus() {
    let scenarios = corpus(0xB05_EED, 64);
    assert!(scenarios.len() >= 64);
    for (i, base) in scenarios.iter().enumerate() {
        let mutations = base.mutations();
        let mutant = base.mutate(mutations[i % mutations.len()]);
        let m = base.model("left");
        let n = mutant.model("right");
        let ms = base.symbolic_spec("left");
        let ns = mutant.symbolic_spec("right");
        for tier in [Tier::from_kind(KINDS[i % KINDS.len()]), Tier::Operation] {
            let full = full_check(&m, &n, tier);
            let sym = definitive(
                symbolic_check(&ms, &ns, tier),
                &format!("scenario {i} tier {tier:?}"),
            );
            assert_eq!(sym, full, "scenario {i} tier {tier:?} diverges");
        }
    }
}

/// Definition 6 grids over scenario *sets*: the symbolic grid loop must
/// reproduce the enumerative grid's partial-equivalence verdicts, cell
/// pairing skips included.
#[test]
fn symbolic_agrees_on_data_model_grids() {
    let scenarios = corpus(0x6121D, 8);
    for kind in KINDS {
        for chunk in scenarios.chunks(4) {
            let ms: Vec<Model> = chunk
                .iter()
                .enumerate()
                .map(|(i, s)| s.model(&format!("m{i}")))
                .collect();
            let mutant = chunk[0].mutate(chunk[0].mutations()[0]);
            let ns: Vec<Model> = std::iter::once(&mutant)
                .chain(chunk.iter().skip(1))
                .enumerate()
                .map(|(i, s)| s.model(&format!("n{i}")))
                .collect();
            let m_specs: Vec<SymbolicSpec> = chunk
                .iter()
                .enumerate()
                .map(|(i, s)| s.symbolic_spec(&format!("m{i}")))
                .collect();
            let n_specs: Vec<SymbolicSpec> = std::iter::once(&mutant)
                .chain(chunk.iter().skip(1))
                .enumerate()
                .map(|(i, s)| s.symbolic_spec(&format!("n{i}")))
                .collect();
            let full = Checker::data_models(&ms, &ns)
                .tier(Tier::DataModel { kind })
                .state_cap(STATE_CAP)
                .run();
            let sym = definitive(
                SymbolicChecker::data_models(&m_specs, &n_specs)
                    .tier(Tier::DataModel { kind })
                    .state_cap(STATE_CAP)
                    .bound(BOUND)
                    .run(),
                &format!("grid kind {kind:?}"),
            );
            assert_eq!(sym, full, "Definition 6 grid diverges for {kind:?}");
        }
    }
}

// ---------------------------------------------------------------------
// 2. Mutation differential with greedy minimization
// ---------------------------------------------------------------------

/// One differential probe: compare symbolic against enumerative (and
/// the slow reference, when compiled) for `base` vs its mutant on every
/// pair tier. Returns a description of the first disagreement.
fn mismatch(base: &Scenario, mutation: Mutation) -> Option<String> {
    let mutant = base.mutate(mutation);
    let m = base.model("left");
    let n = mutant.model("right");
    let ms = base.symbolic_spec("left");
    let ns = mutant.symbolic_spec("right");
    for tier in PAIR_TIERS {
        let full = full_check(&m, &n, tier);
        let sym = match symbolic_check(&ms, &ns, tier) {
            SymbolicOutcome::Definitive(r) => r,
            SymbolicOutcome::BoundExhausted { bound, .. } => {
                return Some(format!("tier {tier:?}: bound {bound} exhausted on a probe"))
            }
        };
        if sym != full {
            return Some(format!("tier {tier:?}: symbolic {sym:?} != full {full:?}"));
        }
        #[cfg(feature = "slow-reference")]
        if let Some(kind) = match tier {
            Tier::Isomorphic => Some(EquivKind::Isomorphic),
            Tier::Composed { max_depth } => Some(EquivKind::Composed { max_depth }),
            Tier::StateDependent { max_depth } => Some(EquivKind::StateDependent { max_depth }),
            _ => None,
        } {
            use borkin_equiv::equivalence::slow_reference;
            let slow = slow_reference::app_models_verdict_slow(&m, &n, kind, STATE_CAP);
            if sym != slow {
                return Some(format!("tier {tier:?}: symbolic {sym:?} != slow {slow:?}"));
            }
        }
    }
    None
}

/// Rewrites a mutation's index after removing constraint `removed`;
/// `None` when the mutation targeted it.
fn remap_constraint_removal(mutation: Mutation, removed: usize) -> Option<Mutation> {
    match mutation {
        Mutation::DropConstraint(k) if k == removed => None,
        Mutation::DropConstraint(k) if k > removed => Some(Mutation::DropConstraint(k - 1)),
        other => Some(other),
    }
}

/// Rewrites a mutation's index after removing operation `removed`;
/// `None` when the mutation targeted it.
fn remap_op_removal(mutation: Mutation, removed: usize) -> Option<Mutation> {
    let shift = |k: usize| if k > removed { k - 1 } else { k };
    match mutation {
        Mutation::DropConstraint(_) => Some(mutation),
        Mutation::SwapOpDirection(k) if k != removed => Some(Mutation::SwapOpDirection(shift(k))),
        Mutation::RenameBinding(k) if k != removed => Some(Mutation::RenameBinding(shift(k))),
        Mutation::DropOp(k) if k != removed => Some(Mutation::DropOp(shift(k))),
        _ => None,
    }
}

/// Greedy 1-removal minimizer: keep deleting constraints and operations
/// from the base scenario while the symbolic-vs-enumerative mismatch
/// reproduces.
fn minimize(mut base: Scenario, mut mutation: Mutation) -> (Scenario, Mutation) {
    loop {
        let mut shrunk = false;
        for i in 0..base.constraints.len() {
            if let Some(remapped) = remap_constraint_removal(mutation, i) {
                let mut candidate = base.clone();
                candidate.constraints.remove(i);
                if mismatch(&candidate, remapped).is_some() {
                    base = candidate;
                    mutation = remapped;
                    shrunk = true;
                    break;
                }
            }
        }
        if shrunk {
            continue;
        }
        for i in 0..base.ops.len() {
            if base.ops.len() == 1 {
                break;
            }
            if let Some(remapped) = remap_op_removal(mutation, i) {
                let mut candidate = base.clone();
                candidate.ops.remove(i);
                if mismatch(&candidate, remapped).is_some() {
                    base = candidate;
                    mutation = remapped;
                    shrunk = true;
                    break;
                }
            }
        }
        if !shrunk {
            return (base, mutation);
        }
    }
}

/// Appends a minimized counterexample to
/// `proptest-regressions/symbolic.txt` (human-readable repro record; CI
/// uploads the directory as an artifact on failure).
fn persist_regression(base: &Scenario, mutation: Mutation, detail: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("proptest-regressions");
    let _ = fs::create_dir_all(&dir);
    let path = dir.join("symbolic.txt");
    let mut entry = String::new();
    let _ = writeln!(entry, "# symbolic-vs-enumerative mismatch (minimized): {detail}");
    let _ = writeln!(entry, "cc mutation={mutation:?} scenario={base:?}");
    if let Ok(mut file) = fs::OpenOptions::new().create(true).append(true).open(&path) {
        let _ = file.write_all(entry.as_bytes());
    }
    path
}

/// For every mutation kind on every probe scenario, symbolic and
/// enumerative verdicts agree exactly. A disagreement is minimized and
/// persisted before failing.
#[test]
fn every_mutation_kind_matches_the_enumerative_engine() {
    let probes = [
        ScenarioConfig {
            seed: 0x5EB1,
            toggles: 3,
            fact_arity: 2,
            constraint_density: 1.0,
            composite_ops: 2,
        },
        ScenarioConfig {
            seed: 0x5EB2,
            toggles: 4,
            fact_arity: 1,
            constraint_density: 0.5,
            composite_ops: 1,
        },
        ScenarioConfig {
            seed: 0x5EB3,
            toggles: 2,
            fact_arity: 3,
            constraint_density: 1.5,
            composite_ops: 0,
        },
    ];
    let mut covered = std::collections::BTreeSet::new();
    for config in probes {
        let base = Scenario::generate(config);
        for mutation in base.mutations() {
            covered.insert(match mutation {
                Mutation::DropConstraint(_) => "drop-constraint",
                Mutation::SwapOpDirection(_) => "swap-op-direction",
                Mutation::RenameBinding(_) => "rename-binding",
                Mutation::DropOp(_) => "drop-op",
            });
            if let Some(detail) = mismatch(&base, mutation) {
                let (min_base, min_mutation) = minimize(base.clone(), mutation);
                let path = persist_regression(&min_base, min_mutation, &detail);
                panic!(
                    "symbolic differential failed ({detail}); minimized case appended \
                     to {}: mutation {min_mutation:?} on {min_base:?}",
                    path.display()
                );
            }
        }
    }
    assert_eq!(covered.len(), 4, "all four mutation kinds exercised");
}

// ---------------------------------------------------------------------
// 3. Random toy models (proptest)
// ---------------------------------------------------------------------

fn fact(n: u8) -> Fact {
    Fact::new("p", [("x", Atom::Int(n as i64))])
}

/// The toy-model universe of `tests/differential.rs`: label-sorted
/// single-step insert/delete operations over a 3-fact universe.
fn toy_universe(ops: &[(bool, u8)]) -> BTreeMap<String, (bool, Fact)> {
    ops.iter()
        .map(|(add, n)| {
            let f = fact(*n);
            (format!("{}{}", if *add { "+" } else { "-" }, f), (*add, f))
        })
        .collect()
}

fn toy_model(name: &str, ops: &[(bool, u8)]) -> FiniteModel<FactBase, String> {
    let universe = toy_universe(ops);
    let op_names: Vec<String> = universe.keys().cloned().collect();
    FiniteModel::new(name, FactBase::default(), op_names, move |op, s| {
        let (add, f) = &universe[op];
        let mut next = s.clone();
        if *add {
            next.insert(f.clone()).then_some(next)
        } else {
            next.remove(f).then_some(next)
        }
    })
}

/// The same toy model as a symbolic spec — identical labels, identical
/// op order, identical strict semantics.
fn toy_spec(name: &str, ops: &[(bool, u8)]) -> SymbolicSpec {
    let mut facts: Vec<Fact> = Vec::new();
    let ops: Vec<SymbolicOp> = toy_universe(ops)
        .into_iter()
        .map(|(label, (add, f))| {
            let v = match facts.iter().position(|g| *g == f) {
                Some(i) => i,
                None => {
                    facts.push(f);
                    facts.len() - 1
                }
            };
            SymbolicOp {
                label,
                steps: vec![(add, v)],
            }
        })
        .collect();
    SymbolicSpec {
        name: name.to_owned(),
        facts,
        ops,
        constraints: Vec::new(),
    }
}

fn ops_strategy() -> impl Strategy<Value = Vec<(bool, u8)>> {
    prop::collection::vec((any::<bool>(), 0u8..3), 1..6)
}

fn tier_strategy() -> impl Strategy<Value = Tier> {
    prop_oneof![
        Just(Tier::Operation),
        Just(Tier::Isomorphic),
        (0usize..3).prop_map(|max_depth| Tier::Composed { max_depth }),
        (0usize..3).prop_map(|max_depth| Tier::StateDependent { max_depth }),
    ]
}

proptest! {
    /// On every random toy-model pair and every tier, the symbolic
    /// verdict equals the enumerative facade's — including errors.
    #[test]
    fn symbolic_agrees_on_random_toy_models(
        m_ops in ops_strategy(),
        n_ops in ops_strategy(),
        tier in tier_strategy(),
    ) {
        let m = toy_model("m", &m_ops);
        let n = toy_model("n", &n_ops);
        let full = Checker::new(&m, &n).tier(tier).state_cap(STATE_CAP).run();
        let sym = SymbolicChecker::new(&toy_spec("m", &m_ops), &toy_spec("n", &n_ops))
            .tier(tier)
            .state_cap(STATE_CAP)
            .bound(BOUND)
            .run();
        match sym {
            SymbolicOutcome::Definitive(r) => prop_assert_eq!(r, full),
            SymbolicOutcome::BoundExhausted { .. } => prop_assert!(
                false,
                "toy closures (≤ 8 states) must close within bound {}",
                BOUND
            ),
        }
    }

    /// Bound soundness of the find mode: every counterexample witness
    /// produced at a finite bound replays concretely — the two paths
    /// execute strictly, meet at the same fact base, and the probed
    /// operation genuinely disagrees there with each opposite operation
    /// its traces name.
    #[test]
    fn find_mode_witnesses_replay_concretely(
        m_ops in ops_strategy(),
        n_ops in ops_strategy(),
    ) {
        let ms = toy_spec("m", &m_ops);
        let ns = toy_spec("n", &n_ops);
        let found = SymbolicChecker::new(&ms, &ns)
            .bound(3)
            .find_counterexample()
            .unwrap();
        if let Some(cx) = found {
            let (probe_spec, other_spec) = match cx.side {
                borkin_equiv::equivalence::parallel::Side::Left => (&ms, &ns),
                borkin_equiv::equivalence::parallel::Side::Right => (&ns, &ms),
            };
            prop_assert_eq!(&probe_spec.ops[cx.op_index].label, &cx.label);
            for trace in &cx.traces {
                let at_m = ms.replay(&trace.path_m);
                let at_n = ns.replay(&trace.path_n);
                prop_assert!(at_m.is_some(), "left path must replay strictly");
                prop_assert!(at_n.is_some(), "right path must replay strictly");
                let meet = at_m.unwrap();
                prop_assert_eq!(&meet, &at_n.unwrap(), "paths must meet");
                // The meet replays on both sides, so it lies inside both
                // universes and `apply_op` is exact for either spec.
                let probe_result = probe_spec.apply_op(cx.op_index, &meet);
                let other_result = other_spec.apply_op(trace.vs_op, &meet);
                prop_assert_ne!(
                    probe_result,
                    other_result,
                    "witness claims the ops disagree at the meet state"
                );
            }
            // A found counterexample and a definitive Def-2 verdict on
            // the same pair cannot contradict each other.
            let decide = SymbolicChecker::new(&ms, &ns).bound(BOUND).run();
            if let SymbolicOutcome::Definitive(Ok(verdict)) = decide {
                prop_assert!(
                    matches!(verdict, Verdict::Counterexample { .. }),
                    "find mode found {:?} but decide mode says {:?}",
                    cx,
                    verdict
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// 4. Bound semantics and instrumentation
// ---------------------------------------------------------------------

/// `BoundExhausted` is "no verdict", never "equivalent": the outcome
/// carries no `Verdict` at all, and re-running with a sufficient bound
/// produces the enumerative answer — which here is a counterexample the
/// small bound could not see.
#[test]
fn bound_exhaustion_is_no_verdict() {
    let base = Scenario::generate(ScenarioConfig {
        seed: 0xB0B0,
        toggles: 4,
        fact_arity: 1,
        constraint_density: 0.0,
        composite_ops: 0,
    });
    let mutant = base.mutate(Mutation::DropOp(1));
    let ms = base.symbolic_spec("left");
    let ns = mutant.symbolic_spec("right");
    // Closure diameter is 4 (all four facts set), so bound 2 cannot
    // certify the fixpoint on either side.
    let short = SymbolicChecker::new(&ms, &ns).bound(2).run();
    match short {
        SymbolicOutcome::BoundExhausted {
            bound,
            states_found,
        } => {
            assert_eq!(bound, 2);
            assert!(states_found > 0);
        }
        SymbolicOutcome::Definitive(_) => panic!("bound 2 must exhaust on a 4-toggle closure"),
    }
    assert!(short.definitive().is_none(), "exhaustion yields no verdict");
    let long = definitive(
        SymbolicChecker::new(&ms, &ns).bound(BOUND).run(),
        "sufficient bound",
    );
    let full = full_check(&base.model("left"), &mutant.model("right"), Tier::Isomorphic);
    assert_eq!(long, full);
    assert!(
        matches!(long, Ok(Verdict::Counterexample { .. })),
        "the dropped op is exactly what a premature 'equivalent' would have missed"
    );
}

/// The observer counters: clauses and conflicts accumulate on every
/// run; `bound_exhausted` increments only when the bound runs out.
#[test]
fn symbolic_counters_reach_the_observer() {
    let base = Scenario::generate(ScenarioConfig {
        seed: 0xC0C0,
        toggles: 3,
        fact_arity: 1,
        constraint_density: 0.5,
        composite_ops: 1,
    });
    let ms = base.symbolic_spec("left");
    let ns = base.symbolic_spec("right");
    let obs = Observer::new(RingSink::with_capacity(64));
    let outcome = SymbolicChecker::new(&ms, &ns)
        .bound(BOUND)
        .observer(obs.clone())
        .run();
    assert!(outcome.definitive().is_some());
    assert!(obs.counter(Counter::SymbolicClauses) > 0, "encoding emits clauses");
    assert_eq!(obs.counter(Counter::BoundExhausted), 0);
    let exhausted = SymbolicChecker::new(&ms, &ns)
        .bound(1)
        .observer(obs.clone())
        .run();
    assert!(exhausted.is_bound_exhausted());
    assert_eq!(obs.counter(Counter::BoundExhausted), 1);
}
