//! Property suite for the typed wire codec: every [`Request`] and
//! [`Response`] variant round-trips through its payload encoding and
//! its CRC framing, and the framing rejects *every* single-byte
//! truncation and *every* single-bit flip — at every byte offset of the
//! frame, header and payload and checksum alike.

use proptest::prelude::*;

use borkin_equiv::graph::{Association, Entity, EntityRef, GraphOp, SemanticUnit};
use borkin_equiv::obs::TraceId;
use borkin_equiv::relation::ops::StatementSet;
use borkin_equiv::relation::RelOp;
use borkin_equiv::server::wire::{
    decode_request_frame, decode_response_frame, encode_request_frame, encode_response_frame,
    Request, Response,
};
use borkin_equiv::server::{AdminRequest, CommitInfo, ServerError, SessionKind};
use borkin_equiv::value::{Atom, Tuple, Value};

/// Deterministic splitmix64 — the suite's only entropy source, so a
/// failing seed replays exactly.
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }

    fn string(&mut self) -> String {
        let len = self.below(12) as usize;
        let mut s: String = (0..len)
            .map(|_| char::from(b'a' + (self.below(26) as u8)))
            .collect();
        if self.below(4) == 0 {
            // Non-ASCII sometimes: the codec is length-prefixed UTF-8,
            // not ASCII.
            s.push('λ');
        }
        s
    }

    fn atom(&mut self) -> Atom {
        match self.below(3) {
            0 => Atom::Bool(self.below(2) == 0),
            1 => Atom::Int(self.next() as i64),
            _ => Atom::Str(self.string()),
        }
    }

    fn value(&mut self) -> Value {
        if self.below(4) == 0 {
            Value::Null
        } else {
            Value::Atom(self.atom())
        }
    }

    fn tuple(&mut self) -> Tuple {
        let n = self.below(4) as usize;
        (0..n).map(|_| self.value()).collect()
    }

    fn entity_ref(&mut self) -> EntityRef {
        EntityRef::new(self.string(), self.atom())
    }

    fn entity(&mut self) -> Entity {
        let n = self.below(3) as usize + 1;
        Entity::new(
            self.string(),
            (0..n)
                .map(|_| (self.string(), self.atom()))
                .collect::<Vec<_>>(),
        )
    }

    fn association(&mut self) -> Association {
        let n = self.below(3) as usize + 1;
        Association::new(
            self.string(),
            (0..n)
                .map(|_| (self.string(), self.entity_ref()))
                .collect::<Vec<_>>(),
        )
    }

    fn unit(&mut self) -> SemanticUnit {
        let mut u = SemanticUnit::new();
        for _ in 0..self.below(3) {
            u.entities.push(self.entity());
        }
        for _ in 0..self.below(3) {
            u.associations.push(self.association());
        }
        u
    }

    fn graph_op(&mut self) -> GraphOp {
        match self.below(6) {
            0 => GraphOp::InsertEntity(self.entity()),
            1 => GraphOp::DeleteEntity(self.entity_ref()),
            2 => GraphOp::InsertAssociation(self.association()),
            3 => GraphOp::DeleteAssociation(self.association()),
            4 => GraphOp::InsertUnit(self.unit()),
            _ => GraphOp::DeleteUnit(self.unit()),
        }
    }

    fn statements(&mut self) -> StatementSet {
        let mut s = StatementSet::new();
        for _ in 0..self.below(3) + 1 {
            let relation = self.string();
            for _ in 0..self.below(3) {
                s.add(relation.clone(), self.tuple());
            }
        }
        s
    }

    fn rel_op(&mut self) -> RelOp {
        if self.below(2) == 0 {
            RelOp::Insert(self.statements())
        } else {
            RelOp::Delete(self.statements())
        }
    }

    fn session_kind(&mut self) -> SessionKind {
        if self.below(2) == 0 {
            SessionKind::Graph
        } else {
            SessionKind::Relational {
                view: self.string(),
            }
        }
    }

    fn commit_info(&mut self) -> CommitInfo {
        CommitInfo {
            lsn: self.next(),
            version: self.next(),
            attempts: (self.below(5) + 1) as u32,
            trace: TraceId(self.next()),
        }
    }
}

/// One of each request variant, with randomized contents.
fn sample_requests(mix: &mut Mix) -> Vec<Request> {
    vec![
        Request::OpenSession {
            kind: mix.session_kind(),
        },
        Request::SubmitGraph {
            session: mix.next(),
            ops: (0..mix.below(4)).map(|_| mix.graph_op()).collect(),
        },
        Request::SubmitRelational {
            session: mix.next(),
            op: mix.rel_op(),
        },
        Request::Refresh {
            session: mix.next(),
        },
        Request::Close {
            session: mix.next(),
        },
        Request::ViewState { view: mix.string() },
        Request::Metrics {
            json: mix.below(2) == 0,
        },
        Request::Checkpoint,
        Request::Admin {
            body: (0..mix.below(8)).map(|_| mix.next() as u8).collect(),
        },
        // Typed admin bodies ride the same frame: the observability
        // operations must survive the framing sweeps too.
        Request::Admin {
            body: AdminRequest::TraceLookup(mix.next()).encode(),
        },
        Request::Admin {
            body: AdminRequest::WatchMetrics {
                interval_ms: mix.next() as u32,
            }
            .encode(),
        },
    ]
}

/// One of each response variant, with randomized contents.
fn sample_responses(mix: &mut Mix) -> Vec<Response> {
    vec![
        Response::SessionOpened {
            session: mix.next(),
        },
        Response::Committed(mix.commit_info()),
        Response::Overloaded {
            shard: mix.next(),
            depth: mix.next(),
        },
        Response::Refreshed {
            version: mix.next(),
        },
        Response::Closed,
        Response::ViewState {
            relations: (0..mix.below(3))
                .map(|_| {
                    (
                        mix.string(),
                        (0..mix.below(3)).map(|_| mix.tuple()).collect(),
                    )
                })
                .collect(),
        },
        Response::Metrics { body: mix.string() },
        Response::CheckpointTaken,
        Response::Admin { body: mix.string() },
        Response::MetricsDelta { body: mix.string() },
        Response::Error {
            code: ServerError::UnknownSession(0).code(),
            message: mix.string(),
        },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every request variant round-trips through payload + frame, and
    /// the frame echoes its correlation id.
    #[test]
    fn requests_round_trip(seed in 0u64..1_000_000) {
        let mut mix = Mix(seed);
        for request in sample_requests(&mut mix) {
            let payload = request.encode();
            prop_assert_eq!(
                &Request::decode(&payload).unwrap(),
                &request,
                "payload round trip"
            );
            let correlation = mix.next();
            let frame = encode_request_frame(correlation, &request);
            let (corr, back) = decode_request_frame(&frame).unwrap();
            prop_assert_eq!(corr, correlation);
            prop_assert_eq!(back, request);
        }
    }

    /// Every response variant round-trips the same way.
    #[test]
    fn responses_round_trip(seed in 0u64..1_000_000) {
        let mut mix = Mix(seed);
        for response in sample_responses(&mut mix) {
            let payload = response.encode();
            prop_assert_eq!(
                &Response::decode(&payload).unwrap(),
                &response,
                "payload round trip"
            );
            let correlation = mix.next();
            let frame = encode_response_frame(correlation, &response);
            let (corr, back) = decode_response_frame(&frame).unwrap();
            prop_assert_eq!(corr, correlation);
            prop_assert_eq!(back, response);
        }
    }

    /// Truncating a request frame anywhere — including cutting zero
    /// bytes off a non-empty tail — never decodes.
    #[test]
    fn every_truncation_is_rejected(seed in 0u64..1_000_000) {
        let mut mix = Mix(seed);
        for request in sample_requests(&mut mix) {
            let frame = encode_request_frame(mix.next(), &request);
            for cut in 0..frame.len() {
                prop_assert!(
                    decode_request_frame(&frame[..cut]).is_err(),
                    "{} bytes of a {}-byte frame decoded",
                    cut,
                    frame.len()
                );
            }
        }
    }

    /// Flipping any single bit anywhere in the frame — magic, flags,
    /// correlation id, length, payload, or checksum — is rejected.
    #[test]
    fn every_bit_flip_is_rejected(seed in 0u64..1_000_000) {
        let mut mix = Mix(seed);
        // One request and one response per case keep the quadratic
        // bit-sweep affordable; across 64 cases every variant is swept
        // many times.
        let requests = sample_requests(&mut mix);
        let request = &requests[mix.below(requests.len() as u64) as usize];
        let frame = encode_request_frame(mix.next(), request);
        for at in 0..frame.len() {
            for bit in 0..8 {
                let mut bent = frame.clone();
                bent[at] ^= 1 << bit;
                prop_assert!(
                    decode_request_frame(&bent).is_err(),
                    "bit {} of byte {} flipped and still decoded",
                    bit,
                    at
                );
            }
        }
        let responses = sample_responses(&mut mix);
        let response = &responses[mix.below(responses.len() as u64) as usize];
        let frame = encode_response_frame(mix.next(), response);
        for at in 0..frame.len() {
            for bit in 0..8 {
                let mut bent = frame.clone();
                bent[at] ^= 1 << bit;
                prop_assert!(
                    decode_response_frame(&bent).is_err(),
                    "bit {} of byte {} flipped and still decoded",
                    bit,
                    at
                );
            }
        }
    }

    /// Appending trailing garbage after a complete frame is rejected by
    /// the one-frame decoders (the streaming transport instead peels
    /// the frame and leaves the tail).
    #[test]
    fn trailing_garbage_is_rejected(seed in 0u64..1_000_000) {
        let mut mix = Mix(seed);
        for request in sample_requests(&mut mix) {
            let mut frame = encode_request_frame(mix.next(), &request);
            frame.push(mix.next() as u8);
            prop_assert!(decode_request_frame(&frame).is_err());
        }
    }
}

/// The codec is canonical: encoding a decoded frame reproduces the
/// original bytes (so transcripts and conformance fixtures can compare
/// frames byte for byte).
#[test]
fn encoding_is_canonical() {
    let mut mix = Mix(2026);
    for request in sample_requests(&mut mix) {
        let frame = encode_request_frame(9, &request);
        let (corr, back) = decode_request_frame(&frame).unwrap();
        assert_eq!(encode_request_frame(corr, &back), frame);
    }
    for response in sample_responses(&mut mix) {
        let frame = encode_response_frame(9, &response);
        let (corr, back) = decode_response_frame(&frame).unwrap();
        assert_eq!(encode_response_frame(corr, &back), frame);
    }
}
