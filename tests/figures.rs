//! E-F3 … E-F9: the paper's figures, reproduced end-to-end across crates.
//!
//! Each test is one row of EXPERIMENTS.md: it rebuilds a figure's state
//! or transition in both data models and checks the property the paper
//! claims for it.

use borkin_equiv::equivalence::translate::{
    graph_op_to_relational, relational_op_to_graph, CompletionMode,
};
use borkin_equiv::graph::fixtures as gfix;
use borkin_equiv::graph::{Association, EntityRef, GraphOp};
use borkin_equiv::logic::{state_equivalent, ToFacts};
use borkin_equiv::relation::constraints::check_all;
use borkin_equiv::relation::fixtures as rfix;
use borkin_equiv::relation::RelOp;
use borkin_equiv::value::{tuple, Atom, Value};

fn emp(name: &str) -> EntityRef {
    EntityRef::new("employee", Atom::str(name))
}

fn gw_tm_supervision() -> Association {
    Association::new(
        "supervise",
        [("agent", emp("G.Wayshum")), ("object", emp("T.Manhart"))],
    )
}

/// E-F3: the Figure 3 semantic relation state satisfies the four §3.2.1
/// constraints.
#[test]
fn e_f3_figure3_state_satisfies_constraints() {
    let schema = rfix::machine_shop_schema();
    let state = rfix::figure3_state();
    state.well_formed().unwrap();
    check_all(&schema, &state).unwrap();
}

/// E-F4/E-F5: the Figure 4 graph state validates against the Figure 5
/// schema (totality, functionality, references).
#[test]
fn e_f4_figure4_state_validates() {
    gfix::figure4_state().validate().unwrap();
}

/// E-F3≡F4 (§3.2.3): the two states compile to the same set of logical
/// statements — they are state equivalent.
#[test]
fn e_f3_f4_states_equivalent_via_logic() {
    let report = state_equivalent(&rfix::figure3_state(), &gfix::figure4_state());
    assert!(report.is_equivalent(), "{report}");
    // And the common fact base is the 13 statements of the machine shop.
    assert_eq!(rfix::figure3_state().to_facts().len(), 13);
}

/// E-F6/E-F7: inserting the supervision on the graph side translates to
/// the relational insertion of Figure 7's second tuple, and the old
/// partial tuple is automatically deleted (subsumption).
#[test]
fn e_f6_f7_graph_insertion_translates_with_subsumption() {
    let gop = GraphOp::InsertAssociation(gw_tm_supervision());
    let rops = graph_op_to_relational(
        &gop,
        &gfix::figure4_state(),
        &rfix::figure3_state(),
        CompletionMode::StateCompleted,
    )
    .unwrap();
    assert_eq!(rops.len(), 1);

    // The literal tuple of Figure 7.
    let RelOp::Insert(set) = &rops[0] else {
        panic!("expected insert-statements")
    };
    assert_eq!(
        set.tuples("Jobs").cloned().collect::<Vec<_>>(),
        vec![tuple!["G.Wayshum", "T.Manhart", "NZ745"]]
    );

    // Lockstep application lands on Figures 6 and 7, still equivalent.
    let g_after = gop.apply(&gfix::figure4_state()).unwrap();
    let r_after = rops[0].apply(&rfix::figure3_state()).unwrap();
    assert_eq!(g_after, gfix::figure6_state());
    assert_eq!(r_after, rfix::figure7_state());
    assert!(state_equivalent(&g_after, &r_after).is_equivalent());
    // The subsumed tuple is gone.
    assert!(!r_after.relation("Jobs").unwrap().contains(&tuple![
        Value::Null,
        "T.Manhart",
        "NZ745"
    ]));
}

/// E-F8: the same graph operation against the premise state translates
/// to a *different* relational tuple (with a null machine) — the paper's
/// demonstration that operation equivalence can be state dependent.
#[test]
fn e_f8_state_dependent_translation() {
    let gop = GraphOp::InsertAssociation(gw_tm_supervision());
    let rops = graph_op_to_relational(
        &gop,
        &gfix::figure8_premise_state(),
        &rfix::figure8_premise_state(),
        CompletionMode::StateCompleted,
    )
    .unwrap();
    let RelOp::Insert(set) = &rops[0] else {
        panic!("expected insert-statements")
    };
    assert_eq!(
        set.tuples("Jobs").cloned().collect::<Vec<_>>(),
        vec![tuple!["G.Wayshum", "T.Manhart", Value::Null]]
    );
    let r_after = rops[0].apply(&rfix::figure8_premise_state()).unwrap();
    assert_eq!(r_after, rfix::figure8_state());
    assert!(state_equivalent(
        &gop.apply(&gfix::figure8_premise_state()).unwrap(),
        &r_after
    )
    .is_equivalent());
}

/// E-F8 (converse): under Minimal completion the inserted tuple is the
/// same in both states — the state dependence moves into the operation
/// semantics (statement normalization) instead of the argument.
#[test]
fn e_f8_minimal_mode_is_state_independent() {
    let gop = GraphOp::InsertAssociation(gw_tm_supervision());
    let mut inserted = Vec::new();
    for (g, r) in [
        (gfix::figure4_state(), rfix::figure3_state()),
        (gfix::figure8_premise_state(), rfix::figure8_premise_state()),
    ] {
        let rops = graph_op_to_relational(&gop, &g, &r, CompletionMode::Minimal).unwrap();
        let RelOp::Insert(set) = &rops[0] else {
            panic!("expected insert-statements")
        };
        inserted.push(set.clone());
    }
    assert_eq!(inserted[0], inserted[1]);
}

/// E-F9: the single-relation application model of Figure 9 is state
/// equivalent to both Figure 3 and Figure 4 — "many different relational
/// views of a single semantic graph conceptual application model".
#[test]
fn e_f9_single_relation_view_equivalent() {
    let f9 = rfix::figure9_state();
    f9.well_formed().unwrap();
    check_all(&rfix::figure9_schema(), &f9).unwrap();
    assert!(state_equivalent(&f9, &rfix::figure3_state()).is_equivalent());
    assert!(state_equivalent(&f9, &gfix::figure4_state()).is_equivalent());
}

/// E-F9 (operations): the same graph operation translates into *each*
/// relational view; after application all three databases still agree.
#[test]
fn e_f9_one_graph_op_two_relational_views() {
    let gop = GraphOp::InsertAssociation(gw_tm_supervision());

    let ops3 = graph_op_to_relational(
        &gop,
        &gfix::figure4_state(),
        &rfix::figure3_state(),
        CompletionMode::Minimal,
    )
    .unwrap();
    let ops9 = graph_op_to_relational(
        &gop,
        &gfix::figure4_state(),
        &rfix::figure9_state(),
        CompletionMode::Minimal,
    )
    .unwrap();

    let g_after = gop.apply(&gfix::figure4_state()).unwrap();
    let r3_after = RelOp::apply_all(&ops3, &rfix::figure3_state()).unwrap();
    let r9_after = RelOp::apply_all(&ops9, &rfix::figure9_state()).unwrap();

    assert!(state_equivalent(&g_after, &r3_after).is_equivalent());
    assert!(state_equivalent(&g_after, &r9_after).is_equivalent());
    assert!(state_equivalent(&r3_after, &r9_after).is_equivalent());
}

/// The reverse direction: a relational update on the Figure 3 view
/// translates to graph operations that keep the conceptual state in
/// lockstep.
#[test]
fn relational_update_propagates_to_graph() {
    let rop = RelOp::insert("Jobs", [tuple!["G.Wayshum", "T.Manhart", Value::Null]]);
    let gops =
        relational_op_to_graph(&rop, &rfix::figure3_state(), &gfix::figure4_state()).unwrap();
    assert_eq!(gops, vec![GraphOp::InsertAssociation(gw_tm_supervision())]);
    let r_after = rop.apply(&rfix::figure3_state()).unwrap();
    let g_after = GraphOp::apply_all(&gops, &gfix::figure4_state()).unwrap();
    assert!(state_equivalent(&r_after, &g_after).is_equivalent());
}

/// Error-state agreement: an operation that errors on one side has an
/// erroring counterpart on the other ("the error states of all
/// application models are equivalent").
#[test]
fn error_states_correspond() {
    // A second operator for JCL181: uniqueness/functionality violations
    // on both sides.
    let rop = RelOp::insert("Operate", [tuple!["G.Wayshum", "JCL181", "press"]]);
    assert!(rop.apply(&rfix::figure3_state()).is_err());

    let gop = GraphOp::InsertAssociation(Association::new(
        "operate",
        [
            ("agent", emp("G.Wayshum")),
            ("object", EntityRef::new("machine", Atom::str("JCL181"))),
        ],
    ));
    assert!(gop.apply(&gfix::figure4_state()).is_err());
}
