//! Crash-recovery fault-injection matrix for the session service.
//!
//! The service's durable state is a checkpoint stream plus a WAL, both
//! append-only; a crash therefore always leaves a *byte prefix* of each
//! device. The matrix cuts a finished run's durable image at the byte
//! offsets corresponding to four fault points —
//!
//! 1. **before** a transaction's journal append,
//! 2. **mid-append** (a torn WAL record),
//! 3. **after** the append but before the next checkpoint,
//! 4. **mid-checkpoint** (a torn checkpoint record),
//!
//! — across multiple workload seeds, and requires recovery to be
//! deterministic and *prefix-consistent*: the recovered state equals
//! the sequential replay of exactly the committed transactions whose
//! records survive complete, and aborted transactions (which never
//! reach the log) are never resurrected.

use std::path::PathBuf;
use std::sync::Arc;

use borkin_equiv::equivalence::translate::CompletionMode;
use borkin_equiv::graph::{GraphOp, GraphState};
use borkin_equiv::obs::FlightRecorder;
use borkin_equiv::server::{
    DurableImage, MemDevice, ServiceConfig, SessionKind, SessionService, ViewSpec,
};
use borkin_equiv::storage::wal;
use borkin_equiv::workload::{self, ShopConfig};

const SEEDS: [u64; 5] = [11, 23, 47, 95, 191];

/// Every test runs under a flight recorder and leaves a dump in
/// `target/flight/` — the artifact CI uploads when a leg fails — and
/// the dump itself must be machine-readable: a `flight_header` line,
/// JSON event lines, and a closing `flight_snapshot` line.
fn dump_flight(recorder: &FlightRecorder, test: &str) {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("target")
        .join("flight")
        .join(format!("{test}.jsonl"));
    recorder.dump_to(&path).expect("flight dump writes");
    let dump = std::fs::read_to_string(&path).unwrap();
    let lines: Vec<&str> = dump.lines().collect();
    assert!(lines.len() >= 2, "{test}: dump has header + snapshot");
    assert!(
        lines[0].contains("\"ev\":\"flight_header\""),
        "{test}: dump opens with a header: {}",
        lines[0]
    );
    assert!(
        lines.last().unwrap().contains("\"ev\":\"flight_snapshot\""),
        "{test}: dump closes with the telemetry snapshot"
    );
    for line in &lines {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "{test}: not a JSON line: {line}"
        );
    }
}

fn shop_cfg(seed: u64) -> ShopConfig {
    ShopConfig {
        employees: 6,
        machines: 3,
        supervisions: 4,
        seed,
    }
}

fn views(cfg: ShopConfig) -> Vec<ViewSpec> {
    vec![ViewSpec {
        name: "personnel".into(),
        schema: workload::personnel_schema(cfg),
        mode: CompletionMode::Minimal,
    }]
}

/// A finished run to cut crash images from: the full durable image, the
/// initial state, the committed schedule, and how many operations
/// aborted (so every seed provably exercises the abort path too).
struct Run {
    cfg: ShopConfig,
    initial: GraphState,
    image: DurableImage,
    committed: Vec<(u64, Vec<GraphOp>)>,
    aborted: usize,
    /// Byte offset where each WAL record's frame starts, plus the final
    /// end offset.
    wal_offsets: Vec<usize>,
    /// Records the run and every recovery from its cut images; each
    /// test dumps it into `target/flight/`.
    recorder: FlightRecorder,
}

fn recorded_config(recorder: &FlightRecorder) -> ServiceConfig {
    ServiceConfig {
        obs: recorder.observer().clone(),
        ..ServiceConfig::default()
    }
}

/// Runs a single-session deterministic workload: toggles applied in
/// order, some of which abort (double inserts), with one checkpoint
/// taken mid-run so images carry both a checkpoint and a WAL tail.
fn run_workload(seed: u64) -> Run {
    let cfg = shop_cfg(seed);
    let initial = workload::graph_state(cfg);
    let recorder = FlightRecorder::with_capacity(4096);
    let service = SessionService::new(
        initial.clone(),
        views(cfg),
        recorded_config(&recorder),
        Box::new(MemDevice::new()),
        Box::new(MemDevice::new()),
    )
    .unwrap();
    let mut session = service.open_session(SessionKind::Graph).unwrap();
    let ops = workload::supervision_toggle_ops(cfg, 8);
    let mut aborted = 0;
    for (i, op) in ops.iter().enumerate() {
        // Re-submitting the same toggle twice forces an abort: the
        // second application is invalid against the committed state.
        if session.submit_graph(vec![op.clone()]).is_err() {
            aborted += 1;
        }
        if session.submit_graph(vec![op.clone()]).is_err() {
            aborted += 1;
        }
        if i == 3 {
            service.checkpoint_now().unwrap();
        }
    }
    session.close().unwrap();
    let image = service.durable_image();
    let committed = service
        .committed_history()
        .into_iter()
        .map(|t| (t.lsn, t.ops))
        .collect();
    let (records, tail) = wal::replay_tolerant(&image.wal);
    assert!(tail.is_none(), "a finished run's WAL is clean");
    let mut wal_offsets = vec![0];
    for r in &records {
        wal_offsets.push(wal_offsets.last().unwrap() + r.frame_len());
    }
    Run {
        cfg,
        initial,
        image,
        committed,
        aborted,
        wal_offsets,
        recorder,
    }
}

/// The oracle: sequential replay of the first `n` committed
/// transactions.
fn prefix_state(run: &Run, n: usize) -> GraphState {
    let mut state = run.initial.clone();
    for (_, ops) in run.committed.iter().take(n) {
        state = GraphOp::apply_all(ops, &state).expect("committed schedule replays");
    }
    state
}

/// Recovers from a cut image and asserts prefix consistency: the
/// recovered state must equal the replay of exactly the surviving
/// complete records. Returns the recovered conceptual state.
fn recover_and_check(run: &Run, image: &DurableImage, label: &str) -> GraphState {
    let (recovered, report) = SessionService::recover(
        Arc::clone(run.initial.schema()),
        image,
        views(run.cfg),
        recorded_config(&run.recorder),
        Box::new(MemDevice::new()),
        Box::new(MemDevice::new()),
    )
    .unwrap_or_else(|e| panic!("{label}: recovery failed: {e}"));
    let state = recovered.conceptual();
    // How many committed transactions survive in this image? Complete
    // WAL records with lsn > 0 are committed transactions (checkpoints
    // live on the other device).
    let (records, _) = wal::replay_tolerant(&image.wal);
    let survived = records.len();
    assert_eq!(
        state,
        prefix_state(run, survived),
        "{label}: recovered state is not the {survived}-transaction prefix"
    );
    // Deterministic: recovering the same image again gives the same
    // state and the same report.
    let (again, report2) = SessionService::recover(
        Arc::clone(run.initial.schema()),
        image,
        views(run.cfg),
        ServiceConfig::default(),
        Box::new(MemDevice::new()),
        Box::new(MemDevice::new()),
    )
    .unwrap();
    assert_eq!(
        again.conceptual(),
        state,
        "{label}: recovery not deterministic"
    );
    assert_eq!(
        report2, report,
        "{label}: recovery report not deterministic"
    );
    // The view is rebuilt consistent (Definition 2 in its vocabulary).
    let view_ok = recovered.view_state("personnel").is_some();
    assert!(view_ok, "{label}: view not rebuilt");
    state
}

#[test]
fn fault_point_1_crash_before_journal_append() {
    for seed in SEEDS {
        let run = run_workload(seed);
        assert!(run.committed.len() >= 3, "seed {seed} needs ≥3 commits");
        assert!(run.aborted > 0, "seed {seed} must exercise the abort path");
        // Crash immediately before appending transaction k: the WAL
        // ends exactly at record k-1's end.
        for k in 1..run.committed.len() {
            let image = DurableImage {
                wal: run.image.wal[..run.wal_offsets[k]].to_vec(),
                checkpoint: run.image.checkpoint.clone(),
                shard_wals: Vec::new(),
            };
            // The checkpoint may be *ahead* of this WAL prefix (it was
            // taken mid-run); keep only checkpoints covered by the
            // surviving WAL so the image is a consistent crash cut.
            let image = clamp_checkpoint(&run, image, k);
            recover_and_check(&run, &image, &format!("seed {seed}, before-append txn {k}"));
        }
        dump_flight(&run.recorder, "fault_point_1_before_append");
    }
}

/// Drops checkpoint records whose lsn exceeds the surviving WAL prefix
/// (a real crash at that instant could not have written them yet).
fn clamp_checkpoint(run: &Run, mut image: DurableImage, k: usize) -> DurableImage {
    let max_lsn = run.committed[..k].last().map(|(lsn, _)| *lsn).unwrap_or(0);
    let (records, _) = wal::replay_tolerant(&image.checkpoint);
    let mut buf = Vec::new();
    for r in records {
        if r.lsn <= max_lsn {
            wal::append_record_traced(&mut buf, r.lsn, r.trace, &r.payload);
        }
    }
    image.checkpoint = buf;
    image
}

#[test]
fn fault_point_2_crash_mid_append_tears_the_record() {
    for seed in SEEDS {
        let run = run_workload(seed);
        for k in 1..=run.committed.len() {
            // Tear transaction k's record at several depths.
            let (start, end) = (run.wal_offsets[k - 1], run.wal_offsets[k]);
            for cut in [start + 1, start + (end - start) / 2, end - 1] {
                let image = clamp_checkpoint(
                    &run,
                    DurableImage {
                        wal: run.image.wal[..cut].to_vec(),
                        checkpoint: run.image.checkpoint.clone(),
                        shard_wals: Vec::new(),
                    },
                    k - 1,
                );
                let state = recover_and_check(
                    &run,
                    &image,
                    &format!("seed {seed}, mid-append txn {k} cut {cut}"),
                );
                // The torn transaction itself must not be visible.
                assert_eq!(state, prefix_state(&run, k - 1));
            }
        }
        dump_flight(&run.recorder, "fault_point_2_mid_append");
    }
}

#[test]
fn fault_point_3_crash_after_append_before_checkpoint() {
    for seed in SEEDS {
        let run = run_workload(seed);
        // The full WAL survived but the mid-run checkpoint did not: the
        // checkpoint device holds only the initial (lsn 0) checkpoint.
        let (cp_records, _) = wal::replay_tolerant(&run.image.checkpoint);
        assert!(
            cp_records.len() >= 2,
            "seed {seed}: run must checkpoint mid-way"
        );
        let mut initial_only = Vec::new();
        wal::append_record_traced(
            &mut initial_only,
            cp_records[0].lsn,
            cp_records[0].trace,
            &cp_records[0].payload,
        );
        let image = DurableImage {
            wal: run.image.wal.clone(),
            checkpoint: initial_only,
            shard_wals: Vec::new(),
        };
        let state = recover_and_check(&run, &image, &format!("seed {seed}, pre-checkpoint"));
        // Everything committed is recovered even without the newer
        // checkpoint — the checkpoint only bounds replay work.
        assert_eq!(state, prefix_state(&run, run.committed.len()));
        dump_flight(&run.recorder, "fault_point_3_pre_checkpoint");
    }
}

#[test]
fn fault_point_4_crash_mid_checkpoint_falls_back() {
    for seed in SEEDS {
        let run = run_workload(seed);
        let (cp_records, _) = wal::replay_tolerant(&run.image.checkpoint);
        let mut prefix = Vec::new();
        for r in &cp_records[..cp_records.len() - 1] {
            wal::append_record_traced(&mut prefix, r.lsn, r.trace, &r.payload);
        }
        let intact = prefix.len();
        let last = cp_records.last().unwrap();
        let mut full = prefix.clone();
        wal::append_record_traced(&mut full, last.lsn, last.trace, &last.payload);
        // Tear the final checkpoint record at several depths: recovery
        // falls back to the previous checkpoint + full WAL replay.
        for cut in [
            intact + 1,
            intact + (full.len() - intact) / 2,
            full.len() - 1,
        ] {
            let image = DurableImage {
                wal: run.image.wal.clone(),
                checkpoint: full[..cut].to_vec(),
                shard_wals: Vec::new(),
            };
            let state = recover_and_check(
                &run,
                &image,
                &format!("seed {seed}, mid-checkpoint cut {cut}"),
            );
            assert_eq!(state, prefix_state(&run, run.committed.len()));
        }
        dump_flight(&run.recorder, "fault_point_4_mid_checkpoint");
    }
}

#[test]
fn aborted_transactions_are_never_resurrected() {
    for seed in SEEDS {
        let run = run_workload(seed);
        assert!(run.aborted > 0);
        // Recover the complete image: the result must equal the replay
        // of the committed schedule alone. If any aborted operation had
        // leaked into the log, the states would differ (each abort was
        // a duplicate toggle, which would double-apply).
        let state = recover_and_check(&run, &run.image, &format!("seed {seed}, full image"));
        assert_eq!(state, prefix_state(&run, run.committed.len()));
        dump_flight(&run.recorder, "aborted_never_resurrected");
    }
}
