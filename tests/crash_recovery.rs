//! Crash-recovery fault-injection matrix for the session service.
//!
//! The service's durable state is a checkpoint stream plus a WAL, both
//! append-only; a crash therefore always leaves a *byte prefix* of each
//! device. The matrix cuts a finished run's durable image at the byte
//! offsets corresponding to four fault points —
//!
//! 1. **before** a transaction's journal append,
//! 2. **mid-append** (a torn WAL record),
//! 3. **after** the append but before the next checkpoint,
//! 4. **mid-checkpoint** (a torn checkpoint record),
//!
//! — across multiple workload seeds, and requires recovery to be
//! deterministic and *prefix-consistent*: the recovered state equals
//! the sequential replay of exactly the committed transactions whose
//! records survive complete, and aborted transactions (which never
//! reach the log) are never resurrected.

use std::path::PathBuf;
use std::sync::Arc;

use borkin_equiv::equivalence::translate::CompletionMode;
use borkin_equiv::graph::{GraphOp, GraphState};
use borkin_equiv::obs::FlightRecorder;
use borkin_equiv::server::{
    DurableImage, MemDevice, ServiceConfig, SessionKind, SessionService, ViewSpec,
};
use borkin_equiv::storage::wal;
use borkin_equiv::workload::{self, ShopConfig};

const SEEDS: [u64; 5] = [11, 23, 47, 95, 191];

/// Every test runs under a flight recorder and leaves a dump in
/// `target/flight/` — the artifact CI uploads when a leg fails — and
/// the dump itself must be machine-readable: a `flight_header` line,
/// JSON event lines, and a closing `flight_snapshot` line.
fn dump_flight(recorder: &FlightRecorder, test: &str) {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("target")
        .join("flight")
        .join(format!("{test}.jsonl"));
    recorder.dump_to(&path).expect("flight dump writes");
    let dump = std::fs::read_to_string(&path).unwrap();
    let lines: Vec<&str> = dump.lines().collect();
    assert!(lines.len() >= 2, "{test}: dump has header + snapshot");
    assert!(
        lines[0].contains("\"ev\":\"flight_header\""),
        "{test}: dump opens with a header: {}",
        lines[0]
    );
    assert!(
        lines.last().unwrap().contains("\"ev\":\"flight_snapshot\""),
        "{test}: dump closes with the telemetry snapshot"
    );
    for line in &lines {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "{test}: not a JSON line: {line}"
        );
    }
}

fn shop_cfg(seed: u64) -> ShopConfig {
    ShopConfig {
        employees: 6,
        machines: 3,
        supervisions: 4,
        seed,
    }
}

fn views(cfg: ShopConfig) -> Vec<ViewSpec> {
    vec![ViewSpec {
        name: "personnel".into(),
        schema: workload::personnel_schema(cfg),
        mode: CompletionMode::Minimal,
    }]
}

/// A finished run to cut crash images from: the full durable image, the
/// initial state, the committed schedule, and how many operations
/// aborted (so every seed provably exercises the abort path too).
struct Run {
    cfg: ShopConfig,
    initial: GraphState,
    image: DurableImage,
    committed: Vec<(u64, Vec<GraphOp>)>,
    aborted: usize,
    /// Byte offset where each WAL record's frame starts, plus the final
    /// end offset.
    wal_offsets: Vec<usize>,
    /// Records the run and every recovery from its cut images; each
    /// test dumps it into `target/flight/`.
    recorder: FlightRecorder,
}

fn recorded_config(recorder: &FlightRecorder) -> ServiceConfig {
    ServiceConfig {
        obs: recorder.observer().clone(),
        ..ServiceConfig::default()
    }
}

/// Runs a single-session deterministic workload: toggles applied in
/// order, some of which abort (double inserts), with one checkpoint
/// taken mid-run so images carry both a checkpoint and a WAL tail.
fn run_workload(seed: u64) -> Run {
    let cfg = shop_cfg(seed);
    let initial = workload::graph_state(cfg);
    let recorder = FlightRecorder::with_capacity(4096);
    let service = SessionService::new(
        initial.clone(),
        views(cfg),
        recorded_config(&recorder),
        Box::new(MemDevice::new()),
        Box::new(MemDevice::new()),
    )
    .unwrap();
    let mut session = service.open_session(SessionKind::Graph).unwrap();
    let ops = workload::supervision_toggle_ops(cfg, 8);
    let mut aborted = 0;
    for (i, op) in ops.iter().enumerate() {
        // Re-submitting the same toggle twice forces an abort: the
        // second application is invalid against the committed state.
        if session.submit_graph(vec![op.clone()]).is_err() {
            aborted += 1;
        }
        if session.submit_graph(vec![op.clone()]).is_err() {
            aborted += 1;
        }
        if i == 3 {
            service.checkpoint_now().unwrap();
        }
    }
    session.close().unwrap();
    let image = service.durable_image();
    let committed = service
        .committed_history()
        .into_iter()
        .map(|t| (t.lsn, t.ops))
        .collect();
    let (records, tail) = wal::replay_tolerant(&image.wal);
    assert!(tail.is_none(), "a finished run's WAL is clean");
    let mut wal_offsets = vec![0];
    for r in &records {
        wal_offsets.push(wal_offsets.last().unwrap() + r.frame_len());
    }
    Run {
        cfg,
        initial,
        image,
        committed,
        aborted,
        wal_offsets,
        recorder,
    }
}

/// The oracle: sequential replay of the first `n` committed
/// transactions.
fn prefix_state(run: &Run, n: usize) -> GraphState {
    let mut state = run.initial.clone();
    for (_, ops) in run.committed.iter().take(n) {
        state = GraphOp::apply_all(ops, &state).expect("committed schedule replays");
    }
    state
}

/// Recovers from a cut image and asserts prefix consistency: the
/// recovered state must equal the replay of exactly the surviving
/// complete records. Returns the recovered conceptual state.
fn recover_and_check(run: &Run, image: &DurableImage, label: &str) -> GraphState {
    let (recovered, report) = SessionService::recover(
        Arc::clone(run.initial.schema()),
        image,
        views(run.cfg),
        recorded_config(&run.recorder),
        Box::new(MemDevice::new()),
        Box::new(MemDevice::new()),
    )
    .unwrap_or_else(|e| panic!("{label}: recovery failed: {e}"));
    let state = (*recovered.conceptual()).clone();
    // How many committed transactions survive in this image? Complete
    // WAL records with lsn > 0 are committed transactions (checkpoints
    // live on the other device).
    let (records, _) = wal::replay_tolerant(&image.wal);
    let survived = records.len();
    assert_eq!(
        state,
        prefix_state(run, survived),
        "{label}: recovered state is not the {survived}-transaction prefix"
    );
    // Deterministic: recovering the same image again gives the same
    // state and the same report.
    let (again, report2) = SessionService::recover(
        Arc::clone(run.initial.schema()),
        image,
        views(run.cfg),
        ServiceConfig::default(),
        Box::new(MemDevice::new()),
        Box::new(MemDevice::new()),
    )
    .unwrap();
    assert_eq!(
        *again.conceptual(),
        state,
        "{label}: recovery not deterministic"
    );
    assert_eq!(
        report2, report,
        "{label}: recovery report not deterministic"
    );
    // The view is rebuilt consistent (Definition 2 in its vocabulary).
    let view_ok = recovered.view_state("personnel").is_some();
    assert!(view_ok, "{label}: view not rebuilt");
    state
}

#[test]
fn fault_point_1_crash_before_journal_append() {
    for seed in SEEDS {
        let run = run_workload(seed);
        assert!(run.committed.len() >= 3, "seed {seed} needs ≥3 commits");
        assert!(run.aborted > 0, "seed {seed} must exercise the abort path");
        // Crash immediately before appending transaction k: the WAL
        // ends exactly at record k-1's end.
        for k in 1..run.committed.len() {
            let image = DurableImage {
                wal: run.image.wal[..run.wal_offsets[k]].to_vec(),
                checkpoint: run.image.checkpoint.clone(),
                shard_wals: Vec::new(),
            };
            // The checkpoint may be *ahead* of this WAL prefix (it was
            // taken mid-run); keep only checkpoints covered by the
            // surviving WAL so the image is a consistent crash cut.
            let image = clamp_checkpoint(&run, image, k);
            recover_and_check(&run, &image, &format!("seed {seed}, before-append txn {k}"));
        }
        dump_flight(&run.recorder, "fault_point_1_before_append");
    }
}

/// Drops checkpoint records whose lsn exceeds the surviving WAL prefix
/// (a real crash at that instant could not have written them yet).
fn clamp_checkpoint(run: &Run, mut image: DurableImage, k: usize) -> DurableImage {
    let max_lsn = run.committed[..k].last().map(|(lsn, _)| *lsn).unwrap_or(0);
    let (records, _) = wal::replay_tolerant(&image.checkpoint);
    let mut buf = Vec::new();
    for r in records {
        if r.lsn <= max_lsn {
            wal::append_record_traced(&mut buf, r.lsn, r.trace, &r.payload);
        }
    }
    image.checkpoint = buf;
    image
}

#[test]
fn fault_point_2_crash_mid_append_tears_the_record() {
    for seed in SEEDS {
        let run = run_workload(seed);
        for k in 1..=run.committed.len() {
            // Tear transaction k's record at several depths.
            let (start, end) = (run.wal_offsets[k - 1], run.wal_offsets[k]);
            for cut in [start + 1, start + (end - start) / 2, end - 1] {
                let image = clamp_checkpoint(
                    &run,
                    DurableImage {
                        wal: run.image.wal[..cut].to_vec(),
                        checkpoint: run.image.checkpoint.clone(),
                        shard_wals: Vec::new(),
                    },
                    k - 1,
                );
                let state = recover_and_check(
                    &run,
                    &image,
                    &format!("seed {seed}, mid-append txn {k} cut {cut}"),
                );
                // The torn transaction itself must not be visible.
                assert_eq!(state, prefix_state(&run, k - 1));
            }
        }
        dump_flight(&run.recorder, "fault_point_2_mid_append");
    }
}

#[test]
fn fault_point_3_crash_after_append_before_checkpoint() {
    for seed in SEEDS {
        let run = run_workload(seed);
        // The full WAL survived but the mid-run checkpoint did not: the
        // checkpoint device holds only the initial (lsn 0) checkpoint.
        let (cp_records, _) = wal::replay_tolerant(&run.image.checkpoint);
        assert!(
            cp_records.len() >= 2,
            "seed {seed}: run must checkpoint mid-way"
        );
        let mut initial_only = Vec::new();
        wal::append_record_traced(
            &mut initial_only,
            cp_records[0].lsn,
            cp_records[0].trace,
            &cp_records[0].payload,
        );
        let image = DurableImage {
            wal: run.image.wal.clone(),
            checkpoint: initial_only,
            shard_wals: Vec::new(),
        };
        let state = recover_and_check(&run, &image, &format!("seed {seed}, pre-checkpoint"));
        // Everything committed is recovered even without the newer
        // checkpoint — the checkpoint only bounds replay work.
        assert_eq!(state, prefix_state(&run, run.committed.len()));
        dump_flight(&run.recorder, "fault_point_3_pre_checkpoint");
    }
}

#[test]
fn fault_point_4_crash_mid_checkpoint_falls_back() {
    for seed in SEEDS {
        let run = run_workload(seed);
        let (cp_records, _) = wal::replay_tolerant(&run.image.checkpoint);
        let mut prefix = Vec::new();
        for r in &cp_records[..cp_records.len() - 1] {
            wal::append_record_traced(&mut prefix, r.lsn, r.trace, &r.payload);
        }
        let intact = prefix.len();
        let last = cp_records.last().unwrap();
        let mut full = prefix.clone();
        wal::append_record_traced(&mut full, last.lsn, last.trace, &last.payload);
        // Tear the final checkpoint record at several depths: recovery
        // falls back to the previous checkpoint + full WAL replay.
        for cut in [
            intact + 1,
            intact + (full.len() - intact) / 2,
            full.len() - 1,
        ] {
            let image = DurableImage {
                wal: run.image.wal.clone(),
                checkpoint: full[..cut].to_vec(),
                shard_wals: Vec::new(),
            };
            let state = recover_and_check(
                &run,
                &image,
                &format!("seed {seed}, mid-checkpoint cut {cut}"),
            );
            assert_eq!(state, prefix_state(&run, run.committed.len()));
        }
        dump_flight(&run.recorder, "fault_point_4_mid_checkpoint");
    }
}

/// Checkpoint payload tags (see `server::codec`): a full image carries
/// the whole conceptual state; an incremental image carries the dirty
/// keys' records chained by LSN to the previous image.
const CP_FULL: u8 = 0xF0;
const CP_INCR: u8 = 0xF1;

/// Runs a single-session workload under an incremental-checkpoint
/// cadence (`checkpoint_every: 2, full_checkpoint_every: 3`) long
/// enough for two post-boot full images — which is what arms WAL
/// truncation (the log is only trimmed up to the *previous* full).
fn chained_run(seed: u64) -> Run {
    let cfg = shop_cfg(seed);
    let initial = workload::graph_state(cfg);
    let recorder = FlightRecorder::with_capacity(4096);
    let config = ServiceConfig {
        checkpoint_every: 2,
        full_checkpoint_every: 3,
        ..recorded_config(&recorder)
    };
    let service = SessionService::new(
        initial.clone(),
        views(cfg),
        config,
        Box::new(MemDevice::new()),
        Box::new(MemDevice::new()),
    )
    .unwrap();
    let mut session = service.open_session(SessionKind::Graph).unwrap();
    let ops = workload::supervision_toggle_ops(cfg, 14);
    for op in &ops {
        session.submit_graph(vec![op.clone()]).unwrap();
    }
    session.close().unwrap();
    let image = service.durable_image();
    let committed: Vec<(u64, Vec<GraphOp>)> = service
        .committed_history()
        .into_iter()
        .map(|t| (t.lsn, t.ops))
        .collect();
    assert_eq!(committed.len(), ops.len(), "every toggle commits once");
    let (records, tail) = wal::replay_tolerant(&image.wal);
    assert!(tail.is_none(), "a finished run's WAL is clean");
    let mut wal_offsets = vec![0];
    for r in &records {
        wal_offsets.push(wal_offsets.last().unwrap() + r.frame_len());
    }
    Run {
        cfg,
        initial,
        image,
        committed,
        aborted: 0,
        wal_offsets,
        recorder,
    }
}

/// Recovers a (possibly checkpoint-corrupted) image from a chained run
/// and asserts it equals the full committed prefix — valid whenever the
/// surviving checkpoint chain is no older than the WAL truncation
/// horizon, which the truncation policy guarantees for any single
/// corruption of the newest chain.
fn recover_chained(
    run: &Run,
    image: &DurableImage,
    label: &str,
) -> borkin_equiv::server::RecoveryReport {
    let (recovered, report) = SessionService::recover(
        Arc::clone(run.initial.schema()),
        image,
        views(run.cfg),
        recorded_config(&run.recorder),
        Box::new(MemDevice::new()),
        Box::new(MemDevice::new()),
    )
    .unwrap_or_else(|e| panic!("{label}: recovery failed: {e}"));
    assert_eq!(
        *recovered.conceptual(),
        prefix_state(run, run.committed.len()),
        "{label}: recovered state is not the full committed prefix"
    );
    report
}

/// The tentpole's compaction leg: incremental checkpoints chain to
/// their full base, a second full image truncates the WAL, and the
/// truncated image still recovers every committed transaction.
#[test]
fn incremental_checkpoints_compact_and_wal_truncates() {
    for seed in SEEDS {
        let run = chained_run(seed);
        let (cp_records, tail) = wal::replay_tolerant(&run.image.checkpoint);
        assert!(tail.is_none(), "seed {seed}: checkpoint stream is clean");
        let fulls: Vec<usize> = (0..cp_records.len())
            .filter(|&i| cp_records[i].payload[0] == CP_FULL)
            .collect();
        let incrs = cp_records
            .iter()
            .filter(|r| r.payload[0] == CP_INCR)
            .count();
        assert!(
            fulls.len() >= 3,
            "seed {seed}: boot + two post-boot full images"
        );
        assert!(incrs >= 2, "seed {seed}: cadence produced incrementals");
        // The WAL really was truncated: its oldest surviving record is
        // past the previous full image, not lsn 1.
        let (wal_records, _) = wal::replay_tolerant(&run.image.wal);
        let oldest = wal_records.first().map(|r| r.lsn).unwrap_or(0);
        let prev_full_lsn = cp_records[fulls[fulls.len() - 2]].lsn;
        assert!(
            oldest > 1 && oldest == prev_full_lsn + 1,
            "seed {seed}: WAL starts at {oldest}, want {}",
            prev_full_lsn + 1
        );
        // Truncation lost nothing committed: the intact image recovers
        // the full prefix, and its chain folds incremental images.
        let base = recover_chained(&run, &run.image, &format!("seed {seed}, intact"));
        assert!(
            base.chained_checkpoints >= 1,
            "seed {seed}: newest chain should fold an incremental image"
        );
        dump_flight(&run.recorder, "incremental_checkpoints_compact");
    }
}

/// Byte-cut harness over the *newest* checkpoint chain: every cut that
/// spares the previous full image degrades recovery to an older chain
/// and a longer replay — never to wrong or missing committed state.
/// That is exactly the corruption budget the truncation policy keeps
/// WAL for (the log is trimmed only up to the previous full).
#[test]
fn corrupt_newest_checkpoint_chain_degrades_to_older_chain() {
    for seed in SEEDS {
        let run = chained_run(seed);
        let (cp_records, _) = wal::replay_tolerant(&run.image.checkpoint);
        let mut cp_offsets = vec![0usize];
        for r in &cp_records {
            cp_offsets.push(cp_offsets.last().unwrap() + r.frame_len());
        }
        let fulls: Vec<usize> = (0..cp_records.len())
            .filter(|&i| cp_records[i].payload[0] == CP_FULL)
            .collect();
        let prev_full = fulls[fulls.len() - 2];
        // Everything after the previous full image is fair game: cut at
        // each record boundary and mid-record in between.
        let safe_end = cp_offsets[prev_full + 1];
        let total = cp_offsets[cp_records.len()];
        let mut cuts = vec![safe_end];
        for i in (prev_full + 1)..cp_records.len() {
            cuts.push(cp_offsets[i] + (cp_offsets[i + 1] - cp_offsets[i]) / 2);
            cuts.push(cp_offsets[i + 1] - 1);
        }
        let base = recover_chained(&run, &run.image, &format!("seed {seed}, uncut"));
        for cut in cuts {
            assert!(cut >= safe_end && cut < total);
            let image = DurableImage {
                wal: run.image.wal.clone(),
                checkpoint: run.image.checkpoint[..cut].to_vec(),
                shard_wals: Vec::new(),
            };
            let report =
                recover_chained(&run, &image, &format!("seed {seed}, checkpoint cut {cut}"));
            // Degraded, not wrong: an older (or equal) chain end and at
            // least as much WAL replayed as the intact image needed.
            assert!(
                report.checkpoint_lsn <= base.checkpoint_lsn,
                "seed {seed}, cut {cut}: chain end moved forward"
            );
            assert!(
                report.replayed_bytes >= base.replayed_bytes,
                "seed {seed}, cut {cut}: shorter replay from an older chain"
            );
        }
        // CI artifacts: the compacted checkpoint stream and truncated
        // WAL bytes next to the flight dumps.
        let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("target")
            .join("flight");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("chained_checkpoint_stream.bin"), &run.image.checkpoint).unwrap();
        std::fs::write(dir.join("truncated_wal.bin"), &run.image.wal).unwrap();
        dump_flight(&run.recorder, "corrupt_newest_checkpoint_chain");
    }
}

/// The recovery-time SLO leg at scale: a checkpointed image of a
/// 10⁵-fact state (10⁶ in release builds) replays only the WAL since
/// the checkpoint, and recovery cost — measured in the deterministic
/// `replayed_bytes` coin — scales with that suffix, not with history.
#[test]
fn large_image_recovery_scales_with_wal_since_checkpoint() {
    // ~2.7 facts per scale unit (employees + machines + supervisions).
    let scale = if cfg!(debug_assertions) { 40_000 } else { 380_000 };
    let cfg = ShopConfig::scaled(scale);
    let initial = workload::graph_state(cfg);
    let (entities, assocs) = initial.sizes();
    let floor = if cfg!(debug_assertions) { 100_000 } else { 1_000_000 };
    assert!(
        entities + assocs >= floor,
        "image too small: {} facts",
        entities + assocs
    );
    let recorder = FlightRecorder::with_capacity(4096);
    // Lockstep verification re-checks Definition 2 per commit — O(state)
    // work that would dwarf what this test measures; keep it off.
    let config = ServiceConfig {
        lockstep_verify: false,
        ..recorded_config(&recorder)
    };
    // No external view on this leg: view rebuild is exercised by every
    // small-scale leg, and materializing one over 10⁵⁺ facts in a debug
    // build would dwarf the recovery work this test actually measures.
    let service = SessionService::new(
        initial.clone(),
        Vec::new(),
        config.clone(),
        Box::new(MemDevice::new()),
        Box::new(MemDevice::new()),
    )
    .unwrap();
    let mut session = service.open_session(SessionKind::Graph).unwrap();
    let ops = workload::supervision_toggle_ops(cfg, 24);
    for (i, op) in ops.iter().enumerate() {
        session.submit_graph(vec![op.clone()]).unwrap();
        if i == ops.len() / 2 {
            service.checkpoint_now().unwrap();
        }
    }
    session.close().unwrap();
    let checkpointed = service.durable_image();
    let committed: Vec<Vec<GraphOp>> = service
        .committed_history()
        .into_iter()
        .map(|t| t.ops)
        .collect();
    let (all_but_last, oracle) = {
        let mut state = initial.clone();
        for ops in &committed[..committed.len() - 1] {
            state = GraphOp::apply_all(ops, &state).unwrap();
        }
        let last = GraphOp::apply_all(&committed[committed.len() - 1], &state).unwrap();
        (state, last)
    };
    // A cold image: the same WAL with only the boot checkpoint.
    let (cp_records, _) = wal::replay_tolerant(&checkpointed.checkpoint);
    let mut boot_only = Vec::new();
    wal::append_record_traced(
        &mut boot_only,
        cp_records[0].lsn,
        cp_records[0].trace,
        &cp_records[0].payload,
    );
    let cold = DurableImage {
        checkpoint: boot_only,
        ..checkpointed.clone()
    };
    let recover = |image: &DurableImage, label: &str| {
        let (svc, report) = SessionService::recover(
            Arc::clone(initial.schema()),
            image,
            Vec::new(),
            config.clone(),
            Box::new(MemDevice::new()),
            Box::new(MemDevice::new()),
        )
        .unwrap_or_else(|e| panic!("{label}: recovery failed: {e}"));
        assert_eq!(*svc.conceptual(), oracle, "{label}: wrong recovered state");
        report
    };
    let warm = recover(&checkpointed, "checkpointed image");
    let from_boot = recover(&cold, "boot-only image");
    assert!(warm.checkpoint_lsn > 0 && from_boot.checkpoint_lsn == 0);
    assert_eq!(from_boot.replayed, committed.len());
    // The checkpoint bounds replay to the post-checkpoint suffix.
    assert_eq!(warm.replayed, committed.len() - (ops.len() / 2 + 1));
    assert!(
        warm.replayed_bytes * 2 < from_boot.replayed_bytes,
        "checkpointed replay ({} B) should be well under half the cold \
         replay ({} B)",
        warm.replayed_bytes,
        from_boot.replayed_bytes
    );
    // The crash matrix holds at this scale too: tear the final WAL
    // record and the torn transaction vanishes, nothing else does.
    let (wal_records, _) = wal::replay_tolerant(&checkpointed.wal);
    let last_frame = wal_records.last().unwrap().frame_len();
    let torn = DurableImage {
        wal: checkpointed.wal[..checkpointed.wal.len() - last_frame / 2].to_vec(),
        ..checkpointed.clone()
    };
    let (svc, report) = SessionService::recover(
        Arc::clone(initial.schema()),
        &torn,
        Vec::new(),
        config.clone(),
        Box::new(MemDevice::new()),
        Box::new(MemDevice::new()),
    )
    .unwrap();
    assert!(report.wal_tail.is_some(), "torn tail must be detected");
    assert_eq!(*svc.conceptual(), all_but_last);
    dump_flight(&recorder, "large_image_recovery");
}

#[test]
fn aborted_transactions_are_never_resurrected() {
    for seed in SEEDS {
        let run = run_workload(seed);
        assert!(run.aborted > 0);
        // Recover the complete image: the result must equal the replay
        // of the committed schedule alone. If any aborted operation had
        // leaked into the log, the states would differ (each abort was
        // a duplicate toggle, which would double-apply).
        let state = recover_and_check(&run, &run.image, &format!("seed {seed}, full image"));
        assert_eq!(state, prefix_state(&run, run.committed.len()));
        dump_flight(&run.recorder, "aborted_never_resurrected");
    }
}
