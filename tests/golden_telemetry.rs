//! Golden-file tests for the telemetry exporter formats: the
//! Prometheus-style text and JSON renderings are machine-read by
//! scrapers and dashboards, so their exact shape is pinned
//! byte-for-byte under `tests/golden/`. Run with `UPDATE_GOLDEN=1` to
//! refresh after an intentional format change.

use std::path::PathBuf;

use borkin_equiv::obs::{
    json_snapshot, prometheus_text, Counter, Metric, Observer, RingSink, ShardRegistry,
    TelemetrySnapshot,
};

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Compares `actual` against the pinned golden file, or rewrites the
/// file when `UPDATE_GOLDEN` is set.
fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with UPDATE_GOLDEN=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "{name} drifted from its golden file; rerun with UPDATE_GOLDEN=1 \
         if the change is intentional"
    );
}

/// An observer with a fixed set of counter bumps and latency samples —
/// everything the exporters render is a function of these values, so
/// the output is deterministic.
fn fixture_observer() -> Observer {
    let obs = Observer::new(RingSink::with_capacity(16));
    obs.add(Counter::SessionsOpened, 2);
    obs.add(Counter::TxnsCommitted, 7);
    obs.add(Counter::TxnsAborted, 1);
    obs.add(Counter::GroupCommits, 3);
    obs.add(Counter::WalRecordsAppended, 7);
    obs.add(Counter::CheckpointsTaken, 1);
    for v in [90, 110, 130, 600, 2_500] {
        obs.record(Metric::CommitLatency, v);
    }
    for v in [40, 55, 70] {
        obs.record(Metric::WalSyncLatency, v);
    }
    obs.record(Metric::ReplayLatency, 12_000);
    obs
}

/// A two-lane shard registry with fixed per-shard counts: the sharded
/// renders label each lane's counters, latency summaries and
/// commit-lane depth gauge with `shard="i"`.
fn fixture_shards() -> ShardRegistry {
    let reg = ShardRegistry::new(2);
    let lane0 = reg.shard(0);
    lane0.add(Counter::TxnsCommitted, 4);
    lane0.add(Counter::RequestsShed, 1);
    lane0.add(Counter::WalRecordsAppended, 5);
    lane0.set_lane_depth(2);
    for v in [90, 110, 600] {
        lane0.record(Metric::CommitLatency, v);
    }
    let lane1 = reg.shard(1);
    lane1.add(Counter::TxnsCommitted, 3);
    lane1.add(Counter::CrossShardCommits, 1);
    lane1.add(Counter::WalRecordsAppended, 2);
    for v in [130, 2_500] {
        lane1.record(Metric::CommitLatency, v);
    }
    reg
}

#[test]
fn prometheus_text_format_is_pinned() {
    let snap = TelemetrySnapshot::capture_with_shards(&fixture_observer(), &fixture_shards());
    check_golden("telemetry_prometheus.txt", &snap.to_prometheus_text());
}

#[test]
fn json_snapshot_format_is_pinned() {
    let snap = TelemetrySnapshot::capture_with_shards(&fixture_observer(), &fixture_shards());
    check_golden("telemetry_snapshot.json", &snap.to_json());
}

/// The golden fixtures double as format checks: the text rendering
/// exposes every counter (a fixed sample set, zeros included) and the
/// JSON parses line-free with sparse buckets.
#[test]
fn exporters_satisfy_their_format_contracts() {
    let obs = fixture_observer();
    let text = prometheus_text(&obs);
    for counter in Counter::ALL {
        assert!(
            text.contains(&format!("dme_counter{{name=\"{}\"}}", counter.name())),
            "text export misses counter {}",
            counter.name()
        );
    }
    assert!(text.contains("quantile=\"0.99\""));
    assert!(text.ends_with('\n'));

    let json = json_snapshot(&obs);
    assert!(json.starts_with('{') && json.ends_with('}'));
    assert!(!json.contains('\n'), "JSON snapshot is a single line");
    assert!(json.contains("\"commit_latency_us\""));
    assert!(
        !json.contains("\"nodes_expanded\""),
        "zero counters are omitted from JSON"
    );
    // The global-only renders carry no shard families at all: those
    // appear exactly when a shard registry is attached.
    assert!(!text.contains("dme_shard_"));
    assert!(!json.contains("\"shards\""));
}

/// Contract for the MVCC storage-engine families: the snapshot/GC/
/// checkpoint/replay counters and the recovery-latency histogram added
/// with the storage tier must reach both exporters under their wire
/// names — dashboards key on these exact strings.
#[test]
fn storage_engine_families_reach_both_exporters() {
    let obs = fixture_observer();
    obs.add(Counter::SnapshotOpens, 3);
    obs.add(Counter::VersionsGcd, 17);
    obs.add(Counter::CheckpointBytes, 4_096);
    obs.add(Counter::ReplayBytes, 512);
    obs.record(Metric::RecoveryLatency, 8_500);

    let text = prometheus_text(&obs);
    for family in [
        "dme_counter{name=\"snapshot_opens\"} 3",
        "dme_counter{name=\"versions_gcd\"} 17",
        "dme_counter{name=\"checkpoint_bytes\"} 4096",
        "dme_counter{name=\"replay_bytes\"} 512",
        "dme_latency_us{metric=\"recovery_latency_us\",quantile=\"0.5\"}",
    ] {
        assert!(text.contains(family), "text export misses {family}");
    }

    let json = json_snapshot(&obs);
    for field in [
        "\"snapshot_opens\":3",
        "\"versions_gcd\":17",
        "\"checkpoint_bytes\":4096",
        "\"replay_bytes\":512",
        "\"recovery_latency_us\"",
    ] {
        assert!(json.contains(field), "JSON export misses {field}");
    }
}

/// The sharded renders label every lane: per-shard counters (non-zero
/// only), the commit-lane depth gauge (always, it is a gauge), and
/// per-shard latency summaries, all with `shard="i"` labels — on top
/// of the unchanged global families.
#[test]
fn sharded_exports_label_every_lane() {
    let snap = TelemetrySnapshot::capture_with_shards(&fixture_observer(), &fixture_shards());
    let text = snap.to_prometheus_text();
    assert!(text.contains("dme_shard_counter{shard=\"0\",name=\"requests_shed\"} 1"));
    assert!(text.contains("dme_shard_counter{shard=\"1\",name=\"cross_shard_commits\"} 1"));
    assert!(text.contains("dme_shard_lane_depth{shard=\"0\"} 2"));
    assert!(text.contains("dme_shard_lane_depth{shard=\"1\"} 0"));
    assert!(text.contains("dme_shard_latency_us{shard=\"0\",metric=\"commit_latency_us\""));
    assert!(
        !text.contains("dme_shard_counter{shard=\"1\",name=\"requests_shed\"}"),
        "zero per-shard counters are omitted from the labelled render"
    );

    let json = snap.to_json();
    assert!(json.contains("\"shards\":[{\"shard\":0,"));
    assert!(json.contains("\"lane_depth\":2"));
    assert!(json.contains("\"cross_shard_commits\":1"));

    // Merging the lanes reproduces the totals a single registry would
    // have counted.
    let merged = snap.merged_shards();
    let committed = merged
        .counters
        .iter()
        .find(|(c, _)| *c == Counter::TxnsCommitted)
        .map(|(_, v)| *v)
        .unwrap();
    assert_eq!(committed, 7, "4 + 3 commits across the lanes");
    assert_eq!(merged.lane_depth, 2, "gauges sum across lanes");
}
