//! Golden-file tests for the telemetry exporter formats: the
//! Prometheus-style text and JSON renderings are machine-read by
//! scrapers and dashboards, so their exact shape is pinned
//! byte-for-byte under `tests/golden/`. Run with `UPDATE_GOLDEN=1` to
//! refresh after an intentional format change.

use std::path::PathBuf;

use borkin_equiv::obs::{json_snapshot, prometheus_text, Counter, Metric, Observer, RingSink};

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Compares `actual` against the pinned golden file, or rewrites the
/// file when `UPDATE_GOLDEN` is set.
fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with UPDATE_GOLDEN=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "{name} drifted from its golden file; rerun with UPDATE_GOLDEN=1 \
         if the change is intentional"
    );
}

/// An observer with a fixed set of counter bumps and latency samples —
/// everything the exporters render is a function of these values, so
/// the output is deterministic.
fn fixture_observer() -> Observer {
    let obs = Observer::new(RingSink::with_capacity(16));
    obs.add(Counter::SessionsOpened, 2);
    obs.add(Counter::TxnsCommitted, 7);
    obs.add(Counter::TxnsAborted, 1);
    obs.add(Counter::GroupCommits, 3);
    obs.add(Counter::WalRecordsAppended, 7);
    obs.add(Counter::CheckpointsTaken, 1);
    for v in [90, 110, 130, 600, 2_500] {
        obs.record(Metric::CommitLatency, v);
    }
    for v in [40, 55, 70] {
        obs.record(Metric::WalSyncLatency, v);
    }
    obs.record(Metric::ReplayLatency, 12_000);
    obs
}

#[test]
fn prometheus_text_format_is_pinned() {
    check_golden(
        "telemetry_prometheus.txt",
        &prometheus_text(&fixture_observer()),
    );
}

#[test]
fn json_snapshot_format_is_pinned() {
    check_golden(
        "telemetry_snapshot.json",
        &json_snapshot(&fixture_observer()),
    );
}

/// The golden fixtures double as format checks: the text rendering
/// exposes every counter (a fixed sample set, zeros included) and the
/// JSON parses line-free with sparse buckets.
#[test]
fn exporters_satisfy_their_format_contracts() {
    let obs = fixture_observer();
    let text = prometheus_text(&obs);
    for counter in Counter::ALL {
        assert!(
            text.contains(&format!("dme_counter{{name=\"{}\"}}", counter.name())),
            "text export misses counter {}",
            counter.name()
        );
    }
    assert!(text.contains("quantile=\"0.99\""));
    assert!(text.ends_with('\n'));

    let json = json_snapshot(&obs);
    assert!(json.starts_with('{') && json.ends_with('}'));
    assert!(!json.contains('\n'), "JSON snapshot is a single line");
    assert!(json.contains("\"commit_latency_us\""));
    assert!(
        !json.contains("\"nodes_expanded\""),
        "zero counters are omitted from JSON"
    );
}
