//! Property tests for the §3.3 hierarchy itself: isomorphic equivalence
//! (Def. 2) implies composed operation equivalence (Def. 3) implies
//! state dependent equivalence (Def. 5) on *every* checkable model
//! pair — and the paper's separating witnesses keep the implications
//! strict.
//!
//! Everything goes through the [`Checker`] facade; `tests/facade.rs`
//! pins the facade to the legacy entry points, so these properties
//! cover both.

use std::collections::BTreeMap;
use std::sync::Arc;

use proptest::prelude::*;

use borkin_equiv::equivalence::enumerate::{enumerate_graph_ops, enumerate_rel_ops};
use borkin_equiv::equivalence::model::{graph_model, relational_model, FiniteModel};
use borkin_equiv::equivalence::parallel::ParallelConfig;
use borkin_equiv::equivalence::witness;
use borkin_equiv::equivalence::{Checker, Tier};
use borkin_equiv::graph::GraphState;
use borkin_equiv::logic::{Fact, FactBase};
use borkin_equiv::relation::RelationState;
use borkin_equiv::value::Atom;

const STATE_CAP: usize = 4_000;

fn fact(n: u8) -> Fact {
    Fact::new("p", [("x", Atom::Int(n as i64))])
}

fn toy_model(name: &str, ops: &[(bool, u8)]) -> FiniteModel<FactBase, String> {
    let universe: BTreeMap<String, (bool, Fact)> = ops
        .iter()
        .map(|(add, n)| {
            let f = fact(*n);
            (format!("{}{}", if *add { "+" } else { "-" }, f), (*add, f))
        })
        .collect();
    let op_names: Vec<String> = universe.keys().cloned().collect();
    FiniteModel::new(name, FactBase::default(), op_names, move |op, s| {
        let (add, f) = &universe[op];
        let mut next = s.clone();
        if *add {
            next.insert(f.clone()).then_some(next)
        } else {
            next.remove(f).then_some(next)
        }
    })
}

fn check<MS, MO, NS, NO>(
    m: &FiniteModel<MS, MO>,
    n: &FiniteModel<NS, NO>,
    tier: Tier,
) -> Result<
    borkin_equiv::equivalence::parallel::Verdict,
    borkin_equiv::equivalence::equiv::CheckError,
>
where
    MS: Clone + Ord + std::hash::Hash + borkin_equiv::logic::ToFacts + Send + Sync,
    NS: Clone + Ord + std::hash::Hash + borkin_equiv::logic::ToFacts + Send + Sync,
    MO: Clone + std::fmt::Display + Send + Sync,
    NO: Clone + std::fmt::Display + Send + Sync,
{
    Checker::new(m, n).tier(tier).state_cap(STATE_CAP).run()
}

fn ops_strategy() -> impl Strategy<Value = Vec<(bool, u8)>> {
    prop::collection::vec((any::<bool>(), 0u8..3), 1..6)
}

proptest! {
    /// Def. 2 ⇒ Def. 3: an isomorphically equivalent pair is composed
    /// operation equivalent at every composition depth ≥ 1 (each simple
    /// operation is its own one-op composition).
    #[test]
    fn isomorphic_implies_composed(
        m_ops in ops_strategy(),
        n_ops in ops_strategy(),
        depth in 1usize..4,
    ) {
        let m = toy_model("m", &m_ops);
        let n = toy_model("n", &n_ops);
        let Ok(iso) = check(&m, &n, Tier::Isomorphic) else {
            return Ok(()); // unpairable states: no hierarchy to test
        };
        if iso.is_equivalent() {
            let composed = check(&m, &n, Tier::Composed { max_depth: depth }).unwrap();
            prop_assert!(
                composed.is_equivalent(),
                "isomorphic pair not composed equivalent at depth {}: {}",
                depth,
                composed
            );
        }
    }

    /// Def. 3 ⇒ Def. 5: composed operation equivalence implies state
    /// dependent equivalence at the same depth (a uniform composition
    /// choice is in particular a per-state choice).
    #[test]
    fn composed_implies_state_dependent(
        m_ops in ops_strategy(),
        n_ops in ops_strategy(),
        depth in 0usize..4,
    ) {
        let m = toy_model("m", &m_ops);
        let n = toy_model("n", &n_ops);
        let Ok(composed) = check(&m, &n, Tier::Composed { max_depth: depth }) else {
            return Ok(());
        };
        if composed.is_equivalent() {
            let state_dep = check(&m, &n, Tier::StateDependent { max_depth: depth }).unwrap();
            prop_assert!(
                state_dep.is_equivalent(),
                "composed pair not state dependent equivalent at depth {}: {}",
                depth,
                state_dep
            );
        }
    }

    /// Depth monotonicity: a deeper composition search never loses an
    /// equivalence (the searched signature set only grows with depth).
    #[test]
    fn composition_depth_is_monotone(
        m_ops in ops_strategy(),
        n_ops in ops_strategy(),
        depth in 0usize..3,
    ) {
        let m = toy_model("m", &m_ops);
        let n = toy_model("n", &n_ops);
        let Ok(shallow) = check(&m, &n, Tier::Composed { max_depth: depth }) else {
            return Ok(());
        };
        if shallow.is_equivalent() {
            let deeper = check(&m, &n, Tier::Composed { max_depth: depth + 1 }).unwrap();
            prop_assert!(deeper.is_equivalent(), "lost at depth {}: {}", depth + 1, deeper);
        }
        let Ok(shallow_sd) = check(&m, &n, Tier::StateDependent { max_depth: depth }) else {
            return Ok(());
        };
        if shallow_sd.is_equivalent() {
            let deeper = check(&m, &n, Tier::StateDependent { max_depth: depth + 1 }).unwrap();
            prop_assert!(deeper.is_equivalent(), "lost at depth {}: {}", depth + 1, deeper);
        }
    }
}

fn rel_micro(
    max_statements: usize,
    name: &str,
) -> FiniteModel<RelationState, borkin_equiv::relation::RelOp> {
    let schema = witness::micro_relational_schema();
    let ops = enumerate_rel_ops(&schema, max_statements);
    relational_model(name, RelationState::empty(Arc::new(schema)), ops)
}

/// The §3.3 separating witnesses, re-verified through the *parallel*
/// engine: singles-vs-pairs separates Def. 2 from Def. 3, and the
/// idempotent relational insert vs the strict graph insert separates
/// Def. 3 from Def. 5.
#[test]
fn witnesses_still_separate_the_tiers_under_the_parallel_engine() {
    let parallel_check = |m: &FiniteModel<RelationState, borkin_equiv::relation::RelOp>,
                          n: &FiniteModel<RelationState, borkin_equiv::relation::RelOp>,
                          tier: Tier| {
        Checker::new(m, n)
            .tier(tier)
            .state_cap(STATE_CAP)
            .parallel(ParallelConfig::with_threads(4))
            .run()
            .unwrap()
    };

    // Composed but not isomorphic.
    let singles = rel_micro(1, "micro-singles");
    let pairs = rel_micro(2, "micro-pairs");
    let iso = parallel_check(&singles, &pairs, Tier::Isomorphic);
    assert!(!iso.is_equivalent(), "{iso}");
    let composed = parallel_check(&singles, &pairs, Tier::Composed { max_depth: 2 });
    assert!(composed.is_equivalent(), "{composed}");

    // State dependent but not composed.
    let m = rel_micro(2, "micro-rel");
    let schema = Arc::new(witness::micro_graph_schema());
    let gops = enumerate_graph_ops(&schema);
    let n = graph_model("micro-graph", GraphState::empty(schema), gops);
    let composed = Checker::new(&m, &n)
        .tier(Tier::Composed { max_depth: 3 })
        .state_cap(STATE_CAP)
        .parallel(ParallelConfig::with_threads(4))
        .run()
        .unwrap();
    assert!(!composed.is_equivalent(), "{composed}");
    assert!(
        composed
            .witnesses()
            .iter()
            .any(|w| w.label.starts_with("insert-statements")),
        "the idempotent relational insert should be a witness: {composed}"
    );
    let state_dep = Checker::new(&m, &n)
        .tier(Tier::StateDependent { max_depth: 3 })
        .state_cap(STATE_CAP)
        .parallel(ParallelConfig::with_threads(4))
        .run()
        .unwrap();
    assert!(state_dep.is_equivalent(), "{state_dep}");
}
