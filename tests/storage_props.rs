//! Property tests for the storage primitives the MVCC tier is built on.
//!
//! Three layers, three contracts:
//!
//! - **page / heap / index** — slotted-page round-trips, compaction
//!   that loses no live record, and model-checked index behaviour;
//! - **WAL framing** — the torn-write harness: a log cut at *every*
//!   byte offset, and single-byte corruption anywhere in a frame, must
//!   yield exactly an intact record prefix plus a typed tail error —
//!   never a wrong record;
//! - **MvccStore** — model-checked snapshot reads: `get_at` agrees with
//!   a naive version map at every (key, snapshot) point, and neither
//!   `gc` nor tombstone purging changes any read at or above the
//!   retention horizon.

use std::collections::BTreeMap;

use proptest::prelude::*;

use borkin_equiv::storage::heap::HeapFile;
use borkin_equiv::storage::index::OrderedIndex;
use borkin_equiv::storage::mvcc::MvccStore;
use borkin_equiv::storage::page::Page;
use borkin_equiv::storage::wal;
use borkin_equiv::storage::RecordPtr;

/// Deterministic case-local randomness (the proptest shim hands us a
/// seed; everything else derives from it).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 11
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }

    fn bytes(&mut self, len: usize) -> Vec<u8> {
        (0..len).map(|_| self.next() as u8).collect()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Slotted pages: every inserted record reads back verbatim, slots
    /// survive deletes of *other* slots, and compaction reclaims all
    /// dead space without disturbing a single live record or slot id.
    #[test]
    fn page_round_trips_and_compacts_losslessly(seed in 0u64..1_000_000) {
        let mut rng = Rng(seed);
        let mut page = Page::new();
        let mut live: BTreeMap<u16, Vec<u8>> = BTreeMap::new();
        loop {
            let len = 1 + rng.below(120) as usize;
            let record = rng.bytes(len);
            match page.insert(&record) {
                Ok(slot) => {
                    prop_assert!(live.insert(slot, record).is_none(), "slot reused while live");
                }
                Err(_) => break, // page full — exactly what we wanted
            }
        }
        prop_assert!(live.len() >= 2, "page holds a useful number of records");
        // Delete about a third of the slots.
        let doomed: Vec<u16> = live
            .keys()
            .copied()
            .filter(|_| rng.below(3) == 0)
            .collect();
        for slot in &doomed {
            page.delete(*slot).unwrap();
            live.remove(slot);
        }
        if !doomed.is_empty() {
            prop_assert!(page.dead_space() > 0);
        }
        page.compact();
        prop_assert_eq!(page.dead_space(), 0, "compaction reclaims all dead bytes");
        for (slot, record) in &live {
            prop_assert_eq!(page.get(*slot).unwrap(), record.as_slice());
        }
        for slot in &doomed {
            prop_assert!(page.get(*slot).is_err(), "deleted slot stays dead");
        }
        let scanned: BTreeMap<u16, Vec<u8>> = page
            .live_records()
            .map(|(s, r)| (s, r.to_vec()))
            .collect();
        prop_assert_eq!(scanned, live);
    }

    /// Heap files: records spill across pages, vacuum compacts every
    /// page, and — the invariant MVCC leans on — record pointers stay
    /// valid across vacuum.
    #[test]
    fn heap_pointers_survive_vacuum(seed in 0u64..1_000_000) {
        let mut rng = Rng(seed);
        let mut heap = HeapFile::new();
        let mut live: BTreeMap<(u32, u16), Vec<u8>> = BTreeMap::new();
        let mut doomed: Vec<RecordPtr> = Vec::new();
        for _ in 0..400 {
            let len = 1 + rng.below(300) as usize;
            let record = rng.bytes(len);
            let ptr = heap.insert(&record).unwrap();
            if rng.below(3) == 0 {
                doomed.push(ptr);
            } else {
                live.insert((ptr.page, ptr.slot), record);
            }
        }
        prop_assert!(heap.page_count() > 1, "the workload must span pages");
        for ptr in &doomed {
            heap.delete(*ptr).unwrap();
        }
        heap.vacuum();
        prop_assert_eq!(heap.dead_space(), 0);
        prop_assert_eq!(heap.len(), live.len());
        for (&(page, slot), record) in &live {
            prop_assert_eq!(
                heap.get(RecordPtr { page, slot }).unwrap(),
                record.as_slice(),
                "pointer moved under vacuum"
            );
        }
        let scanned: BTreeMap<(u32, u16), Vec<u8>> = heap
            .scan()
            .map(|(p, r)| ((p.page, p.slot), r.to_vec()))
            .collect();
        prop_assert_eq!(scanned, live);
    }

    /// The ordered index against a `BTreeMap` model: point reads,
    /// upserts, removals, and range/prefix scans all agree.
    #[test]
    fn ordered_index_matches_btreemap_model(seed in 0u64..1_000_000) {
        let mut rng = Rng(seed);
        let mut index = OrderedIndex::new();
        let mut model: BTreeMap<Vec<u8>, RecordPtr> = BTreeMap::new();
        let ptr = |n: u64| RecordPtr { page: (n >> 16) as u32, slot: n as u16 };
        for i in 0..500u64 {
            let len = 1 + rng.below(6) as usize;
            let key = rng.bytes(len);
            if rng.below(4) == 0 {
                prop_assert_eq!(index.remove(&key), model.remove(&key));
            } else {
                prop_assert_eq!(index.insert(key.clone(), ptr(i)), model.insert(key, ptr(i)));
            }
        }
        prop_assert_eq!(index.len(), model.len());
        for (key, p) in &model {
            prop_assert_eq!(index.get(key), Some(*p));
        }
        let (mut lo, mut hi) = (rng.bytes(2), rng.bytes(2));
        if lo > hi {
            std::mem::swap(&mut lo, &mut hi);
        }
        let got: Vec<(Vec<u8>, RecordPtr)> = index
            .range(
                std::ops::Bound::Included(lo.as_slice()),
                std::ops::Bound::Excluded(hi.as_slice()),
            )
            .map(|(k, p)| (k.to_vec(), p))
            .collect();
        let want: Vec<(Vec<u8>, RecordPtr)> = model
            .range(lo..hi)
            .map(|(k, p)| (k.clone(), *p))
            .collect();
        prop_assert_eq!(got, want);
        let prefix = rng.bytes(1);
        let got: Vec<Vec<u8>> = index.prefix(&prefix).map(|(k, _)| k.to_vec()).collect();
        let want: Vec<Vec<u8>> = model
            .keys()
            .filter(|k| k.starts_with(&prefix))
            .cloned()
            .collect();
        prop_assert_eq!(got, want);
    }

    /// The torn-write harness: cut a multi-record log at **every** byte
    /// offset. Tolerant replay must return exactly the records whose
    /// frames survive complete — bitwise intact — and flag a torn tail
    /// precisely when the cut lands mid-frame.
    #[test]
    fn wal_cut_at_every_byte_yields_an_intact_prefix(seed in 0u64..1_000_000) {
        let mut rng = Rng(seed);
        let mut buf = Vec::new();
        let mut records = Vec::new();
        let mut ends = vec![0usize];
        for lsn in 1..=8u64 {
            let len = rng.below(60) as usize;
            let payload = rng.bytes(len);
            let trace = (rng.below(2) == 0).then(|| rng.next());
            wal::append_record_traced(&mut buf, lsn, trace, &payload);
            records.push((lsn, trace, payload));
            ends.push(buf.len());
        }
        for cut in 0..=buf.len() {
            let (got, tail) = wal::replay_tolerant(&buf[..cut]);
            let complete = ends.iter().filter(|&&e| e > 0 && e <= cut).count();
            prop_assert_eq!(got.len(), complete, "cut {}", cut);
            for (r, (lsn, trace, payload)) in got.iter().zip(&records) {
                prop_assert_eq!(r.lsn, *lsn);
                prop_assert_eq!(r.trace, *trace);
                prop_assert_eq!(&r.payload, payload);
            }
            prop_assert_eq!(
                tail.is_some(),
                cut != ends[complete],
                "tail error iff the cut is mid-frame (cut {})",
                cut
            );
        }
    }

    /// Single-byte corruption anywhere in the log: the checksum (or
    /// frame header validation) stops replay at the corrupt frame.
    /// Everything before it is returned bitwise intact; nothing at or
    /// after it leaks through as a "decoded" record.
    #[test]
    fn wal_single_byte_corruption_never_yields_a_wrong_record(seed in 0u64..1_000_000) {
        let mut rng = Rng(seed);
        let mut buf = Vec::new();
        let mut records = Vec::new();
        let mut ends = vec![0usize];
        for lsn in 1..=6u64 {
            let len = 1 + rng.below(40) as usize;
            let payload = rng.bytes(len);
            wal::append_record_traced(&mut buf, lsn, Some(rng.next()), &payload);
            records.push((lsn, payload));
            ends.push(buf.len());
        }
        let at = rng.below(buf.len() as u64) as usize;
        let mut corrupt = buf.clone();
        corrupt[at] ^= 1 << rng.below(8);
        let (got, tail) = wal::replay_tolerant(&corrupt);
        // The flipped byte lives in frame k: frames 0..k replay intact.
        let k = ends.iter().filter(|&&e| e > 0 && e <= at).count();
        prop_assert_eq!(got.len(), k, "replay stops at the corrupt frame");
        prop_assert!(tail.is_some(), "corruption is reported, not swallowed");
        for (r, (lsn, payload)) in got.iter().zip(&records) {
            prop_assert_eq!(r.lsn, *lsn);
            prop_assert_eq!(&r.payload, payload);
        }
    }

    /// `MvccStore` against a naive model: a random history of puts and
    /// deletes over a small key pool, then `get_at` checked at every
    /// (key, snapshot) point; `gc` and tombstone purging must not
    /// change any read at or above their horizon.
    #[test]
    fn mvcc_snapshot_reads_match_the_model_through_gc(seed in 0u64..1_000_000) {
        let mut rng = Rng(seed);
        let mut store = MvccStore::new();
        // key -> lsn -> value (None = tombstone)
        let mut model: BTreeMap<Vec<u8>, BTreeMap<u64, Option<Vec<u8>>>> = BTreeMap::new();
        let keys: Vec<Vec<u8>> = (0..5u8).map(|i| vec![b'k', i]).collect();
        let max_lsn = 40u64;
        for lsn in 1..=max_lsn {
            let key = &keys[rng.below(keys.len() as u64) as usize];
            if rng.below(3) == 0 {
                store.delete(key, lsn).unwrap();
                model.entry(key.clone()).or_default().insert(lsn, None);
            } else {
                let len = 1 + rng.below(20) as usize;
                let value = rng.bytes(len);
                store.put(key, lsn, &value).unwrap();
                model.entry(key.clone()).or_default().insert(lsn, Some(value));
            }
        }
        let model_read = |model: &BTreeMap<Vec<u8>, BTreeMap<u64, Option<Vec<u8>>>>,
                          key: &[u8],
                          snapshot: u64| {
            model
                .get(key)
                .and_then(|versions| versions.range(..=snapshot).next_back())
                .and_then(|(_, v)| v.clone())
        };
        for snapshot in 0..=max_lsn {
            for key in &keys {
                prop_assert_eq!(
                    store.get_at(key, snapshot).map(<[u8]>::to_vec),
                    model_read(&model, key, snapshot),
                    "key {:?} at snapshot {}",
                    key,
                    snapshot
                );
            }
        }
        // GC below a random horizon: reads at or above it are untouched.
        let horizon = rng.below(max_lsn + 1);
        let before = store.version_count();
        store.gc(horizon);
        prop_assert!(store.version_count() <= before);
        store.purge_tombstones(horizon);
        for snapshot in horizon..=max_lsn {
            for key in &keys {
                prop_assert_eq!(
                    store.get_at(key, snapshot).map(<[u8]>::to_vec),
                    model_read(&model, key, snapshot),
                    "post-gc key {:?} at snapshot {}",
                    key,
                    snapshot
                );
            }
        }
    }
}
