//! Differential testing: the parallel, memoized engine must agree with
//! the sequential reference checkers — same verdicts, same witness
//! sets, same errors — on randomly generated finite application models,
//! across all four checker tiers (Definitions 2, 3, 5 and 6), at every
//! thread count.
//!
//! The generated models are the checker-plumbing toys from the unit
//! suites: states are fact bases, operations insert or delete one fact
//! from a small universe, so closures stay tiny while still exercising
//! non-onto pairings, error states, idempotence asymmetries and partial
//! data-model matches.

// These suites deliberately exercise the deprecated pre-facade entry
// points: they are the reference the `Checker` parity tests compare
// against, and must keep compiling until the wrappers are removed.
#![allow(deprecated)]

use std::collections::BTreeMap;

use proptest::prelude::*;

use borkin_equiv::equivalence::equiv::{
    application_models_equivalent, data_model_equivalent, CheckError, EquivKind, MatchReport,
};
use borkin_equiv::equivalence::model::FiniteModel;
use borkin_equiv::equivalence::parallel::{
    parallel_application_models_equivalent, parallel_data_model_equivalent, ParallelConfig, Side,
    Verdict,
};
use borkin_equiv::logic::{Fact, FactBase};
use borkin_equiv::value::Atom;

const STATE_CAP: usize = 512;

fn fact(n: u8) -> Fact {
    Fact::new("p", [("x", Atom::Int(n as i64))])
}

/// A model over fact-base states whose operations each insert or delete
/// one fact; strict (inserting a present fact, or deleting an absent
/// one, is the error state).
fn toy_model(name: &str, ops: &[(bool, u8)]) -> FiniteModel<FactBase, String> {
    let universe: BTreeMap<String, (bool, Fact)> = ops
        .iter()
        .map(|(add, n)| {
            let f = fact(*n);
            (format!("{}{}", if *add { "+" } else { "-" }, f), (*add, f))
        })
        .collect();
    let op_names: Vec<String> = universe.keys().cloned().collect();
    FiniteModel::new(name, FactBase::default(), op_names, move |op, s| {
        let (add, f) = &universe[op];
        let mut next = s.clone();
        if *add {
            next.insert(f.clone()).then_some(next)
        } else {
            next.remove(f).then_some(next)
        }
    })
}

/// Random operation sets over a 3-fact universe: small enough that the
/// closure is at most 2^3 states, rich enough to produce equivalent,
/// inequivalent and unpairable model pairs.
fn ops_strategy() -> impl Strategy<Value = Vec<(bool, u8)>> {
    prop::collection::vec((any::<bool>(), 0u8..3), 1..6)
}

fn kind_strategy() -> impl Strategy<Value = EquivKind> {
    prop_oneof![
        Just(EquivKind::Isomorphic),
        (0usize..3).prop_map(|max_depth| EquivKind::Composed { max_depth }),
        (0usize..3).prop_map(|max_depth| EquivKind::StateDependent { max_depth }),
    ]
}

/// Asserts that a parallel [`Verdict`] says exactly what the sequential
/// [`MatchReport`] says: same answer, same witnesses, same order.
fn assert_verdict_matches_report(
    verdict: &Verdict,
    report: &MatchReport,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(verdict.is_equivalent(), report.equivalent);
    match verdict {
        Verdict::Equivalent { state_pairs } => {
            prop_assert_eq!(*state_pairs, report.state_pairs);
        }
        Verdict::Counterexample {
            state_pairs,
            witnesses,
        } => {
            prop_assert_eq!(*state_pairs, report.state_pairs);
            let left: Vec<&str> = witnesses
                .iter()
                .filter(|w| w.side == Side::Left)
                .map(|w| w.label.as_str())
                .collect();
            let right: Vec<&str> = witnesses
                .iter()
                .filter(|w| w.side == Side::Right)
                .map(|w| w.label.as_str())
                .collect();
            prop_assert_eq!(left, report.unmatched_m.iter().map(String::as_str).collect::<Vec<_>>());
            prop_assert_eq!(right, report.unmatched_n.iter().map(String::as_str).collect::<Vec<_>>());
        }
        Verdict::BudgetExhausted { .. } => {
            prop_assert!(false, "unlimited budget must never exhaust");
        }
    }
    Ok(())
}

proptest! {
    /// Tier 2/3/5 differential: on every random model pair and every
    /// definition, the parallel engine returns the sequential checker's
    /// exact outcome — including the exact pairing/closure error when
    /// the pair cannot be checked — at 1, 2 and 4 threads.
    #[test]
    fn parallel_engine_agrees_with_sequential_checkers(
        m_ops in ops_strategy(),
        n_ops in ops_strategy(),
        kind in kind_strategy(),
    ) {
        let m = toy_model("m", &m_ops);
        let n = toy_model("n", &n_ops);
        let sequential = application_models_equivalent(&m, &n, kind, STATE_CAP);
        for threads in [1usize, 2, 4] {
            let parallel = parallel_application_models_equivalent(
                &m,
                &n,
                kind,
                STATE_CAP,
                &ParallelConfig::with_threads(threads),
            );
            match (&sequential, &parallel) {
                (Ok(report), Ok(verdict)) => assert_verdict_matches_report(verdict, report)?,
                (Err(seq_err), Err(par_err)) => prop_assert_eq!(seq_err, par_err),
                _ => prop_assert!(
                    false,
                    "engines disagree on checkability: sequential {:?}, parallel {:?}",
                    sequential,
                    parallel
                ),
            }
        }
    }

    /// Early exit keeps soundness: whenever the full engine finds
    /// counterexamples, the early-exit engine reports a counterexample
    /// too, and its single witness is the full engine's first witness.
    #[test]
    fn early_exit_returns_the_first_full_witness(
        m_ops in ops_strategy(),
        n_ops in ops_strategy(),
        kind in kind_strategy(),
    ) {
        let m = toy_model("m", &m_ops);
        let n = toy_model("n", &n_ops);
        let full = parallel_application_models_equivalent(
            &m,
            &n,
            kind,
            STATE_CAP,
            &ParallelConfig::with_threads(4),
        );
        let early = parallel_application_models_equivalent(
            &m,
            &n,
            kind,
            STATE_CAP,
            &ParallelConfig::with_threads(4).early_exit(),
        );
        match (&full, &early) {
            (Ok(full_verdict), Ok(early_verdict)) => {
                prop_assert_eq!(
                    full_verdict.is_equivalent(),
                    early_verdict.is_equivalent()
                );
                if let Verdict::Counterexample { witnesses, .. } = full_verdict {
                    prop_assert_eq!(early_verdict.witnesses(), &witnesses[..1]);
                }
            }
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            _ => prop_assert!(false, "full {:?} vs early {:?}", full, early),
        }
    }

    /// Tier 6 differential: data-model (Definition 6) checks agree —
    /// the parallel grid's witness names are exactly the sequential
    /// report's unmatched application models, in declaration order.
    #[test]
    fn parallel_data_model_check_agrees_with_sequential(
        m_sets in prop::collection::vec(ops_strategy(), 1..3),
        n_sets in prop::collection::vec(ops_strategy(), 1..3),
        kind in kind_strategy(),
    ) {
        let ms: Vec<_> = m_sets
            .iter()
            .enumerate()
            .map(|(i, ops)| toy_model(&format!("m{i}"), ops))
            .collect();
        let ns: Vec<_> = n_sets
            .iter()
            .enumerate()
            .map(|(i, ops)| toy_model(&format!("n{i}"), ops))
            .collect();
        let report = data_model_equivalent(&ms, &ns, kind, STATE_CAP).unwrap();
        for threads in [1usize, 4] {
            let verdict = parallel_data_model_equivalent(
                &ms,
                &ns,
                kind,
                STATE_CAP,
                &ParallelConfig::with_threads(threads),
            )
            .unwrap();
            prop_assert_eq!(verdict.is_equivalent(), report.equivalent);
            let left: Vec<&str> = verdict
                .witnesses()
                .iter()
                .filter(|w| w.side == Side::Left)
                .map(|w| w.label.as_str())
                .collect();
            let right: Vec<&str> = verdict
                .witnesses()
                .iter()
                .filter(|w| w.side == Side::Right)
                .map(|w| w.label.as_str())
                .collect();
            prop_assert_eq!(left, report.unmatched_m());
            prop_assert_eq!(right, report.unmatched_n());
        }
    }

    /// Budget-exhaustion differential: a budgeted run either gives the
    /// unlimited engine's exact verdict or exhausts — it never returns a
    /// *different* answer, no matter how tight the budget.
    #[test]
    fn budgets_never_change_answers(
        m_ops in ops_strategy(),
        n_ops in ops_strategy(),
        max_nodes in 0u64..2_000,
    ) {
        let kind = EquivKind::Composed { max_depth: 2 };
        let m = toy_model("m", &m_ops);
        let n = toy_model("n", &n_ops);
        let unlimited = parallel_application_models_equivalent(
            &m,
            &n,
            kind,
            STATE_CAP,
            &ParallelConfig::with_threads(2),
        );
        let budgeted = parallel_application_models_equivalent(
            &m,
            &n,
            kind,
            STATE_CAP,
            &ParallelConfig::with_threads(2)
                .budget(borkin_equiv::equivalence::parallel::CheckBudget::nodes(max_nodes)),
        );
        match (&unlimited, &budgeted) {
            (Ok(full), Ok(Verdict::BudgetExhausted { .. })) => {
                prop_assert!(!matches!(full, Verdict::BudgetExhausted { .. }));
            }
            (Ok(full), Ok(limited)) => prop_assert_eq!(full, limited),
            // A blown budget may surface before the closure/pairing
            // error does; both engines erring must mean the same error.
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            (Err(CheckError::Closure(_) | CheckError::Pairing(_)), Ok(Verdict::BudgetExhausted { .. })) => {}
            _ => prop_assert!(false, "unlimited {:?} vs budgeted {:?}", unlimited, budgeted),
        }
    }
}
