//! Differential testing: the parallel, memoized engine must agree with
//! the sequential reference checkers — same verdicts, same witness
//! sets, same errors — on randomly generated finite application models,
//! across all four checker tiers (Definitions 2, 3, 5 and 6), at every
//! thread count.
//!
//! Both engines are driven through the [`Checker`] facade (no
//! `.parallel()` routes to the sequential reference checkers; see
//! `tests/facade.rs` for the facade/legacy parity proofs), so this
//! suite is a differential test of the engines themselves.
//!
//! The generated models are the checker-plumbing toys from the unit
//! suites: states are fact bases, operations insert or delete one fact
//! from a small universe, so closures stay tiny while still exercising
//! non-onto pairings, error states, idempotence asymmetries and partial
//! data-model matches.

use std::collections::BTreeMap;

use proptest::prelude::*;

use borkin_equiv::equivalence::equiv::{CheckError, EquivKind};
use borkin_equiv::equivalence::model::FiniteModel;
use borkin_equiv::equivalence::parallel::{CheckBudget, ParallelConfig, Side, Verdict};
use borkin_equiv::equivalence::{Checker, Tier};
use borkin_equiv::logic::{Fact, FactBase};
use borkin_equiv::value::Atom;

const STATE_CAP: usize = 512;

fn fact(n: u8) -> Fact {
    Fact::new("p", [("x", Atom::Int(n as i64))])
}

/// A model over fact-base states whose operations each insert or delete
/// one fact; strict (inserting a present fact, or deleting an absent
/// one, is the error state).
fn toy_model(name: &str, ops: &[(bool, u8)]) -> FiniteModel<FactBase, String> {
    let universe: BTreeMap<String, (bool, Fact)> = ops
        .iter()
        .map(|(add, n)| {
            let f = fact(*n);
            (format!("{}{}", if *add { "+" } else { "-" }, f), (*add, f))
        })
        .collect();
    let op_names: Vec<String> = universe.keys().cloned().collect();
    FiniteModel::new(name, FactBase::default(), op_names, move |op, s| {
        let (add, f) = &universe[op];
        let mut next = s.clone();
        if *add {
            next.insert(f.clone()).then_some(next)
        } else {
            next.remove(f).then_some(next)
        }
    })
}

/// Random operation sets over a 3-fact universe: small enough that the
/// closure is at most 2^3 states, rich enough to produce equivalent,
/// inequivalent and unpairable model pairs.
fn ops_strategy() -> impl Strategy<Value = Vec<(bool, u8)>> {
    prop::collection::vec((any::<bool>(), 0u8..3), 1..6)
}

fn kind_strategy() -> impl Strategy<Value = EquivKind> {
    prop_oneof![
        Just(EquivKind::Isomorphic),
        (0usize..3).prop_map(|max_depth| EquivKind::Composed { max_depth }),
        (0usize..3).prop_map(|max_depth| EquivKind::StateDependent { max_depth }),
    ]
}

/// Per-side witness labels, in report order.
fn labels(verdict: &Verdict, side: Side) -> Vec<&str> {
    verdict
        .witnesses()
        .iter()
        .filter(|w| w.side == side)
        .map(|w| w.label.as_str())
        .collect()
}

/// Asserts that a parallel [`Verdict`] says exactly what the sequential
/// one says: same answer, same searched pair count, same witnesses in
/// the same order.
fn assert_verdicts_agree(parallel: &Verdict, sequential: &Verdict) -> Result<(), TestCaseError> {
    prop_assert_eq!(parallel.is_equivalent(), sequential.is_equivalent());
    match (parallel, sequential) {
        (Verdict::Equivalent { state_pairs: p }, Verdict::Equivalent { state_pairs: s }) => {
            prop_assert_eq!(p, s)
        }
        (
            Verdict::Counterexample { state_pairs: p, .. },
            Verdict::Counterexample { state_pairs: s, .. },
        ) => {
            prop_assert_eq!(p, s);
            prop_assert_eq!(labels(parallel, Side::Left), labels(sequential, Side::Left));
            prop_assert_eq!(
                labels(parallel, Side::Right),
                labels(sequential, Side::Right)
            );
        }
        _ => prop_assert!(
            false,
            "verdict shapes disagree: parallel {:?}, sequential {:?}",
            parallel,
            sequential
        ),
    }
    Ok(())
}

proptest! {
    /// Tier 2/3/5 differential: on every random model pair and every
    /// definition, the parallel engine returns the sequential checker's
    /// exact outcome — including the exact pairing/closure error when
    /// the pair cannot be checked — at 1, 2 and 4 threads.
    #[test]
    fn parallel_engine_agrees_with_sequential_checkers(
        m_ops in ops_strategy(),
        n_ops in ops_strategy(),
        kind in kind_strategy(),
    ) {
        let m = toy_model("m", &m_ops);
        let n = toy_model("n", &n_ops);
        let sequential = Checker::new(&m, &n)
            .tier(Tier::from_kind(kind))
            .state_cap(STATE_CAP)
            .run();
        for threads in [1usize, 2, 4] {
            let parallel = Checker::new(&m, &n)
                .tier(Tier::from_kind(kind))
                .state_cap(STATE_CAP)
                .parallel(ParallelConfig::with_threads(threads))
                .run();
            match (&sequential, &parallel) {
                (Ok(seq_verdict), Ok(par_verdict)) => {
                    assert_verdicts_agree(par_verdict, seq_verdict)?
                }
                (Err(seq_err), Err(par_err)) => prop_assert_eq!(seq_err, par_err),
                _ => prop_assert!(
                    false,
                    "engines disagree on checkability: sequential {:?}, parallel {:?}",
                    sequential,
                    parallel
                ),
            }
        }
    }

    /// Early exit keeps soundness: whenever the full engine finds
    /// counterexamples, the early-exit engine reports a counterexample
    /// too, and its single witness is the full engine's first witness.
    #[test]
    fn early_exit_returns_the_first_full_witness(
        m_ops in ops_strategy(),
        n_ops in ops_strategy(),
        kind in kind_strategy(),
    ) {
        let m = toy_model("m", &m_ops);
        let n = toy_model("n", &n_ops);
        let full = Checker::new(&m, &n)
            .tier(Tier::from_kind(kind))
            .state_cap(STATE_CAP)
            .parallel(ParallelConfig::with_threads(4))
            .run();
        let early = Checker::new(&m, &n)
            .tier(Tier::from_kind(kind))
            .state_cap(STATE_CAP)
            .parallel(ParallelConfig::with_threads(4).early_exit())
            .run();
        match (&full, &early) {
            (Ok(full_verdict), Ok(early_verdict)) => {
                prop_assert_eq!(
                    full_verdict.is_equivalent(),
                    early_verdict.is_equivalent()
                );
                if let Verdict::Counterexample { witnesses, .. } = full_verdict {
                    prop_assert_eq!(early_verdict.witnesses(), &witnesses[..1]);
                }
            }
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            _ => prop_assert!(false, "full {:?} vs early {:?}", full, early),
        }
    }

    /// Tier 6 differential: data-model (Definition 6) checks agree —
    /// the parallel grid's witness names are exactly the sequential
    /// check's unmatched application models, in declaration order.
    #[test]
    fn parallel_data_model_check_agrees_with_sequential(
        m_sets in prop::collection::vec(ops_strategy(), 1..3),
        n_sets in prop::collection::vec(ops_strategy(), 1..3),
        kind in kind_strategy(),
    ) {
        let ms: Vec<_> = m_sets
            .iter()
            .enumerate()
            .map(|(i, ops)| toy_model(&format!("m{i}"), ops))
            .collect();
        let ns: Vec<_> = n_sets
            .iter()
            .enumerate()
            .map(|(i, ops)| toy_model(&format!("n{i}"), ops))
            .collect();
        let sequential = Checker::data_models(&ms, &ns)
            .tier(Tier::DataModel { kind })
            .state_cap(STATE_CAP)
            .run()
            .unwrap();
        for threads in [1usize, 4] {
            let verdict = Checker::data_models(&ms, &ns)
                .tier(Tier::DataModel { kind })
                .state_cap(STATE_CAP)
                .parallel(ParallelConfig::with_threads(threads))
                .run()
                .unwrap();
            prop_assert_eq!(verdict.is_equivalent(), sequential.is_equivalent());
            prop_assert_eq!(labels(&verdict, Side::Left), labels(&sequential, Side::Left));
            prop_assert_eq!(labels(&verdict, Side::Right), labels(&sequential, Side::Right));
        }
    }

    /// Slow-reference differential (enabled with
    /// `--features slow-reference`): the arena-backed engines —
    /// sequential and parallel — return byte-identical verdicts to the
    /// pre-arena BTreeSet engine preserved in
    /// `borkin_equiv::equivalence::slow_reference`, across Definitions
    /// 2/3/5 and the Definition 6 grid.
    #[cfg(feature = "slow-reference")]
    #[test]
    fn arena_engines_match_the_slow_reference(
        m_ops in ops_strategy(),
        n_ops in ops_strategy(),
        kind in kind_strategy(),
    ) {
        use borkin_equiv::equivalence::slow_reference;
        let m = toy_model("m", &m_ops);
        let n = toy_model("n", &n_ops);
        let slow = slow_reference::app_models_verdict_slow(&m, &n, kind, STATE_CAP);
        let arena_seq = Checker::new(&m, &n)
            .tier(Tier::from_kind(kind))
            .state_cap(STATE_CAP)
            .run();
        let arena_par = Checker::new(&m, &n)
            .tier(Tier::from_kind(kind))
            .state_cap(STATE_CAP)
            .parallel(ParallelConfig::with_threads(4))
            .run();
        prop_assert_eq!(&arena_seq, &slow, "sequential arena engine vs slow reference");
        prop_assert_eq!(&arena_par, &slow, "parallel arena engine vs slow reference");

        let slow_grid = slow_reference::data_model_verdict_slow(
            std::slice::from_ref(&m),
            std::slice::from_ref(&n),
            kind,
            STATE_CAP,
        );
        let arena_grid = Checker::data_models(std::slice::from_ref(&m), std::slice::from_ref(&n))
            .tier(Tier::DataModel { kind })
            .state_cap(STATE_CAP)
            .run();
        prop_assert_eq!(&arena_grid, &slow_grid, "Definition 6 grid vs slow reference");
    }

    /// Budget-exhaustion differential: a budgeted run either gives the
    /// unlimited engine's exact verdict or exhausts — it never returns a
    /// *different* answer, no matter how tight the budget.
    #[test]
    fn budgets_never_change_answers(
        m_ops in ops_strategy(),
        n_ops in ops_strategy(),
        max_nodes in 0u64..2_000,
    ) {
        let kind = EquivKind::Composed { max_depth: 2 };
        let m = toy_model("m", &m_ops);
        let n = toy_model("n", &n_ops);
        let unlimited = Checker::new(&m, &n)
            .tier(Tier::from_kind(kind))
            .state_cap(STATE_CAP)
            .parallel(ParallelConfig::with_threads(2))
            .run();
        let budgeted = Checker::new(&m, &n)
            .tier(Tier::from_kind(kind))
            .state_cap(STATE_CAP)
            .parallel(ParallelConfig::with_threads(2).budget(CheckBudget::nodes(max_nodes)))
            .run();
        match (&unlimited, &budgeted) {
            (Ok(full), Ok(Verdict::BudgetExhausted { .. })) => {
                prop_assert!(!matches!(full, Verdict::BudgetExhausted { .. }));
            }
            (Ok(full), Ok(limited)) => prop_assert_eq!(full, limited),
            // A blown budget may surface before the closure/pairing
            // error does; both engines erring must mean the same error.
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            (Err(CheckError::Closure(_) | CheckError::Pairing(_)), Ok(Verdict::BudgetExhausted { .. })) => {}
            _ => prop_assert!(false, "unlimited {:?} vs budgeted {:?}", unlimited, budgeted),
        }
    }
}
