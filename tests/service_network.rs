//! Conformance and stress suite for the networked front door.
//!
//! The claim under test is **wire parity**: driving the sharded session
//! service through the full network path — typed requests, CRC framing,
//! the duplex transport, per-shard dispatchers — commits exactly the
//! schedules the in-process service would, and the committed schedule
//! still satisfies every sequential oracle from `service_conformance`:
//!
//! 1. replaying the committed history with `GraphOp::apply_all`
//!    reproduces the service's final conceptual state;
//! 2. every external view, replayed through `ExternalView`, matches the
//!    served view state and satisfies Definition 2;
//! 3. recovery from the durable image (merging all shard logs) rebuilds
//!    the same state.
//!
//! On top of parity the suite stresses the service qua *service*:
//! admission control sheds with a typed `Overloaded` under a full lane,
//! ten thousand concurrent sessions multiplex over a handful of
//! connections without deadlock or a dropped frame, and a shared
//! [`WriteBudget`] crash matrix checks that every transaction
//! acknowledged over the wire survives sharded recovery.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::time::Duration;

use proptest::prelude::*;

use borkin_equiv::ansi::ExternalView;
use borkin_equiv::equivalence::translate::CompletionMode;
use borkin_equiv::graph::GraphOp;
use borkin_equiv::obs::{Observer, RingSink};
use borkin_equiv::server::{
    CommitMode, CommitOutcome, MemDevice, NetServer, ServerError, ServiceConfig, SessionKind,
    SessionService, ViewSpec, WriteBudget,
};
use borkin_equiv::storage::wal;
use borkin_equiv::workload::{self, SessionStream, ShopConfig};

const SHARDS: usize = 4;

/// One generated schedule: everything needed to re-run it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct ScheduleSpec {
    seed: u64,
    sessions: usize,
    ops_each: usize,
    per_op_commit: bool,
}

fn shop_cfg(seed: u64) -> ShopConfig {
    ShopConfig {
        employees: 6,
        machines: 3,
        supervisions: 4,
        seed,
    }
}

fn views(cfg: ShopConfig) -> Vec<ViewSpec> {
    vec![
        ViewSpec {
            name: "shop".into(),
            schema: workload::relational_schema(cfg),
            mode: CompletionMode::Minimal,
        },
        ViewSpec {
            name: "personnel".into(),
            schema: workload::personnel_schema(cfg),
            mode: CompletionMode::Minimal,
        },
    ]
}

fn mem_wals(n: usize) -> Vec<Box<dyn borkin_equiv::server::LogDevice>> {
    (0..n)
        .map(|_| Box::new(MemDevice::new()) as Box<dyn borkin_equiv::server::LogDevice>)
        .collect()
}

/// Failure post-mortem for this suite: the merged telemetry snapshot
/// (global counters + every shard lane) and one dump per shard lane,
/// all under `target/flight/` — the directory CI ships as an artifact
/// when a leg fails.
fn dump_observability(service: &SessionService, test: &str) {
    let dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("target")
        .join("flight");
    let _ = std::fs::create_dir_all(&dir);
    let snap = service.telemetry_snapshot();
    let _ = std::fs::write(
        dir.join(format!("service_network_{test}.metrics.json")),
        snap.to_json(),
    );
    for (i, shard) in snap.shards.iter().enumerate() {
        let mut out = format!("{{\"shard\":{i},\"lane_depth\":{},\"counters\":{{", shard.lane_depth);
        for (j, (c, v)) in shard.counters.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{v}", c.name()));
        }
        out.push_str("},\"metrics\":{");
        for (j, (m, h)) in shard.metrics.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":{{\"count\":{},\"p50_us\":{},\"p99_us\":{},\"max_us\":{}}}",
                m.name(),
                h.count,
                h.p50(),
                h.p99(),
                h.max
            ));
        }
        out.push_str("}}");
        let _ = std::fs::write(
            dir.join(format!("service_network_{test}.shard{i}.json")),
            out,
        );
    }
}

/// Dumps the service's observability plane iff the owning test panics:
/// hold one for the duration of a test and every failing leg leaves its
/// post-mortem under `target/flight/`.
struct DumpOnFailure {
    service: SessionService,
    test: &'static str,
}

impl Drop for DumpOnFailure {
    fn drop(&mut self) {
        if std::thread::panicking() {
            dump_observability(&self.service, self.test);
        }
    }
}

/// Runs one schedule through the network path and checks every
/// conformance property. `Err` carries a human-readable violation, and
/// a violating run leaves its metrics + per-shard dumps under
/// `target/flight/` for the CI artifact.
fn run_schedule_networked(spec: ScheduleSpec) -> Result<(), String> {
    let cfg = shop_cfg(spec.seed);
    let initial = workload::graph_state(cfg);
    let config = ServiceConfig {
        commit_mode: if spec.per_op_commit {
            CommitMode::PerOp
        } else {
            CommitMode::Group
        },
        shards: SHARDS,
        ..ServiceConfig::default()
    };
    let service = SessionService::new_sharded(
        initial.clone(),
        views(cfg),
        config,
        mem_wals(SHARDS),
        Box::new(MemDevice::new()),
    )
    .map_err(|e| format!("boot: {e}"))?;
    let result = drive_and_check(spec, cfg, &initial, &service);
    if result.is_err() {
        dump_observability(&service, "schedule");
    }
    result
}

/// The schedule driver + oracle checks behind `run_schedule_networked`.
fn drive_and_check(
    spec: ScheduleSpec,
    cfg: ShopConfig,
    initial: &borkin_equiv::graph::GraphState,
    service: &SessionService,
) -> Result<(), String> {
    let server = NetServer::serve(service.clone());
    let client = server.connect().map_err(|e| format!("connect: {e}"))?;

    let streams = workload::session_streams(cfg, spec.sessions, spec.ops_each);
    let failures: Mutex<Vec<String>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for (i, stream) in streams.iter().enumerate() {
            let client = client.clone();
            let failures = &failures;
            scope.spawn(move || {
                let fail =
                    |msg: String| failures.lock().unwrap().push(format!("session {i}: {msg}"));
                match stream {
                    SessionStream::Graph { ops } => {
                        let sess = match client.open_session(SessionKind::Graph) {
                            Ok(s) => s,
                            Err(e) => return fail(format!("open: {e}")),
                        };
                        for op in ops {
                            // Aborts are legitimate under interleaving;
                            // the conformance claim is about what
                            // *committed*. Transport faults are not.
                            if let Err(ServerError::Protocol(p)) =
                                sess.submit_graph(vec![op.clone()])
                            {
                                return fail(format!("transport: {p}"));
                            }
                        }
                        if let Err(e) = sess.close() {
                            fail(format!("close: {e}"));
                        }
                    }
                    SessionStream::Relational { view, ops } => {
                        let sess = match client
                            .open_session(SessionKind::Relational { view: view.clone() })
                        {
                            Ok(s) => s,
                            Err(e) => return fail(format!("open: {e}")),
                        };
                        for op in ops {
                            if let Err(ServerError::Protocol(p)) =
                                sess.submit_relational(op.clone())
                            {
                                return fail(format!("transport: {p}"));
                            }
                        }
                        if let Err(e) = sess.close() {
                            fail(format!("close: {e}"));
                        }
                    }
                }
            });
        }
    });
    drop(client);
    server.shutdown();
    let failures = failures.into_inner().unwrap();
    if !failures.is_empty() {
        return Err(failures.join("; "));
    }
    if service.open_sessions() != 0 {
        return Err(format!(
            "{} sessions still open after teardown",
            service.open_sessions()
        ));
    }

    // Oracle 1: sequential replay of the committed schedule.
    let history = service.committed_history();
    let mut oracle = initial.clone();
    for txn in &history {
        oracle = GraphOp::apply_all(&txn.ops, &oracle).map_err(|e| {
            format!(
                "committed txn lsn {} does not replay sequentially: {e}",
                txn.lsn
            )
        })?;
    }
    if *service.conceptual() != oracle {
        return Err("final conceptual state != sequential replay of committed schedule".into());
    }
    oracle
        .validate()
        .map_err(|e| format!("committed state violates the conceptual schema: {e}"))?;

    // Oracle 2: every view through the sequential view machinery.
    for vs in views(cfg) {
        let mut view = ExternalView::materialize(&vs.name, vs.schema, &initial, vs.mode)
            .map_err(|e| format!("oracle materialize {}: {e}", vs.name))?;
        let mut cursor = initial.clone();
        for txn in &history {
            view.apply_conceptual(&txn.ops, &cursor)
                .map_err(|e| format!("oracle replay into {}: {e}", vs.name))?;
            cursor = GraphOp::apply_all(&txn.ops, &cursor).expect("already replayed once");
        }
        let served = service
            .view_state(&vs.name)
            .ok_or_else(|| format!("service lost view {}", vs.name))?;
        if view.state() != &served {
            return Err(format!(
                "view {} diverged from its sequential replay",
                vs.name
            ));
        }
        if !view.consistent_with(&oracle) {
            return Err(format!(
                "view {} violates Definition 2 against the final conceptual state",
                vs.name
            ));
        }
    }

    // Oracle 3: sharded recovery from the durable image agrees with the
    // live service.
    let (recovered, report) = SessionService::recover_sharded(
        Arc::clone(oracle.schema()),
        &service.durable_image(),
        views(cfg),
        ServiceConfig {
            shards: SHARDS,
            ..ServiceConfig::default()
        },
        mem_wals(SHARDS),
        Box::new(MemDevice::new()),
    )
    .map_err(|e| format!("recovery: {e}"))?;
    if *recovered.conceptual() != oracle {
        return Err("recovered conceptual state != committed state".into());
    }
    if report.replayed != history.len() {
        return Err(format!(
            "recovery replayed {} of {} committed transactions",
            report.replayed,
            history.len()
        ));
    }
    Ok(())
}

/// Greedy delta-debugging over schedule specs, as in
/// `service_conformance`: shrink sessions, then ops per session.
fn minimize_spec<F: Fn(ScheduleSpec) -> bool>(mut spec: ScheduleSpec, fails: F) -> ScheduleSpec {
    loop {
        let mut shrunk = false;
        while spec.sessions > 1 {
            let candidate = ScheduleSpec {
                sessions: spec.sessions - 1,
                ..spec
            };
            if fails(candidate) {
                spec = candidate;
                shrunk = true;
            } else {
                break;
            }
        }
        while spec.ops_each > 1 {
            let candidate = ScheduleSpec {
                ops_each: spec.ops_each - 1,
                ..spec
            };
            if fails(candidate) {
                spec = candidate;
                shrunk = true;
            } else {
                break;
            }
        }
        if !shrunk {
            return spec;
        }
    }
}

fn reproduces(spec: ScheduleSpec) -> bool {
    (0..3).any(|_| run_schedule_networked(spec).is_err())
}

fn record_regression(spec: ScheduleSpec, violation: &str) {
    use std::io::Write;
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("proptest-regressions");
    let _ = std::fs::create_dir_all(&dir);
    if let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(dir.join("service_network.txt"))
    {
        let _ = writeln!(f, "# {violation}");
        let _ = writeln!(
            f,
            "seed={} sessions={} ops_each={} per_op_commit={}",
            spec.seed, spec.sessions, spec.ops_each, spec.per_op_commit
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// ≥256 generated interleaved schedules, each driven end to end
    /// through the wire API against a 4-shard service, each checked
    /// against the sequential oracle; failures are minimized first.
    #[test]
    fn networked_schedules_conform_to_the_sequential_oracle(
        seed in 0u64..1_000_000,
        sessions in 2usize..=5,
        ops_each in 1usize..=4,
        per_op_commit in 0u32..2,
    ) {
        let spec = ScheduleSpec {
            seed,
            sessions,
            ops_each,
            per_op_commit: per_op_commit == 1,
        };
        if let Err(violation) = run_schedule_networked(spec) {
            let minimal = minimize_spec(spec, reproduces);
            record_regression(minimal, &violation);
            prop_assert!(
                false,
                "networked schedule violates conformance: {violation}\n  \
                 minimal failing spec: {minimal:?}"
            );
        }
    }
}

/// A deterministic smoke case pinning the networked oracle end to end.
/// The first spec is the schedule that once deadlocked server teardown
/// (a parked reader future leaked its dispatcher queue senders when the
/// executor dropped), kept as a regression anchor.
#[test]
fn fixed_networked_schedule_conforms() {
    run_schedule_networked(ScheduleSpec {
        seed: 827419,
        sessions: 3,
        ops_each: 4,
        per_op_commit: false,
    })
    .unwrap();
    run_schedule_networked(ScheduleSpec {
        seed: 42,
        sessions: 5,
        ops_each: 4,
        per_op_commit: false,
    })
    .unwrap();
    run_schedule_networked(ScheduleSpec {
        seed: 43,
        sessions: 4,
        ops_each: 3,
        per_op_commit: true,
    })
    .unwrap();
}

/// Admission control end to end: a single slow lane with a one-deep
/// queue sheds concurrent wire submissions with a *typed* `Overloaded`
/// — every request gets a response, nothing blocks, and the service
/// stays live afterwards.
#[test]
fn a_full_lane_sheds_typed_overloads_over_the_wire() {
    const CALLERS: usize = 12;
    let cfg = shop_cfg(7);
    let obs = Observer::new(RingSink::with_capacity(1024));
    let service = SessionService::new_sharded(
        workload::graph_state(cfg),
        views(cfg),
        ServiceConfig {
            shards: 1,
            queue_depth: 1,
            obs,
            ..ServiceConfig::default()
        },
        vec![Box::new(
            MemDevice::new().with_sync_delay(Duration::from_millis(80)),
        )],
        Box::new(MemDevice::new()),
    )
    .unwrap();
    let server = NetServer::serve(service.clone());
    let client = server.connect().unwrap();

    // Open the sessions *before* the stampede: opens don't touch the
    // lane, so they admit instantly.
    let sessions: Vec<_> = (0..CALLERS)
        .map(|_| client.open_session(SessionKind::Graph).unwrap())
        .collect();
    let ops = workload::supervision_toggle_ops(cfg, CALLERS);
    let barrier = Barrier::new(CALLERS);
    let shed = AtomicUsize::new(0);
    let answered = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for (sess, op) in sessions.iter().zip(&ops) {
            let (barrier, shed, answered) = (&barrier, &shed, &answered);
            scope.spawn(move || {
                barrier.wait();
                // Commit, abort, or shed — every one is a *typed*
                // response; only a transport fault would be a bug.
                match sess.submit_graph(vec![op.clone()]) {
                    Ok(outcome) if outcome.is_shed() => {
                        shed.fetch_add(1, Ordering::Relaxed);
                    }
                    Ok(_) => {}
                    Err(ServerError::Protocol(p)) => panic!("transport fault: {p}"),
                    Err(_) => {}
                }
                answered.fetch_add(1, Ordering::Relaxed);
            });
        }
    });
    assert_eq!(
        answered.load(Ordering::Relaxed),
        CALLERS,
        "no dropped frames"
    );
    let shed = shed.load(Ordering::Relaxed);
    assert!(
        shed >= 1,
        "a one-deep lane under {CALLERS} concurrent submits must shed"
    );
    assert!(
        shed < CALLERS,
        "admission control must still admit the leader"
    );
    // The shed count is visible in the service's own telemetry...
    let metrics = client.metrics(false).unwrap();
    assert!(
        metrics.contains("requests_shed"),
        "shed counter is exported: {metrics}"
    );
    // ...and the lane drains: a fresh submission commits.
    let sess = client.open_session(SessionKind::Graph).unwrap();
    let outcome = sess
        .submit_graph(vec![ops[0].clone()])
        .or_else(|_| sess.submit_graph(vec![ops[1].clone()]))
        .unwrap();
    assert!(!outcome.is_shed(), "the drained lane admits again");
    for sess in sessions {
        sess.close().unwrap();
    }
    sess.close().unwrap();
    drop(client);
    server.shutdown();
}

/// Scale acceptance: ten thousand concurrent sessions over four shards,
/// multiplexed over four connections, with live traffic in the middle —
/// no deadlock, no dropped frame, and a clean global teardown.
#[test]
fn ten_thousand_sessions_multiplex_over_four_shards() {
    const SESSIONS: usize = 10_000;
    const OPENERS: usize = 16;
    let cfg = shop_cfg(11);
    let service = SessionService::new_sharded(
        workload::graph_state(cfg),
        views(cfg),
        ServiceConfig {
            shards: SHARDS,
            ..ServiceConfig::default()
        },
        mem_wals(SHARDS),
        Box::new(MemDevice::new()),
    )
    .unwrap();
    let server = NetServer::serve(service.clone());
    let clients: Vec<_> = (0..4).map(|_| server.connect().unwrap()).collect();

    // Phase 1: open 10⁴ sessions from 16 threads over 4 connections.
    let sessions = Mutex::new(Vec::with_capacity(SESSIONS));
    std::thread::scope(|scope| {
        for t in 0..OPENERS {
            let clients = &clients;
            let sessions = &sessions;
            scope.spawn(move || {
                let mut mine = Vec::with_capacity(SESSIONS / OPENERS);
                for _ in 0..SESSIONS / OPENERS {
                    let client = &clients[t % clients.len()];
                    mine.push(client.open_session(SessionKind::Graph).unwrap());
                }
                sessions.lock().unwrap().append(&mut mine);
            });
        }
    });
    let sessions = sessions.into_inner().unwrap();
    assert_eq!(sessions.len(), SESSIONS);
    assert_eq!(service.open_sessions(), SESSIONS as u64);

    // Phase 2: traffic on a spread of the open sessions, all shards.
    let ops = workload::supervision_toggle_ops(cfg, 64);
    let committed = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for (i, op) in ops.iter().enumerate() {
            let sess = &sessions[i * (SESSIONS / ops.len())];
            let committed = &committed;
            scope.spawn(move || {
                match sess.submit_graph(vec![op.clone()]) {
                    Ok(CommitOutcome::Committed(_)) | Ok(CommitOutcome::Retried { .. }) => {
                        committed.fetch_add(1, Ordering::Relaxed);
                    }
                    Ok(CommitOutcome::Shed { .. }) => {}
                    Err(ServerError::Protocol(p)) => panic!("transport fault: {p}"),
                    Err(_) => {}
                }
                sess.refresh().unwrap();
            });
        }
    });
    assert_eq!(
        service.committed_history().len(),
        committed.load(Ordering::Relaxed),
        "every wire ack corresponds to exactly one committed transaction"
    );

    // Phase 3: close all ten thousand and tear the server down.
    let mut batches: Vec<Vec<_>> = (0..OPENERS).map(|_| Vec::new()).collect();
    for (i, sess) in sessions.into_iter().enumerate() {
        batches[i % OPENERS].push(sess);
    }
    std::thread::scope(|scope| {
        for batch in batches {
            scope.spawn(move || {
                for sess in batch {
                    sess.close().unwrap();
                }
            });
        }
    });
    assert_eq!(service.open_sessions(), 0, "global teardown is clean");
    drop(clients);
    server.shutdown();
}

/// Tentpole acceptance: a transaction spanning several of four shard
/// lanes resolves — over the wire, via `TraceLookup` — to *one*
/// stitched causal tree carrying a `server/wal_append` span from every
/// involved shard.
#[test]
fn a_cross_shard_transaction_resolves_to_one_stitched_tree_over_the_wire() {
    use borkin_equiv::graph::{Association, EntityRef};
    use borkin_equiv::server::shard::shard_of;
    use borkin_equiv::value::Atom;

    let cfg = ShopConfig {
        employees: 24,
        machines: 2,
        supervisions: 0,
        seed: 29,
    };
    let service = SessionService::new_sharded(
        workload::graph_state(cfg),
        Vec::new(),
        ServiceConfig {
            shards: SHARDS,
            ..ServiceConfig::default()
        },
        mem_wals(SHARDS),
        Box::new(MemDevice::new()),
    )
    .unwrap();
    let _post_mortem = DumpOnFailure {
        service: service.clone(),
        test: "trace_lookup",
    };
    let server = NetServer::serve(service.clone());
    let client = server.connect().unwrap();
    let sess = client.open_session(SessionKind::Graph).unwrap();

    // One transaction of supervisions between employees chosen to land
    // on all four lanes, so its WAL frames fan out maximally.
    let employee = |i: usize| EntityRef::new("employee", Atom::str(format!("E{i:05}")));
    let mut picked: Vec<usize> = Vec::new();
    let mut lanes_seen: Vec<usize> = Vec::new();
    for i in 0..cfg.employees {
        let lane = shard_of(&employee(i), SHARDS);
        if !lanes_seen.contains(&lane) {
            lanes_seen.push(lane);
            picked.push(i);
            if lanes_seen.len() == SHARDS {
                break;
            }
        }
    }
    assert_eq!(
        lanes_seen.len(),
        SHARDS,
        "two dozen employees cover all four lanes"
    );
    let ops: Vec<GraphOp> = picked
        .chunks_exact(2)
        .map(|pair| {
            GraphOp::InsertAssociation(Association::new(
                "supervise",
                [
                    ("agent", employee(pair[0])),
                    ("object", employee(pair[1])),
                ],
            ))
        })
        .collect();
    let info = sess.submit_graph(ops).unwrap().expect_commit();

    // The wire lookup returns one tree, rooted once, with the admit →
    // verify → group_commit → wal_append → reply path intact and a
    // wal_append span on every one of the four lanes.
    let tree = client.trace_lookup(info.trace.as_u64()).unwrap();
    let mut involved = lanes_seen.clone();
    involved.sort_unstable();
    let shard_list = involved
        .iter()
        .map(|s| s.to_string())
        .collect::<Vec<_>>()
        .join(",");
    assert!(
        tree.contains(&format!("\"shards\":[{shard_list}]")),
        "tree spans every involved shard: {tree}"
    );
    assert_eq!(
        tree.matches("\"name\":\"server/wal_append\"").count(),
        SHARDS,
        "one journal span per involved lane: {tree}"
    );
    for step in [
        "server/admit",
        "server/verify",
        "server/group_commit",
        "server/reply",
    ] {
        assert_eq!(
            tree.matches(&format!("\"name\":\"{step}\"")).count(),
            1,
            "exactly one {step} span: {tree}"
        );
    }
    assert!(
        tree.starts_with(&format!("{{\"trace\":\"{}\"", info.trace)),
        "tree is keyed by the transaction's trace id: {tree}"
    );
    // A lookup that misses is an answer, not a protocol failure.
    let miss = client.trace_lookup(0xDEAD_BEEF).unwrap();
    assert!(miss.contains("unknown trace"), "miss is typed: {miss}");

    sess.close().unwrap();
    drop(client);
    server.shutdown();
}

/// Tentpole acceptance: `WatchMetrics` streams consecutive delta
/// snapshots over the same multiplexed connection that is carrying
/// live commit traffic — at least three deltas arrive while ordinary
/// request/response calls keep answering in between.
#[test]
fn watch_metrics_streams_deltas_over_a_loaded_multiplexed_connection() {
    use std::sync::atomic::AtomicBool;

    let cfg = shop_cfg(31);
    let service = SessionService::new_sharded(
        workload::graph_state(cfg),
        views(cfg),
        ServiceConfig {
            shards: SHARDS,
            obs: Observer::new(RingSink::with_capacity(1024)),
            ..ServiceConfig::default()
        },
        mem_wals(SHARDS),
        Box::new(MemDevice::new()),
    )
    .unwrap();
    let _post_mortem = DumpOnFailure {
        service: service.clone(),
        test: "watch_metrics",
    };
    let server = NetServer::serve(service.clone());
    let client = server.connect().unwrap();
    let watch = client.watch_metrics(20).unwrap();

    let stop = AtomicBool::new(false);
    let deltas = std::thread::scope(|scope| {
        // Load: one session hammers toggles on the same connection the
        // subscription is streaming over.
        let loader = scope.spawn(|| {
            let sess = client.open_session(SessionKind::Graph).unwrap();
            let ops = workload::supervision_toggle_ops(cfg, 8);
            let mut committed = 0u64;
            let mut i = 0usize;
            while !stop.load(Ordering::Relaxed) {
                // Toggles alternate insert/delete; under this serial
                // session every other one commits. Aborts are fine —
                // they are traffic too.
                if let Ok(outcome) = sess.submit_graph(vec![ops[i % ops.len()].clone()]) {
                    if outcome.info().is_some() {
                        committed += 1;
                    }
                }
                i += 1;
            }
            sess.close().unwrap();
            committed
        });
        let mut deltas = Vec::new();
        for _ in 0..3 {
            deltas.push(watch.recv_blocking().expect("the stream stays live"));
        }
        // Mid-stream, the same connection still answers plain calls.
        let metrics = client.metrics(true).unwrap();
        assert!(
            metrics.contains("\"shards\":["),
            "request/response keeps working mid-stream: {metrics}"
        );
        stop.store(true, Ordering::Relaxed);
        let committed = loader.join().unwrap();
        assert!(committed > 0, "the load actually committed transactions");
        deltas
    });

    // Three *consecutive* deltas: each is a well-formed snapshot delta,
    // and across the streamed window the commit counter moved.
    let committed_in = |delta: &str| -> u64 {
        delta
            .split("\"txns_committed\":")
            .nth(1)
            .and_then(|rest| {
                rest.chars()
                    .take_while(char::is_ascii_digit)
                    .collect::<String>()
                    .parse()
                    .ok()
            })
            .unwrap_or_else(|| panic!("delta carries the commit counter: {delta}"))
    };
    let mut streamed = 0u64;
    for delta in &deltas {
        assert!(
            delta.starts_with('{') && delta.ends_with('}'),
            "delta is a JSON object: {delta}"
        );
        assert!(
            delta.contains("\"counters\":{"),
            "delta carries counters: {delta}"
        );
        streamed += committed_in(delta);
    }
    assert!(
        streamed > 0,
        "the streamed deltas saw commits happen: {deltas:?}"
    );
    // The pusher's own throughput shows up in the merged telemetry.
    let snap = service.telemetry_snapshot();
    let pushed = snap
        .counters
        .iter()
        .find(|(c, _)| c.name() == "metrics_deltas_streamed")
        .map(|(_, v)| *v)
        .unwrap();
    assert!(pushed >= 3, "the service counted its own pushes: {pushed}");

    drop(watch);
    drop(client);
    server.shutdown();
}

/// Crash matrix over a *shared* write budget: four shard journals draw
/// from one cross-device byte budget, so the crash lands on whichever
/// lane happens to sync when the budget trips — a different shard (or
/// mid-frame offset) per budget. The durability claim is absolute:
/// every transaction *acknowledged over the wire* before the crash is
/// in some shard's clean prefix, and sharded recovery rebuilds a valid
/// state containing all of them.
#[test]
fn shared_budget_crashes_never_lose_an_acked_transaction() {
    let cfg = shop_cfg(23);
    let mut crashes = 0;
    for budget_bytes in [64usize, 512, 2048, 1 << 20] {
        let budget = WriteBudget::new(budget_bytes);
        let wals: Vec<Box<dyn borkin_equiv::server::LogDevice>> = (0..SHARDS)
            .map(|_| {
                Box::new(MemDevice::new().with_budget(Arc::clone(&budget)))
                    as Box<dyn borkin_equiv::server::LogDevice>
            })
            .collect();
        let service = SessionService::new_sharded(
            workload::graph_state(cfg),
            views(cfg),
            ServiceConfig {
                shards: SHARDS,
                ..ServiceConfig::default()
            },
            wals,
            Box::new(MemDevice::new()),
        )
        .unwrap();
        let server = NetServer::serve(service.clone());
        let client = server.connect().unwrap();

        let ops = workload::supervision_toggle_ops(cfg, 32);
        let acked = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for chunk in ops.chunks(8) {
                let client = client.clone();
                let acked = &acked;
                scope.spawn(move || {
                    // After the budget trips the whole service is down,
                    // including admission — a failed open is expected.
                    let Ok(sess) = client.open_session(SessionKind::Graph) else {
                        return;
                    };
                    for op in chunk {
                        match sess.submit_graph(vec![op.clone()]) {
                            Ok(outcome) => {
                                if let Some(info) = outcome.info() {
                                    acked.lock().unwrap().push(info.lsn);
                                }
                            }
                            Err(ServerError::Crashed(_)) => break,
                            Err(ServerError::Protocol(p)) => panic!("transport fault: {p}"),
                            Err(_) => {}
                        }
                    }
                    // After a crash the close itself fails; either way
                    // the response must arrive.
                    let _ = sess.close();
                });
            }
        });
        drop(client);
        server.shutdown();
        if budget.tripped() {
            crashes += 1;
        }
        let acked = acked.into_inner().unwrap();

        // Durability: every acked LSN is in some shard's clean prefix.
        let image = service.durable_image();
        let mut durable: Vec<u64> = image
            .wals()
            .flat_map(|bytes| wal::replay_tolerant(bytes).0)
            .map(|r| r.lsn)
            .collect();
        durable.sort_unstable();
        for lsn in &acked {
            assert!(
                durable.binary_search(lsn).is_ok(),
                "acked lsn {lsn} missing from every shard's clean prefix \
                 (budget {budget_bytes})"
            );
        }

        // Recovery rebuilds a valid state that replayed ≥ the acked set.
        let (recovered, report) = SessionService::recover_sharded(
            Arc::clone(service.conceptual().schema()),
            &image,
            views(cfg),
            ServiceConfig {
                shards: SHARDS,
                ..ServiceConfig::default()
            },
            mem_wals(SHARDS),
            Box::new(MemDevice::new()),
        )
        .unwrap_or_else(|e| panic!("recovery after budget {budget_bytes} crash: {e}"));
        recovered
            .conceptual()
            .validate()
            .unwrap_or_else(|e| panic!("recovered state invalid (budget {budget_bytes}): {e}"));
        assert!(
            report.replayed >= acked.len(),
            "recovery replayed {} < {} acked transactions (budget {budget_bytes})",
            report.replayed,
            acked.len()
        );
        for vs in views(cfg) {
            assert!(
                recovered.view_state(&vs.name).is_some(),
                "recovered service lost view {}",
                vs.name
            );
        }
    }
    assert!(
        crashes >= 1,
        "the matrix must include at least one real crash"
    );
    assert!(crashes < 4, "the largest budget must survive untripped");
}
