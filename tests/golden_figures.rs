//! Golden-file tests: the paper's Figures 2–9 rendered as text and
//! pinned byte-for-byte under `tests/golden/`.
//!
//! A figure test fails when a rendering (or fixture) change alters the
//! output; run with `UPDATE_GOLDEN=1` to refresh the files after an
//! intentional change, then review the diff like any other code change.

use std::path::PathBuf;
use std::sync::Arc;

use borkin_equiv::graph::fixtures as gfix;
use borkin_equiv::graph::{display as gdisplay, GraphSchema, Participation};
use borkin_equiv::relation::fixtures as rfix;
use borkin_equiv::relation::{display as rdisplay, RelationState};

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Compares `actual` against the pinned golden file, or rewrites the
/// file when `UPDATE_GOLDEN` is set.
fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with UPDATE_GOLDEN=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "{name} drifted from its golden file; rerun with UPDATE_GOLDEN=1 \
         if the change is intentional"
    );
}

/// Figure 5's text analogue: the semantic-graph schema — entity types
/// with their characteristics and identifying arrowhead, predicates
/// with their cases and participation edges.
fn render_graph_schema(schema: &GraphSchema) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let universe = schema.universe();
    let _ = writeln!(out, "entity types:");
    for et in universe.entity_types() {
        let _ = writeln!(
            out,
            "  {} (identified by {})",
            et.name(),
            et.id_characteristic()
        );
        for (c, d) in et.characteristics() {
            let _ = writeln!(out, "    {c}: {d}");
        }
    }
    let _ = writeln!(out, "association predicates:");
    for pred in universe.predicates() {
        let _ = writeln!(out, "  {}", pred.name());
        for (case, et) in pred.cases() {
            let p = schema
                .participation(pred.name().as_str(), case.as_str())
                .unwrap_or(Participation::OPTIONAL);
            let edge = match (p.total, p.functional) {
                (true, true) => "total, functional",
                (true, false) => "total",
                (false, true) => "functional",
                (false, false) => "optional",
            };
            let _ = writeln!(out, "    {case}: {et} [{edge}]");
        }
    }
    out
}

/// Figure 2: the machine-shop relation definitions — each relation's
/// four-row heading over an empty body.
#[test]
fn golden_figure2_relation_definitions() {
    let empty = RelationState::empty(Arc::new(rfix::machine_shop_schema()));
    check_golden("figure2.txt", &rdisplay::render_state(&empty));
}

/// Figure 3: the machine-shop semantic relation database state.
#[test]
fn golden_figure3_relational_state() {
    check_golden(
        "figure3.txt",
        &rdisplay::render_state(&rfix::figure3_state()),
    );
}

/// Figure 4: the equivalent semantic graph database state.
#[test]
fn golden_figure4_graph_state() {
    check_golden(
        "figure4.txt",
        &gdisplay::render_state(&gfix::figure4_state()),
    );
}

/// Figure 5: the semantic graph schema with participation edges.
#[test]
fn golden_figure5_graph_schema() {
    check_golden(
        "figure5.txt",
        &render_graph_schema(gfix::figure4_state().schema()),
    );
}

/// Figure 6: the graph state after inserting the G.Wayshum→T.Manhart
/// supervision.
#[test]
fn golden_figure6_graph_after_insert() {
    check_golden(
        "figure6.txt",
        &gdisplay::render_state(&gfix::figure6_state()),
    );
}

/// Figure 7: the relational state after the equivalent insertion (the
/// subsumed partial tuple is gone).
#[test]
fn golden_figure7_relational_after_insert() {
    check_golden(
        "figure7.txt",
        &rdisplay::render_state(&rfix::figure7_state()),
    );
}

/// Figure 8: the state-dependence demonstration — premise and result in
/// both models, in one file.
#[test]
fn golden_figure8_state_dependence() {
    let text = format!(
        "== premise (relational) ==\n{}\
         == premise (graph) ==\n{}\n\
         == after insert (relational) ==\n{}\
         == after insert (graph) ==\n{}",
        rdisplay::render_state(&rfix::figure8_premise_state()),
        gdisplay::render_state(&gfix::figure8_premise_state()),
        rdisplay::render_state(&rfix::figure8_state()),
        gdisplay::render_state(&gfix::figure8_graph_state()),
    );
    check_golden("figure8.txt", &text);
}

/// Figure 9: the single-relation application model of the same
/// conceptual database.
#[test]
fn golden_figure9_single_relation_view() {
    check_golden(
        "figure9.txt",
        &rdisplay::render_state(&rfix::figure9_state()),
    );
}
