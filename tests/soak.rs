//! End-to-end soak: a scaled multi-model database under a long mixed
//! stream of supervision and machine-unit updates, audited for full
//! cross-level consistency after every operation.
//!
//! This is the architecture of §1.2 under sustained load: every update
//! is translated to two relational views (one per completion mode) and
//! to storage, and `verify_consistency` re-derives and compares all four
//! representations.

use borkin_equiv::ansi::MultiModelDatabase;
use borkin_equiv::equivalence::translate::CompletionMode;
use borkin_equiv::workload::{
    graph_state, machine_toggle_ops, relational_schema, supervision_toggle_ops, ShopConfig,
};

#[test]
fn mixed_update_soak_with_two_views() {
    let cfg = ShopConfig {
        employees: 12,
        machines: 8,
        supervisions: 10,
        seed: 7,
    };
    let db = MultiModelDatabase::new(graph_state(cfg)).expect("database initializes");
    db.add_view("minimal", relational_schema(cfg), CompletionMode::Minimal)
        .expect("view materializes");
    db.add_view(
        "completed",
        relational_schema(cfg),
        CompletionMode::StateCompleted,
    )
    .expect("view materializes");
    db.verify_consistency().expect("initially consistent");

    let supervisions = supervision_toggle_ops(cfg, 20);
    let machines = machine_toggle_ops(cfg, 20);
    let mut applied = 0;
    for (s, m) in supervisions.iter().zip(&machines) {
        for op in [s, m] {
            match db.update_conceptual(op) {
                Ok(()) => applied += 1,
                Err(e) => panic!("workload op {op} rejected: {e}"),
            }
            db.verify_consistency()
                .unwrap_or_else(|e| panic!("diverged after {op}: {e}"));
        }
    }
    assert_eq!(applied, 40);

    // Storage stays healthy under churn.
    db.vacuum();
    db.verify_consistency().expect("consistent after vacuum");
}

/// One run of the soak body, returning a full transcript: every applied
/// operation's display form followed by the fact count of the resulting
/// conceptual state.
fn soak_transcript(cfg: ShopConfig) -> Vec<String> {
    let db = MultiModelDatabase::new(graph_state(cfg)).expect("database initializes");
    db.add_view("minimal", relational_schema(cfg), CompletionMode::Minimal)
        .expect("view materializes");
    let mut transcript = Vec::new();
    for (s, m) in supervision_toggle_ops(cfg, 12)
        .iter()
        .zip(&machine_toggle_ops(cfg, 12))
    {
        for op in [s, m] {
            db.update_conceptual(op).expect("workload ops apply");
            use borkin_equiv::logic::ToFacts;
            transcript.push(format!(
                "{op} => {} facts",
                db.conceptual().to_facts().len()
            ));
        }
    }
    transcript
}

/// The soak is deterministic: the seeded workload generators and the
/// database produce byte-identical transcripts across in-process runs.
#[test]
fn soak_runs_are_deterministic() {
    let cfg = ShopConfig {
        employees: 8,
        machines: 6,
        supervisions: 7,
        seed: 11,
    };
    // The generators alone replay exactly…
    assert_eq!(
        supervision_toggle_ops(cfg, 12),
        supervision_toggle_ops(cfg, 12)
    );
    assert_eq!(machine_toggle_ops(cfg, 12), machine_toggle_ops(cfg, 12));
    // …and so does the full database run.
    let first = soak_transcript(cfg);
    let second = soak_transcript(cfg);
    assert_eq!(first, second, "soak transcripts diverged between runs");
    assert_eq!(first.len(), 24);

    // A different seed actually changes the workload (the determinism
    // above is not vacuous).
    let reseeded = ShopConfig { seed: 12, ..cfg };
    assert_ne!(
        supervision_toggle_ops(cfg, 12),
        supervision_toggle_ops(reseeded, 12)
    );
}

#[test]
fn machine_toggles_apply_cleanly_standalone() {
    let cfg = ShopConfig::small();
    let mut g = graph_state(cfg);
    for op in machine_toggle_ops(cfg, 30) {
        g = op
            .apply(&g)
            .expect("machine toggles are valid by construction");
    }
    g.validate().expect("final state is valid");
}
