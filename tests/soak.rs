//! End-to-end soak: a scaled multi-model database under a long mixed
//! stream of supervision and machine-unit updates, audited for full
//! cross-level consistency after every operation.
//!
//! This is the architecture of §1.2 under sustained load: every update
//! is translated to two relational views (one per completion mode) and
//! to storage, and `verify_consistency` re-derives and compares all four
//! representations.

use borkin_equiv::ansi::MultiModelDatabase;
use borkin_equiv::equivalence::translate::CompletionMode;
use borkin_equiv::workload::{
    graph_state, machine_toggle_ops, relational_schema, supervision_toggle_ops, ShopConfig,
};

#[test]
fn mixed_update_soak_with_two_views() {
    let cfg = ShopConfig {
        employees: 12,
        machines: 8,
        supervisions: 10,
        seed: 7,
    };
    let db = MultiModelDatabase::new(graph_state(cfg)).expect("database initializes");
    db.add_view("minimal", relational_schema(cfg), CompletionMode::Minimal)
        .expect("view materializes");
    db.add_view(
        "completed",
        relational_schema(cfg),
        CompletionMode::StateCompleted,
    )
    .expect("view materializes");
    db.verify_consistency().expect("initially consistent");

    let supervisions = supervision_toggle_ops(cfg, 20);
    let machines = machine_toggle_ops(cfg, 20);
    let mut applied = 0;
    for (s, m) in supervisions.iter().zip(&machines) {
        for op in [s, m] {
            match db.update_conceptual(op) {
                Ok(()) => applied += 1,
                Err(e) => panic!("workload op {op} rejected: {e}"),
            }
            db.verify_consistency()
                .unwrap_or_else(|e| panic!("diverged after {op}: {e}"));
        }
    }
    assert_eq!(applied, 40);

    // Storage stays healthy under churn.
    db.vacuum();
    db.verify_consistency().expect("consistent after vacuum");
}

#[test]
fn machine_toggles_apply_cleanly_standalone() {
    let cfg = ShopConfig::small();
    let mut g = graph_state(cfg);
    for op in machine_toggle_ops(cfg, 30) {
        g = op
            .apply(&g)
            .expect("machine toggles are valid by construction");
    }
    g.validate().expect("final state is valid");
}
