#![deny(missing_docs)]

//! # borkin-equiv — *Data Model Equivalence*, executable
//!
//! An executable reproduction of Sheldon A. Borkin's *Data Model
//! Equivalence* (VLDB 1978): the semantic relation and semantic graph
//! data models, the formal framework of databases/operations/application
//! models, the hierarchy of equivalence definitions as decision
//! procedures, constructive operation translators, syntactic baselines
//! (Codd relational, DBTG network), and an ANSI/SPARC three-schema
//! multi-model architecture built on top.
//!
//! This facade crate re-exports the workspace members under stable
//! names; see each module's documentation for the full story, and the
//! repository's `README.md`, `DESIGN.md` and `EXPERIMENTS.md` for the
//! map back to the paper.
//!
//! ## Quick start
//!
//! ```
//! use borkin_equiv::graph::fixtures as gfix;
//! use borkin_equiv::relation::fixtures as rfix;
//! use borkin_equiv::logic::state_equivalent;
//!
//! // The paper's Figure 4 (graph) and Figure 3 (relational) states
//! // represent the same machine shop:
//! let report = state_equivalent(&gfix::figure4_state(), &rfix::figure3_state());
//! assert!(report.is_equivalent());
//! ```

pub use dme_ansi as ansi;
pub use dme_core as equivalence;
pub use dme_graph as graph;
pub use dme_logic as logic;
pub use dme_obs as obs;
pub use dme_relation as relation;
pub use dme_server as server;
pub use dme_storage as storage;
pub use dme_syntactic as syntactic;
pub use dme_value as value;
pub use dme_workload as workload;
