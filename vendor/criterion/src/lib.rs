//! Offline stand-in for the `criterion` crate.
//!
//! A macro-compatible wall-clock harness: warm-up calibrates iterations
//! per sample, a fixed number of samples are timed, and the median
//! ns/iter is printed. No statistics beyond the median, no plots — just
//! enough to compare benchmark variants in CI logs with the same bench
//! source the real criterion would accept.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Harness configuration: sample count and time budgets.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_millis(1000),
        }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the calibration period before timing starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Sets the total time budget for the timed samples.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
            throughput: None,
        }
    }
}

/// Work-per-iteration annotation used to report rates.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Iterations process this many logical elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// A benchmark identifier of the form `function/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs a benchmark under `group/name`.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, name.into());
        self.run(&id, routine);
        self
    }

    /// Runs a parameterised benchmark; the input is passed by reference.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let id = format!("{}/{}", self.name, id.id);
        self.run(&id, |b| routine(b, input));
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(&mut self) {}

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: &str, routine: F) {
        let sample_size = self.sample_size.unwrap_or(self.criterion.sample_size);
        let per_iter = run_benchmark(
            id,
            sample_size,
            self.criterion.warm_up,
            self.criterion.measurement,
            routine,
        );
        if let Some(t) = self.throughput {
            let (count, unit) = match t {
                Throughput::Elements(n) => (n, "elem"),
                Throughput::Bytes(n) => (n, "B"),
            };
            if per_iter > 0.0 {
                let rate = count as f64 * 1e9 / per_iter;
                println!("{id}: thrpt: {rate:.0} {unit}/s");
            }
        }
    }
}

/// How much setup output `iter_batched` prepares per batch. The shim
/// runs one setup per timed call either way; the variants exist for
/// source compatibility with the real crate.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of the routine.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `iters` calls of `routine`, each fed a fresh value from
    /// `setup`; setup time is excluded from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut elapsed = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            elapsed += start.elapsed();
        }
        self.elapsed = elapsed;
    }
}

/// Calibrates, samples, prints, and returns the median ns/iter.
fn run_benchmark<F>(
    id: &str,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    mut routine: F,
) -> f64
where
    F: FnMut(&mut Bencher),
{
    // Warm-up doubles the iteration count until the budget is spent,
    // keeping the last observed per-iteration time as the estimate.
    let mut iters = 1u64;
    let mut per_iter_ns = 1_000.0f64;
    let deadline = Instant::now() + warm_up;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        routine(&mut b);
        if b.elapsed > Duration::ZERO {
            per_iter_ns = b.elapsed.as_nanos() as f64 / iters as f64;
        }
        if Instant::now() >= deadline {
            break;
        }
        iters = (iters * 2).min(1 << 24);
    }

    let sample_budget_ns = measurement.as_nanos() as f64 / sample_size as f64;
    let iters_per_sample = ((sample_budget_ns / per_iter_ns) as u64).clamp(1, 1 << 24);

    let mut samples = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters: iters_per_sample,
            elapsed: Duration::ZERO,
        };
        routine(&mut b);
        samples.push(b.elapsed.as_nanos() as f64 / iters_per_sample as f64);
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let median = samples[samples.len() / 2];
    println!(
        "{id}: time: [{median:.1} ns/iter] ({sample_size} samples x {iters_per_sample} iters)"
    );
    median
}

/// Declares a benchmark group runner function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(5)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(10));
        let mut group = c.benchmark_group("shim");
        let mut calls = 0u64;
        group.throughput(Throughput::Elements(3));
        group.bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        group.bench_with_input(BenchmarkId::new("param", 7), &7u32, |b, n| b.iter(|| n + 1));
        group.finish();
        assert!(calls > 0);
    }
}
