//! Offline stand-in for the `parking_lot` crate.
//!
//! Thin wrappers over `std::sync::{Mutex, RwLock}` exposing parking_lot's
//! non-poisoning API (`lock()`, `read()`, `write()` return guards
//! directly). Poison errors are swallowed by taking the inner guard — the
//! workspace treats a panicked critical section as recoverable, exactly as
//! parking_lot does.

use std::sync;

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock` cannot fail.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a lock.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A readers-writer lock whose `read`/`write` cannot fail.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a lock.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard, ignoring poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard, ignoring poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn shared_across_threads() {
        let l = Arc::new(RwLock::new(0u64));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let l = Arc::clone(&l);
                s.spawn(move || {
                    for _ in 0..1000 {
                        *l.write() += 1;
                    }
                });
            }
        });
        assert_eq!(*l.read(), 4000);
    }
}
