//! Offline stand-in for the `crossbeam` crate.
//!
//! Implements `crossbeam::scope` — the only crossbeam API the workspace
//! uses — on top of `std::thread::scope` (stable since 1.63). Spawned
//! closures receive a [`Scope`] handle, like crossbeam's, so nested
//! spawns work; panics from child threads surface as the `Err` of the
//! scope result, matching crossbeam's contract.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::thread;

/// A handle for spawning threads scoped to a [`scope`] call.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. The closure receives this scope again so
    /// it can spawn further threads.
    pub fn spawn<F, T>(&self, f: F) -> thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || f(&Scope { inner }))
    }
}

/// Creates a scope in which threads borrowing from the environment can be
/// spawned; returns `Err` with the panic payload if any child panicked.
pub fn scope<'env, F, R>(f: F) -> thread::Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    catch_unwind(AssertUnwindSafe(|| {
        thread::scope(|s| f(&Scope { inner: s }))
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_borrow_environment() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| counter.fetch_add(1, Ordering::SeqCst));
            }
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn nested_spawns_work() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            s.spawn(|s2| {
                s2.spawn(|_| counter.fetch_add(1, Ordering::SeqCst));
            });
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn child_panic_becomes_err() {
        let result = scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(result.is_err());
    }
}
