//! Offline stand-in for the `bytes` crate.
//!
//! Provides the cursor-style [`Buf`]/[`BufMut`] traits over `&[u8]`,
//! `&mut [u8]` and `Vec<u8>`, plus a [`BytesMut`] fixed buffer — exactly
//! the subset `dme-storage`'s slotted pages and tuple codec use. All
//! integers are big-endian, matching the real crate's `get_*`/`put_*`
//! defaults.

use std::ops::{Deref, DerefMut};

/// Read access to a buffer of bytes, advancing an internal cursor.
pub trait Buf {
    /// Advances the cursor by `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// The bytes remaining from the cursor on.
    fn chunk(&self) -> &[u8];

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let v = u16::from_be_bytes(self.chunk()[..2].try_into().expect("2 bytes"));
        self.advance(2);
        v
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let v = u32::from_be_bytes(self.chunk()[..4].try_into().expect("4 bytes"));
        self.advance(4);
        v
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let v = u64::from_be_bytes(self.chunk()[..8].try_into().expect("8 bytes"));
        self.advance(8);
        v
    }
}

impl Buf for &[u8] {
    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }

    fn chunk(&self) -> &[u8] {
        self
    }
}

/// Write access to a buffer of bytes.
pub trait BufMut {
    /// Appends/writes a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Writes one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Writes a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Writes a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Writes a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl BufMut for &mut [u8] {
    fn put_slice(&mut self, src: &[u8]) {
        let (head, tail) = std::mem::take(self).split_at_mut(src.len());
        head.copy_from_slice(src);
        *self = tail;
    }
}

/// A growable-in-principle, here fixed-size, owned byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// A zero-filled buffer of `len` bytes.
    pub fn zeroed(len: usize) -> Self {
        BytesMut {
            inner: vec![0u8; len],
        }
    }

    /// The buffer length in bytes.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_round_trip() {
        let mut out: Vec<u8> = Vec::new();
        out.put_u8(7);
        out.put_u16(0x1234);
        out.put_u32(0xDEAD_BEEF);
        out.put_u64(42);
        out.put_slice(b"xy");
        let mut buf: &[u8] = &out;
        assert_eq!(buf.get_u8(), 7);
        assert_eq!(buf.get_u16(), 0x1234);
        assert_eq!(buf.get_u32(), 0xDEAD_BEEF);
        assert_eq!(buf.get_u64(), 42);
        assert_eq!(buf, b"xy");
    }

    #[test]
    fn slice_writes_advance() {
        let mut backing = [0u8; 8];
        let mut cursor: &mut [u8] = &mut backing;
        cursor.put_u16(0xABCD);
        cursor.put_u16(0x0102);
        assert_eq!(backing[..4], [0xAB, 0xCD, 0x01, 0x02]);
        // In-place overwrite through a temporary cursor, as the slotted
        // page does.
        (&mut backing[0..2]).put_u16(0xFFFF);
        assert_eq!((&backing[0..2]).get_u16(), 0xFFFF);
    }

    #[test]
    fn bytes_mut_indexing() {
        let mut b = BytesMut::zeroed(16);
        assert_eq!(b.len(), 16);
        b[4..8].copy_from_slice(&[1, 2, 3, 4]);
        assert_eq!(&b[4..8], &[1, 2, 3, 4]);
        let c = b.clone();
        assert_eq!(b, c);
    }
}
