//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the real `rand` crate
//! cannot be fetched. This crate provides the subset of the rand 0.8 API
//! the workspace uses — `StdRng`, `SeedableRng::seed_from_u64`,
//! `Rng::gen_range`, `Rng::gen_bool` and `SliceRandom` — backed by a
//! deterministic xoshiro256** generator seeded through SplitMix64.
//!
//! Determinism is a feature here, not a compromise: every consumer in the
//! workspace (the workload generators, the property-test harness) requires
//! reproducible streams, and this implementation produces the same stream
//! for the same seed on every platform.

use std::ops::{Range, RangeInclusive};

/// Deterministic seeding, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A type from which `Rng::gen_range` can sample uniformly.
pub trait SampleRange<T> {
    /// Samples one value from the range.
    fn sample(self, rng: &mut StdRng) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut StdRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// The subset of `rand::Rng` the workspace uses.
pub trait Rng {
    /// The next raw 64 bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform sample from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized + AsMut<StdRng>,
    {
        range.sample(self.as_mut())
    }

    /// A Bernoulli sample with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 / ((1u64 << 53) as f64) < p
    }
}

/// Deterministic xoshiro256** generator (the stand-in for `rand`'s
/// `StdRng`; different algorithm, same role).
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

impl AsMut<StdRng> for StdRng {
    fn as_mut(&mut self) -> &mut StdRng {
        self
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion of the seed, per Vigna's recommendation.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    pub use crate::StdRng;
}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use crate::{Rng, SampleRange, StdRng};

    /// The subset of `rand::seq::SliceRandom` the workspace uses.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// A uniformly chosen element, or `None` if empty.
        fn choose<R: Rng + AsMut<StdRng>>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// An in-place Fisher–Yates shuffle.
        fn shuffle<R: Rng + AsMut<StdRng>>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng + AsMut<StdRng>>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(0..self.len()).sample(rng.as_mut())])
            }
        }

        fn shuffle<R: Rng + AsMut<StdRng>>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, (0..i + 1).sample(rng.as_mut()));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..9usize);
            assert!((3..9).contains(&v));
            let w = rng.gen_range(-5..=5i64);
            assert!((-5..=5).contains(&w));
        }
        // Every value of a small range is eventually hit.
        let mut seen = [false; 6];
        for _ in 0..500 {
            seen[rng.gen_range(0..6usize)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn choose_and_shuffle() {
        let mut rng = StdRng::seed_from_u64(9);
        let items = [10, 20, 30];
        assert!(items.contains(items.choose(&mut rng).unwrap()));
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let mut v: Vec<u32> = (0..50).collect();
        let orig = v.clone();
        v.shuffle(&mut rng);
        assert_ne!(v, orig, "50 elements virtually never shuffle to identity");
        v.sort_unstable();
        assert_eq!(v, orig);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(11);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
