#![deny(missing_docs)]

//! Offline stand-in for a small async runtime.
//!
//! The build environment has no network access to a crates registry, so
//! like the sibling `proptest`/`criterion`/`crossbeam` shims this crate
//! reimplements the minimal surface the workspace needs, over `std`
//! only:
//!
//! * [`block_on`] — drive one future to completion on the calling
//!   thread (thread-parking waker).
//! * [`Executor`] — a multi-threaded task executor with joinable
//!   [`Task`] handles. Workers are plain `std` threads draining a
//!   shared injector queue; wakers re-enqueue their task.
//! * [`channel`] — async MPMC channels (bounded + unbounded) with both
//!   async (`send`/`recv`) and synchronous (`try_send`,
//!   `send_blocking`, `recv_blocking`) endpoints, so async tasks and
//!   plain threads can exchange values.
//!
//! The scheduler makes no fairness or performance promises beyond what
//! the session-service tests need: every woken task is eventually
//! polled, and dropping the executor joins its workers.

use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::task::{Context, Poll, Wake, Waker};

/// Runs a future to completion on the calling thread, parking between
/// polls.
pub fn block_on<F: Future>(future: F) -> F::Output {
    struct Parker {
        thread: std::thread::Thread,
        notified: AtomicBool,
    }
    impl Wake for Parker {
        fn wake(self: Arc<Self>) {
            self.notified.store(true, Ordering::SeqCst);
            self.thread.unpark();
        }
    }
    let parker = Arc::new(Parker {
        thread: std::thread::current(),
        notified: AtomicBool::new(false),
    });
    let waker = Waker::from(Arc::clone(&parker));
    let mut cx = Context::from_waker(&waker);
    let mut future = Box::pin(future);
    loop {
        if let Poll::Ready(out) = future.as_mut().poll(&mut cx) {
            return out;
        }
        while !parker.notified.swap(false, Ordering::SeqCst) {
            std::thread::park();
        }
    }
}

type BoxFuture = Pin<Box<dyn Future<Output = ()> + Send + 'static>>;

/// A spawned task's scheduling state. The `scheduled` flag collapses
/// redundant wakes: a task is re-enqueued at most once until a worker
/// picks it up again.
struct TaskState {
    future: Mutex<Option<BoxFuture>>,
    scheduled: AtomicBool,
    queue: Arc<Queue>,
}

impl Wake for TaskState {
    fn wake(self: Arc<Self>) {
        if !self.scheduled.swap(true, Ordering::SeqCst) {
            let queue = Arc::clone(&self.queue);
            queue.push(self);
        }
    }
}

struct Queue {
    inner: Mutex<QueueInner>,
    cv: Condvar,
}

struct QueueInner {
    runnable: VecDeque<Arc<TaskState>>,
    shutdown: bool,
}

impl Queue {
    fn push(&self, task: Arc<TaskState>) {
        let mut inner = self.inner.lock().unwrap();
        inner.runnable.push_back(task);
        drop(inner);
        self.cv.notify_one();
    }

    fn pop(&self) -> Option<Arc<TaskState>> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if let Some(task) = inner.runnable.pop_front() {
                return Some(task);
            }
            if inner.shutdown {
                return None;
            }
            inner = self.cv.wait(inner).unwrap();
        }
    }
}

/// The shared slot a [`Task`] handle reads its result from.
struct JoinSlot<T> {
    state: Mutex<JoinState<T>>,
}

enum JoinState<T> {
    Pending(Option<Waker>),
    Ready(T),
    Taken,
}

/// A joinable handle to a spawned task: awaiting it yields the task's
/// output. Dropping the handle detaches the task (it keeps running).
pub struct Task<T> {
    slot: Arc<JoinSlot<T>>,
}

impl<T> Task<T> {
    /// Explicitly detaches the task (equivalent to dropping the
    /// handle).
    pub fn detach(self) {}
}

impl<T> Future for Task<T> {
    type Output = T;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<T> {
        let mut state = self.slot.state.lock().unwrap();
        match std::mem::replace(&mut *state, JoinState::Taken) {
            JoinState::Ready(v) => Poll::Ready(v),
            JoinState::Pending(_) => {
                *state = JoinState::Pending(Some(cx.waker().clone()));
                Poll::Pending
            }
            JoinState::Taken => panic!("task output already taken"),
        }
    }
}

/// A multi-threaded task executor. Dropping it signals shutdown and
/// joins the worker threads (pending tasks are dropped).
pub struct Executor {
    queue: Arc<Queue>,
    workers: Vec<std::thread::JoinHandle<()>>,
    spawned: AtomicUsize,
    // Every spawned task, weakly: shutdown must drop still-parked
    // futures (a parked task is reachable only through the wakers its
    // last poll registered, never through the runnable queue), or the
    // resources they own — channel senders, connections — leak past
    // the executor and their peers never observe disconnection.
    tasks: Mutex<Vec<std::sync::Weak<TaskState>>>,
}

impl Executor {
    /// Starts an executor with `workers` worker threads (at least one).
    pub fn new(workers: usize) -> Self {
        let queue = Arc::new(Queue {
            inner: Mutex::new(QueueInner {
                runnable: VecDeque::new(),
                shutdown: false,
            }),
            cv: Condvar::new(),
        });
        let handles = (0..workers.max(1))
            .map(|i| {
                let queue = Arc::clone(&queue);
                std::thread::Builder::new()
                    .name(format!("smol-worker-{i}"))
                    .spawn(move || {
                        while let Some(task) = queue.pop() {
                            task.scheduled.store(false, Ordering::SeqCst);
                            let mut future = task.future.lock().unwrap();
                            if let Some(f) = future.as_mut() {
                                let waker = Waker::from(Arc::clone(&task));
                                let mut cx = Context::from_waker(&waker);
                                if f.as_mut().poll(&mut cx).is_ready() {
                                    *future = None;
                                }
                            }
                        }
                    })
                    .expect("spawn executor worker")
            })
            .collect();
        Executor {
            queue,
            workers: handles,
            spawned: AtomicUsize::new(0),
            tasks: Mutex::new(Vec::new()),
        }
    }

    /// Spawns a future onto the executor, returning a joinable
    /// [`Task`].
    pub fn spawn<T, F>(&self, future: F) -> Task<T>
    where
        T: Send + 'static,
        F: Future<Output = T> + Send + 'static,
    {
        self.spawned.fetch_add(1, Ordering::Relaxed);
        let slot = Arc::new(JoinSlot {
            state: Mutex::new(JoinState::Pending(None)),
        });
        let handle_slot = Arc::clone(&slot);
        let wrapped = async move {
            let out = future.await;
            let mut state = handle_slot.state.lock().unwrap();
            if let JoinState::Pending(Some(w)) =
                std::mem::replace(&mut *state, JoinState::Ready(out))
            {
                w.wake();
            }
        };
        let task = Arc::new(TaskState {
            future: Mutex::new(Some(Box::pin(wrapped))),
            scheduled: AtomicBool::new(true),
            queue: Arc::clone(&self.queue),
        });
        {
            let mut tasks = self.tasks.lock().unwrap();
            // Compact completed tasks so long-lived executors don't
            // accumulate one dead weak pointer per spawn.
            if tasks.len() >= 64 && tasks.len() == tasks.capacity() {
                tasks.retain(|w| w.strong_count() > 0);
            }
            tasks.push(Arc::downgrade(&task));
        }
        self.queue.push(task);
        Task { slot }
    }

    /// How many tasks have ever been spawned.
    pub fn spawned(&self) -> usize {
        self.spawned.load(Ordering::Relaxed)
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        {
            let mut inner = self.queue.inner.lock().unwrap();
            inner.shutdown = true;
            inner.runnable.clear();
        }
        self.queue.cv.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        // With the workers gone nothing can poll again: drop every
        // surviving future so whatever it owns is released now. Wakes
        // triggered by these drops land on the shut-down queue, where
        // they are inert.
        for weak in self.tasks.lock().unwrap().drain(..) {
            if let Some(task) = weak.upgrade() {
                *task.future.lock().unwrap() = None;
            }
        }
    }
}

pub mod channel {
    //! Async MPMC channels with synchronous endpoints.
    //!
    //! A channel is a bounded (or unbounded) FIFO of values. Senders
    //! and receivers are cheap clones sharing one buffer; the channel
    //! closes when either side's last clone drops. Async `send`/`recv`
    //! register wakers; `send_blocking`/`recv_blocking` park on a
    //! condvar, so plain threads (e.g. shard dispatchers) can talk to
    //! async tasks.

    use std::collections::VecDeque;
    use std::fmt;
    use std::future::Future;
    use std::pin::Pin;
    use std::sync::{Arc, Condvar, Mutex};
    use std::task::{Context, Poll, Waker};

    /// Why a `try_send` refused a value.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The bounded buffer is full (backpressure: shed or retry).
        Full(T),
        /// Every receiver is gone.
        Closed(T),
    }

    /// The channel is closed (and, for `send`, the unsent value).
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// The channel is closed and drained.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl<T> fmt::Display for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => write!(f, "channel full"),
                TrySendError::Closed(_) => write!(f, "channel closed"),
            }
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "channel closed")
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "channel closed and empty")
        }
    }

    struct Inner<T> {
        state: Mutex<State<T>>,
        cv: Condvar,
    }

    struct State<T> {
        queue: VecDeque<T>,
        cap: Option<usize>,
        senders: usize,
        receivers: usize,
        recv_wakers: Vec<Waker>,
        send_wakers: Vec<Waker>,
    }

    impl<T> State<T> {
        fn closed_for_send(&self) -> bool {
            self.receivers == 0
        }
        fn full(&self) -> bool {
            self.cap.is_some_and(|c| self.queue.len() >= c)
        }
        fn wake_receivers(&mut self) {
            for w in self.recv_wakers.drain(..) {
                w.wake();
            }
        }
        fn wake_senders(&mut self) {
            for w in self.send_wakers.drain(..) {
                w.wake();
            }
        }
    }

    /// The sending half. Clonable.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// The receiving half. Clonable (MPMC: each value goes to exactly
    /// one receiver).
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.state.lock().unwrap().senders += 1;
            Sender {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.state.lock().unwrap().receivers += 1;
            Receiver {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut s = self.inner.state.lock().unwrap();
            s.senders -= 1;
            if s.senders == 0 {
                s.wake_receivers();
                drop(s);
                self.inner.cv.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut s = self.inner.state.lock().unwrap();
            s.receivers -= 1;
            if s.receivers == 0 {
                s.wake_senders();
                drop(s);
                self.inner.cv.notify_all();
            }
        }
    }

    /// Creates a bounded channel with room for `cap` queued values.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        make(Some(cap.max(1)))
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        make(None)
    }

    fn make<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                cap,
                senders: 1,
                receivers: 1,
                recv_wakers: Vec::new(),
                send_wakers: Vec::new(),
            }),
            cv: Condvar::new(),
        });
        (
            Sender {
                inner: Arc::clone(&inner),
            },
            Receiver { inner },
        )
    }

    impl<T> Sender<T> {
        /// Non-blocking send: refuses immediately when the buffer is
        /// full (the backpressure signal admission control sheds on) or
        /// the channel is closed.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut s = self.inner.state.lock().unwrap();
            if s.closed_for_send() {
                return Err(TrySendError::Closed(value));
            }
            if s.full() {
                return Err(TrySendError::Full(value));
            }
            s.queue.push_back(value);
            s.wake_receivers();
            drop(s);
            self.inner.cv.notify_all();
            Ok(())
        }

        /// Async send: waits for room.
        pub fn send(&self, value: T) -> SendFuture<'_, T> {
            SendFuture {
                sender: self,
                value: Some(value),
            }
        }

        /// Synchronous send from a plain thread: parks until there is
        /// room.
        pub fn send_blocking(&self, value: T) -> Result<(), SendError<T>> {
            let mut s = self.inner.state.lock().unwrap();
            loop {
                if s.closed_for_send() {
                    return Err(SendError(value));
                }
                if !s.full() {
                    s.queue.push_back(value);
                    s.wake_receivers();
                    drop(s);
                    self.inner.cv.notify_all();
                    return Ok(());
                }
                s = self.inner.cv.wait(s).unwrap();
            }
        }

        /// Queued values right now (for backpressure introspection).
        pub fn len(&self) -> usize {
            self.inner.state.lock().unwrap().queue.len()
        }

        /// Whether the queue is empty right now.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Receiver<T> {
        /// Non-blocking receive.
        pub fn try_recv(&self) -> Option<T> {
            let mut s = self.inner.state.lock().unwrap();
            let v = s.queue.pop_front();
            if v.is_some() {
                s.wake_senders();
                drop(s);
                self.inner.cv.notify_all();
            }
            v
        }

        /// Async receive: waits for a value; `Err(RecvError)` when the
        /// channel is closed and drained.
        pub fn recv(&self) -> RecvFuture<'_, T> {
            RecvFuture { receiver: self }
        }

        /// Synchronous receive from a plain thread.
        pub fn recv_blocking(&self) -> Result<T, RecvError> {
            let mut s = self.inner.state.lock().unwrap();
            loop {
                if let Some(v) = s.queue.pop_front() {
                    s.wake_senders();
                    drop(s);
                    self.inner.cv.notify_all();
                    return Ok(v);
                }
                if s.senders == 0 {
                    return Err(RecvError);
                }
                s = self.inner.cv.wait(s).unwrap();
            }
        }

        /// Queued values right now.
        pub fn len(&self) -> usize {
            self.inner.state.lock().unwrap().queue.len()
        }

        /// Whether the queue is empty right now.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    /// Future returned by [`Sender::send`].
    pub struct SendFuture<'a, T> {
        sender: &'a Sender<T>,
        value: Option<T>,
    }

    impl<T> Unpin for SendFuture<'_, T> {}

    impl<T> Future for SendFuture<'_, T> {
        type Output = Result<(), SendError<T>>;

        fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
            let value = self.value.take().expect("polled after completion");
            let mut s = self.sender.inner.state.lock().unwrap();
            if s.closed_for_send() {
                return Poll::Ready(Err(SendError(value)));
            }
            if !s.full() {
                s.queue.push_back(value);
                s.wake_receivers();
                drop(s);
                self.sender.inner.cv.notify_all();
                return Poll::Ready(Ok(()));
            }
            s.send_wakers.push(cx.waker().clone());
            drop(s);
            self.value = Some(value);
            Poll::Pending
        }
    }

    /// Future returned by [`Receiver::recv`].
    pub struct RecvFuture<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Unpin for RecvFuture<'_, T> {}

    impl<T> Future for RecvFuture<'_, T> {
        type Output = Result<T, RecvError>;

        fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
            let mut s = self.receiver.inner.state.lock().unwrap();
            if let Some(v) = s.queue.pop_front() {
                s.wake_senders();
                drop(s);
                self.receiver.inner.cv.notify_all();
                return Poll::Ready(Ok(v));
            }
            if s.senders == 0 {
                return Poll::Ready(Err(RecvError));
            }
            s.recv_wakers.push(cx.waker().clone());
            Poll::Pending
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_on_runs_a_future() {
        assert_eq!(block_on(async { 1 + 2 }), 3);
    }

    #[test]
    fn spawned_tasks_join_with_their_output() {
        let ex = Executor::new(2);
        let tasks: Vec<_> = (0..64).map(|i| ex.spawn(async move { i * 2 })).collect();
        let total: i32 = tasks.into_iter().map(block_on).sum();
        assert_eq!(total, (0..64).map(|i| i * 2).sum());
        assert_eq!(ex.spawned(), 64);
    }

    #[test]
    fn tasks_communicate_over_channels() {
        let ex = Executor::new(2);
        let (tx, rx) = channel::bounded::<u32>(4);
        // Unbounded: the results are drained only after every send.
        let (done_tx, done_rx) = channel::unbounded::<u32>();
        for _ in 0..2 {
            let rx = rx.clone();
            let done_tx = done_tx.clone();
            ex.spawn(async move {
                while let Ok(v) = rx.recv().await {
                    done_tx.send(v + 100).await.unwrap();
                }
            })
            .detach();
        }
        drop(done_tx);
        for i in 0..32 {
            tx.send_blocking(i).unwrap();
        }
        drop(tx);
        drop(rx);
        let mut got: Vec<u32> = (0..32).map(|_| done_rx.recv_blocking().unwrap()).collect();
        assert!(done_rx.recv_blocking().is_err());
        got.sort_unstable();
        assert_eq!(got, (100..132).collect::<Vec<_>>());
    }

    #[test]
    fn bounded_channel_sheds_when_full() {
        let (tx, rx) = channel::bounded::<u8>(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert!(matches!(
            tx.try_send(3),
            Err(channel::TrySendError::Full(3))
        ));
        assert_eq!(rx.try_recv(), Some(1));
        tx.try_send(3).unwrap();
        drop(rx);
        assert!(matches!(
            tx.try_send(4),
            Err(channel::TrySendError::Closed(4))
        ));
    }

    #[test]
    fn dropping_the_executor_joins_workers() {
        let ex = Executor::new(3);
        let (tx, rx) = channel::unbounded::<u8>();
        ex.spawn(async move {
            let _ = tx.send(7).await;
        })
        .detach();
        assert_eq!(rx.recv_blocking(), Ok(7));
        drop(ex); // must not hang
    }

    #[test]
    fn async_send_backpressure_resumes() {
        let ex = Executor::new(1);
        let (tx, rx) = channel::bounded::<u32>(1);
        let producer = ex.spawn(async move {
            for i in 0..16 {
                tx.send(i).await.unwrap();
            }
        });
        let mut got = Vec::new();
        for _ in 0..16 {
            got.push(rx.recv_blocking().unwrap());
        }
        block_on(producer);
        assert_eq!(got, (0..16).collect::<Vec<_>>());
    }
}
