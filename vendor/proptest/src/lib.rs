//! Offline stand-in for the `proptest` crate.
//!
//! A deterministic property-test harness that accepts the same test
//! source as real proptest for the subset this workspace uses: the
//! `proptest!` macro (with optional `#![proptest_config(..)]`), the
//! `Strategy` trait with `prop_map`/`boxed`, integer-range and
//! regex-literal strategies, `Just`, tuples, `prop_oneof!` (weighted and
//! plain), `prop::collection::{vec, btree_set}`, `prop::option::of`,
//! `prop::array::uniform{2,3,9}`, `any::<T>()`, and the
//! `prop_assert*` macros.
//!
//! Differences from the real crate: no shrinking (a failing case reports
//! its case number and message as-is) and seeds are derived from the
//! test name, so every run explores the same deterministic sequence of
//! cases.

/// Deterministic RNG plus the test-case runner and its config/error types.
pub mod test_runner {
    /// Runner configuration; `ProptestConfig` in the prelude.
    #[derive(Clone, Copy, Debug)]
    pub struct Config {
        /// Number of cases each property runs.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// Why a single test case did not pass.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub enum TestCaseError {
        /// The property was falsified.
        Fail(String),
        /// The inputs were rejected (case is skipped, not failed).
        Reject(String),
    }

    impl TestCaseError {
        /// A falsification with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// A rejection with the given message.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "test case failed: {m}"),
                TestCaseError::Reject(m) => write!(f, "test case rejected: {m}"),
            }
        }
    }

    /// Result of one test case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// SplitMix64 generator — deterministic, seeded per test case.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// An RNG with the given seed.
        pub fn new(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// A value in `0..n` (`n` must be non-zero).
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0, "below(0)");
            self.next_u64() % n
        }

        /// `true` with probability `p`.
        pub fn chance(&mut self, p: f64) -> bool {
            (self.next_u64() >> 11) as f64 / ((1u64 << 53) as f64) < p
        }
    }

    fn fnv1a(bytes: &[u8]) -> u64 {
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Runs `config.cases` cases of a property; panics on the first
    /// falsified case. The seed is derived from `name`, so runs are
    /// reproducible without any external state.
    pub fn run_cases<F>(config: Config, name: &str, mut case: F)
    where
        F: FnMut(&mut TestRng) -> TestCaseResult,
    {
        let base = fnv1a(name.as_bytes());
        let mut rejected = 0u32;
        for i in 0..config.cases {
            let seed = base ^ (i as u64).wrapping_mul(0x2545_F491_4F6C_DD1D);
            let mut rng = TestRng::new(seed);
            match case(&mut rng) {
                Ok(()) => {}
                Err(TestCaseError::Reject(_)) => rejected += 1,
                Err(TestCaseError::Fail(msg)) => panic!(
                    "property `{name}` falsified at case {i}/{} (seed {seed:#x}): {msg}",
                    config.cases
                ),
            }
        }
        if rejected > 0 && rejected == config.cases {
            panic!("property `{name}`: every case was rejected");
        }
    }
}

/// The [`Strategy`](strategy::Strategy) trait and core combinators.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                sample: Box::new(move |rng| self.sample(rng)),
            }
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T> {
        sample: Box<dyn Fn(&mut TestRng) -> T>,
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            (self.sample)(rng)
        }
    }

    /// Weighted choice between boxed strategies; built by `prop_oneof!`.
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T> Union<T> {
        /// A union of `(weight, strategy)` arms.
        pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            let total = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof! needs at least one positive weight");
            Union { arms, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total);
            for (w, arm) in &self.arms {
                if pick < *w as u64 {
                    return arm.sample(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weights sum to total")
        }
    }

    macro_rules! int_range_strategies {
        ($($t:ty),+) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let offset = (rng.next_u64() as u128 % span) as i128;
                    (self.start as i128 + offset) as $t
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let offset = (rng.next_u64() as u128 % span) as i128;
                    (lo as i128 + offset) as $t
                }
            }
        )+};
    }

    int_range_strategies!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    /// Regex-literal strategies. Supports the subset
    /// `atom{m,n}` sequences where an atom is `.`, a `[..]` class of
    /// chars and `a-z` ranges, or a literal character.
    impl Strategy for &str {
        type Value = String;

        fn sample(&self, rng: &mut TestRng) -> String {
            sample_regex(self, rng)
        }
    }

    enum Atom {
        Any,
        Class(Vec<(char, char)>),
        Literal(char),
    }

    fn sample_regex(pattern: &str, rng: &mut TestRng) -> String {
        let mut chars = pattern.chars().peekable();
        let mut out = String::new();
        while let Some(c) = chars.next() {
            let atom = match c {
                '.' => Atom::Any,
                '[' => {
                    let mut ranges = Vec::new();
                    let mut class: Vec<char> = Vec::new();
                    for d in chars.by_ref() {
                        if d == ']' {
                            break;
                        }
                        class.push(d);
                    }
                    let mut i = 0;
                    while i < class.len() {
                        if i + 2 < class.len() && class[i + 1] == '-' {
                            ranges.push((class[i], class[i + 2]));
                            i += 3;
                        } else {
                            ranges.push((class[i], class[i]));
                            i += 1;
                        }
                    }
                    assert!(!ranges.is_empty(), "empty char class in {pattern:?}");
                    Atom::Class(ranges)
                }
                lit => Atom::Literal(lit),
            };
            let (min, max) = if chars.peek() == Some(&'{') {
                chars.next();
                let mut spec = String::new();
                for d in chars.by_ref() {
                    if d == '}' {
                        break;
                    }
                    spec.push(d);
                }
                match spec.split_once(',') {
                    Some((m, n)) => (
                        m.parse::<u64>().expect("repeat min"),
                        n.parse::<u64>().expect("repeat max"),
                    ),
                    None => {
                        let n = spec.parse::<u64>().expect("repeat count");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            let count = min + rng.below(max - min + 1);
            for _ in 0..count {
                out.push(match &atom {
                    Atom::Any => {
                        // Printable ASCII, like a `.` over a readable alphabet.
                        (0x20u8 + rng.below(0x5F) as u8) as char
                    }
                    Atom::Class(ranges) => {
                        let (lo, hi) = ranges[rng.below(ranges.len() as u64) as usize];
                        let span = hi as u32 - lo as u32 + 1;
                        char::from_u32(lo as u32 + rng.below(span as u64) as u32)
                            .expect("class char")
                    }
                    Atom::Literal(lit) => *lit,
                });
            }
        }
        out
    }

    macro_rules! tuple_strategies {
        ($(($($name:ident),+))+) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        )+};
    }

    tuple_strategies! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// The canonical strategy type.
        type Strategy: Strategy<Value = Self>;

        /// The canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// The canonical strategy for `A`.
    pub fn any<A: Arbitrary>() -> A::Strategy {
        A::arbitrary()
    }

    /// Full-domain strategy for a primitive.
    pub struct AnyPrimitive<T>(PhantomData<T>);

    macro_rules! arbitrary_ints {
        ($($t:ty),+) => {$(
            impl Strategy for AnyPrimitive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }

            impl Arbitrary for $t {
                type Strategy = AnyPrimitive<$t>;

                fn arbitrary() -> Self::Strategy {
                    AnyPrimitive(PhantomData)
                }
            }
        )+};
    }

    arbitrary_ints!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    impl Strategy for AnyPrimitive<bool> {
        type Value = bool;

        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for bool {
        type Strategy = AnyPrimitive<bool>;

        fn arbitrary() -> Self::Strategy {
            AnyPrimitive(PhantomData)
        }
    }
}

/// Collection strategies: `vec` and `btree_set`.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;

    /// A length specification: an exact size or a range of sizes.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max_inclusive: usize,
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            self.min + rng.below((self.max_inclusive - self.min + 1) as u64) as usize
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_inclusive: n,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_inclusive: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vectors of values from `element`, sized by `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>`.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Sets of values from `element`; the target size is drawn from
    /// `size`, though duplicates may leave the set smaller.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.sample(rng);
            let mut set = BTreeSet::new();
            // Bounded attempts so narrow element domains still terminate.
            for _ in 0..target.saturating_mul(4).max(8) {
                if set.len() >= target {
                    break;
                }
                set.insert(self.element.sample(rng));
            }
            set
        }
    }
}

/// `Option` strategies.
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing `Some` from the inner strategy half the time.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `None` or `Some(value)` with equal probability.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 1 == 1 {
                Some(self.inner.sample(rng))
            } else {
                None
            }
        }
    }
}

/// Fixed-size array strategies.
pub mod array {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing `[S::Value; N]`.
    pub struct UniformArray<S, const N: usize> {
        element: S,
    }

    impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
        type Value = [S::Value; N];

        fn sample(&self, rng: &mut TestRng) -> [S::Value; N] {
            std::array::from_fn(|_| self.element.sample(rng))
        }
    }

    /// An array of two values from `element`.
    pub fn uniform2<S: Strategy>(element: S) -> UniformArray<S, 2> {
        UniformArray { element }
    }

    /// An array of three values from `element`.
    pub fn uniform3<S: Strategy>(element: S) -> UniformArray<S, 3> {
        UniformArray { element }
    }

    /// An array of nine values from `element`.
    pub fn uniform9<S: Strategy>(element: S) -> UniformArray<S, 9> {
        UniformArray { element }
    }
}

/// Everything a property-test file needs, mirroring proptest's prelude.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespaced strategy modules, mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::array;
        pub use crate::collection;
        pub use crate::option;
        pub use crate::strategy;
    }
}

/// Defines property tests. Each `fn name(pat in strategy, ..) { body }`
/// becomes a `#[test]` running the body over generated inputs; an
/// optional leading `#![proptest_config(expr)]` sets the case count.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::test_runner::Config::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$attr:meta])*
     fn $name:ident($($param:pat_param in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        // The conventional `#[test]` inside a `proptest!` block arrives
        // through `$attr`; emitting a second one here would register the
        // test twice with the harness.
        $(#[$attr])*
        fn $name() {
            $crate::test_runner::run_cases($config, stringify!($name), |__rng| {
                let __vals = (
                    $($crate::strategy::Strategy::sample(&($strat), __rng),)+
                );
                (move || -> $crate::test_runner::TestCaseResult {
                    let ($($param,)+) = __vals;
                    $body
                    ::std::result::Result::Ok(())
                })()
            });
        }
        $crate::__proptest_fns!(($config) $($rest)*);
    };
}

/// Fails the current test case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current test case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    __l,
                    __r
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    }};
}

/// Fails the current test case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: {} != {}\n  both: {:?}",
                    stringify!($left),
                    stringify!($right),
                    __l
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    }};
}

/// Weighted (or uniform) choice between strategies producing a common
/// value type. `w => strategy` arms choose with probability
/// proportional to `w`; bare arms choose uniformly.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn rng() -> crate::test_runner::TestRng {
        crate::test_runner::TestRng::new(42)
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..500 {
            let v = (-20i64..20).sample(&mut r);
            assert!((-20..20).contains(&v));
            let u = (0usize..10_000).sample(&mut r);
            assert!(u < 10_000);
            let w = (3u32..=5).sample(&mut r);
            assert!((3..=5).contains(&w));
        }
    }

    #[test]
    fn regex_subset_matches_shape() {
        let mut r = rng();
        for _ in 0..200 {
            let s = "[a-c]{1,2}".sample(&mut r);
            assert!((1..=2).contains(&s.len()));
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
            let t = ".{0,12}".sample(&mut r);
            assert!(t.chars().count() <= 12);
            assert!(t.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn oneof_union_and_map_compose() {
        let strat = prop_oneof![
            3 => (0i64..10).prop_map(|v| v * 2),
            1 => Just(-1i64),
        ];
        let mut r = rng();
        let mut saw_neg = false;
        let mut saw_even = false;
        for _ in 0..200 {
            match strat.sample(&mut r) {
                -1 => saw_neg = true,
                v if v % 2 == 0 && (0..20).contains(&v) => saw_even = true,
                v => panic!("unexpected sample {v}"),
            }
        }
        assert!(saw_neg && saw_even);
    }

    #[test]
    fn collections_respect_sizes() {
        let mut r = rng();
        for _ in 0..100 {
            let v = prop::collection::vec(0usize..5, 1..4).sample(&mut r);
            assert!((1..4).contains(&v.len()));
            let exact = prop::collection::vec(Just(7u8), 3usize).sample(&mut r);
            assert_eq!(exact, vec![7, 7, 7]);
            let s = prop::collection::btree_set(0u8..50, 0..6).sample(&mut r);
            assert!(s.len() < 6);
            let arr = prop::array::uniform3(any::<bool>()).sample(&mut r);
            assert_eq!(arr.len(), 3);
            let o = prop::option::of(-3i64..3).sample(&mut r);
            if let Some(x) = o {
                assert!((-3..3).contains(&x));
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro wires patterns, strategies, and early returns.
        #[test]
        fn macro_end_to_end(mut xs in prop::collection::vec(0i64..100, 0..8), flip in any::<bool>()) {
            if flip {
                xs.reverse();
            }
            prop_assert!(xs.len() < 8);
            prop_assert_eq!(xs.len(), xs.iter().count());
            if xs.is_empty() {
                return Ok(());
            }
            prop_assert_ne!(xs.len(), 0, "non-empty after early return");
        }
    }

    #[test]
    #[should_panic(expected = "falsified")]
    fn failing_property_panics() {
        crate::test_runner::run_cases(
            crate::test_runner::Config::with_cases(4),
            "always_fails",
            |_| Err(TestCaseError::fail("nope")),
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let collect = || {
            let mut out = Vec::new();
            crate::test_runner::run_cases(
                crate::test_runner::Config::with_cases(8),
                "determinism",
                |rng| {
                    out.push((0u64..1_000_000).sample(rng));
                    Ok(())
                },
            );
            out
        };
        assert_eq!(collect(), collect());
    }
}
